//! The paper's §4.3 scenario end-to-end: a four-computer heterogeneous
//! module managed by the L1+L0 hierarchy under a diurnal synthetic
//! workload, printing how the machine count and energy track the load.
//!
//! Run with `cargo run --release -p llc-examples --bin module_power`.

use llc_cluster::{single_module, Experiment, HierarchicalPolicy};
use llc_workload::{synthetic_paper_workload, VirtualStore};

fn main() {
    // Full-fidelity offline learning (a few seconds); the benchmarks use
    // the same spec.
    let scenario = single_module(4);
    println!(
        "building hierarchy: {} computers, learning abstraction maps ...",
        scenario.num_computers()
    );
    let mut policy = HierarchicalPolicy::build(&scenario);

    // One slice of the §4.3 synthetic workload (2-minute buckets).
    let trace = synthetic_paper_workload(42).slice(0, 400);
    let store = VirtualStore::paper_default(42);

    println!("running {} buckets of workload ...", trace.len());
    let log = Experiment::paper_default(42)
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .expect("well-formed scenario");

    println!("\nhour | req/s | computers on | mean response (s)");
    println!("{}", "-".repeat(56));
    for chunk in log.ticks.chunks(120) {
        let time_h = chunk[0].time / 3600.0;
        let rate: f64 =
            chunk.iter().map(|t| t.arrivals as f64).sum::<f64>() / (chunk.len() as f64 * 30.0);
        let active: f64 = chunk.iter().map(|t| t.active as f64).sum::<f64>() / chunk.len() as f64;
        let resp: Vec<f64> = chunk.iter().filter_map(|t| t.mean_response).collect();
        let mean_resp = resp.iter().sum::<f64>() / resp.len().max(1) as f64;
        println!("{time_h:4.1} | {rate:5.0} | {active:12.1} | {mean_resp:.2}");
    }

    let s = log.summary();
    println!("\nsummary:");
    println!("  policy:          {}", s.policy);
    println!("  mean response:   {:.2} s (target 4 s)", s.mean_response);
    println!(
        "  violations:      {:.1}% of windows",
        s.violation_fraction * 100.0
    );
    println!("  energy:          {:.0} power·s", s.total_energy);
    println!("  switch-ons:      {}", s.total_switch_ons);
    println!("  dropped:         {}", s.total_dropped);
}
