//! The distributed control loop end to end — both halves of the wire in
//! one process, talking over a real loopback TCP socket.
//!
//! This is exactly what `llc-agent` and `llc-controld` do as separate
//! binaries, compressed into one runnable example:
//!
//! * the **agent thread** owns the plant shard (`AgentCore` around a
//!   `SimAdapter`): each 30 s window it streams one `Observation` frame
//!   per module plus a `Heartbeat` commit marker, then reconciles and
//!   actuates whatever `Directive` frames come back;
//! * the **controller** (here: `main`) owns the watchdog'd closed-loop
//!   hierarchy behind a `ControldCore`: it ingests frames, decides each
//!   tick, and ships epoch-stamped directives down the same socket.
//!
//! The run is the `faults` golden family (crash–restart schedule), in
//! lockstep mode — so the decisions are bit-identical to the in-process
//! `Experiment::run` loop, and the final `MetricsSnapshot` gains a
//! fully populated transport section: frames and bytes each way, decode
//! errors, late/lost observation windows, reconnects, wedged reports.
//!
//! Run with: `cargo run --release -p llc-examples --example distributed_control`

use llc_net::scenario::{Family, RunSpec};
use llc_net::{run_agent, serve_controller, AgentCore, ControldCore, FrameTransport, TcpLink};
use std::net::{TcpListener, TcpStream};

fn main() {
    let spec = RunSpec::defaults(Family::Faults);
    let (exp, trace) = spec.experiment_and_trace();
    let ticks_trace = trace.rebucket(exp.t_l0).expect("well-formed trace");
    let total_ticks = ticks_trace.len() as u64;

    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("bound socket");
    println!(
        "controller listening on {addr} — {} machines, {} ticks of {:.0} s",
        spec.members, total_ticks, exp.t_l0
    );

    let agent_exp = exp.clone();
    let agent_trace = trace.clone();
    let agent = std::thread::spawn(move || {
        let store = spec.store();
        let mut core = AgentCore::new(
            spec.scenario_config().to_sim_config(),
            &agent_exp,
            &agent_trace,
            &store,
        )
        .expect("well-formed plant");
        let stream = TcpStream::connect(addr).expect("controller is listening");
        let mut link = TcpLink::new(stream).expect("link");
        run_agent(&mut core, &mut link, None).expect("lossless lockstep session");
        (core.reconcile_report(), core.wedged_events())
    });

    let members: Vec<Vec<usize>> = {
        let sizes: Vec<usize> = spec
            .scenario_config()
            .member_specs()
            .iter()
            .map(Vec::len)
            .collect();
        let mut members = Vec::new();
        let mut next = 0usize;
        for n in sizes {
            members.push((next..next + n).collect());
            next += n;
        }
        members
    };
    let mut core = ControldCore::new(spec.policy(), members, exp.t_l0, total_ticks);
    let (stream, peer) = listener.accept().expect("agent connects");
    println!("agent connected from {peer}");
    let mut link = TcpLink::new(stream).expect("link");
    serve_controller(&mut core, &mut link, None).expect("lossless lockstep session");

    let (reconcile, wedged) = agent.join().expect("agent finished cleanly");
    let m = core.metrics(&link.counters());

    println!(
        "\n--- MetricsSnapshot after {} decided ticks ---",
        m.ticks_decided
    );
    println!(
        "control:   {} directives emitted, {} observations ingested, {} dark-filled member-windows",
        m.directives_emitted, m.observations_ingested, m.dark_filled_members,
    );
    println!(
        "churn:     {} member deaths, {} recoveries, {} safe-mode periods",
        m.member_deaths(),
        m.member_recoveries(),
        m.safe_mode_periods(),
    );
    let t = &m.transport;
    println!(
        "transport: {} frames in / {} out, {} bytes in / {} out",
        t.frames_in, t.frames_out, t.bytes_in, t.bytes_out,
    );
    println!(
        "           {} decode errors, {} late observations, {} lost observation windows",
        t.decode_errors, t.late_observations, t.lost_observation_windows,
    );
    println!(
        "           {} reconnects, {} wedged reports",
        t.reconnects, t.wedged_reports,
    );
    println!(
        "agent:     {} directives applied, {} superseded, {} duplicates, {} wedged events",
        reconcile.applied, reconcile.superseded, reconcile.duplicates, wedged,
    );

    assert_eq!(t.decode_errors, 0, "lossless loopback run");
    assert_eq!(t.lost_observation_windows, 0, "lockstep never dark-fills");
}
