//! Online incremental learning under drift, end to end on one computer:
//! a machine silently loses 35% of its capacity mid-run (post-failure
//! degradation — request demands, and therefore the controller's ĉ
//! telemetry, look unchanged), and the abstraction map either stays the
//! offline artifact or absorbs each period's realized outcome.
//!
//! Run with: `cargo run --release -p llc-examples --example online_drift`

use llc_cluster::{
    AbstractionMap, FrequencyProfile, GEntry, L0Config, L0Controller, LearnSpec, MapBackend,
    MemberSpec,
};
use llc_core::OnlineConfig;
use llc_workload::CapacityProfile;

fn main() {
    let spec = MemberSpec::paper_default(FrequencyProfile::TallEight);
    let l0 = L0Config::paper_default();
    let offline =
        AbstractionMap::learn_for_member(&l0, &spec, LearnSpec::coarse(), MapBackend::Dense);
    let mut online = offline.clone();
    let cfg = OnlineConfig::default();

    let periods = 120usize;
    let capacity = CapacityProfile::Step {
        at: 0.4,
        before: 1.0,
        after: 0.65,
    };
    let lambda = 0.3 / spec.c_prior; // steady 30% of nominal capacity
    let c = spec.c_prior;
    let mut q = 0.0f64;
    let (mut off_err, mut on_err) = (0.0, 0.0);
    println!("period  scale   true-cost  offline-pred  online-pred");
    for k in 0..periods {
        let scale = capacity.scale_at(k, periods);
        let (cost, power, final_q) =
            L0Controller::simulate_model(&l0, &spec.phis, q, lambda, c / scale, 4);
        let truth = GEntry {
            cost,
            power,
            final_q,
        };
        let off = offline.query(lambda, c, q).cost;
        let on = online.query(lambda, c, q).cost;
        off_err += (off - truth.cost).abs();
        on_err += (on - truth.cost).abs();
        if k % 15 == 0 {
            println!(
                "{k:>6}  {scale:>5.2}  {:>9.3}  {off:>12.3}  {on:>11.3}",
                truth.cost
            );
        }
        online.update_online(lambda, c, q, truth, &cfg);
        q = truth.final_q;
    }
    println!(
        "\ntracking MAE over {periods} periods: offline-only {:.4}, online-updated {:.4} ({:.1}x better)",
        off_err / periods as f64,
        on_err / periods as f64,
        off_err / on_err.max(1e-12),
    );
    println!(
        "the offline map never notices the capacity step; the online map \
         re-converges within a handful of periods of the failure."
    );
}
