//! Quickstart: one DVFS-capable computer managed by an L0
//! limited-lookahead controller against the event-driven simulator.
//!
//! Run with `cargo run -p llc-examples --bin quickstart`.

use llc_cluster::{L0Config, L0Controller};
use llc_sim::{ClusterConfig, ClusterSim, ComputerConfig, PowerModel};

fn main() {
    // A computer with four frequency settings (φ = 0.25, 0.5, 0.75, 1.0).
    let frequencies = vec![0.5e9, 1.0e9, 1.5e9, 2.0e9];
    let sim_config = ClusterConfig {
        modules: vec![vec![ComputerConfig::new(
            frequencies.clone(),
            PowerModel::paper_default(),
            0.0, // instant boot for the demo
        )]],
    };
    let mut sim = ClusterSim::new(sim_config);
    sim.power_on(0);
    sim.set_module_weights(&[1.0]).expect("one module");
    sim.set_computer_weights(0, &[1.0]).expect("one computer");

    // The L0 controller with the paper's parameters: horizon 3, T = 30 s,
    // Q = 100, R = 1, r* = 4 s.
    let max = *frequencies.last().expect("non-empty");
    let phis: Vec<f64> = frequencies.iter().map(|f| f / max).collect();
    let mut l0 = L0Controller::new(L0Config::paper_default(), phis);

    // Drive 40 sampling periods of a load that ramps up and back down.
    println!("tick | req/s | queue | frequency | window mean response");
    println!("{}", "-".repeat(64));
    for tick in 0u64..40 {
        let t = tick as f64 * 30.0;
        // Offered load: 5 -> 45 -> 5 req/s triangle.
        let rate = 5.0 + 40.0 * (1.0 - ((tick as f64 - 20.0).abs() / 20.0));

        // Observe the last window, then decide the frequency.
        let window = sim.drain_computer_stats()[0];
        l0.observe(window.arrivals, window.mean_demand());
        let queue = sim.computer(0).queue_length();
        let decision = l0.decide(queue).expect("frequency table is non-empty");
        sim.set_frequency(0, decision.frequency_index);

        // Inject this window's arrivals (uniformly spread, 17.5 ms mean).
        let n = (rate * 30.0).round() as usize;
        for k in 0..n {
            let at = t + 30.0 * (k as f64 + 0.5) / n as f64;
            sim.schedule_arrival(at, 0.0175).expect("time is monotone");
        }
        sim.run_until(t + 30.0).expect("time is monotone");

        let after = sim.computer(0).stats();
        println!(
            "{tick:4} | {rate:5.0} | {queue:5} | {:6.2} GHz | {}",
            frequencies[decision.frequency_index] / 1e9,
            after
                .mean_response()
                .map(|r| format!("{r:.3} s"))
                .unwrap_or_else(|| "-".into()),
        );
    }

    println!(
        "\ntotal energy: {:.0} (power·s) — the controller tracked the load with \
         the cheapest adequate frequency.",
        sim.total_energy()
    );
}
