//! Self-healing at every layer, end to end: the plant silently loses
//! half its capacity mid-run (`deep-degradation`), and the hierarchy
//! heals itself twice over —
//!
//! * the **drift-aware L0** estimates the delivered-capacity scale `ŝ`
//!   from realized completions and threads it through the queue model,
//!   so the frequency controllers stop limit-cycling between too-low
//!   settings and flat-out backlog drains;
//! * the **retrain consumer** turns the latched `retrain_recommended()`
//!   signal into a *background* map rebuild over drift-corrected `ĉ/ŝ`
//!   envelopes, hot-swapped in one L1 period after the trigger with the
//!   drift detectors reset.
//!
//! Run with: `cargo run --release -p llc-examples --example self_healing`

use llc_cluster::{single_module, Experiment, PolicyBuilder, RetrainConfig, ScenarioConfig};
use llc_core::OnlineConfig;
use llc_workload::{deep_degradation_scenario, VirtualStore};

fn scenario() -> ScenarioConfig {
    let mut sc = single_module(2).with_coarse_learning().with_hash_maps();
    sc.l1.min_active = 2;
    sc
}

fn main() {
    let sc = scenario();
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    let scenario_def = deep_degradation_scenario(0xC105ED, 120, 120.0, capacity);
    let store = VirtualStore::paper_default(5);

    let mut maes = Vec::new();
    for self_healing in [false, true] {
        let sc = scenario();
        let mut builder = PolicyBuilder::new(sc.clone()).closed_loop(OnlineConfig::default());
        if self_healing {
            builder = builder.drift_aware_l0().retrain(RetrainConfig::default());
        }
        let mut policy = builder.build();
        let exp = Experiment {
            drift: Some(scenario_def.capacity),
            ..Experiment::paper_default(0xBEEF)
        };
        let log = exp
            .run(sc.to_sim_config(), &mut policy, &scenario_def.trace, &store)
            .expect("well-formed scenario");
        let s = log.summary();
        let mae = policy.tracking_error().unwrap_or(f64::NAN);
        println!(
            "{:<13} tracking MAE {:>8.3} | {} freq switches | mean response {:>7.3} s | \
             violations {:>4.1}% | ŝ = [{}] | {} rebuilds{}",
            if self_healing {
                "self-healing"
            } else {
                "closed-loop"
            },
            mae,
            log.frequency_switches(),
            s.mean_response,
            100.0 * s.violation_fraction,
            (0..policy.num_computers())
                .map(|i| format!("{:.2}", policy.l0(i).scale_estimate()))
                .collect::<Vec<_>>()
                .join(", "),
            policy.retrain_rebuilds(),
            if policy.retrain_recommended() {
                ", retrain latched"
            } else {
                ""
            },
        );
        for r in policy.retrain_history() {
            println!(
                "    rebuild: triggered tick {}, hot-swapped tick {} (modules {:?})",
                r.trigger_tick, r.swap_tick, r.modules
            );
        }
        maes.push(mae);
    }
    println!(
        "\ndrift-aware L0 + retrain hot-swap track the half-capacity plant {:.1}x more \
         accurately than the drift-blind closed loop.",
        maes[0] / maes[1].max(1e-12),
    );
}
