//! Shared helpers for the runnable examples (kept intentionally tiny).
