//! The hierarchy as a long-lived control plane — no `Experiment` at all.
//!
//! Two threads talk over channels, the way a real deployment would talk
//! over a network:
//!
//! * the **plant thread** owns the simulated cluster (via `SimAdapter`)
//!   and the workload; every 30 s window it ships one
//!   `ModuleObservation` per module and applies whatever `Directive`s
//!   come back;
//! * the **controller thread** (here: `main`) owns a `ControlPlane`
//!   wrapping the full self-healing hierarchy; it ingests observations,
//!   steps the virtual clock, and drains stamped directives.
//!
//! Mid-run a machine crashes and restarts, a blackout later drops the
//! module below its telemetry quorum, and the plant silently sheds 45%
//! of its capacity — so the run exercises the whole metrics surface:
//! watch the `SafeMode` directives stream past, then read the final
//! `MetricsSnapshot` — decide latency, drift detections, retrain
//! rebuilds, member deaths/recoveries, safe-mode periods — from one
//! endpoint.
//!
//! Run with: `cargo run --release -p llc-examples --example control_plane`

use llc_cluster::DirectiveEmit;
use llc_cluster::{
    single_module, ControlPlane, DirectiveKind, Experiment, FaultToleranceConfig,
    ObservationIngest, PolicyBuilder, RetrainConfig, SimAdapter,
};
use llc_core::OnlineConfig;
use llc_workload::{
    derive_seed, fault_scenarios, spread_arrivals, CapacityProfile, FaultEvent, FaultKind,
    FaultPlan, RequestSampler, VirtualStore,
};
use rand::SeedableRng;
use std::sync::mpsc;

fn main() {
    let sc = single_module(4).with_coarse_learning().with_hash_maps();
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    // The bench's crash-restart fault schedule, plus a 3-of-4
    // simultaneous blackout late in the run (drops the module below the
    // telemetry quorum → safe mode) and a silent capacity step the
    // fault plan knows nothing about.
    let fs = fault_scenarios(0xFA11, 90, 120.0, capacity, 4).swap_remove(0);
    let mut events = fs.plan.events().to_vec();
    for computer in 1..4 {
        events.push(FaultEvent {
            tick: 240,
            computer,
            kind: FaultKind::BlackoutStart,
        });
        events.push(FaultEvent {
            tick: 256,
            computer,
            kind: FaultKind::BlackoutEnd,
        });
    }
    let exp = Experiment {
        drift: Some(CapacityProfile::Step {
            at: 0.55,
            before: 1.0,
            after: 0.55,
        }),
        faults: Some(FaultPlan::new(events)),
        ..Experiment::paper_default(0xBEEF)
    };
    let ticks_trace = fs.trace.rebucket(exp.t_l0).expect("well-formed trace");
    let total_ticks = ticks_trace.len();
    let t_l0 = exp.t_l0;
    let seed = exp.seed;

    let mut adapter = SimAdapter::new(sc.to_sim_config(), &exp, total_ticks);
    adapter.prewarm().expect("well-formed cluster");
    let members = adapter.members().to_vec();

    let (obs_tx, obs_rx) = mpsc::channel();
    let (dir_tx, dir_rx) = mpsc::channel();
    let plant = std::thread::spawn(move || {
        let store = VirtualStore::paper_default(5);
        let mut sampler = RequestSampler::paper_default(&store, seed);
        let mut spread_rng = rand::rngs::StdRng::seed_from_u64(derive_seed(seed, 0xA121));
        for tick in 0..total_ticks as u64 {
            for observation in adapter.observe(tick) {
                obs_tx.send(observation).expect("controller is up");
            }
            let directives: Vec<llc_cluster::Directive> = dir_rx.recv().expect("controller is up");
            adapter
                .actuate(&directives)
                .expect("well-formed directives");
            let t = tick as f64 * t_l0;
            let count = ticks_trace.count(tick as usize).round().max(0.0) as usize;
            for at in spread_arrivals(&mut spread_rng, t, t_l0, count) {
                let (_, demand) = sampler.next_request();
                adapter
                    .schedule_arrival(at, demand)
                    .expect("arrival in window");
            }
            adapter.advance_window(tick).expect("well-formed run");
        }
        adapter
    });

    // The controller side: the full self-healing stack behind the
    // ingest/emit API.
    let policy = PolicyBuilder::new(sc.clone())
        .closed_loop(OnlineConfig::default())
        .fault_tolerance(FaultToleranceConfig::default())
        .retrain(RetrainConfig::default())
        .drift_aware_l0()
        .build();
    let num_modules = members.len();
    let mut plane = ControlPlane::new(policy, members, t_l0);
    while let Ok(first) = obs_rx.recv() {
        plane.ingest(first).expect("known topology, fresh tick");
        for _ in 1..num_modules {
            let observation = obs_rx.recv().expect("plant sends every module");
            plane
                .ingest(observation)
                .expect("known topology, fresh tick");
        }
        let report = plane.step();
        let directives = plane.drain_directives();
        for d in &directives {
            if let DirectiveKind::SafeMode { module, active } = d.kind {
                println!(
                    "t={:>6.0}s  L1 epoch {:>3}  module {} {} safe mode",
                    report.time,
                    d.epoch,
                    module,
                    if active { "entered" } else { "left" },
                );
            }
        }
        dir_tx.send(directives).expect("plant is up");
    }
    let _adapter = plant.join().expect("plant thread finished cleanly");

    let m = plane.metrics();
    println!(
        "\n--- MetricsSnapshot after {} decided ticks ---",
        m.ticks_decided
    );
    println!(
        "ingest: {} observations, {} out-of-order, {} stale, {} dark-filled member-windows",
        m.observations_ingested,
        m.out_of_order_observations,
        m.stale_observations,
        m.dark_filled_members,
    );
    println!(
        "emit:   {} directives; decide latency mean {:?}, max {:?}",
        m.directives_emitted,
        m.decide.mean(),
        m.decide.max,
    );
    println!(
        "learn:  {} online updates, {} drift detections, {} retrain triggers, {} rebuilds",
        m.policy.online_updates,
        m.drift_detections(),
        m.policy.retrain_triggers,
        m.rebuilds(),
    );
    println!(
        "churn:  {} member deaths, {} recoveries, {} safe-mode periods, {} feed-forward events",
        m.member_deaths(),
        m.member_recoveries(),
        m.safe_mode_periods(),
        m.policy.feed_forward_events,
    );
}
