//! The paper's §5.2 scenario: sixteen heterogeneous computers in four
//! modules under a WC'98-like workload, managed by the full three-level
//! hierarchy (L2 split → L1 on/off+split → L0 frequency).
//!
//! Run with `cargo run --release -p llc-examples --bin cluster_scale`.

use llc_cluster::{paper_cluster_16, Experiment, HierarchicalPolicy};
use llc_workload::{wc98_like_fig6, VirtualStore};

fn main() {
    // Full-fidelity offline learning: the coarse test grids are too crude
    // for good L2 splits. Expect ~30-60 s of learning before the run.
    let scenario = paper_cluster_16();
    println!(
        "building hierarchy for {} computers in {} modules (offline learning, ~1 min) ...",
        scenario.num_computers(),
        scenario.num_modules()
    );
    let mut policy = HierarchicalPolicy::build(&scenario);

    let trace = wc98_like_fig6(7).slice(0, 240); // 8 hours
    let store = VirtualStore::paper_default(7);
    println!("running {} two-minute buckets ...", trace.len());
    let log = Experiment::paper_default(7)
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .expect("well-formed scenario");

    println!("\nhour | req/s | computers on (of 16) | module split γ");
    println!("{}", "-".repeat(72));
    let gammas = policy.gamma_module_history();
    for chunk in log.ticks.chunks(120) {
        let tick0 = chunk[0].tick;
        let time_h = chunk[0].time / 3600.0;
        let rate: f64 =
            chunk.iter().map(|t| t.arrivals as f64).sum::<f64>() / (chunk.len() as f64 * 30.0);
        let active: f64 = chunk.iter().map(|t| t.active as f64).sum::<f64>() / chunk.len() as f64;
        let gamma = gammas
            .iter()
            .rev()
            .find(|(t, _)| *t <= tick0)
            .map(|(_, g)| {
                g.iter()
                    .map(|x| format!("{x:.1}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default();
        println!("{time_h:4.1} | {rate:5.0} | {active:20.1} | [{gamma}]");
    }

    let s = log.summary();
    let overhead = policy.overhead();
    println!("\nsummary:");
    println!(
        "  mean response:      {:.2} s (target 4 s)",
        s.mean_response
    );
    println!("  energy:             {:.0} power·s", s.total_energy);
    println!("  switch-ons:         {}", s.total_switch_ons);
    println!(
        "  decision overhead:  L2 {:?} + L1 {:?} + L0 {:?} per decision",
        overhead[2].mean(),
        overhead[1].mean(),
        overhead[0].mean()
    );
    println!("  hierarchy path:     {:?}", policy.path_overhead());
}
