//! Compare the hierarchical LLC controller against the reactive
//! threshold heuristic and an always-on/max-frequency cluster on the same
//! workload — the paper's core argument for lookahead control.
//!
//! Run with `cargo run --release -p llc-examples --bin baseline_comparison`.

use llc_cluster::{
    single_module, AlwaysMaxPolicy, ClusterPolicy, Experiment, HierarchicalPolicy, ThresholdConfig,
    ThresholdPolicy,
};
use llc_workload::{synthetic_paper_workload, VirtualStore};

fn main() {
    let scenario = single_module(4).with_coarse_learning();
    let trace = synthetic_paper_workload(99).slice(0, 400);
    let store = VirtualStore::paper_default(99);

    let layout: Vec<Vec<(f64, Vec<f64>)>> = scenario
        .member_specs()
        .iter()
        .map(|module| module.iter().map(|m| (m.speed, m.phis.clone())).collect())
        .collect();
    let layout_sizes: Vec<Vec<(f64, usize)>> = layout
        .iter()
        .map(|module| module.iter().map(|(s, p)| (*s, p.len())).collect())
        .collect();

    let mut policies: Vec<Box<dyn ClusterPolicy>> = vec![
        Box::new(HierarchicalPolicy::build(&scenario)),
        Box::new(ThresholdPolicy::new(ThresholdConfig::default(), layout)),
        Box::new(AlwaysMaxPolicy::new(layout_sizes)),
    ];

    println!(
        "{:<22} | {:>13} | {:>11} | {:>12} | {:>11}",
        "policy", "mean resp (s)", "violations", "energy", "switch-ons"
    );
    println!("{}", "-".repeat(80));
    let mut energies = Vec::new();
    for policy in policies.iter_mut() {
        let log = Experiment::paper_default(99)
            .run(scenario.to_sim_config(), policy.as_mut(), &trace, &store)
            .expect("well-formed scenario");
        let s = log.summary();
        println!(
            "{:<22} | {:>13.2} | {:>10.1}% | {:>12.0} | {:>11}",
            s.policy,
            s.mean_response,
            s.violation_fraction * 100.0,
            s.total_energy,
            s.total_switch_ons
        );
        energies.push((s.policy.clone(), s.total_energy));
    }

    let llc = energies[0].1;
    let always = energies[2].1;
    println!(
        "\nLLC consumed {:.0}% of the always-max energy while holding the \
         response-time goal —\nthe paper's core trade-off.",
        100.0 * llc / always
    );
}
