//! Churn tolerance end to end: machines crash and restart, telemetry
//! goes dark, sensors turn noisy, actuators wedge — and the hierarchy
//! degrades gracefully instead of falling over:
//!
//! * a **watchdog** declares a member dead after consecutive suspect
//!   windows and the L1 re-plans over the survivors (`min_active`
//!   clamped, γ re-split, no directives to the dead);
//! * **estimators hold state through telemetry gaps** instead of
//!   ingesting blank windows, and a plausibility gate drops corrupted
//!   sensor readings;
//! * the **L2 relaxes its hysteresis** for one decision on every
//!   membership change, so the cluster split tracks the surviving
//!   capacity instead of a stale configuration;
//! * below the telemetry quorum a module falls back to **safe mode**
//!   (all live members on, uniform split) until sensing recovers.
//!
//! The fault-blind arm is the identical closed-loop hierarchy with the
//! watchdog off: it takes blank windows and crashed machines at face
//! value.
//!
//! Run with: `cargo run --release -p llc-examples --example fault_tolerance`

use llc_cluster::{single_module, Experiment, FaultToleranceConfig, PolicyBuilder, ScenarioConfig};
use llc_core::OnlineConfig;
use llc_workload::{fault_scenarios, VirtualStore};

fn scenario() -> ScenarioConfig {
    single_module(4).with_coarse_learning().with_hash_maps()
}

fn main() {
    let sc = scenario();
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    let store = VirtualStore::paper_default(5);
    let scenarios = fault_scenarios(0xFA11, 90, 120.0, capacity, 4);

    println!(
        "{:<17} {:>14} {:>14} {:>7} {:>6} {:>6} {:>5}",
        "scenario", "blind MAE", "tolerant MAE", "ratio", "deaths", "rejoin", "safe"
    );
    for fs in &scenarios {
        let mut maes = Vec::new();
        let mut stats = (0u64, 0u64, 0u64);
        for tolerant in [false, true] {
            let mut builder = PolicyBuilder::new(scenario()).closed_loop(OnlineConfig::default());
            if tolerant {
                builder = builder.fault_tolerance(FaultToleranceConfig::default());
            }
            let mut policy = builder.build();
            let exp = Experiment {
                faults: Some(fs.plan.clone()),
                ..Experiment::paper_default(0xBEEF)
            };
            let log = exp
                .run(scenario().to_sim_config(), &mut policy, &fs.trace, &store)
                .expect("well-formed scenario");
            let s = log.summary();
            maes.push((policy.tracking_error().unwrap_or(f64::NAN), s.mean_response));
            if tolerant {
                stats = (
                    policy.member_deaths(),
                    policy.member_recoveries(),
                    policy.safe_mode_periods(),
                );
            }
        }
        println!(
            "{:<17} {:>8.3} ({:>4.2}s) {:>8.3} ({:>4.2}s) {:>6.2}x {:>6} {:>6} {:>5}",
            fs.name,
            maes[0].0,
            maes[0].1,
            maes[1].0,
            maes[1].1,
            maes[0].0 / maes[1].0.max(1e-12),
            stats.0,
            stats.1,
            stats.2,
        );
    }
    println!(
        "\nthe watchdog + survivor re-planning track the faulted plant more accurately \
         than the fault-blind closed loop on every scenario."
    );
}
