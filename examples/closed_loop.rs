//! The closed loop end to end: the full event-driven hierarchy against
//! the simulated plant losing 35% of its capacity mid-run, with zero
//! harness-side learning code — `PolicyBuilder::closed_loop` makes the policy
//! derive realized per-member outcomes from its own telemetry, absorb
//! them into its abstraction maps, and switch its learning rate when the
//! drift detector fires.
//!
//! Run with: `cargo run --release -p llc-examples --example closed_loop`

use llc_cluster::{single_module, Experiment, PolicyBuilder};
use llc_core::OnlineConfig;
use llc_workload::{CapacityProfile, DiurnalShape, SyntheticBuilder, VirtualStore};

fn main() {
    let scenario = single_module(2).with_coarse_learning();
    let capacity: f64 = scenario.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    // Steady traffic at 55% of nominal capacity, 80 L1 periods.
    let buckets = 80;
    let trace = SyntheticBuilder::new(DiurnalShape::new(0.55 * capacity * 120.0), buckets, 120.0)
        .build(0xC1);
    let store = VirtualStore::paper_default(5);
    let drift = CapacityProfile::Step {
        at: 0.4,
        before: 1.0,
        after: 0.65,
    };

    let mut arms = Vec::new();
    for closed in [false, true] {
        let builder = PolicyBuilder::new(scenario.clone());
        let mut policy = if closed {
            builder.closed_loop(OnlineConfig::default())
        } else {
            builder.outcome_tracking(OnlineConfig::default())
        }
        .build();
        let exp = Experiment {
            drift: Some(drift),
            ..Experiment::paper_default(9)
        };
        let log = exp
            .run(scenario.to_sim_config(), &mut policy, &trace, &store)
            .expect("well-formed scenario");
        let s = log.summary();
        println!(
            "{:<12}  tracking MAE {:>8.3} over {:>3} outcomes | mean response {:.3} s, \
             violations {:.1}%, energy {:.0}, {} online updates, {} drift detections{}",
            if closed {
                "closed-loop"
            } else {
                "offline-only"
            },
            policy.tracking_error().unwrap_or(f64::NAN),
            policy.tracking_samples(),
            s.mean_response,
            100.0 * s.violation_fraction,
            s.total_energy,
            policy.online_updates(),
            policy.l1(0).drift_detections(),
            if policy.retrain_recommended() {
                ", retrain recommended"
            } else {
                ""
            },
        );
        arms.push(policy.tracking_error().unwrap_or(f64::NAN));
    }
    println!(
        "\nclosed loop tracks the degraded plant {:.1}x more accurately — with no \
         record_outcome/learn_online calls anywhere in this file.",
        arms[0] / arms[1].max(1e-12),
    );
}
