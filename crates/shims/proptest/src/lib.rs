//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the subset of the
//! proptest API this workspace uses is reimplemented in-tree: the
//! [`Strategy`](strategy::Strategy) trait over ranges, tuples and vectors,
//! `prop_map`, [`prop_oneof!`], and the [`proptest!`] /[`prop_assert!`]
//! family of macros. Cases are generated from a deterministic per-test
//! seed (FNV-1a of the test name), so failures reproduce exactly; there is
//! no shrinking — the failing inputs are reported verbatim instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// How a generated case ended, other than by passing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is not counted.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// A failing outcome with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic case generation.
pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// The generator handed to strategies while sampling cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// A generator seeded from the test name (FNV-1a), so each test
        /// sees a stable stream across runs.
        pub fn from_test_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(h),
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform on `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `0..n`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of an output type from random bits.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { strategy: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Box a strategy for heterogeneous collections ([`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// The combinator behind [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.strategy.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies — the [`prop_oneof!`](crate::prop_oneof) payload.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union over the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

    /// Always yields a clone of the given value.
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn sample(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// Vectors of a given element strategy and length range.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    impl<S> VecStrategy<S> {
        pub(crate) fn new(elem: S, lo: usize, hi: usize) -> Self {
            assert!(lo <= hi, "empty length range");
            VecStrategy { elem, lo, hi }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.hi == self.lo {
                self.lo
            } else {
                self.lo + rng.below(self.hi - self.lo + 1)
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::VecStrategy;

    /// Lengths accepted by [`vec()`]: an exact `usize` or a `usize` range.
    pub trait IntoSizeRange {
        /// Inclusive `(lo, hi)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// A strategy for `Vec`s whose elements come from `elem` and whose
    /// length is drawn from `size`.
    pub fn vec<S: crate::strategy::Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy::new(elem, lo, hi)
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Run a block of property tests.
///
/// Supports the subset of upstream syntax this workspace uses: an optional
/// leading `#![proptest_config(expr)]`, then `#[test] fn name(arg in
/// strategy, ...) { body }` items. Bodies use `prop_assert!` /
/// `prop_assert_eq!` / `prop_assume!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_test_name(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(16).max(256);
                while __accepted < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "proptest: too many rejected cases ({__accepted} accepted)",
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", __accepted + 1, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__left, __right) = (&$a, &$b);
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                __left, __right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$a, &$b);
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__left, __right) = (&$a, &$b);
        if __left == __right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __left, __right
            )));
        }
    }};
}

/// Reject a case (not counted towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0..1.0f64, k in 2usize..8) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((2..8).contains(&k));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec((0.0..10.0f64).prop_map(|x| x * 2.0), 1..5)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in &v {
                prop_assert!((0.0..20.0).contains(x), "out of range: {x}");
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(usize),
        B(f64),
    }

    proptest! {
        #[test]
        fn oneof_samples_every_arm(
            picks in crate::collection::vec(
                prop_oneof![
                    (0usize..4).prop_map(Pick::A),
                    (0.0..1.0f64).prop_map(Pick::B),
                ],
                64
            )
        ) {
            prop_assert!(picks.iter().any(|p| matches!(p, Pick::A(_))));
            prop_assert!(picks.iter().any(|p| matches!(p, Pick::B(_))));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_test_name("same");
        let mut b = TestRng::from_test_name("same");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
