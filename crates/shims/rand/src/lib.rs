//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no registry access, so the
//! subset of the `rand` API the workspace uses is provided in-tree:
//! [`RngCore`]/[`Rng`] with `gen`/`gen_range`, [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`] backed by xoshiro256++ seeded via
//! SplitMix64. The streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, but every consumer in this workspace only relies on *seeded
//! determinism*, not on a specific stream. Swap the workspace `rand` entry
//! back to crates.io to use the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the "standard" distribution of [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution (`f64` uniform on `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream `rand::rngs::StdRng` stream — only seeded
    /// determinism is promised, which is all this workspace relies on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<f64>().to_bits()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<f64>().to_bits()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            let v = r.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&v));
            let w = r.gen_range(0.010..=0.025);
            assert!((0.010..=0.025).contains(&w));
            let k = r.gen_range(3usize..9);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(4);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
