use crate::control::{Cadence, PolicyMetrics};
use llc_sim::{PowerState, WindowStats};

/// Per-computer observation for one base (`T_L0`) tick.
///
/// The realized window carries everything the plant measured between
/// samples — arrivals, completions, response and demand sums, *and the
/// energy actually drawn* — so the closed-loop hierarchy can reconstruct
/// per-member realized outcomes (cost, power, end queue) without any
/// harness-side bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputerObs {
    /// Global computer index.
    pub index: usize,
    /// Module the computer belongs to.
    pub module: usize,
    /// Queue length at the sampling instant (queued + in service).
    pub queue: usize,
    /// The realized stats of the window that just ended (arrivals,
    /// completions, response/demand sums, energy drawn).
    pub window: WindowStats,
    /// Power state at the sampling instant.
    pub state: PowerState,
    /// Current frequency index.
    pub frequency_index: usize,
    /// `false` when this window's telemetry was lost (blackout, or a
    /// crashed machine gone silent): the window stats and queue reading
    /// arrive blank and must not be treated as evidence, and `state` /
    /// `frequency_index` are frozen at the last values the management
    /// plane saw before the lights went out — crash-stop is
    /// indistinguishable from a partition, so ground truth is not
    /// available either.
    pub telemetry_ok: bool,
    /// Requests the module dispatcher offered to this computer during
    /// the window that the computer refused (crashed, or no admissible
    /// operating state). Measured at the *dispatcher*, not the machine,
    /// so it remains valid through telemetry blackouts — a router always
    /// knows its own failed sends. A refused request never completes:
    /// the closed loop charges it the worst-case slack in the realized
    /// cost, which is what stops a controller that routes traffic into a
    /// dead machine from looking *better* (relieved survivors, clean
    /// models) than one that re-plans around it.
    pub rejected: u64,
}

impl ComputerObs {
    /// Requests routed to this computer during the window.
    pub fn arrivals(&self) -> u64 {
        self.window.arrivals
    }

    /// Mean response time of completions in the window (seconds).
    pub fn mean_response(&self) -> Option<f64> {
        self.window.mean_response()
    }

    /// Mean full-speed demand of completions in the window (seconds).
    pub fn mean_demand(&self) -> Option<f64> {
        self.window.mean_demand()
    }
}

/// Per-module observation for one base tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleObs {
    /// Module index.
    pub index: usize,
    /// Requests dispatched to the module during the window.
    pub arrivals: u64,
    /// Requests dropped at/inside the module during the window.
    pub dropped: u64,
}

/// Everything a policy sees at a tick.
#[derive(Debug, Clone, PartialEq)]
pub struct Observations {
    /// Base tick index (multiples of `T_L0`).
    pub tick: u64,
    /// Simulation time in seconds.
    pub time: f64,
    /// Per-computer windows, in global index order.
    pub computers: Vec<ComputerObs>,
    /// Per-module windows, in module order.
    pub modules: Vec<ModuleObs>,
}

/// An actuation command against the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Order computer `i` on (incurs the boot dead time).
    PowerOn(usize),
    /// Order computer `i` off (drains first if busy).
    PowerOff(usize),
    /// Set computer `i`'s frequency-table index.
    SetFrequency(usize, usize),
    /// Set the global module split `{γ_i}`.
    SetModuleWeights(Vec<f64>),
    /// Set module `m`'s computer split `{γ_ij}`.
    SetComputerWeights(usize, Vec<f64>),
}

/// A cluster management policy: fed observations every base tick, returns
/// actuation commands. Implemented by [`HierarchicalPolicy`] (the paper's
/// controller) and by the baselines.
///
/// [`HierarchicalPolicy`]: crate::HierarchicalPolicy
pub trait ClusterPolicy {
    /// Decide the actions for this tick.
    fn decide(&mut self, obs: &Observations) -> Vec<Action>;

    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// The tick cadence of the policy's slow levels, used by the
    /// control-plane driver to stamp directive epochs. A flat policy
    /// (the default) decides everything every base tick.
    fn cadence(&self) -> Cadence {
        Cadence::base()
    }

    /// The policy's operational counters for the metrics surface. The
    /// default reports nothing — appropriate for baselines with no
    /// learners, watchdogs or retrain machinery.
    fn metrics(&self) -> PolicyMetrics {
        PolicyMetrics::default()
    }
}

/// Forwarding impl so a control plane can borrow a policy it does not
/// own (e.g. [`crate::Experiment`] driving `&mut dyn ClusterPolicy`
/// through a [`crate::ControlPlane`]).
impl<T: ClusterPolicy + ?Sized> ClusterPolicy for &mut T {
    fn decide(&mut self, obs: &Observations) -> Vec<Action> {
        (**self).decide(obs)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn cadence(&self) -> Cadence {
        (**self).cadence()
    }
    fn metrics(&self) -> PolicyMetrics {
        (**self).metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;
    impl ClusterPolicy for Null {
        fn decide(&mut self, _obs: &Observations) -> Vec<Action> {
            Vec::new()
        }
        fn name(&self) -> &str {
            "null"
        }
    }

    #[test]
    fn policy_trait_is_object_safe() {
        let mut p: Box<dyn ClusterPolicy> = Box::new(Null);
        let obs = Observations {
            tick: 0,
            time: 0.0,
            computers: Vec::new(),
            modules: Vec::new(),
        };
        assert!(p.decide(&obs).is_empty());
        assert_eq!(p.name(), "null");
    }

    #[test]
    fn action_equality() {
        assert_eq!(Action::PowerOn(1), Action::PowerOn(1));
        assert_ne!(Action::PowerOn(1), Action::PowerOff(1));
        assert_eq!(
            Action::SetModuleWeights(vec![0.5, 0.5]),
            Action::SetModuleWeights(vec![0.5, 0.5])
        );
    }
}
