//! One-stop construction of a fully configured [`HierarchicalPolicy`].
//!
//! The self-healing subsystems accreted one `enable_*` method each
//! (`enable_closed_loop`, `enable_fault_tolerance`, `enable_retrain`)
//! plus a scenario tweak (`with_drift_aware_l0`), so every bench arm
//! re-implemented the same four-call construction dance.
//! [`PolicyBuilder`] consolidates the surface; the old methods survive
//! as thin deprecated wrappers so existing callers keep compiling.

use crate::hierarchy::{FaultToleranceConfig, HierarchicalPolicy};
use crate::retrain::RetrainConfig;
use crate::ScenarioConfig;
use llc_core::OnlineConfig;

/// Fluent builder for a [`HierarchicalPolicy`] with any combination of
/// the optional subsystems: closed-loop learning (or the caller-driven
/// outcome-tracking variant), the churn watchdog, the retrain consumer,
/// and the drift-aware L0. `build()` runs the same offline learning
/// passes in the same order as the legacy `enable_*` sequence, so a
/// builder-constructed policy is bit-identical to one configured by
/// hand.
///
/// ```no_run
/// use llc_cluster::{single_module, PolicyBuilder};
///
/// let policy = PolicyBuilder::new(single_module(4).with_coarse_learning())
///     .closed_loop(llc_core::OnlineConfig::default())
///     .fault_tolerance(llc_cluster::FaultToleranceConfig::default())
///     .retrain(llc_cluster::RetrainConfig::default())
///     .drift_aware_l0()
///     .build();
/// ```
#[derive(Debug, Clone)]
pub struct PolicyBuilder {
    scenario: ScenarioConfig,
    closed_loop: Option<OnlineConfig>,
    outcome_tracking: Option<OnlineConfig>,
    fault_tolerance: Option<FaultToleranceConfig>,
    retrain: Option<RetrainConfig>,
    drift_aware_l0: bool,
}

impl PolicyBuilder {
    /// Start from a scenario, with every optional subsystem off — the
    /// paper's plain offline hierarchy.
    pub fn new(scenario: ScenarioConfig) -> Self {
        PolicyBuilder {
            scenario,
            closed_loop: None,
            outcome_tracking: None,
            fault_tolerance: None,
            retrain: None,
            drift_aware_l0: false,
        }
    }

    /// Close the loop in-hierarchy: derive realized outcomes from plant
    /// telemetry and absorb them into the learned models every period.
    /// Mutually exclusive with [`PolicyBuilder::outcome_tracking`]
    /// (last call wins).
    #[must_use]
    pub fn closed_loop(mut self, cfg: OnlineConfig) -> Self {
        self.closed_loop = Some(cfg);
        self.outcome_tracking = None;
        self
    }

    /// Derive and queue realized outcomes without learning from them
    /// (the caller-driven feedback path). Mutually exclusive with
    /// [`PolicyBuilder::closed_loop`] (last call wins).
    #[must_use]
    pub fn outcome_tracking(mut self, cfg: OnlineConfig) -> Self {
        self.outcome_tracking = Some(cfg);
        self.closed_loop = None;
        self
    }

    /// Switch on the churn watchdog: death/rejoin tracking, safe-mode
    /// fallback under quorum loss, dead-member exclusion from planning.
    #[must_use]
    pub fn fault_tolerance(mut self, cfg: FaultToleranceConfig) -> Self {
        self.fault_tolerance = Some(cfg);
        self
    }

    /// Switch on the retrain consumer: background map/model rebuild
    /// with a deterministic hot-swap when the drift detectors latch.
    #[must_use]
    pub fn retrain(mut self, cfg: RetrainConfig) -> Self {
        self.retrain = Some(cfg);
        self
    }

    /// Make the L0 queue models drift-aware: delivered-capacity scale
    /// estimated online from realized completions.
    #[must_use]
    pub fn drift_aware_l0(mut self) -> Self {
        self.drift_aware_l0 = true;
        self
    }

    /// The scenario the policy will be built for (before the
    /// drift-aware L0 tweak, which does not affect the plant layout).
    pub fn scenario(&self) -> &ScenarioConfig {
        &self.scenario
    }

    /// Run the offline learning passes and wire up every configured
    /// subsystem.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs in any configured subsystem (see
    /// [`OnlineConfig::validated`], [`FaultToleranceConfig::validated`],
    /// [`RetrainConfig::validated`]).
    pub fn build(self) -> HierarchicalPolicy {
        let scenario = if self.drift_aware_l0 {
            #[allow(deprecated)]
            self.scenario.with_drift_aware_l0()
        } else {
            self.scenario
        };
        let mut policy = HierarchicalPolicy::build(&scenario);
        if let Some(cfg) = self.closed_loop {
            policy.set_closed_loop(cfg);
        }
        if let Some(cfg) = self.outcome_tracking {
            policy.set_outcome_tracking(cfg);
        }
        if let Some(cfg) = self.fault_tolerance {
            policy.set_fault_tolerance(cfg);
        }
        if let Some(cfg) = self.retrain {
            policy.set_retrain(cfg);
        }
        policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_module;
    use crate::ClosedLoopMode;

    #[test]
    fn builder_wires_every_subsystem() {
        let policy = PolicyBuilder::new(single_module(2).with_coarse_learning())
            .closed_loop(OnlineConfig::default())
            .fault_tolerance(FaultToleranceConfig::default())
            .retrain(RetrainConfig::default())
            .drift_aware_l0()
            .build();
        assert_eq!(policy.closed_loop_mode(), ClosedLoopMode::Learn);
        assert!(policy.fault_tolerance_enabled());
        assert_eq!(policy.retrain_rebuilds(), 0);
        assert!(policy.l0(0).config().scale.enabled, "drift-aware L0 on");
    }

    #[test]
    fn closed_loop_and_tracking_are_exclusive() {
        let policy = PolicyBuilder::new(single_module(2).with_coarse_learning())
            .closed_loop(OnlineConfig::default())
            .outcome_tracking(OnlineConfig::default())
            .build();
        assert_eq!(policy.closed_loop_mode(), ClosedLoopMode::Observe);
        let policy = PolicyBuilder::new(single_module(2).with_coarse_learning())
            .outcome_tracking(OnlineConfig::default())
            .closed_loop(OnlineConfig::default())
            .build();
        assert_eq!(policy.closed_loop_mode(), ClosedLoopMode::Learn);
    }

    #[test]
    fn plain_build_matches_legacy() {
        let policy = PolicyBuilder::new(single_module(2).with_coarse_learning()).build();
        assert_eq!(policy.closed_loop_mode(), ClosedLoopMode::Off);
        assert!(!policy.fault_tolerance_enabled());
    }
}
