//! The retrain consumer: turning the latched `retrain_recommended()`
//! signal into an actual background map rebuild with an atomic hot-swap.
//!
//! PR 3's drift detectors latch a re-train recommendation when residual
//! firings stop being local — incremental cell blending is patching a
//! model that is wrong *everywhere*, and only an offline re-learn fixes
//! that. Until now nothing consumed the signal. [`RetrainManager`]
//! closes the last open loop:
//!
//! 1. **detect** — any member map / module model detector latches;
//! 2. **latch** — `HierarchicalPolicy::retrain_recommended()` goes true;
//! 3. **rebuild** — the manager snapshots drift-corrected telemetry
//!    (effective processing times `ĉ/ŝ` from the L1 filters and the
//!    drift-aware L0 scale estimators) and spawns a *background* thread
//!    that re-learns the affected modules' abstraction maps over
//!    envelopes centered on those fresh ranges (fanning out over
//!    `llc-par`), re-seeds the measured cells of the old maps into the
//!    new ones, and — in multi-module clusters — re-fits the module cost
//!    models on top;
//! 4. **hot-swap** — exactly one L1 period after the trigger the
//!    hierarchy joins the thread (long finished by then; the join is the
//!    deterministic swap point, so runs reproduce bit for bit) and
//!    atomically installs the `Arc`-shared maps and models;
//! 5. **reset** — the swapped controllers' drift detectors re-arm and
//!    the latch releases, so the *next* global drift episode can trigger
//!    the *next* rebuild — subject to a cooldown and a lifetime budget
//!    that keep a persistently noisy plant from thrashing rebuilds.

use crate::l1::{AbstractionMap, L1Config, LearnSpec, MapBackend, MemberSpec};
use crate::l2::{ModuleCostModel, ModuleLearnSpec};
use crate::L0Config;
use llc_approx::BlendConfig;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Knobs of the [`RetrainManager`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrainConfig {
    /// Minimum L1 periods between consecutive rebuild *triggers* (a
    /// rebuild is also never triggered while one is in flight). Keeps a
    /// plant that drifts continuously from thrashing rebuilds: between
    /// rebuilds the incremental learner carries the load.
    pub cooldown_periods: u64,
    /// Lifetime rebuild budget; once spent, further latches fall back to
    /// incremental learning only. `0` disables retraining outright.
    pub max_rebuilds: usize,
    /// Online observations a cell of the *old* map must hold before it
    /// is re-seeded into the rebuilt map (measured truth carried across
    /// the swap).
    pub reseed_min_confidence: f64,
    /// Blend rate for re-seeded cells against the rebuilt offline prior.
    pub reseed_learning_rate: f64,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        RetrainConfig {
            cooldown_periods: 8,
            max_rebuilds: 4,
            reseed_min_confidence: 2.0,
            reseed_learning_rate: 0.5,
        }
    }
}

impl RetrainConfig {
    /// Validate the knob ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs.
    pub fn validated(self) -> Self {
        assert!(
            self.reseed_min_confidence >= 0.0 && self.reseed_min_confidence.is_finite(),
            "reseed_min_confidence must be finite and non-negative"
        );
        assert!(
            self.reseed_learning_rate > 0.0 && self.reseed_learning_rate <= 1.0,
            "reseed_learning_rate must lie in (0, 1]"
        );
        self
    }
}

/// One module's share of a background rebuild: the drift-corrected specs
/// to learn over and the old maps whose measured cells are carried
/// across.
pub(crate) struct ModuleRebuildJob {
    pub(crate) module: usize,
    /// Member specs with `c_prior` re-centered on the *effective*
    /// processing time `ĉ/ŝ` at trigger time, so the rebuilt envelope
    /// covers the capacity actually being delivered.
    pub(crate) specs: Vec<MemberSpec>,
    /// Per-member learning envelopes `(c_range, λ_max, q_max)`,
    /// re-estimated from the ranges the observation logs *actually
    /// visited* (with headroom and safety floors) rather than the
    /// static [`MemberSpec::learn_envelope`] — the same grid resolution
    /// then concentrates on live traffic.
    pub(crate) envelopes: Vec<((f64, f64), f64, f64)>,
    pub(crate) old_maps: Vec<Arc<AbstractionMap>>,
    /// Re-fit this module's L2 cost model on the fresh maps.
    pub(crate) rebuild_model: bool,
}

/// The offline-learning knobs a rebuild replays — a snapshot of the
/// configuration the hierarchy was originally built with.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RebuildContext {
    pub(crate) l0: L0Config,
    pub(crate) l1: L1Config,
    pub(crate) learn: LearnSpec,
    pub(crate) module_learn: ModuleLearnSpec,
    pub(crate) backend: MapBackend,
}

/// What a background rebuild hands back for the hot-swap.
pub(crate) struct RebuildOutput {
    /// Fresh, re-seeded abstraction maps per affected module.
    pub(crate) maps: Vec<(usize, Vec<Arc<AbstractionMap>>)>,
    /// Fresh module cost models (multi-module clusters only).
    pub(crate) models: Vec<(usize, ModuleCostModel)>,
}

/// One completed rebuild, for reporting and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebuildRecord {
    /// Base tick at which the latch triggered the rebuild.
    pub trigger_tick: u64,
    /// Base tick at which the fresh maps were hot-swapped in.
    pub swap_tick: u64,
    /// Modules whose maps (and models, if any) were replaced.
    pub modules: Vec<usize>,
}

struct PendingRebuild {
    handle: JoinHandle<RebuildOutput>,
    trigger_tick: u64,
    /// First base tick at which the swap may land (one L1 period after
    /// the trigger — deterministic, and comfortably after the background
    /// thread finishes).
    ready_tick: u64,
    modules: Vec<usize>,
}

/// The retrain consumer owned by `HierarchicalPolicy` (see the module
/// docs for the detect → latch → rebuild → hot-swap → reset lifecycle).
pub struct RetrainManager {
    cfg: RetrainConfig,
    pending: Option<PendingRebuild>,
    history: Vec<RebuildRecord>,
    /// Tick of the last trigger (drives the cooldown).
    last_trigger: Option<u64>,
}

impl std::fmt::Debug for RetrainManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetrainManager")
            .field("cfg", &self.cfg)
            .field("pending", &self.pending.as_ref().map(|p| p.trigger_tick))
            .field("history", &self.history)
            .finish()
    }
}

impl RetrainManager {
    /// A manager with the given knobs.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (see [`RetrainConfig::validated`]).
    pub fn new(cfg: RetrainConfig) -> Self {
        RetrainManager {
            cfg: cfg.validated(),
            pending: None,
            history: Vec::new(),
            last_trigger: None,
        }
    }

    /// The knobs in force.
    pub fn config(&self) -> &RetrainConfig {
        &self.cfg
    }

    /// Rebuilds completed and hot-swapped so far.
    pub fn rebuilds(&self) -> usize {
        self.history.len()
    }

    /// Rebuild triggers fired so far: completed rebuilds plus one in
    /// flight, if any. A trigger without a matching rebuild means a
    /// background job is still running toward its swap point.
    pub fn triggers(&self) -> u64 {
        self.history.len() as u64 + u64::from(self.pending.is_some())
    }

    /// The completed rebuilds, oldest first.
    pub fn history(&self) -> &[RebuildRecord] {
        &self.history
    }

    /// `true` while a background rebuild is in flight.
    pub fn pending(&self) -> bool {
        self.pending.is_some()
    }

    /// `true` when a latch observed at `tick` may trigger a rebuild:
    /// budget left, nothing in flight, cooldown expired.
    pub(crate) fn can_trigger(&self, tick: u64, cooldown_ticks: u64) -> bool {
        self.pending.is_none()
            && self.history.len() < self.cfg.max_rebuilds
            && self
                .last_trigger
                .is_none_or(|t| tick.saturating_sub(t) >= cooldown_ticks)
    }

    /// Spawn the background rebuild for `jobs` under the original build
    /// knobs in `ctx`, to be swapped in at `ready_tick`.
    pub(crate) fn spawn(
        &mut self,
        jobs: Vec<ModuleRebuildJob>,
        ctx: RebuildContext,
        trigger_tick: u64,
        ready_tick: u64,
    ) {
        debug_assert!(self.pending.is_none(), "one rebuild in flight at a time");
        let modules: Vec<usize> = jobs.iter().map(|j| j.module).collect();
        let reseed = BlendConfig::new(self.cfg.reseed_learning_rate, 0.0);
        let min_conf = self.cfg.reseed_min_confidence;
        let handle = std::thread::spawn(move || {
            let mut maps_out = Vec::with_capacity(jobs.len());
            let mut models_out = Vec::new();
            for job in jobs {
                // One offline pass per member, fanned out over llc-par —
                // the same deterministic learning pipeline build() runs,
                // but over the re-estimated (visited-range) envelopes.
                debug_assert_eq!(job.specs.len(), job.envelopes.len());
                let fresh: Vec<AbstractionMap> = llc_par::par_map_range(job.specs.len(), |i| {
                    let spec = &job.specs[i];
                    let (c_range, lambda_max, q_max) = job.envelopes[i];
                    AbstractionMap::learn_with_backend(
                        &ctx.l0,
                        &spec.phis,
                        c_range,
                        lambda_max,
                        q_max,
                        ctx.learn,
                        ctx.backend,
                    )
                });
                let maps: Vec<Arc<AbstractionMap>> = fresh
                    .into_iter()
                    .zip(&job.old_maps)
                    .map(|(mut map, old)| {
                        map.reseed_online_from(old, min_conf, &reseed);
                        Arc::new(map)
                    })
                    .collect();
                if job.rebuild_model {
                    let capacity: f64 = job.specs.iter().map(|m| m.speed / m.c_prior).sum();
                    models_out.push((
                        job.module,
                        ModuleCostModel::learn(
                            &ctx.l1,
                            &job.specs,
                            &maps,
                            capacity * 1.3,
                            ctx.module_learn,
                        ),
                    ));
                }
                maps_out.push((job.module, maps));
            }
            RebuildOutput {
                maps: maps_out,
                models: models_out,
            }
        });
        self.pending = Some(PendingRebuild {
            handle,
            trigger_tick,
            ready_tick,
            modules,
        });
        self.last_trigger = Some(trigger_tick);
    }

    /// Join and return the finished rebuild once `tick` reached its swap
    /// point; `None` while nothing is ready. The caller installs the
    /// output and the swap is recorded against `tick`.
    pub(crate) fn take_ready(&mut self, tick: u64) -> Option<RebuildOutput> {
        if self.pending.as_ref().is_none_or(|p| tick < p.ready_tick) {
            return None;
        }
        let pending = self.pending.take().expect("checked above");
        let output = pending
            .handle
            .join()
            .expect("background rebuild must not panic");
        self.history.push(RebuildRecord {
            trigger_tick: pending.trigger_tick,
            swap_tick: tick,
            modules: pending.modules,
        });
        Some(output)
    }
}
