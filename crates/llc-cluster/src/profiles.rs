use llc_sim::{ComputerConfig, PowerModel};

/// A named processor frequency profile (the paper's Fig. 3 lists the
/// discrete operating frequencies of each computer in the module; the
/// printed table is an image, so we model the cited parts — the AMD
/// K6-2+ offers eight discrete settings, the Pentium M ten — with round
/// values spanning the same ranges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrequencyProfile {
    /// 6 settings, 600 MHz – 1.6 GHz (Pentium-M-class laptop part).
    MobileSix,
    /// 8 settings, 300 MHz – 1.7 GHz (K6-2+-class part, wide range).
    WideEight,
    /// 7 settings, 533 MHz – 2.13 GHz (bus-multiple desktop part).
    BusSeven,
    /// 8 settings, 250 MHz – 2.0 GHz (the paper's C4: Fig. 5 shows its
    /// frequency axis reaching 2·10⁹ Hz).
    TallEight,
}

impl FrequencyProfile {
    /// The discrete frequency set in Hz, strictly ascending.
    pub fn frequencies(self) -> Vec<f64> {
        match self {
            FrequencyProfile::MobileSix => {
                vec![6.0e8, 8.0e8, 1.0e9, 1.2e9, 1.4e9, 1.6e9]
            }
            FrequencyProfile::WideEight => {
                vec![3.0e8, 5.0e8, 7.0e8, 9.0e8, 1.1e9, 1.3e9, 1.5e9, 1.7e9]
            }
            FrequencyProfile::BusSeven => {
                vec![5.33e8, 8.0e8, 1.066e9, 1.333e9, 1.6e9, 1.866e9, 2.133e9]
            }
            FrequencyProfile::TallEight => {
                vec![2.5e8, 5.0e8, 7.5e8, 1.0e9, 1.25e9, 1.5e9, 1.75e9, 2.0e9]
            }
        }
    }

    /// Number of discrete settings.
    pub fn len(self) -> usize {
        self.frequencies().len()
    }

    /// `true` if the profile has no settings (never).
    pub fn is_empty(self) -> bool {
        false
    }

    /// Maximum frequency in Hz.
    pub fn max_frequency(self) -> f64 {
        *self
            .frequencies()
            .last()
            .expect("profiles are non-empty by construction")
    }

    /// The four heterogeneous profiles of the paper's four-computer module
    /// (C1–C4), in order.
    pub fn module_set() -> [FrequencyProfile; 4] {
        [
            FrequencyProfile::MobileSix,
            FrequencyProfile::WideEight,
            FrequencyProfile::BusSeven,
            FrequencyProfile::TallEight,
        ]
    }
}

/// A complete computer description: frequency profile + power model +
/// boot dead time, convertible to the simulator's [`ComputerConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct ComputerProfile {
    /// Frequency profile.
    pub profile: FrequencyProfile,
    /// Relative full-speed capacity; the reference machine (speed 1.0)
    /// serves a demand of `c` seconds in `c` seconds at max frequency.
    pub speed: f64,
    /// Base operating cost `a`.
    pub base_cost: f64,
    /// Switch-on transient cost / boot draw `W`.
    pub boot_cost: f64,
    /// Boot dead time in seconds.
    pub boot_delay: f64,
}

impl ComputerProfile {
    /// Paper defaults (`a = 0.75`, `W = 8`, 2-minute boot) for a profile;
    /// speed scales with the profile's maximum frequency relative to the
    /// 2 GHz reference part.
    pub fn paper_default(profile: FrequencyProfile) -> Self {
        ComputerProfile {
            profile,
            speed: profile.max_frequency() / FrequencyProfile::TallEight.max_frequency(),
            base_cost: 0.75,
            boot_cost: 8.0,
            boot_delay: 120.0,
        }
    }

    /// Convert into the simulator's configuration.
    pub fn to_sim_config(&self) -> ComputerConfig {
        ComputerConfig::new(
            self.profile.frequencies(),
            PowerModel::new(self.base_cost, self.boot_cost),
            self.boot_delay,
        )
        .with_speed(self.speed)
    }

    /// The φ value (fraction of max frequency) of setting `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn phi(&self, index: usize) -> f64 {
        let freqs = self.profile.frequencies();
        freqs[index] / freqs[freqs.len() - 1]
    }

    /// All φ values, ascending; the L0 controller's input set.
    pub fn phis(&self) -> Vec<f64> {
        let freqs = self.profile.frequencies();
        let max = freqs[freqs.len() - 1];
        freqs.iter().map(|f| f / max).collect()
    }

    /// Peak service rate in requests/second for mean demand `c` (at the
    /// reference machine): `speed · 1/c`. Bounds the sensible γ range.
    pub fn peak_service_rate(&self, c: f64) -> f64 {
        self.speed / c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ascending_and_in_range() {
        for p in FrequencyProfile::module_set() {
            let f = p.frequencies();
            assert!(f.windows(2).all(|w| w[0] < w[1]), "{p:?} not ascending");
            assert!(f[0] >= 2.0e8, "{p:?} floor too low");
            assert!(*f.last().unwrap() <= 2.2e9, "{p:?} ceiling too high");
            assert!(
                (6..=10).contains(&p.len()),
                "{p:?} has {} settings",
                p.len()
            );
        }
    }

    #[test]
    fn c4_reaches_2ghz_like_fig5() {
        assert_eq!(FrequencyProfile::TallEight.max_frequency(), 2.0e9);
        assert_eq!(FrequencyProfile::TallEight.len(), 8);
    }

    #[test]
    fn module_set_is_heterogeneous() {
        let profiles = FrequencyProfile::module_set();
        let lens: Vec<usize> = profiles.iter().map(|p| p.len()).collect();
        let maxes: Vec<f64> = profiles.iter().map(|p| p.max_frequency()).collect();
        // At least two distinct set sizes and two distinct max frequencies.
        let mut l = lens.clone();
        l.dedup();
        assert!(l.len() >= 2);
        assert!(maxes.iter().any(|&m| (m - 2.0e9).abs() > 1e6));
    }

    #[test]
    fn phis_end_at_one() {
        for p in FrequencyProfile::module_set() {
            let cp = ComputerProfile::paper_default(p);
            let phis = cp.phis();
            assert!((phis.last().unwrap() - 1.0).abs() < 1e-12);
            assert!(phis[0] > 0.0);
            assert_eq!(phis.len(), p.len());
        }
    }

    #[test]
    fn paper_default_parameters() {
        let c = ComputerProfile::paper_default(FrequencyProfile::MobileSix);
        assert_eq!(c.base_cost, 0.75);
        assert_eq!(c.boot_cost, 8.0);
        assert_eq!(c.boot_delay, 120.0);
        assert!((c.speed - 0.8).abs() < 1e-12, "1.6 GHz / 2.0 GHz");
    }

    #[test]
    fn sim_config_roundtrip() {
        let c = ComputerProfile::paper_default(FrequencyProfile::WideEight);
        let cfg = c.to_sim_config();
        assert_eq!(cfg.frequencies.len(), 8);
        assert_eq!(cfg.boot_delay, 120.0);
        assert!((cfg.speed - 0.85).abs() < 1e-12);
    }

    #[test]
    fn peak_service_rate_scales_with_speed() {
        let fast = ComputerProfile::paper_default(FrequencyProfile::TallEight);
        let slow = ComputerProfile::paper_default(FrequencyProfile::MobileSix);
        let c = 0.0175;
        assert!(fast.peak_service_rate(c) > slow.peak_service_rate(c));
        assert!((fast.peak_service_rate(c) - 1.0 / 0.0175).abs() < 1e-9);
    }
}
