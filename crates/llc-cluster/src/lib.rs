//! The paper's case study: a three-level hierarchical LLC power manager
//! for a heterogeneous web-server cluster.
//!
//! Structure (paper Fig. 2):
//!
//! * [`L0Controller`] — one per computer. Every `T_L0 = 30 s` it picks the
//!   processor frequency by exhaustive lookahead (`N_L0 = 3`) over the
//!   analytic queue model of eqns. (5)–(7), minimizing
//!   `Q·ε + R·(a + φ²)` with `Q = 100, R = 1`.
//! * [`L1Controller`] — one per module of `m` computers. Every
//!   `T_L1 = 120 s` it decides the on/off vector `{α_j}` and the load
//!   split `{γ_j}` (quantum 0.05) by bounded search, consulting the
//!   **abstraction map `g`** ([`AbstractionMap`]) learned offline from the
//!   L0 controller, averaging candidate costs over the arrival-rate band
//!   `{λ̂−δ, λ̂, λ̂+δ}` (chattering mitigation) and charging `W = 8` per
//!   switch-on.
//! * [`L2Controller`] — one per cluster. Every `T_L2 = 120 s` it splits the
//!   global arrivals across modules (`{γ_i}`, quantum 0.1) using per-module
//!   regression trees ([`ModuleCostModel`]) trained by simulating the full
//!   L1+L0 module.
//!
//! [`HierarchicalPolicy`] wires the three levels together behind the
//! [`ClusterPolicy`] trait; [`ThresholdPolicy`] and [`AlwaysMaxPolicy`]
//! are the comparison baselines; [`Experiment`] drives any policy against
//! the [`llc_sim`] plant fed by an [`llc_workload`] trace and records the
//! series behind every figure of the evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod builder;
mod centralized;
mod config;
mod control;
mod experiment;
mod hierarchy;
mod l0;
mod l1;
mod l2;
mod policy;
mod profiles;
mod retrain;

pub use baselines::{AlwaysMaxPolicy, ThresholdConfig, ThresholdPolicy};
pub use builder::PolicyBuilder;
pub use centralized::{joint_candidate_count, CentralizedConfig, CentralizedPolicy};
pub use config::{
    cluster_of, module_of_four, paper_cluster_16, paper_cluster_20, single_module, ScenarioConfig,
};
pub use control::{
    Cadence, ControlPlane, Directive, DirectiveEmit, DirectiveKind, IngestError, LatencyStats,
    Level, MemberTelemetry, MetricsSnapshot, ModuleObservation, ObservationIngest, PolicyMetrics,
    StepReport, TransportMetrics,
};
pub use experiment::{Experiment, ExperimentLog, ExperimentSummary, SimAdapter, TickRecord};
pub use hierarchy::{
    ClosedLoopMode, FaultToleranceConfig, HierarchicalPolicy, LevelOverhead, RealizedOutcome,
};
pub use l0::{L0Config, L0Controller, L0Decision, QueueModel};
pub use l1::{
    AbstractionMap, GEntry, L1Config, L1Controller, L1Decision, LearnSpec, MapBackend, MemberSpec,
};
pub use l2::{L2Config, L2Controller, L2Decision, ModuleCostModel, ModuleLearnSpec, ModuleState};
pub use policy::{Action, ClusterPolicy, ComputerObs, ModuleObs, Observations};
pub use profiles::{ComputerProfile, FrequencyProfile};
pub use retrain::{RebuildRecord, RetrainConfig, RetrainManager};
