use crate::policy::{Action, ClusterPolicy, Observations};
use llc_forecast::{Ewma, Forecaster};
use llc_sim::PowerState;

/// Parameters of the threshold heuristic baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdConfig {
    /// Utilization above which another computer is switched on.
    pub rho_hi: f64,
    /// Utilization below which a computer is switched off.
    pub rho_lo: f64,
    /// Headroom factor when picking a DVFS setting (φ chosen so that
    /// capacity ≥ margin · offered load).
    pub margin: f64,
    /// Act every this many base ticks (matching the L1 period keeps the
    /// comparison fair).
    pub period_ticks: u64,
}

impl Default for ThresholdConfig {
    fn default() -> Self {
        ThresholdConfig {
            rho_hi: 0.75,
            rho_lo: 0.35,
            margin: 1.2,
            period_ticks: 4,
        }
    }
}

/// The reactive threshold heuristic the paper argues against (§1 cites
/// Pinheiro et al. and Elnozahy et al.): "the number of computers and
/// their speeds are increased (decreased) if processor utilization
/// exceeds (falls below) specified threshold values."
///
/// Per module, every `period_ticks`: estimate the offered load from the
/// last window, compute utilization against active capacity, switch one
/// computer on/off across the thresholds, split load proportional to
/// capacity, and set each active computer's frequency to the smallest
/// setting with `margin` headroom. Purely reactive — no forecasting, no
/// lookahead, no switching cost.
#[derive(Debug, Clone)]
pub struct ThresholdPolicy {
    config: ThresholdConfig,
    /// (speed, phis) per computer, grouped by module.
    members: Vec<Vec<(f64, Vec<f64>)>>,
    /// Global index of each module's first computer.
    module_base: Vec<usize>,
    c_filter: Ewma,
    module_arrivals: Vec<u64>,
    global_arrivals: u64,
    /// Number of operating computers decided at each acting tick.
    active_history: Vec<(u64, usize)>,
}

impl ThresholdPolicy {
    /// Build for a cluster layout: per module, per computer
    /// `(speed, φ-table)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty layout.
    pub fn new(config: ThresholdConfig, members: Vec<Vec<(f64, Vec<f64>)>>) -> Self {
        assert!(
            !members.is_empty() && members.iter().all(|m| !m.is_empty()),
            "layout must be non-empty"
        );
        let num_modules = members.len();
        let module_base = {
            let mut acc = 0;
            members
                .iter()
                .map(|m| {
                    let base = acc;
                    acc += m.len();
                    base
                })
                .collect()
        };
        ThresholdPolicy {
            config,
            members,
            module_base,
            c_filter: Ewma::paper_default(),
            module_arrivals: vec![0; num_modules],
            global_arrivals: 0,
            active_history: Vec::new(),
        }
    }

    /// Active-count decisions over time (comparison series for Fig. 4/6).
    pub fn active_history(&self) -> &[(u64, usize)] {
        &self.active_history
    }

    fn c_estimate(&self) -> f64 {
        let c = self.c_filter.estimate();
        if c > 0.0 {
            c
        } else {
            0.0175
        }
    }
}

impl ClusterPolicy for ThresholdPolicy {
    fn decide(&mut self, obs: &Observations) -> Vec<Action> {
        // Track service times (reference demand) and arrivals.
        for comp in &obs.computers {
            if let Some(c) = comp.mean_demand() {
                // mean_demand is machine-local; re-reference by speed.
                let j = comp.index - self.module_base[comp.module];
                let speed = self.members[comp.module][j].0;
                self.c_filter.observe(c * speed);
            }
        }
        for module in &obs.modules {
            self.module_arrivals[module.index] += module.arrivals;
            self.global_arrivals += module.arrivals;
        }
        if !obs.tick.is_multiple_of(self.config.period_ticks) {
            return Vec::new();
        }

        let mut actions = Vec::new();
        let c_ref = self.c_estimate();
        let window = self.config.period_ticks as f64 * 30.0;
        let mut total_active = 0usize;

        // Global split proportional to module capacity (the heuristic has
        // no cost model to do better).
        let module_capacity: Vec<f64> = self
            .members
            .iter()
            .map(|m| m.iter().map(|(s, _)| s / c_ref).sum())
            .collect();
        actions.push(Action::SetModuleWeights(module_capacity.clone()));

        let module_arrivals = std::mem::take(&mut self.module_arrivals);
        self.module_arrivals = vec![0; module_arrivals.len()];
        for (m, module_members) in self.members.iter().enumerate() {
            let lambda = module_arrivals[m] as f64 / window;
            let base = self.module_base[m];

            let mut active: Vec<bool> = (0..module_members.len())
                .map(|j| !matches!(obs.computers[base + j].state, PowerState::Off))
                .collect();
            let capacity = |act: &[bool]| -> f64 {
                act.iter()
                    .zip(module_members)
                    .filter(|(&a, _)| a)
                    .map(|(_, (s, _))| s / c_ref)
                    .sum::<f64>()
            };

            let mut cap = capacity(&active);
            let rho = if cap > 0.0 {
                lambda / cap
            } else {
                f64::INFINITY
            };

            if rho > self.config.rho_hi {
                // Switch on the fastest inactive computer.
                if let Some(j) = (0..module_members.len())
                    .filter(|&j| !active[j])
                    .max_by(|&a, &b| module_members[a].0.total_cmp(&module_members[b].0))
                {
                    active[j] = true;
                    actions.push(Action::PowerOn(base + j));
                }
            } else if rho < self.config.rho_lo && active.iter().filter(|&&a| a).count() > 1 {
                // Switch off the slowest active computer.
                if let Some(j) = (0..module_members.len())
                    .filter(|&j| active[j])
                    .min_by(|&a, &b| module_members[a].0.total_cmp(&module_members[b].0))
                {
                    active[j] = false;
                    actions.push(Action::PowerOff(base + j));
                }
            }
            cap = capacity(&active);
            total_active += active.iter().filter(|&&a| a).count();

            // Split proportional to capacity; DVFS with margin headroom.
            let weights: Vec<f64> = active
                .iter()
                .zip(module_members)
                .map(|(&a, (s, _))| if a { s / c_ref } else { 0.0 })
                .collect();
            actions.push(Action::SetComputerWeights(m, weights.clone()));

            for (j, (speed, phis)) in module_members.iter().enumerate() {
                if !active[j] {
                    continue;
                }
                let share = if cap > 0.0 {
                    (speed / c_ref) / cap
                } else {
                    0.0
                };
                let lambda_j = lambda * share;
                // Local demand on this machine.
                let c_local = c_ref / speed;
                let needed_phi = (lambda_j * c_local * self.config.margin).min(1.0);
                let index = phis
                    .iter()
                    .position(|&p| p >= needed_phi)
                    .unwrap_or(phis.len() - 1);
                actions.push(Action::SetFrequency(base + j, index));
            }
        }
        self.active_history.push((obs.tick, total_active));
        actions
    }

    fn name(&self) -> &str {
        "threshold-heuristic"
    }
}

/// The null baseline: every computer on at maximum frequency, load split
/// proportional to capacity. Maximum performance, maximum energy.
#[derive(Debug, Clone)]
pub struct AlwaysMaxPolicy {
    /// (speed, table length) per computer, grouped by module.
    members: Vec<Vec<(f64, usize)>>,
    initialized: bool,
}

impl AlwaysMaxPolicy {
    /// Build for a cluster layout: per module, per computer
    /// `(speed, number_of_frequency_settings)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty layout.
    pub fn new(members: Vec<Vec<(f64, usize)>>) -> Self {
        assert!(
            !members.is_empty() && members.iter().all(|m| !m.is_empty()),
            "layout must be non-empty"
        );
        AlwaysMaxPolicy {
            members,
            initialized: false,
        }
    }
}

impl ClusterPolicy for AlwaysMaxPolicy {
    fn decide(&mut self, obs: &Observations) -> Vec<Action> {
        if self.initialized {
            // Re-assert power-on for anything found off (e.g. drained).
            return obs
                .computers
                .iter()
                .filter(|c| matches!(c.state, PowerState::Off))
                .map(|c| Action::PowerOn(c.index))
                .collect();
        }
        self.initialized = true;
        let mut actions = Vec::new();
        let module_caps: Vec<f64> = self
            .members
            .iter()
            .map(|m| m.iter().map(|(s, _)| *s).sum())
            .collect();
        actions.push(Action::SetModuleWeights(module_caps));
        let mut index = 0usize;
        for (m, module) in self.members.iter().enumerate() {
            let weights: Vec<f64> = module.iter().map(|(s, _)| *s).collect();
            actions.push(Action::SetComputerWeights(m, weights));
            for (_, table_len) in module {
                actions.push(Action::PowerOn(index));
                actions.push(Action::SetFrequency(index, table_len - 1));
                index += 1;
            }
        }
        actions
    }

    fn name(&self) -> &str {
        "always-max"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ComputerObs, ModuleObs};

    fn layout() -> Vec<Vec<(f64, Vec<f64>)>> {
        vec![vec![
            (1.0, vec![0.5, 1.0]),
            (0.8, vec![0.25, 0.5, 0.75, 1.0]),
        ]]
    }

    fn obs(tick: u64, arrivals: u64, states: Vec<PowerState>) -> Observations {
        let computers = states
            .into_iter()
            .enumerate()
            .map(|(i, state)| ComputerObs {
                index: i,
                module: 0,
                queue: 0,
                window: llc_sim::WindowStats {
                    arrivals: arrivals / 2,
                    completions: 10,
                    response_sum: 5.0,
                    demand_sum: 0.175,
                    dropped: 0,
                    energy: 0.0,
                },
                state,
                frequency_index: 0,
                telemetry_ok: true,
                rejected: 0,
            })
            .collect();
        Observations {
            tick,
            time: tick as f64 * 30.0,
            computers,
            modules: vec![ModuleObs {
                index: 0,
                arrivals,
                dropped: 0,
            }],
        }
    }

    #[test]
    fn threshold_scales_up_under_load() {
        let mut p = ThresholdPolicy::new(ThresholdConfig::default(), layout());
        // Huge arrival window -> utilization far above rho_hi.
        let o = obs(0, 120 * 120, vec![PowerState::On, PowerState::Off]);
        let actions = p.decide(&o);
        assert!(
            actions.contains(&Action::PowerOn(1)),
            "must recruit the off computer: {actions:?}"
        );
    }

    #[test]
    fn threshold_scales_down_when_idle() {
        let mut p = ThresholdPolicy::new(ThresholdConfig::default(), layout());
        let o = obs(0, 10, vec![PowerState::On, PowerState::On]);
        let actions = p.decide(&o);
        assert!(
            actions.iter().any(|a| matches!(a, Action::PowerOff(_))),
            "must shed a computer: {actions:?}"
        );
    }

    #[test]
    fn threshold_acts_only_on_period() {
        let mut p = ThresholdPolicy::new(ThresholdConfig::default(), layout());
        let o = obs(1, 1000, vec![PowerState::On, PowerState::On]);
        assert!(
            p.decide(&o).is_empty(),
            "off-period ticks are observation-only"
        );
    }

    #[test]
    fn always_max_turns_everything_on_once() {
        let mut p = AlwaysMaxPolicy::new(vec![vec![(1.0, 2), (0.8, 4)]]);
        let o = obs(0, 100, vec![PowerState::Off, PowerState::Off]);
        let actions = p.decide(&o);
        assert!(actions.contains(&Action::PowerOn(0)));
        assert!(actions.contains(&Action::PowerOn(1)));
        assert!(actions.contains(&Action::SetFrequency(0, 1)));
        assert!(actions.contains(&Action::SetFrequency(1, 3)));
        // Second call with everything on: nothing to do.
        let o2 = obs(1, 100, vec![PowerState::On, PowerState::On]);
        assert!(p.decide(&o2).is_empty());
    }
}
