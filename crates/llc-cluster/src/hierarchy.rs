use crate::control::{Cadence, PolicyMetrics};
use crate::l1::{
    AbstractionMap, GEntry, L1Config, L1Controller, L1Decision, LearnSpec, MapBackend, MemberSpec,
};
use crate::l2::{L2Controller, ModuleCostModel, ModuleLearnSpec, ModuleState};
use crate::policy::{Action, ClusterPolicy, Observations};
use crate::retrain::{
    ModuleRebuildJob, RebuildContext, RebuildRecord, RetrainConfig, RetrainManager,
};
use crate::{L0Config, L0Controller, ScenarioConfig};
use llc_core::OnlineConfig;
use llc_sim::{PowerState, WindowStats};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timeout multiple of the response target charged (as slack, per
/// refused request, normalized per window second like the power term) to
/// a window in which the dispatcher's sends to a member failed. A
/// request a dead machine refuses never completes from the plant's point
/// of view — the *client* abandons it only after a timeout an order of
/// magnitude above the target (the classic ~30 s client timeout against
/// a ~4 s response goal). Left unpriced, shedding load into a crashed
/// member would *flatter* the realized books.
const DROP_TIMEOUT_FACTOR: f64 = 8.0;

/// Wall-clock overhead accounting per hierarchy level.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelOverhead {
    /// Total time spent deciding at this level.
    pub total: Duration,
    /// Number of decisions taken.
    pub decisions: u64,
}

impl LevelOverhead {
    fn record(&mut self, elapsed: Duration) {
        self.total += elapsed;
        self.decisions += 1;
    }

    /// Mean decision time, or zero before any decision.
    pub fn mean(&self) -> Duration {
        if self.decisions == 0 {
            Duration::ZERO
        } else {
            self.total / self.decisions as u32
        }
    }
}

/// Decision inputs one module's L1 tick computes in the serial prep
/// phase — everything the (possibly parallel) decide phase needs, so the
/// decide jobs touch no shared state.
struct ModulePrep {
    queues: Vec<usize>,
    active: Vec<bool>,
    dead_pos: Vec<bool>,
    live_count: usize,
    safe_mode: bool,
    /// Which member positions are powered `On` (the safe-mode split
    /// shares load over these).
    power_on: Vec<bool>,
    /// Wall time the serial prep spent on this module.
    prep: Duration,
}

/// One module's decide job: exclusive access to its own L1 controller
/// plus its prepared inputs. Jobs are disjoint, so
/// [`llc_par::par_for_each_mut`] can fan the decides out across workers
/// while each decision stays bit-identical to the serial loop.
struct DecideJob<'a> {
    l1: &'a mut L1Controller,
    prep: ModulePrep,
    out: Option<(L1Decision, Duration)>,
}

/// How the hierarchy closes its own feedback loop (the paper's Fig. 2 is
/// a *closed-loop* controller; before this mode existed the online path
/// had to be driven by harness code calling
/// [`L1Controller::record_outcome`]/[`L1Controller::learn_online`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClosedLoopMode {
    /// No realized-outcome derivation at all (zero overhead) — the
    /// default, matching the pre-closed-loop behaviour.
    #[default]
    Off,
    /// Derive realized per-member outcomes and track the prequential
    /// prediction error, but never touch the learned models. Outcomes
    /// accumulate for [`HierarchicalPolicy::drain_realized_outcomes`] so
    /// an external caller can drive the learning loop itself (the
    /// caller-driven path, kept for comparison benches and tests).
    Observe,
    /// The full closed loop: derived outcomes are recorded into each
    /// module's [`L1Controller`] and the [`L2Controller`] residual layer
    /// and absorbed every period — the hierarchy self-corrects with no
    /// harness code.
    Learn,
}

/// One realized per-member outcome derived from plant telemetry over an
/// L1 window: the operating point the member actually served at and the
/// measured [`GEntry`] it produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealizedOutcome {
    /// Module index.
    pub module: usize,
    /// Member position within the module.
    pub member: usize,
    /// Arrival rate actually routed to the member over the window
    /// (requests/second).
    pub lambda: f64,
    /// Queue at the start of the window.
    pub q0: f64,
    /// Measured outcome: average cost per L0 period, mean power drawn,
    /// end-of-window queue.
    pub entry: GEntry,
}

/// Internal closed-loop state: telemetry accumulators between slow-level
/// ticks plus the snapshots that anchor each realized outcome to the
/// operating point its decision was taken at.
#[derive(Debug)]
struct ClosedLoop {
    mode: ClosedLoopMode,
    cfg: OnlineConfig,
    /// Per-computer sum of realized per-L0-window costs over the running
    /// L1 window (`Q·slack + R·power` per window, the L0 cost function
    /// evaluated on measurements).
    cost_acc: Vec<f64>,
    /// Per-computer realized window stats over the running L1 window.
    window_acc: Vec<WindowStats>,
    /// Queue per computer at the previous L1 tick (the `q₀` the previous
    /// decision keyed its map queries on).
    q0: Vec<f64>,
    /// Whether the member was serving (α = 1, powered `On`/`Draining`)
    /// over the period that just ended — boot dead time and off periods
    /// produce no valid map outcome.
    served: Vec<bool>,
    /// Requests the dispatcher offered to the member over the running L1
    /// window that were refused (router-side count, valid through
    /// telemetry darkness). A period with refusals always produces a
    /// prequential error sample — the charged cost of the thrown-away
    /// work against whatever the maps predicted — but never a learning
    /// sample: failed sends are not service observations.
    refused: Vec<u64>,
    /// Set after the first L1 tick (the first window has no snapshot).
    have_snapshot: bool,
    /// Per-module sum of realized per-L0-window costs over the running
    /// L2 window.
    module_cost_acc: Vec<f64>,
    /// Per-module arrivals over the running L2 window.
    module_arrivals: Vec<u64>,
    /// Module states at the previous L2 tick (the key the L2 outcome is
    /// recorded at).
    l2_snapshot: Option<Vec<ModuleState>>,
    /// Prequential tracking error: `|predicted − realized|` cost summed
    /// over derived outcomes, measured against the maps *before* any
    /// update from the outcome.
    err_sum: f64,
    err_n: u64,
    /// Outcomes awaiting an external caller (Observe mode only), bounded
    /// by the configured log capacity (oldest evicted).
    pending: VecDeque<RealizedOutcome>,
}

impl ClosedLoop {
    fn new(mode: ClosedLoopMode, cfg: OnlineConfig, computers: usize, modules: usize) -> Self {
        ClosedLoop {
            mode,
            cfg,
            cost_acc: vec![0.0; computers],
            window_acc: vec![WindowStats::default(); computers],
            q0: vec![0.0; computers],
            served: vec![false; computers],
            refused: vec![0; computers],
            have_snapshot: false,
            module_cost_acc: vec![0.0; modules],
            module_arrivals: vec![0; modules],
            l2_snapshot: None,
            err_sum: 0.0,
            err_n: 0,
            pending: VecDeque::new(),
        }
    }
}

/// Knobs of the churn watchdog (see
/// [`crate::PolicyBuilder::fault_tolerance`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultToleranceConfig {
    /// Consecutive suspect observation windows (telemetry lost, or found
    /// `Off` while ordered on) before a member is declared dead and
    /// excluded from planning. The paper's base window is 30 s, so the
    /// default of 3 declares death after ~90 s of silence.
    pub suspect_after: u64,
    /// Minimum fraction of a module's *live* members that must deliver
    /// healthy telemetry for the L1 to trust its models; below it the
    /// module falls back to safe mode (everything live on, uniform split,
    /// analytic L0 queue model still running frequencies).
    pub telemetry_quorum: f64,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        FaultToleranceConfig {
            suspect_after: 3,
            telemetry_quorum: 0.5,
        }
    }
}

impl FaultToleranceConfig {
    /// Validate the knobs.
    ///
    /// # Panics
    ///
    /// Panics if `suspect_after` is zero or `telemetry_quorum` is outside
    /// `[0, 1]`.
    pub fn validated(self) -> Self {
        assert!(self.suspect_after >= 1, "suspect_after must be >= 1");
        assert!(
            (0.0..=1.0).contains(&self.telemetry_quorum),
            "telemetry_quorum must be in [0, 1]"
        );
        self
    }
}

/// Watchdog state tracking cluster membership through churn.
#[derive(Debug)]
struct FaultTolerance {
    cfg: FaultToleranceConfig,
    /// Consecutive suspect windows per computer.
    missed: Vec<u64>,
    /// Consecutive healthy-telemetry windows per computer (gates the
    /// optimistic re-probe of a crashed-and-silent machine).
    healthy: Vec<u64>,
    /// Members currently declared dead.
    dead: Vec<bool>,
    /// The α the last L1 decision wanted per computer — a machine found
    /// `Off` while wanted on has crashed, not been shed.
    wanted_on: Vec<bool>,
    /// Set on death/rejoin; consumed by the L2 (hysteresis relaxation).
    membership_changed: bool,
    deaths: u64,
    recoveries: u64,
    safe_mode_periods: u64,
    /// Safe-mode posture per module as of the last L1 tick (the
    /// current-state view behind `PolicyMetrics::safe_mode_active`).
    safe_now: Vec<bool>,
}

impl FaultTolerance {
    fn new(cfg: FaultToleranceConfig, computers: usize, modules: usize) -> Self {
        FaultTolerance {
            cfg,
            missed: vec![0; computers],
            healthy: vec![0; computers],
            dead: vec![false; computers],
            wanted_on: vec![false; computers],
            membership_changed: false,
            deaths: 0,
            recoveries: 0,
            safe_mode_periods: 0,
            safe_now: vec![false; modules],
        }
    }
}

/// Replace the freshly rebuilt map of every member flagged `keep_old`
/// with its currently installed map: a member that died between the
/// rebuild trigger and the swap fed the job telemetry poisoned by its
/// fault, so its fresh map must not be installed — it keeps the pre-fault
/// map until it rejoins and a later rebuild covers it.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub(crate) fn filter_rebuilt_maps(
    fresh: Vec<Arc<AbstractionMap>>,
    keep_old: &[bool],
    old: &[Arc<AbstractionMap>],
) -> Vec<Arc<AbstractionMap>> {
    assert_eq!(fresh.len(), keep_old.len(), "one flag per rebuilt map");
    assert_eq!(old.len(), keep_old.len(), "one installed map per member");
    fresh
        .into_iter()
        .zip(keep_old.iter().zip(old))
        .map(|(f, (&k, o))| if k { Arc::clone(o) } else { f })
        .collect()
}

/// The complete three-level controller of Fig. 2, implementing
/// [`ClusterPolicy`]: L2 splits global load over modules, each module's
/// L1 picks `{α, γ}`, each computer's L0 picks the frequency. Offline
/// learning (abstraction maps, module trees) happens in
/// [`HierarchicalPolicy::build`].
#[derive(Debug)]
pub struct HierarchicalPolicy {
    l0s: Vec<L0Controller>,
    l1s: Vec<L1Controller>,
    l2: Option<L2Controller>,
    /// Global computer indices per module.
    members: Vec<Vec<usize>>,
    /// Prior mean local processing time per module (c_factor reference).
    module_c_priors: Vec<f64>,
    /// Slow-level tick cadence (`T_L1/T_L0`, `T_L2/T_L0`), the period
    /// bookkeeping shared with the control-plane driver.
    cadence: Cadence,
    // Accumulators between slow-level ticks.
    module_arrivals_acc: Vec<u64>,
    global_arrivals_acc: u64,
    member_demand_sum: Vec<f64>,
    member_demand_n: Vec<u64>,
    // Decision histories backing the figures.
    active_history: Vec<(u64, usize)>,
    gamma_module_history: Vec<(u64, Vec<f64>)>,
    // Overhead accounting, indexed L0 = 0, L1 = 1, L2 = 2.
    overhead: [LevelOverhead; 3],
    /// L2→L1 feed-forward of the decided split (from `L2Config`).
    feed_forward: bool,
    /// Feed-forward events fired so far (metrics surface).
    feed_forward_events: u64,
    /// The split in force (tracks re-splits for the feed-forward).
    last_gamma: Option<Vec<f64>>,
    /// In-hierarchy feedback state, present once a closed-loop mode is
    /// enabled.
    closed_loop: Option<ClosedLoop>,
    /// Build context retained for retrain rebuilds (the knobs
    /// [`HierarchicalPolicy::build`] learned the original models with).
    l0_config: L0Config,
    l1_config: L1Config,
    learn: LearnSpec,
    module_learn: ModuleLearnSpec,
    map_backend: MapBackend,
    /// The retrain consumer, present once retraining is configured
    /// (see [`crate::PolicyBuilder::retrain`]).
    retrain: Option<RetrainManager>,
    /// Churn watchdog, present once fault tolerance is configured
    /// (see [`crate::PolicyBuilder::fault_tolerance`]).
    fault_tolerance: Option<FaultTolerance>,
}

impl HierarchicalPolicy {
    /// Build the full hierarchy for a scenario, running the offline
    /// learning passes (L0-model replay for every abstraction map; module
    /// simulation for every regression tree when more than one module
    /// exists).
    pub fn build(scenario: &ScenarioConfig) -> Self {
        let specs = scenario.member_specs();
        let mut l0s = Vec::new();
        let mut l1s = Vec::new();
        let mut members = Vec::new();
        let mut module_c_priors = Vec::new();
        let mut module_models = Vec::new();
        let mut next_index = 0usize;

        // Learn every member's abstraction map in one fan-out across all
        // modules — each map is an independent offline grid. The maps are
        // then *shared* (Arc) between the module cost-model learning and
        // the L1 controllers instead of deep-cloned per consumer.
        let flat_specs: Vec<&MemberSpec> = specs.iter().flatten().collect();
        let flat_maps: Vec<Arc<AbstractionMap>> = llc_par::par_map(&flat_specs, |m| {
            Arc::new(AbstractionMap::learn_for_member(
                &scenario.l0,
                m,
                scenario.learn,
                scenario.map_backend,
            ))
        });
        let mut flat_maps = flat_maps.into_iter();

        for module_specs in &specs {
            let maps: Vec<Arc<AbstractionMap>> = module_specs
                .iter()
                .map(|_| flat_maps.next().expect("one learned map per member"))
                .collect();

            if specs.len() > 1 {
                // Offered-load ceiling for the module tree: the sum of
                // member peak rates with some overload headroom.
                let capacity: f64 = module_specs.iter().map(|m| m.speed / m.c_prior).sum();
                module_models.push(ModuleCostModel::learn(
                    &scenario.l1,
                    module_specs,
                    &maps,
                    capacity * 1.3,
                    scenario.module_learn,
                ));
            }

            let indices: Vec<usize> = (next_index..next_index + module_specs.len()).collect();
            next_index += module_specs.len();
            members.push(indices);
            module_c_priors.push(
                module_specs.iter().map(|m| m.c_prior).sum::<f64>() / module_specs.len() as f64,
            );
            for m in module_specs {
                l0s.push(L0Controller::new(scenario.l0, m.phis.clone()));
            }
            l1s.push(L1Controller::new_shared(
                scenario.l1,
                module_specs.clone(),
                maps,
            ));
        }

        let l2 = if specs.len() > 1 {
            let mut controller = L2Controller::new(scenario.l2, module_models);
            // Start from a capacity-proportional split: with no workload
            // observed yet, cost cannot distinguish candidates.
            let capacities: Vec<f64> = specs
                .iter()
                .map(|module| module.iter().map(|m| m.speed / m.c_prior).sum())
                .collect();
            controller.set_initial_split(capacities);
            Some(controller)
        } else {
            None
        };

        let cadence = Cadence::from_configs(&scenario.l0, &scenario.l1, &scenario.l2);
        let num_modules = members.len();
        let num_computers = l0s.len();
        HierarchicalPolicy {
            l0s,
            l1s,
            l2,
            members,
            module_c_priors,
            cadence,
            module_arrivals_acc: vec![0; num_modules],
            global_arrivals_acc: 0,
            member_demand_sum: vec![0.0; num_computers],
            member_demand_n: vec![0; num_computers],
            active_history: Vec::new(),
            gamma_module_history: Vec::new(),
            overhead: [LevelOverhead::default(); 3],
            feed_forward: scenario.l2.feed_forward,
            feed_forward_events: 0,
            last_gamma: None,
            closed_loop: None,
            l0_config: scenario.l0,
            l1_config: scenario.l1,
            learn: scenario.learn,
            module_learn: scenario.module_learn,
            map_backend: scenario.map_backend,
            retrain: None,
            fault_tolerance: None,
        }
    }

    /// Switch on churn tolerance: a per-computer watchdog declares a
    /// member dead after [`FaultToleranceConfig::suspect_after`]
    /// consecutive suspect windows (telemetry lost, or found `Off` while
    /// ordered on). Dead members are excluded from the L1's α/γ search
    /// and receive no directives; estimators and drift detectors hold
    /// their state through telemetry gaps instead of ingesting blanks; a
    /// module below the telemetry quorum falls back to safe mode (all
    /// live members on, uniform split); the L2 relaxes its hysteresis for
    /// one decision on every membership change; and a member that died
    /// between a retrain trigger and the hot-swap keeps its pre-fault
    /// map. Without this call the policy is fault-blind: blank blackout
    /// windows and crashed machines are taken at face value.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (see
    /// [`FaultToleranceConfig::validated`]).
    #[deprecated(note = "configure via PolicyBuilder::fault_tolerance")]
    pub fn enable_fault_tolerance(&mut self, cfg: FaultToleranceConfig) {
        self.set_fault_tolerance(cfg);
    }

    pub(crate) fn set_fault_tolerance(&mut self, cfg: FaultToleranceConfig) {
        let cfg = cfg.validated();
        self.fault_tolerance = Some(FaultTolerance::new(cfg, self.l0s.len(), self.l1s.len()));
    }

    /// `true` once the churn watchdog is configured.
    pub fn fault_tolerance_enabled(&self) -> bool {
        self.fault_tolerance.is_some()
    }

    /// `true` while the watchdog considers computer `i` dead.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (with fault tolerance enabled).
    pub fn member_dead(&self, i: usize) -> bool {
        self.fault_tolerance.as_ref().is_some_and(|ft| ft.dead[i])
    }

    /// Members declared dead so far (cumulative, not current).
    pub fn member_deaths(&self) -> u64 {
        self.fault_tolerance.as_ref().map_or(0, |ft| ft.deaths)
    }

    /// Dead members that rejoined so far.
    pub fn member_recoveries(&self) -> u64 {
        self.fault_tolerance.as_ref().map_or(0, |ft| ft.recoveries)
    }

    /// Module-periods spent in safe mode (uniform split over live
    /// members) because telemetry fell below quorum or a member died with
    /// a retrain in flight.
    pub fn safe_mode_periods(&self) -> u64 {
        self.fault_tolerance
            .as_ref()
            .map_or(0, |ft| ft.safe_mode_periods)
    }

    /// Close the loop in-hierarchy: from now on the policy derives
    /// realized per-member outcomes from the plant telemetry it already
    /// receives (window response slack + energy + end queue), records
    /// them into its own L1 controllers and the L2 residual layer, and
    /// absorbs them every period — no caller-side
    /// [`L1Controller::record_outcome`]/[`L1Controller::learn_online`]
    /// required.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (see [`OnlineConfig::validated`]).
    #[deprecated(note = "configure via PolicyBuilder::closed_loop")]
    pub fn enable_closed_loop(&mut self, cfg: OnlineConfig) {
        self.set_closed_loop(cfg);
    }

    pub(crate) fn set_closed_loop(&mut self, cfg: OnlineConfig) {
        let cfg = cfg.validated();
        // Unconditional: `cfg` defines the whole loop's knobs. Re-enabling
        // an already-online controller resets its pending log and
        // detectors to the new configuration rather than silently mixing
        // an older one into the closed loop.
        for l1 in &mut self.l1s {
            l1.enable_online(cfg);
        }
        if let Some(l2) = self.l2.as_mut() {
            l2.enable_online(cfg);
        }
        self.closed_loop = Some(ClosedLoop::new(
            ClosedLoopMode::Learn,
            cfg,
            self.l0s.len(),
            self.members.len(),
        ));
    }

    /// Derive and expose realized outcomes without learning from them:
    /// the policy tracks its prequential prediction error and queues each
    /// outcome for [`HierarchicalPolicy::drain_realized_outcomes`], but
    /// never touches its learned models. This is the caller-driven
    /// feedback path (the pre-closed-loop wiring) and the offline-only
    /// control arm of the closed-loop benches.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (see [`OnlineConfig::validated`]).
    pub fn enable_outcome_tracking(&mut self, cfg: OnlineConfig) {
        self.set_outcome_tracking(cfg);
    }

    pub(crate) fn set_outcome_tracking(&mut self, cfg: OnlineConfig) {
        let cfg = cfg.validated();
        self.closed_loop = Some(ClosedLoop::new(
            ClosedLoopMode::Observe,
            cfg,
            self.l0s.len(),
            self.members.len(),
        ));
    }

    /// The closed-loop mode in force.
    pub fn closed_loop_mode(&self) -> ClosedLoopMode {
        self.closed_loop
            .as_ref()
            .map_or(ClosedLoopMode::Off, |cl| cl.mode)
    }

    /// Mean prequential tracking error of the abstraction maps against
    /// realized per-member outcomes (`|predicted − realized|` cost,
    /// measured before each outcome is absorbed), or `None` before any
    /// outcome was derived.
    pub fn tracking_error(&self) -> Option<f64> {
        let cl = self.closed_loop.as_ref()?;
        (cl.err_n > 0).then(|| cl.err_sum / cl.err_n as f64)
    }

    /// Realized outcomes derived so far.
    pub fn tracking_samples(&self) -> u64 {
        self.closed_loop.as_ref().map_or(0, |cl| cl.err_n)
    }

    /// Drain the outcomes queued in [`ClosedLoopMode::Observe`] mode
    /// (oldest first; empty in other modes — `Learn` consumes outcomes
    /// internally).
    pub fn drain_realized_outcomes(&mut self) -> Vec<RealizedOutcome> {
        self.closed_loop
            .as_mut()
            .map_or_else(Vec::new, |cl| cl.pending.drain(..).collect())
    }

    /// Online observations blended into the learned models so far,
    /// summed over every L1 and the L2.
    pub fn online_updates(&self) -> u64 {
        let l1: u64 = self.l1s.iter().map(|l| l.online_updates()).sum();
        l1 + self.l2.as_ref().map_or(0, |l2| l2.online_updates())
    }

    /// `true` once any level's drift detector reports that residuals
    /// stopped being local (see `llc_core::DriftDetector`): incremental
    /// blending is patching a model that is wrong everywhere, and an
    /// offline re-train ([`HierarchicalPolicy::build`]) should be
    /// scheduled. Consumed automatically once the retrain consumer is
    /// configured ([`crate::PolicyBuilder::retrain`]); callers driving
    /// their own rebuild should release the latch with
    /// [`HierarchicalPolicy::acknowledge_retrain`] after scheduling it.
    pub fn retrain_recommended(&self) -> bool {
        self.l1s.iter().any(|l| l.retrain_recommended())
            || self.l2.as_ref().is_some_and(|l2| l2.retrain_recommended())
    }

    /// Release the re-train latch on every level's detectors (call after
    /// scheduling a re-train by hand; a single historical drift episode
    /// must not pin the recommendation forever). The detectors keep
    /// observing and will re-latch on the next non-local episode.
    pub fn acknowledge_retrain(&mut self) {
        for l1 in &mut self.l1s {
            l1.acknowledge_retrain();
        }
        if let Some(l2) = self.l2.as_mut() {
            l2.acknowledge_retrain();
        }
    }

    /// Switch on the retrain consumer: when `retrain_recommended()`
    /// latches, a background thread rebuilds the affected modules'
    /// abstraction maps (and, in multi-module clusters, their L2 cost
    /// models) over envelopes centered on fresh drift-corrected `ĉ/ŝ`
    /// telemetry, and the hierarchy hot-swaps them in exactly one L1
    /// period later — detect → latch → rebuild → hot-swap → reset, with
    /// `cfg`'s cooldown and budget guarding against rebuild thrash.
    /// Meaningful together with [`crate::PolicyBuilder::closed_loop`]
    /// (the latch is raised by the online learning path).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (see [`RetrainConfig::validated`]).
    #[deprecated(note = "configure via PolicyBuilder::retrain")]
    pub fn enable_retrain(&mut self, cfg: RetrainConfig) {
        self.set_retrain(cfg);
    }

    pub(crate) fn set_retrain(&mut self, cfg: RetrainConfig) {
        self.retrain = Some(RetrainManager::new(cfg));
    }

    /// Background rebuilds completed and hot-swapped so far.
    pub fn retrain_rebuilds(&self) -> usize {
        self.retrain.as_ref().map_or(0, |r| r.rebuilds())
    }

    /// The completed rebuilds (trigger tick, swap tick, modules), oldest
    /// first.
    pub fn retrain_history(&self) -> &[RebuildRecord] {
        self.retrain.as_ref().map_or(&[], |r| r.history())
    }

    /// `true` while a background rebuild is in flight (spawned but not
    /// yet hot-swapped).
    pub fn retrain_pending(&self) -> bool {
        self.retrain.as_ref().is_some_and(|r| r.pending())
    }

    /// Hot-swap a finished background rebuild in, if one is ready at
    /// `tick`: install the fresh maps into the affected L1s (resetting
    /// their detectors and releasing the latch) and the fresh cost
    /// models into the L2.
    fn apply_ready_retrain(&mut self, tick: u64) {
        let Some(manager) = self.retrain.as_mut() else {
            return;
        };
        let Some(output) = manager.take_ready(tick) else {
            return;
        };
        for (m, maps) in output.maps {
            // A member that died between the trigger and this swap fed
            // the rebuild telemetry poisoned by its fault: keep its
            // installed pre-fault map and install fresh maps only for the
            // surviving membership.
            let maps = match self.fault_tolerance.as_ref() {
                Some(ft) => {
                    let keep_old: Vec<bool> = self.members[m].iter().map(|&i| ft.dead[i]).collect();
                    if keep_old.iter().any(|&k| k) {
                        let old: Vec<Arc<AbstractionMap>> = (0..keep_old.len())
                            .map(|pos| Arc::clone(self.l1s[m].map_arc(pos)))
                            .collect();
                        filter_rebuilt_maps(maps, &keep_old, &old)
                    } else {
                        maps
                    }
                }
                None => maps,
            };
            self.l1s[m].install_maps(maps);
        }
        if let Some(l2) = self.l2.as_mut() {
            for (m, model) in output.models {
                l2.install_model(m, model);
            }
        }
    }

    /// Spawn a background rebuild when the latch is up and the manager's
    /// cooldown/budget allow it. The job snapshots *effective* member
    /// processing times (`ĉ/ŝ`: demand telemetry over the drift-aware
    /// L0 capacity scale) so the rebuilt envelopes cover the capacity
    /// actually being delivered, and is joined one L1 period later.
    fn maybe_trigger_retrain(&mut self, tick: u64) {
        let Some(manager) = self.retrain.as_ref() else {
            return;
        };
        let cooldown = manager.config().cooldown_periods * self.cadence.l1_every;
        if !manager.can_trigger(tick, cooldown) {
            return;
        }
        let l2_latched: Vec<bool> = (0..self.members.len())
            .map(|m| {
                self.l2
                    .as_ref()
                    .is_some_and(|l2| l2.module_retrain_recommended(m))
            })
            .collect();
        let affected: Vec<usize> = (0..self.members.len())
            .filter(|&m| self.l1s[m].retrain_recommended() || l2_latched[m])
            .collect();
        if affected.is_empty() {
            return;
        }
        let has_l2 = self.l2.is_some();
        let jobs: Vec<ModuleRebuildJob> = affected
            .iter()
            .map(|&m| {
                let cs = self.l1s[m].c_estimates();
                let specs: Vec<MemberSpec> = self.l1s[m]
                    .member_specs()
                    .iter()
                    .zip(&cs)
                    .map(|(spec, &c_eff)| MemberSpec {
                        phis: spec.phis.clone(),
                        speed: spec.speed,
                        c_prior: c_eff,
                    })
                    .collect();
                // Re-estimate each member's learning envelope from the
                // ranges its observation log actually visited: headroom
                // (×1.5 on λ, ×2 on q₀) above the visited ceiling,
                // floored so the overload knee (capacity ≈ 1/ĉ_eff)
                // always stays inside the grid, capped at the static
                // envelope. Same grid steps over a tighter box = finer
                // cells exactly where the traffic lives. Members with no
                // recorded outcomes keep the static envelope.
                let envelopes: Vec<((f64, f64), f64, f64)> = specs
                    .iter()
                    .enumerate()
                    .map(|(pos, spec)| {
                        let (c_range, lambda_default, q_default) = spec.learn_envelope();
                        match self.l1s[m].visited_envelope(pos) {
                            Some((lambda_vis, q_vis)) => {
                                let lambda_floor = 1.25 / spec.c_prior;
                                let lambda_max =
                                    (lambda_vis * 1.5).clamp(lambda_floor, lambda_default);
                                let q_max = (q_vis * 2.0).clamp(25.0, q_default);
                                (c_range, lambda_max, q_max)
                            }
                            None => (c_range, lambda_default, q_default),
                        }
                    })
                    .collect();
                let old_maps: Vec<Arc<AbstractionMap>> = (0..specs.len())
                    .map(|pos| Arc::clone(self.l1s[m].map_arc(pos)))
                    .collect();
                ModuleRebuildJob {
                    module: m,
                    specs,
                    envelopes,
                    old_maps,
                    rebuild_model: has_l2,
                }
            })
            .collect();
        let ctx = RebuildContext {
            l0: self.l0_config,
            l1: self.l1_config,
            learn: self.learn,
            module_learn: self.module_learn,
            backend: self.map_backend,
        };
        self.retrain.as_mut().expect("checked above").spawn(
            jobs,
            ctx,
            tick,
            tick + self.cadence.l1_every,
        );
    }

    /// Number of computers managed.
    pub fn num_computers(&self) -> usize {
        self.l0s.len()
    }

    /// Number of modules managed.
    pub fn num_modules(&self) -> usize {
        self.l1s.len()
    }

    /// The topology: global computer indices per module — what a
    /// [`crate::ControlPlane`] routes observations by.
    pub fn module_members(&self) -> &[Vec<usize>] {
        &self.members
    }

    /// Number of operating (α = 1) computers decided at each L1 tick —
    /// the series plotted in Fig. 4 (module) and Fig. 6 (cluster).
    pub fn active_history(&self) -> &[(u64, usize)] {
        &self.active_history
    }

    /// The module split `{γ_i}` decided at each L2 tick — Fig. 7.
    pub fn gamma_module_history(&self) -> &[(u64, Vec<f64>)] {
        &self.gamma_module_history
    }

    /// The L1 controller of module `m` (forecast history, overhead).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn l1(&self, m: usize) -> &L1Controller {
        &self.l1s[m]
    }

    /// Mutable access to the L1 controller of module `m` — the
    /// caller-driven feedback path: enable online learning and replay
    /// outcomes drained via
    /// [`HierarchicalPolicy::drain_realized_outcomes`].
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn l1_mut(&mut self, m: usize) -> &mut L1Controller {
        &mut self.l1s[m]
    }

    /// The L2 controller, if the scenario has multiple modules.
    pub fn l2(&self) -> Option<&L2Controller> {
        self.l2.as_ref()
    }

    /// The L0 controller of computer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn l0(&self, i: usize) -> &L0Controller {
        &self.l0s[i]
    }

    /// Per-level wall-clock overhead, indexed `[L0, L1, L2]`.
    pub fn overhead(&self) -> &[LevelOverhead; 3] {
        &self.overhead
    }

    /// The §5.2 overhead metric: mean execution time along one hierarchy
    /// path (one L2 + one L1 + one L0 decision).
    pub fn path_overhead(&self) -> Duration {
        self.overhead[0].mean() + self.overhead[1].mean() + self.overhead[2].mean()
    }
}

impl ClusterPolicy for HierarchicalPolicy {
    fn decide(&mut self, obs: &Observations) -> Vec<Action> {
        let mut actions = Vec::new();

        // --- Watchdog: track membership through churn (fault tolerance
        // only). A window is suspect when its telemetry was lost or the
        // machine is found `Off` while the last decision wanted it on (a
        // crash, not a shed). `suspect_after` consecutive suspect windows
        // declare the member dead; a dead member rejoins when it is seen
        // powered with healthy telemetry again, and a dead-and-silent
        // `Off` machine is optimistically re-probed after a long healthy
        // streak (a truly crashed machine refuses the power-on and is
        // re-declared dead one `suspect_after` later, at no request loss
        // because boot rerouting never assigns weight to an `Off`
        // machine).
        if let Some(ft) = self.fault_tolerance.as_mut() {
            for comp in &obs.computers {
                let i = comp.index;
                if comp.telemetry_ok {
                    ft.healthy[i] += 1;
                } else {
                    ft.healthy[i] = 0;
                }
                if !ft.dead[i] {
                    let suspect = !comp.telemetry_ok
                        || (ft.wanted_on[i] && matches!(comp.state, PowerState::Off));
                    if suspect {
                        ft.missed[i] += 1;
                        if ft.missed[i] >= ft.cfg.suspect_after {
                            ft.dead[i] = true;
                            ft.wanted_on[i] = false;
                            ft.membership_changed = true;
                            ft.deaths += 1;
                        }
                    } else {
                        ft.missed[i] = 0;
                    }
                } else {
                    let rejoined = comp.telemetry_ok && !matches!(comp.state, PowerState::Off);
                    let probe = comp.telemetry_ok
                        && matches!(comp.state, PowerState::Off)
                        && ft.healthy[i] >= 2 * ft.cfg.suspect_after;
                    if rejoined {
                        ft.dead[i] = false;
                        ft.missed[i] = 0;
                        ft.membership_changed = true;
                        ft.recoveries += 1;
                    } else if probe {
                        // Silent clear: the next L1 decision may recruit
                        // it. Not a rejoin yet — no hysteresis relaxation.
                        ft.dead[i] = false;
                        ft.missed[i] = 0;
                        ft.healthy[i] = 0;
                    }
                }
            }
        }
        let ft_on = self.fault_tolerance.is_some();

        // Accumulate windows and feed the per-computer forecasters —
        // including the delivery-side evidence for the drift-aware scale
        // estimators (inert unless the scenario enables them): a window
        // counts as capacity evidence only if the machine was powered
        // and still backlogged at the sampling instant, the condition
        // under which completions/T measures service rate rather than
        // throughput.
        for comp in &obs.computers {
            if ft_on && !comp.telemetry_ok {
                // Blackout window: the blanks are absence of evidence,
                // not evidence of silence. Estimators and drift detectors
                // hold their state through the gap. (Fault-blind
                // controllers ingest the blanks at face value.)
                continue;
            }
            let mut demand = comp.window.mean_demand();
            if ft_on {
                // Plausibility gate for noisy sensors: a window whose
                // mean demand lands far outside the member's running ĉ
                // is a corrupted reading, not evidence — drop the sample
                // and let the estimator coast. (Genuine drift moves ĉ by
                // percent per window, never by 2.5x in one.)
                if let (Some(c), reference) = (demand, self.l0s[comp.index].c_estimate()) {
                    if reference > 0.0 && !(0.4..=2.5).contains(&(c / reference)) {
                        demand = None;
                    }
                }
            }
            self.l0s[comp.index].observe(comp.window.arrivals, demand);
            let busy =
                comp.queue > 0 && matches!(comp.state, PowerState::On | PowerState::Draining);
            self.l0s[comp.index].observe_service(
                comp.window.completions,
                busy,
                comp.frequency_index,
            );
            if let Some(c) = demand {
                self.member_demand_sum[comp.index] += c;
                self.member_demand_n[comp.index] += 1;
            }
        }
        for module in &obs.modules {
            self.module_arrivals_acc[module.index] += module.arrivals;
            self.global_arrivals_acc += module.arrivals;
        }

        // Closed loop, step 1: fold the realized window into the running
        // L1/L2 accumulators. The realized per-window cost is the L0 cost
        // function (eq. 6–7) evaluated on measurements instead of model
        // predictions — and it must use the *same functional* the model
        // uses: the response implied by the end-of-window queue at the
        // *service rate*, `r = (1 + q_end) / μ̂`, not the mean response of
        // the window's completions. (In a backlog-drain window the
        // completions' mean response reflects waits accrued under an
        // earlier decision, while the model charges each period its
        // end-state response — mixing the two would make every drain
        // window look like drift.) `completions / T_L0` estimates the
        // service rate only while the server stays busy; with an empty
        // end queue it measures throughput instead (λ, not μ), which
        // would charge an almost-idle member enormous phantom slack. So
        // slack evidence is only taken from windows that end backlogged —
        // exactly the windows where the model's own slack is non-trivial
        // (at q_end = 0 the model's response is ĉ/φ, far under r*).
        if let Some(cl) = self.closed_loop.as_mut() {
            for comp in &obs.computers {
                let cfg = self.l0s[comp.index].config();
                // Router-side drop charge, folded *before* the telemetry
                // gate: the dispatcher's failed sends are valid telemetry
                // even when the target machine is dark. A refused request
                // never completes — charge each one a timeout's worth of
                // slack, normalized per window second like the power
                // term. Without this charge, routing traffic into a dead
                // machine *improves* the realized books (the drops
                // vanish from the accounting and the relieved survivors
                // look beautifully modeled) — exactly the failure mode a
                // fault-blind controller must not get credit for. Both
                // arms pay it: the watchdog'd hierarchy for its honest
                // detection latency, the blind one for as long as it
                // keeps shoveling work into the void.
                if comp.rejected > 0 {
                    let drop_slack =
                        comp.rejected as f64 * DROP_TIMEOUT_FACTOR * cfg.response_target
                            / cfg.period;
                    let charge = cfg.q_weight * drop_slack;
                    cl.cost_acc[comp.index] += charge;
                    cl.module_cost_acc[comp.module] += charge;
                    cl.refused[comp.index] += comp.rejected;
                }
                if ft_on && !comp.telemetry_ok {
                    // A window with a telemetry gap cannot anchor a valid
                    // realized outcome: poison this member's running L1
                    // window rather than folding blanks into it.
                    cl.served[comp.index] = false;
                    continue;
                }
                let slack = if comp.queue > 0 && comp.window.completions > 0 {
                    let r_implied =
                        (1.0 + comp.queue as f64) * cfg.period / comp.window.completions as f64;
                    (r_implied - cfg.response_target).max(0.0)
                } else {
                    // Drained or silent window: the divisor would
                    // measure throughput rather than service rate, and
                    // the model's own slack at an empty queue is ~0 —
                    // charge none.
                    0.0
                };
                let power = comp.window.mean_power(cfg.period);
                let cost = cfg.q_weight * slack + cfg.r_weight * power;
                cl.cost_acc[comp.index] += cost;
                cl.window_acc[comp.index].absorb(&comp.window);
                cl.module_cost_acc[comp.module] += cost;
            }
            for module in &obs.modules {
                cl.module_arrivals[module.index] += module.arrivals;
            }
        }

        // --- L2: split global load over modules (top-down first). ---
        if self.cadence.is_l2_tick(obs.tick) {
            if let Some(l2) = self.l2.as_mut() {
                let started = Instant::now();
                l2.observe(self.global_arrivals_acc);
                self.global_arrivals_acc = 0;

                // Closed loop, L2 leg: the realized per-L1-period cost of
                // each module over the window that just ended, recorded
                // at the state the previous decision split against, then
                // absorbed into the residual layer before this decision
                // consults the models.
                if let Some(cl) = self.closed_loop.as_mut() {
                    if let (ClosedLoopMode::Learn, Some(snapshot)) =
                        (cl.mode, cl.l2_snapshot.as_ref())
                    {
                        let period = self.cadence.l2_every as f64 * self.l0s[0].config().period;
                        for (m, state) in snapshot.iter().enumerate() {
                            let lambda = cl.module_arrivals[m] as f64 / period;
                            let realized = cl.module_cost_acc[m] * self.cadence.l1_every as f64
                                / self.cadence.l2_every as f64;
                            l2.record_outcome(m, lambda, *state, realized);
                        }
                        l2.learn_online();
                    }
                    cl.module_cost_acc.iter_mut().for_each(|c| *c = 0.0);
                    cl.module_arrivals.iter_mut().for_each(|a| *a = 0);
                }

                // Membership changed since the last L2 decision: the
                // previous split is stale evidence, so enumerate the full
                // simplex once and skip the switching margin.
                if let Some(ft) = self.fault_tolerance.as_mut() {
                    if std::mem::take(&mut ft.membership_changed) {
                        l2.relax_hysteresis_once();
                    }
                }
                let dead = self.fault_tolerance.as_ref().map(|ft| &ft.dead);
                let states: Vec<ModuleState> = (0..self.members.len())
                    .map(|m| {
                        let qs: f64 = self.members[m]
                            .iter()
                            .map(|&i| obs.computers[i].queue as f64)
                            .sum();
                        // Dead members are not planned capacity, whatever
                        // their plant state claims.
                        let active = self.members[m]
                            .iter()
                            .filter(|&&i| {
                                !matches!(obs.computers[i].state, PowerState::Off)
                                    && !dead.is_some_and(|d| d[i])
                            })
                            .count();
                        ModuleState {
                            c_factor: self.l1s[m].module_c_estimate() / self.module_c_priors[m],
                            queue_mean: qs / self.members[m].len() as f64,
                            active,
                        }
                    })
                    .collect();
                let decision = l2.decide(&states);
                if let Some(cl) = self.closed_loop.as_mut() {
                    cl.l2_snapshot = Some(states);
                }

                // Feed the decided split forward into each re-split
                // module's λ forecast: the module's own trailing forecast
                // only sees the new share a full period (one boot dead
                // time) late, which is exactly the lag the L1/L2
                // oscillation feeds on.
                if self.feed_forward {
                    let lambda_g = l2.lambda_estimate();
                    if let Some(prev) = &self.last_gamma {
                        for (m, (&new, &old)) in decision.gamma.iter().zip(prev.iter()).enumerate()
                        {
                            if (new - old).abs() > 1e-9 {
                                self.l1s[m].feed_forward_lambda(new * lambda_g);
                                self.feed_forward_events += 1;
                            }
                        }
                    }
                }
                self.last_gamma = Some(decision.gamma.clone());

                self.gamma_module_history
                    .push((obs.tick, decision.gamma.clone()));
                actions.push(Action::SetModuleWeights(decision.gamma));
                self.overhead[2].record(started.elapsed());
            } else {
                self.global_arrivals_acc = 0;
                // No L2 (single-module scenario): the global dispatcher
                // still needs weights once, or a cold-started cluster
                // drops everything at the top-level router.
                if obs.tick == 0 {
                    actions.push(Action::SetModuleWeights(vec![1.0]));
                }
            }
        }

        // --- L1: per-module α and γ. ---
        if self.cadence.is_l1_tick(obs.tick) {
            // Hot-swap a finished background rebuild in *before* this
            // round of decisions, so the fresh maps serve immediately.
            self.apply_ready_retrain(obs.tick);

            // Phase A (serial): per-module observation plumbing, closed
            // loop measurement/learning, and decision inputs. This leg
            // mutates shared state (filters, outcome logs, maps), so it
            // stays ordered.
            let mut preps: Vec<ModulePrep> = Vec::with_capacity(self.members.len());
            for m in 0..self.members.len() {
                let started = Instant::now();
                // Push the drift-aware L0s' capacity scales up: this
                // module's map queries, outcome keys and capacity shares
                // all run at the effective processing time ĉ/ŝ.
                let scales: Vec<f64> = self.members[m]
                    .iter()
                    .map(|&i| self.l0s[i].scale_estimate())
                    .collect();
                self.l1s[m].set_member_scales(&scales);
                let demands: Vec<Option<f64>> = self.members[m]
                    .iter()
                    .map(|&i| {
                        if self.member_demand_n[i] > 0 {
                            Some(self.member_demand_sum[i] / self.member_demand_n[i] as f64)
                        } else {
                            None
                        }
                    })
                    .collect();
                self.l1s[m].observe(self.module_arrivals_acc[m], &demands);
                self.module_arrivals_acc[m] = 0;
                for &i in &self.members[m] {
                    self.member_demand_sum[i] = 0.0;
                    self.member_demand_n[i] = 0;
                }

                // Closed loop, L1 leg: turn the window that just ended
                // into one realized GEntry per serving member — the rate
                // actually routed, the measured cost/power, the queue
                // left behind — measure the prequential prediction error,
                // and (in Learn mode) absorb the outcomes into this
                // module's abstraction maps before deciding on them.
                if let Some(cl) = self.closed_loop.as_mut() {
                    if cl.have_snapshot {
                        let period = self.cadence.l1_every as f64 * self.l0s[0].config().period;
                        let cs = self.l1s[m].c_estimates();
                        for (pos, &i) in self.members[m].iter().enumerate() {
                            // A period in which the dispatcher's sends to
                            // this member failed is always measured (the
                            // charged cost of the thrown-away work,
                            // against whatever the maps predicted), even
                            // when the member itself never validly
                            // served — but it is never *learned from*:
                            // failed sends are not service observations,
                            // and absorbing the charge into the maps
                            // would let a controller predict its own
                            // dropped traffic and call that tracking.
                            let refused = cl.refused[i] > 0;
                            if !cl.served[i] && !refused {
                                continue;
                            }
                            let lambda = cl.window_acc[i].arrivals as f64 / period;
                            let entry = GEntry {
                                cost: cl.cost_acc[i] / self.cadence.l1_every as f64,
                                power: cl.window_acc[i].energy / period,
                                final_q: obs.computers[i].queue as f64,
                            };
                            let predicted =
                                self.l1s[m].map(pos).query(lambda, cs[pos], cl.q0[i]).cost;
                            cl.err_sum += (predicted - entry.cost).abs();
                            cl.err_n += 1;
                            if refused {
                                continue;
                            }
                            match cl.mode {
                                ClosedLoopMode::Learn => {
                                    self.l1s[m].record_outcome(pos, lambda, cl.q0[i], entry);
                                }
                                ClosedLoopMode::Observe => {
                                    if cl.pending.len() >= cl.cfg.log_capacity {
                                        cl.pending.pop_front();
                                    }
                                    cl.pending.push_back(RealizedOutcome {
                                        module: m,
                                        member: pos,
                                        lambda,
                                        q0: cl.q0[i],
                                        entry,
                                    });
                                }
                                ClosedLoopMode::Off => {}
                            }
                        }
                        if cl.mode == ClosedLoopMode::Learn {
                            self.l1s[m].learn_online();
                        }
                    }
                }

                let queues: Vec<usize> = self.members[m]
                    .iter()
                    .map(|&i| obs.computers[i].queue)
                    .collect();
                let active: Vec<bool> = self.members[m]
                    .iter()
                    .map(|&i| !matches!(obs.computers[i].state, PowerState::Off))
                    .collect();
                let dead_pos: Vec<bool> = match self.fault_tolerance.as_ref() {
                    Some(ft) => self.members[m].iter().map(|&i| ft.dead[i]).collect(),
                    None => vec![false; self.members[m].len()],
                };
                let live_count = dead_pos.iter().filter(|&&d| !d).count();
                // Safe mode: when too few live members deliver healthy
                // telemetry for the learned models to be trusted, or a
                // member died with a rebuild in flight, stop optimizing
                // and hold the module in its analytically safe posture —
                // every live member on, load split uniformly over those
                // actually serving. The L0s' analytic queue models keep
                // picking frequencies underneath.
                let safe_mode = ft_on && live_count > 0 && {
                    let healthy = self.members[m]
                        .iter()
                        .enumerate()
                        .filter(|&(pos, &i)| !dead_pos[pos] && obs.computers[i].telemetry_ok)
                        .count();
                    let quorum = self
                        .fault_tolerance
                        .as_ref()
                        .expect("ft_on")
                        .cfg
                        .telemetry_quorum;
                    let any_dead = dead_pos.iter().any(|&d| d);
                    ((healthy as f64) < quorum * live_count as f64)
                        || (any_dead && self.retrain.as_ref().is_some_and(|r| r.pending()))
                };
                if let Some(ft) = self.fault_tolerance.as_mut() {
                    ft.safe_now[m] = safe_mode;
                }
                let power_on: Vec<bool> = self.members[m]
                    .iter()
                    .map(|&i| matches!(obs.computers[i].state, PowerState::On))
                    .collect();
                preps.push(ModulePrep {
                    queues,
                    active,
                    dead_pos,
                    live_count,
                    safe_mode,
                    power_on,
                    prep: started.elapsed(),
                });
            }

            // Phase B: the per-module decides — the dominant L1 cost —
            // fan out over the shared worker pool. Each job owns
            // disjoint state (its own controller, its own inputs), so
            // every decision is bit-identical to the serial loop at any
            // worker count; a single-worker pool runs them inline.
            let mut jobs: Vec<DecideJob<'_>> = self
                .l1s
                .iter_mut()
                .zip(preps)
                .map(|(l1, prep)| DecideJob {
                    l1,
                    prep,
                    out: None,
                })
                .collect();
            llc_par::par_for_each_mut(&mut jobs, |job| {
                let started = Instant::now();
                let p = &job.prep;
                let decision = if p.live_count == 0 {
                    // Every member is dead: nothing to decide, route and
                    // order nothing, wait for a rejoin.
                    L1Decision {
                        alpha: vec![false; p.dead_pos.len()],
                        gamma: vec![0.0; p.dead_pos.len()],
                        expected_cost: f64::INFINITY,
                        states_evaluated: 0,
                        candidates_evaluated: 0,
                        candidates_pruned: 0,
                    }
                } else if p.safe_mode {
                    let alpha: Vec<bool> = p.dead_pos.iter().map(|&d| !d).collect();
                    let serving: Vec<usize> = (0..alpha.len())
                        .filter(|&pos| !p.dead_pos[pos] && p.power_on[pos])
                        .collect();
                    let share_set: Vec<usize> = if serving.is_empty() {
                        (0..alpha.len()).filter(|&pos| !p.dead_pos[pos]).collect()
                    } else {
                        serving
                    };
                    let mut gamma = vec![0.0; alpha.len()];
                    for &pos in &share_set {
                        gamma[pos] = 1.0 / share_set.len() as f64;
                    }
                    L1Decision {
                        alpha,
                        gamma,
                        expected_cost: f64::INFINITY,
                        states_evaluated: 0,
                        candidates_evaluated: 0,
                        candidates_pruned: 0,
                    }
                } else if ft_on {
                    job.l1
                        .decide_excluding(&job.prep.queues, &job.prep.active, &job.prep.dead_pos)
                } else {
                    job.l1.decide(&job.prep.queues, &job.prep.active)
                };
                job.out = Some((decision, started.elapsed()));
            });

            // Phase C (serial, module order): merge. Invariant checks,
            // fault-tolerance bookkeeping, closed-loop anchoring, power
            // and routing actions — deterministic regardless of how
            // phase B was scheduled. Consuming the jobs also releases
            // the controller borrows for the retrain trigger below.
            let merged: Vec<(ModulePrep, L1Decision, Duration)> = jobs
                .into_iter()
                .map(|job| {
                    let (decision, spent) = job.out.expect("phase B decided every module");
                    (job.prep, decision, spent)
                })
                .collect();
            let mut total_active = 0usize;
            for (m, (prep, decision, decide_time)) in merged.into_iter().enumerate() {
                let started = Instant::now();
                let ModulePrep {
                    active,
                    dead_pos,
                    live_count,
                    safe_mode,
                    prep: prep_time,
                    ..
                } = prep;
                if safe_mode {
                    self.fault_tolerance
                        .as_mut()
                        .expect("ft_on")
                        .safe_mode_periods += 1;
                }
                // Membership invariants: a dead member gets no load and
                // the live shares form a full split.
                debug_assert!(
                    decision
                        .gamma
                        .iter()
                        .zip(&dead_pos)
                        .all(|(&g, &d)| !d || g == 0.0),
                    "γ routed to a dead member"
                );
                debug_assert!(
                    live_count == 0 || (decision.gamma.iter().sum::<f64>() - 1.0).abs() < 1e-6,
                    "live shares must sum to 1, got {:?}",
                    decision.gamma
                );
                if let Some(ft) = self.fault_tolerance.as_mut() {
                    for (pos, &i) in self.members[m].iter().enumerate() {
                        ft.wanted_on[i] = !dead_pos[pos] && decision.alpha[pos];
                    }
                }

                // Closed loop: anchor the coming window to the operating
                // point this decision was taken at. Only members that can
                // actually serve the period (α = 1 and powered, not mid
                // boot) produce a valid map outcome — boot dead time and
                // off periods would poison the cells.
                if let Some(cl) = self.closed_loop.as_mut() {
                    for (pos, &i) in self.members[m].iter().enumerate() {
                        cl.q0[i] = obs.computers[i].queue as f64;
                        cl.cost_acc[i] = 0.0;
                        cl.window_acc[i] = WindowStats::default();
                        cl.refused[i] = 0;
                        cl.served[i] = decision.alpha[pos]
                            && matches!(
                                obs.computers[i].state,
                                PowerState::On | PowerState::Draining
                            );
                    }
                }

                for (pos, &i) in self.members[m].iter().enumerate() {
                    if dead_pos[pos] {
                        // No directives for a dead member: a crashed
                        // machine ignores them, and a blackout-dead one
                        // must not be drained just because its telemetry
                        // went dark — it rejoins untouched.
                        continue;
                    }
                    let draining = matches!(obs.computers[i].state, PowerState::Draining);
                    if decision.alpha[pos] && (!active[pos] || draining) {
                        // PowerOn also recovers a draining machine to On —
                        // without it the machine would keep rejecting the
                        // load share assigned to it.
                        actions.push(Action::PowerOn(i));
                    } else if !decision.alpha[pos] && active[pos] && !draining {
                        actions.push(Action::PowerOff(i));
                    }
                }
                total_active += decision.alpha.iter().filter(|&&a| a).count();

                // A machine ordered on right now boots for the whole
                // coming period (the dead time equals T_L1): routing its γ
                // share to it would just hoard requests behind the boot.
                // Serve this period with the machines that can actually
                // serve; the newcomer picks up load at the next L1 tick.
                let mut routed = decision.gamma.clone();
                let mut reroute = false;
                for (pos, &i) in self.members[m].iter().enumerate() {
                    let can_serve = decision.alpha[pos]
                        && matches!(
                            obs.computers[i].state,
                            PowerState::On | PowerState::Draining
                        );
                    if !can_serve && routed[pos] > 0.0 {
                        routed[pos] = 0.0;
                        reroute = true;
                    }
                }
                let routable: f64 = routed.iter().sum();
                if reroute && routable <= 0.0 {
                    // Everything assigned was booting. Serve this period
                    // with whatever is actually running — even a machine
                    // the split left at zero — because weight on a booting
                    // machine just hoards a period of arrivals behind its
                    // dead time. Only a module with nothing running at all
                    // (cold start) keeps the decided split.
                    let serving: Vec<usize> = (0..routed.len())
                        .filter(|&pos| {
                            let i = self.members[m][pos];
                            decision.alpha[pos] && matches!(obs.computers[i].state, PowerState::On)
                        })
                        .collect();
                    if serving.is_empty() {
                        routed = decision.gamma.clone();
                    } else {
                        for &pos in &serving {
                            routed[pos] = 1.0 / serving.len() as f64;
                        }
                    }
                }
                debug_assert!(
                    routed.iter().zip(&dead_pos).all(|(&g, &d)| !d || g == 0.0),
                    "routed weight on a dead member"
                );
                actions.push(Action::SetComputerWeights(m, routed));
                // One record per module per L1 tick, as before: the
                // module's serial prep + its own decide time (not the
                // phase's wall clock) + its merge leg.
                self.overhead[1].record(prep_time + decide_time + started.elapsed());
            }
            self.active_history.push((obs.tick, total_active));
            if let Some(cl) = self.closed_loop.as_mut() {
                cl.have_snapshot = true;
            }
            // The learning passes above may have pushed a detector over
            // its locality threshold: consume the latch by spawning the
            // background rebuild (joined one L1 period from now).
            self.maybe_trigger_retrain(obs.tick);
        }

        // --- L0: per-computer frequency, every tick, active machines. ---
        for comp in &obs.computers {
            if matches!(comp.state, PowerState::Off) {
                continue;
            }
            if let Some(ft) = self.fault_tolerance.as_ref() {
                // A dead member takes no directives; a blacked-out one
                // reported a blank queue that must not drive its DVFS.
                if ft.dead[comp.index] || !comp.telemetry_ok {
                    continue;
                }
            }
            let started = Instant::now();
            let decision = self.l0s[comp.index]
                .decide(comp.queue)
                .expect("frequency table is non-empty");
            self.overhead[0].record(started.elapsed());
            if decision.frequency_index != comp.frequency_index {
                actions.push(Action::SetFrequency(comp.index, decision.frequency_index));
            }
        }

        actions
    }

    fn name(&self) -> &str {
        "hierarchical-llc"
    }

    fn cadence(&self) -> Cadence {
        self.cadence
    }

    fn metrics(&self) -> PolicyMetrics {
        PolicyMetrics {
            online_updates: self.online_updates(),
            map_drift_detections: self
                .l1s
                .iter()
                .map(|l| l.member_drift_detections())
                .collect(),
            model_drift_detections: self
                .l2
                .as_ref()
                .map_or_else(Vec::new, |l2| l2.module_drift_detections()),
            tracking_error: self.tracking_error(),
            tracking_samples: self.tracking_samples(),
            retrain_triggers: self.retrain.as_ref().map_or(0, |r| r.triggers()),
            rebuilds: self.retrain.as_ref().map_or(0, |r| r.rebuilds() as u64),
            retrain_pending: self.retrain_pending(),
            member_deaths: self.member_deaths(),
            member_recoveries: self.member_recoveries(),
            members_dead: self
                .fault_tolerance
                .as_ref()
                .map_or_else(Vec::new, |ft| ft.dead.clone()),
            safe_mode_periods: self.safe_mode_periods(),
            safe_mode_active: self
                .fault_tolerance
                .as_ref()
                .map_or_else(Vec::new, |ft| ft.safe_now.clone()),
            feed_forward_events: self.feed_forward_events,
            level_overhead: self.overhead,
            l1_candidates_evaluated: self.l1s.iter().map(|l| l.candidates_evaluated()).sum(),
            l1_candidates_pruned: self.l1s.iter().map(|l| l.candidates_pruned()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ComputerObs, ModuleObs};
    use crate::single_module;

    fn obs_for(policy: &HierarchicalPolicy, tick: u64, arrivals_per_comp: u64) -> Observations {
        let n = policy.num_computers();
        let computers = (0..n)
            .map(|i| ComputerObs {
                index: i,
                module: 0,
                queue: 0,
                window: WindowStats {
                    arrivals: arrivals_per_comp,
                    completions: arrivals_per_comp,
                    response_sum: 0.1 * arrivals_per_comp as f64,
                    demand_sum: 0.0175 * arrivals_per_comp as f64,
                    dropped: 0,
                    energy: 1.75 * 30.0,
                },
                state: PowerState::On,
                frequency_index: 0,
                telemetry_ok: true,
                rejected: 0,
            })
            .collect();
        Observations {
            tick,
            time: tick as f64 * 30.0,
            computers,
            modules: vec![ModuleObs {
                index: 0,
                arrivals: arrivals_per_comp * n as u64,
                dropped: 0,
            }],
        }
    }

    #[test]
    fn build_matches_scenario_shape() {
        let scenario = single_module(4).with_coarse_learning();
        let policy = HierarchicalPolicy::build(&scenario);
        assert_eq!(policy.num_computers(), 4);
        assert_eq!(policy.num_modules(), 1);
        assert!(policy.l2().is_none(), "single module has no L2");
        assert_eq!(policy.overhead()[0].decisions, 0);
    }

    #[test]
    fn first_tick_sets_global_weights_for_single_module() {
        let scenario = single_module(2).with_coarse_learning();
        let mut policy = HierarchicalPolicy::build(&scenario);
        let actions = policy.decide(&obs_for(&policy, 0, 100));
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::SetModuleWeights(w) if w == &vec![1.0])),
            "tick 0 must set the global dispatch weights: {actions:?}"
        );
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::SetComputerWeights(0, _))),
            "tick 0 must set the module's computer weights"
        );
    }

    #[test]
    fn l1_fires_only_on_its_period() {
        let scenario = single_module(2).with_coarse_learning();
        let mut policy = HierarchicalPolicy::build(&scenario);
        let _ = policy.decide(&obs_for(&policy, 0, 100));
        assert_eq!(policy.active_history().len(), 1);
        // Ticks 1-3: no L1 decision.
        for t in 1..4 {
            let _ = policy.decide(&obs_for(&policy, t, 100));
            assert_eq!(policy.active_history().len(), 1, "tick {t}");
        }
        let _ = policy.decide(&obs_for(&policy, 4, 100));
        assert_eq!(policy.active_history().len(), 2);
    }

    #[test]
    fn overhead_counters_accumulate() {
        let scenario = single_module(2).with_coarse_learning();
        let mut policy = HierarchicalPolicy::build(&scenario);
        for t in 0..8 {
            let _ = policy.decide(&obs_for(&policy, t, 200));
        }
        let overhead = policy.overhead();
        assert_eq!(overhead[1].decisions, 2, "two L1 periods in 8 ticks");
        assert_eq!(overhead[0].decisions, 16, "2 computers x 8 ticks of L0");
        assert!(policy.path_overhead() > Duration::ZERO);
        assert_eq!(policy.name(), "hierarchical-llc");
    }

    fn blackout(obs: &mut Observations, i: usize) {
        obs.computers[i].telemetry_ok = false;
        obs.computers[i].window = WindowStats::default();
        obs.computers[i].queue = 0;
    }

    #[test]
    fn watchdog_declares_blacked_out_member_dead_then_recovers_it() {
        let scenario = single_module(2).with_coarse_learning();
        let mut policy = HierarchicalPolicy::build(&scenario);
        policy.set_fault_tolerance(FaultToleranceConfig::default());
        let _ = policy.decide(&obs_for(&policy, 0, 3000));
        // Three consecutive dark windows: declared dead at the third.
        for t in 1..4 {
            let mut o = obs_for(&policy, t, 3000);
            blackout(&mut o, 1);
            let _ = policy.decide(&o);
        }
        assert!(policy.member_dead(1), "3 dark windows must declare death");
        assert_eq!(policy.member_deaths(), 1);

        // L1 tick while dead: no load and no directives for member 1 —
        // a blackout-dead machine is still serving and must not be
        // drained just because its telemetry went dark.
        let mut o = obs_for(&policy, 4, 3000);
        blackout(&mut o, 1);
        let actions = policy.decide(&o);
        for a in &actions {
            match a {
                Action::PowerOn(i) | Action::PowerOff(i) | Action::SetFrequency(i, _) => {
                    assert_ne!(*i, 1, "directive {a:?} to a dead member");
                }
                Action::SetComputerWeights(_, w) => {
                    assert_eq!(w[1], 0.0, "load routed to a dead member");
                    assert!((w[0] - 1.0).abs() < 1e-9, "survivor carries the module");
                }
                Action::SetModuleWeights(_) => {}
            }
        }

        // Telemetry returns (machine was serving all along): rejoin.
        let _ = policy.decide(&obs_for(&policy, 5, 3000));
        assert!(!policy.member_dead(1), "healthy powered member rejoins");
        assert_eq!(policy.member_recoveries(), 1);
    }

    #[test]
    fn watchdog_declares_crashed_member_dead() {
        let scenario = single_module(2).with_coarse_learning();
        let mut policy = HierarchicalPolicy::build(&scenario);
        policy.set_fault_tolerance(FaultToleranceConfig::default());
        // Heavy load so the L1 wants both machines on.
        for t in 0..9 {
            let _ = policy.decide(&obs_for(&policy, t, 3000));
        }
        // Crash: found Off while wanted on, truthful telemetry.
        for t in 9..12 {
            let mut o = obs_for(&policy, t, 3000);
            o.computers[1].state = PowerState::Off;
            o.computers[1].window = WindowStats::default();
            o.computers[1].queue = 0;
            let _ = policy.decide(&o);
        }
        assert!(
            policy.member_dead(1),
            "a machine found Off while wanted on has crashed"
        );
        // Restart (repair + boot): powered again with telemetry → rejoin.
        let mut o = obs_for(&policy, 12, 3000);
        o.computers[1].state = PowerState::Booting { ready_at: 480.0 };
        let _ = policy.decide(&o);
        assert!(!policy.member_dead(1), "restarted member rejoins");
        assert_eq!(policy.member_recoveries(), 1);
    }

    #[test]
    fn telemetry_quorum_loss_falls_back_to_safe_mode() {
        let scenario = single_module(4).with_coarse_learning();
        let mut policy = HierarchicalPolicy::build(&scenario);
        policy.set_fault_tolerance(FaultToleranceConfig {
            suspect_after: 10, // stay in the suspect (pre-death) regime
            ..FaultToleranceConfig::default()
        });
        let _ = policy.decide(&obs_for(&policy, 0, 3000));
        // 3 of 4 members dark: 1/4 healthy < 0.5 quorum at the L1 tick.
        for t in 1..5 {
            let mut o = obs_for(&policy, t, 3000);
            for i in 1..4 {
                blackout(&mut o, i);
            }
            let actions = policy.decide(&o);
            if t == 4 {
                assert!(policy.safe_mode_periods() >= 1, "quorum loss → safe mode");
                let weights = actions.iter().find_map(|a| match a {
                    Action::SetComputerWeights(_, w) => Some(w.clone()),
                    _ => None,
                });
                let w = weights.expect("L1 tick routes");
                for &g in &w {
                    assert!(
                        (g - 0.25).abs() < 1e-9,
                        "safe mode splits uniformly over live serving members: {w:?}"
                    );
                }
            }
        }
        assert_eq!(policy.member_deaths(), 0, "nobody declared dead yet");
    }

    #[test]
    fn filter_rebuilt_maps_keeps_installed_map_for_dead_members() {
        let scenario = single_module(2).with_coarse_learning();
        let policy = HierarchicalPolicy::build(&scenario);
        let old: Vec<Arc<AbstractionMap>> = (0..2)
            .map(|pos| Arc::clone(policy.l1(0).map_arc(pos)))
            .collect();
        let fresh: Vec<Arc<AbstractionMap>> = old.iter().map(|m| Arc::new((**m).clone())).collect();
        let fresh_ptrs: Vec<_> = fresh.iter().map(Arc::as_ptr).collect();
        let out = filter_rebuilt_maps(fresh, &[false, true], &old);
        assert_eq!(
            out[0].as_ref() as *const _,
            fresh_ptrs[0],
            "live: fresh map"
        );
        assert!(
            Arc::ptr_eq(&out[1], &old[1]),
            "dead: keeps the installed pre-fault map"
        );
    }
}
