use crate::l1::{AbstractionMap, L1Controller, MemberSpec};
use crate::l2::{L2Controller, ModuleCostModel, ModuleState};
use crate::policy::{Action, ClusterPolicy, Observations};
use crate::{L0Controller, ScenarioConfig};
use llc_sim::PowerState;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock overhead accounting per hierarchy level.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelOverhead {
    /// Total time spent deciding at this level.
    pub total: Duration,
    /// Number of decisions taken.
    pub decisions: u64,
}

impl LevelOverhead {
    fn record(&mut self, elapsed: Duration) {
        self.total += elapsed;
        self.decisions += 1;
    }

    /// Mean decision time, or zero before any decision.
    pub fn mean(&self) -> Duration {
        if self.decisions == 0 {
            Duration::ZERO
        } else {
            self.total / self.decisions as u32
        }
    }
}

/// The complete three-level controller of Fig. 2, implementing
/// [`ClusterPolicy`]: L2 splits global load over modules, each module's
/// L1 picks `{α, γ}`, each computer's L0 picks the frequency. Offline
/// learning (abstraction maps, module trees) happens in
/// [`HierarchicalPolicy::build`].
#[derive(Debug)]
pub struct HierarchicalPolicy {
    l0s: Vec<L0Controller>,
    l1s: Vec<L1Controller>,
    l2: Option<L2Controller>,
    /// Global computer indices per module.
    members: Vec<Vec<usize>>,
    /// Prior mean local processing time per module (c_factor reference).
    module_c_priors: Vec<f64>,
    /// T_L1 / T_L0.
    l1_every: u64,
    /// T_L2 / T_L0.
    l2_every: u64,
    // Accumulators between slow-level ticks.
    module_arrivals_acc: Vec<u64>,
    global_arrivals_acc: u64,
    member_demand_sum: Vec<f64>,
    member_demand_n: Vec<u64>,
    // Decision histories backing the figures.
    active_history: Vec<(u64, usize)>,
    gamma_module_history: Vec<(u64, Vec<f64>)>,
    // Overhead accounting, indexed L0 = 0, L1 = 1, L2 = 2.
    overhead: [LevelOverhead; 3],
}

impl HierarchicalPolicy {
    /// Build the full hierarchy for a scenario, running the offline
    /// learning passes (L0-model replay for every abstraction map; module
    /// simulation for every regression tree when more than one module
    /// exists).
    pub fn build(scenario: &ScenarioConfig) -> Self {
        let specs = scenario.member_specs();
        let mut l0s = Vec::new();
        let mut l1s = Vec::new();
        let mut members = Vec::new();
        let mut module_c_priors = Vec::new();
        let mut module_models = Vec::new();
        let mut next_index = 0usize;

        // Learn every member's abstraction map in one fan-out across all
        // modules — each map is an independent offline grid. The maps are
        // then *shared* (Arc) between the module cost-model learning and
        // the L1 controllers instead of deep-cloned per consumer.
        let flat_specs: Vec<&MemberSpec> = specs.iter().flatten().collect();
        let flat_maps: Vec<Arc<AbstractionMap>> = llc_par::par_map(&flat_specs, |m| {
            Arc::new(AbstractionMap::learn_for_member(
                &scenario.l0,
                m,
                scenario.learn,
                crate::MapBackend::Dense,
            ))
        });
        let mut flat_maps = flat_maps.into_iter();

        for module_specs in &specs {
            let maps: Vec<Arc<AbstractionMap>> = module_specs
                .iter()
                .map(|_| flat_maps.next().expect("one learned map per member"))
                .collect();

            if specs.len() > 1 {
                // Offered-load ceiling for the module tree: the sum of
                // member peak rates with some overload headroom.
                let capacity: f64 = module_specs.iter().map(|m| m.speed / m.c_prior).sum();
                module_models.push(ModuleCostModel::learn(
                    &scenario.l1,
                    module_specs,
                    &maps,
                    capacity * 1.3,
                    scenario.module_learn,
                ));
            }

            let indices: Vec<usize> = (next_index..next_index + module_specs.len()).collect();
            next_index += module_specs.len();
            members.push(indices);
            module_c_priors.push(
                module_specs.iter().map(|m| m.c_prior).sum::<f64>() / module_specs.len() as f64,
            );
            for m in module_specs {
                l0s.push(L0Controller::new(scenario.l0, m.phis.clone()));
            }
            l1s.push(L1Controller::new_shared(
                scenario.l1,
                module_specs.clone(),
                maps,
            ));
        }

        let l2 = if specs.len() > 1 {
            let mut controller = L2Controller::new(scenario.l2, module_models);
            // Start from a capacity-proportional split: with no workload
            // observed yet, cost cannot distinguish candidates.
            let capacities: Vec<f64> = specs
                .iter()
                .map(|module| module.iter().map(|m| m.speed / m.c_prior).sum())
                .collect();
            controller.set_initial_split(capacities);
            Some(controller)
        } else {
            None
        };

        let l1_every = (scenario.l1.period / scenario.l0.period).round() as u64;
        let l2_every = (scenario.l2.period / scenario.l0.period).round() as u64;
        let num_modules = members.len();
        let num_computers = l0s.len();
        HierarchicalPolicy {
            l0s,
            l1s,
            l2,
            members,
            module_c_priors,
            l1_every: l1_every.max(1),
            l2_every: l2_every.max(1),
            module_arrivals_acc: vec![0; num_modules],
            global_arrivals_acc: 0,
            member_demand_sum: vec![0.0; num_computers],
            member_demand_n: vec![0; num_computers],
            active_history: Vec::new(),
            gamma_module_history: Vec::new(),
            overhead: [LevelOverhead::default(); 3],
        }
    }

    /// Number of computers managed.
    pub fn num_computers(&self) -> usize {
        self.l0s.len()
    }

    /// Number of modules managed.
    pub fn num_modules(&self) -> usize {
        self.l1s.len()
    }

    /// Number of operating (α = 1) computers decided at each L1 tick —
    /// the series plotted in Fig. 4 (module) and Fig. 6 (cluster).
    pub fn active_history(&self) -> &[(u64, usize)] {
        &self.active_history
    }

    /// The module split `{γ_i}` decided at each L2 tick — Fig. 7.
    pub fn gamma_module_history(&self) -> &[(u64, Vec<f64>)] {
        &self.gamma_module_history
    }

    /// The L1 controller of module `m` (forecast history, overhead).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn l1(&self, m: usize) -> &L1Controller {
        &self.l1s[m]
    }

    /// The L2 controller, if the scenario has multiple modules.
    pub fn l2(&self) -> Option<&L2Controller> {
        self.l2.as_ref()
    }

    /// The L0 controller of computer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn l0(&self, i: usize) -> &L0Controller {
        &self.l0s[i]
    }

    /// Per-level wall-clock overhead, indexed `[L0, L1, L2]`.
    pub fn overhead(&self) -> &[LevelOverhead; 3] {
        &self.overhead
    }

    /// The §5.2 overhead metric: mean execution time along one hierarchy
    /// path (one L2 + one L1 + one L0 decision).
    pub fn path_overhead(&self) -> Duration {
        self.overhead[0].mean() + self.overhead[1].mean() + self.overhead[2].mean()
    }
}

impl ClusterPolicy for HierarchicalPolicy {
    fn decide(&mut self, obs: &Observations) -> Vec<Action> {
        let mut actions = Vec::new();

        // Accumulate windows and feed the per-computer forecasters.
        for comp in &obs.computers {
            self.l0s[comp.index].observe(comp.arrivals, comp.mean_demand);
            if let Some(c) = comp.mean_demand {
                self.member_demand_sum[comp.index] += c;
                self.member_demand_n[comp.index] += 1;
            }
        }
        for module in &obs.modules {
            self.module_arrivals_acc[module.index] += module.arrivals;
            self.global_arrivals_acc += module.arrivals;
        }

        // --- L2: split global load over modules (top-down first). ---
        if obs.tick.is_multiple_of(self.l2_every) {
            if let Some(l2) = self.l2.as_mut() {
                let started = Instant::now();
                l2.observe(self.global_arrivals_acc);
                self.global_arrivals_acc = 0;
                let states: Vec<ModuleState> = (0..self.members.len())
                    .map(|m| {
                        let qs: f64 = self.members[m]
                            .iter()
                            .map(|&i| obs.computers[i].queue as f64)
                            .sum();
                        let active = self.members[m]
                            .iter()
                            .filter(|&&i| !matches!(obs.computers[i].state, PowerState::Off))
                            .count();
                        ModuleState {
                            c_factor: self.l1s[m].module_c_estimate() / self.module_c_priors[m],
                            queue_mean: qs / self.members[m].len() as f64,
                            active,
                        }
                    })
                    .collect();
                let decision = l2.decide(&states);
                self.gamma_module_history
                    .push((obs.tick, decision.gamma.clone()));
                actions.push(Action::SetModuleWeights(decision.gamma));
                self.overhead[2].record(started.elapsed());
            } else {
                self.global_arrivals_acc = 0;
                // No L2 (single-module scenario): the global dispatcher
                // still needs weights once, or a cold-started cluster
                // drops everything at the top-level router.
                if obs.tick == 0 {
                    actions.push(Action::SetModuleWeights(vec![1.0]));
                }
            }
        }

        // --- L1: per-module α and γ. ---
        if obs.tick.is_multiple_of(self.l1_every) {
            let mut total_active = 0usize;
            for m in 0..self.members.len() {
                let started = Instant::now();
                let demands: Vec<Option<f64>> = self.members[m]
                    .iter()
                    .map(|&i| {
                        if self.member_demand_n[i] > 0 {
                            Some(self.member_demand_sum[i] / self.member_demand_n[i] as f64)
                        } else {
                            None
                        }
                    })
                    .collect();
                self.l1s[m].observe(self.module_arrivals_acc[m], &demands);
                self.module_arrivals_acc[m] = 0;
                for &i in &self.members[m] {
                    self.member_demand_sum[i] = 0.0;
                    self.member_demand_n[i] = 0;
                }

                let queues: Vec<usize> = self.members[m]
                    .iter()
                    .map(|&i| obs.computers[i].queue)
                    .collect();
                let active: Vec<bool> = self.members[m]
                    .iter()
                    .map(|&i| !matches!(obs.computers[i].state, PowerState::Off))
                    .collect();
                let decision = self.l1s[m].decide(&queues, &active);

                for (pos, &i) in self.members[m].iter().enumerate() {
                    let draining = matches!(obs.computers[i].state, PowerState::Draining);
                    if decision.alpha[pos] && (!active[pos] || draining) {
                        // PowerOn also recovers a draining machine to On —
                        // without it the machine would keep rejecting the
                        // load share assigned to it.
                        actions.push(Action::PowerOn(i));
                    } else if !decision.alpha[pos] && active[pos] && !draining {
                        actions.push(Action::PowerOff(i));
                    }
                }
                total_active += decision.alpha.iter().filter(|&&a| a).count();

                // A machine ordered on right now boots for the whole
                // coming period (the dead time equals T_L1): routing its γ
                // share to it would just hoard requests behind the boot.
                // Serve this period with the machines that can actually
                // serve; the newcomer picks up load at the next L1 tick.
                let mut routed = decision.gamma.clone();
                let mut reroute = false;
                for (pos, &i) in self.members[m].iter().enumerate() {
                    let can_serve = decision.alpha[pos]
                        && matches!(
                            obs.computers[i].state,
                            PowerState::On | PowerState::Draining
                        );
                    if !can_serve && routed[pos] > 0.0 {
                        routed[pos] = 0.0;
                        reroute = true;
                    }
                }
                let routable: f64 = routed.iter().sum();
                if reroute && routable <= 0.0 {
                    // Everything assigned was booting. Serve this period
                    // with whatever is actually running — even a machine
                    // the split left at zero — because weight on a booting
                    // machine just hoards a period of arrivals behind its
                    // dead time. Only a module with nothing running at all
                    // (cold start) keeps the decided split.
                    let serving: Vec<usize> = (0..routed.len())
                        .filter(|&pos| {
                            let i = self.members[m][pos];
                            decision.alpha[pos] && matches!(obs.computers[i].state, PowerState::On)
                        })
                        .collect();
                    if serving.is_empty() {
                        routed = decision.gamma.clone();
                    } else {
                        for &pos in &serving {
                            routed[pos] = 1.0 / serving.len() as f64;
                        }
                    }
                }
                actions.push(Action::SetComputerWeights(m, routed));
                self.overhead[1].record(started.elapsed());
            }
            self.active_history.push((obs.tick, total_active));
        }

        // --- L0: per-computer frequency, every tick, active machines. ---
        for comp in &obs.computers {
            if matches!(comp.state, PowerState::Off) {
                continue;
            }
            let started = Instant::now();
            let decision = self.l0s[comp.index]
                .decide(comp.queue)
                .expect("frequency table is non-empty");
            self.overhead[0].record(started.elapsed());
            if decision.frequency_index != comp.frequency_index {
                actions.push(Action::SetFrequency(comp.index, decision.frequency_index));
            }
        }

        actions
    }

    fn name(&self) -> &str {
        "hierarchical-llc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ComputerObs, ModuleObs};
    use crate::single_module;

    fn obs_for(policy: &HierarchicalPolicy, tick: u64, arrivals_per_comp: u64) -> Observations {
        let n = policy.num_computers();
        let computers = (0..n)
            .map(|i| ComputerObs {
                index: i,
                module: 0,
                queue: 0,
                arrivals: arrivals_per_comp,
                completions: arrivals_per_comp,
                mean_response: Some(0.1),
                mean_demand: Some(0.0175),
                state: PowerState::On,
                frequency_index: 0,
            })
            .collect();
        Observations {
            tick,
            time: tick as f64 * 30.0,
            computers,
            modules: vec![ModuleObs {
                index: 0,
                arrivals: arrivals_per_comp * n as u64,
                dropped: 0,
            }],
        }
    }

    #[test]
    fn build_matches_scenario_shape() {
        let scenario = single_module(4).with_coarse_learning();
        let policy = HierarchicalPolicy::build(&scenario);
        assert_eq!(policy.num_computers(), 4);
        assert_eq!(policy.num_modules(), 1);
        assert!(policy.l2().is_none(), "single module has no L2");
        assert_eq!(policy.overhead()[0].decisions, 0);
    }

    #[test]
    fn first_tick_sets_global_weights_for_single_module() {
        let scenario = single_module(2).with_coarse_learning();
        let mut policy = HierarchicalPolicy::build(&scenario);
        let actions = policy.decide(&obs_for(&policy, 0, 100));
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::SetModuleWeights(w) if w == &vec![1.0])),
            "tick 0 must set the global dispatch weights: {actions:?}"
        );
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::SetComputerWeights(0, _))),
            "tick 0 must set the module's computer weights"
        );
    }

    #[test]
    fn l1_fires_only_on_its_period() {
        let scenario = single_module(2).with_coarse_learning();
        let mut policy = HierarchicalPolicy::build(&scenario);
        let _ = policy.decide(&obs_for(&policy, 0, 100));
        assert_eq!(policy.active_history().len(), 1);
        // Ticks 1-3: no L1 decision.
        for t in 1..4 {
            let _ = policy.decide(&obs_for(&policy, t, 100));
            assert_eq!(policy.active_history().len(), 1, "tick {t}");
        }
        let _ = policy.decide(&obs_for(&policy, 4, 100));
        assert_eq!(policy.active_history().len(), 2);
    }

    #[test]
    fn overhead_counters_accumulate() {
        let scenario = single_module(2).with_coarse_learning();
        let mut policy = HierarchicalPolicy::build(&scenario);
        for t in 0..8 {
            let _ = policy.decide(&obs_for(&policy, t, 200));
        }
        let overhead = policy.overhead();
        assert_eq!(overhead[1].decisions, 2, "two L1 periods in 8 ticks");
        assert_eq!(overhead[0].decisions, 16, "2 computers x 8 ticks of L0");
        assert!(policy.path_overhead() > Duration::ZERO);
        assert_eq!(policy.name(), "hierarchical-llc");
    }
}
