use crate::l1::{L1Config, LearnSpec, MapBackend, MemberSpec};
use crate::l2::{L2Config, ModuleLearnSpec};
use crate::profiles::{ComputerProfile, FrequencyProfile};
use crate::L0Config;
use llc_sim::ClusterConfig;

/// A complete experiment scenario: machine layout plus controller
/// parameters plus offline-learning resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Computers grouped into modules.
    pub modules: Vec<Vec<ComputerProfile>>,
    /// L0 parameters.
    pub l0: L0Config,
    /// L1 parameters.
    pub l1: L1Config,
    /// L2 parameters.
    pub l2: L2Config,
    /// Abstraction-map grid resolution.
    pub learn: LearnSpec,
    /// Module-tree grid resolution.
    pub module_learn: ModuleLearnSpec,
    /// Which lookup substrate backs the abstraction maps. `Dense` (the
    /// default) is the fast fixed-envelope grid; `Hash` insert-or-blends
    /// online outcomes *beyond* the trained envelope, growing coverage
    /// from observed traffic — the substrate of choice for a closed-loop
    /// run expected to drift into operating regions the offline pass
    /// never sampled.
    pub map_backend: MapBackend,
}

impl ScenarioConfig {
    /// Total computers across all modules.
    pub fn num_computers(&self) -> usize {
        self.modules.iter().map(|m| m.len()).sum()
    }

    /// Number of modules.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// Reduce learning resolution for fast tests (coarse grids, same
    /// controllers).
    #[must_use]
    pub fn with_coarse_learning(mut self) -> Self {
        self.learn = LearnSpec::coarse();
        self.module_learn = ModuleLearnSpec::coarse();
        self
    }

    /// Back the abstraction maps with the hash substrate, whose online
    /// updates grow coverage beyond the trained envelope (see
    /// [`ScenarioConfig::map_backend`]).
    #[must_use]
    pub fn with_hash_maps(mut self) -> Self {
        self.map_backend = MapBackend::Hash;
        self
    }

    /// Switch on the drift-aware L0: every computer's lookahead model
    /// runs at the delivered-capacity scale `ŝ` its
    /// [`llc_core::ServiceScaleEstimator`] measures from realized
    /// completions, and the L1s query their maps at the effective
    /// processing time `ĉ/ŝ`. Off by default — the paper's model is
    /// capacity-blind.
    #[must_use]
    #[deprecated(note = "configure via PolicyBuilder::drift_aware_l0")]
    pub fn with_drift_aware_l0(mut self) -> Self {
        self.l0.scale = llc_core::ScaleEstimatorConfig::enabled();
        self
    }

    /// The simulator configuration for this scenario.
    pub fn to_sim_config(&self) -> ClusterConfig {
        ClusterConfig {
            modules: self
                .modules
                .iter()
                .map(|module| module.iter().map(|c| c.to_sim_config()).collect())
                .collect(),
        }
    }

    /// Member specs (the L1 controller's static view), per module.
    pub fn member_specs(&self) -> Vec<Vec<MemberSpec>> {
        self.modules
            .iter()
            .map(|module| {
                module
                    .iter()
                    .map(|c| MemberSpec {
                        phis: c.phis(),
                        speed: c.speed,
                        c_prior: 0.0175 / c.speed,
                    })
                    .collect()
            })
            .collect()
    }
}

/// The paper's four-computer module (§4.3): heterogeneous computers
/// C1–C4 with paper-default power parameters.
pub fn module_of_four() -> Vec<ComputerProfile> {
    FrequencyProfile::module_set()
        .into_iter()
        .map(ComputerProfile::paper_default)
        .collect()
}

/// `p` heterogeneous modules of four computers each: "different sets of
/// computers are present within each module" (§5.2). Five composition
/// patterns cycle as `p` grows.
pub fn cluster_of(p: usize) -> Vec<Vec<ComputerProfile>> {
    use FrequencyProfile::*;
    let patterns: [[FrequencyProfile; 4]; 5] = [
        [MobileSix, WideEight, BusSeven, TallEight],
        [TallEight, TallEight, MobileSix, WideEight],
        [BusSeven, BusSeven, WideEight, TallEight],
        [WideEight, MobileSix, TallEight, BusSeven],
        [TallEight, BusSeven, MobileSix, MobileSix],
    ];
    (0..p)
        .map(|i| {
            patterns[i % patterns.len()]
                .into_iter()
                .map(ComputerProfile::paper_default)
                .collect()
        })
        .collect()
}

fn paper_scenario(p: usize) -> ScenarioConfig {
    ScenarioConfig {
        modules: cluster_of(p),
        l0: L0Config::paper_default(),
        l1: L1Config::paper_default(),
        l2: L2Config::paper_default(),
        learn: LearnSpec::default(),
        module_learn: ModuleLearnSpec::default(),
        map_backend: MapBackend::Dense,
    }
}

/// The §5.2 cluster: sixteen heterogeneous computers in four modules.
pub fn paper_cluster_16() -> ScenarioConfig {
    paper_scenario(4)
}

/// The §5.2 variant: twenty computers in five modules.
pub fn paper_cluster_20() -> ScenarioConfig {
    paper_scenario(5)
}

/// A single-module scenario (the §4.3 experiments: m computers, no L2).
pub fn single_module(m: usize) -> ScenarioConfig {
    use FrequencyProfile::*;
    let profiles = [
        MobileSix, WideEight, BusSeven, TallEight, TallEight, WideEight, BusSeven, MobileSix,
        TallEight, WideEight,
    ];
    assert!(
        (1..=profiles.len()).contains(&m),
        "single module supports 1..={} computers",
        profiles.len()
    );
    let mut config = paper_scenario(1);
    config.modules = vec![profiles[..m]
        .iter()
        .map(|&p| ComputerProfile::paper_default(p))
        .collect()];
    if m > 4 {
        // The paper coarsens γ to 0.1 for the six- and ten-computer runs.
        config.l1.gamma_quantum = 0.1;
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_16_dimensions() {
        let s = paper_cluster_16();
        assert_eq!(s.num_modules(), 4);
        assert_eq!(s.num_computers(), 16);
        assert_eq!(s.l1.gamma_quantum, 0.05);
        assert_eq!(s.l2.gamma_quantum, 0.1);
    }

    #[test]
    fn paper_20_dimensions() {
        let s = paper_cluster_20();
        assert_eq!(s.num_modules(), 5);
        assert_eq!(s.num_computers(), 20);
    }

    #[test]
    fn modules_are_heterogeneous() {
        let modules = cluster_of(4);
        // At least two modules must differ in composition.
        let sig = |m: &Vec<ComputerProfile>| -> Vec<usize> {
            m.iter().map(|c| c.profile.len()).collect()
        };
        assert_ne!(sig(&modules[0]), sig(&modules[1]));
    }

    #[test]
    fn single_module_gamma_quantum_coarsens() {
        assert_eq!(single_module(4).l1.gamma_quantum, 0.05);
        assert_eq!(single_module(6).l1.gamma_quantum, 0.1);
        assert_eq!(single_module(10).l1.gamma_quantum, 0.1);
    }

    #[test]
    fn sim_config_matches_layout() {
        let s = paper_cluster_16();
        let sim = s.to_sim_config();
        assert_eq!(sim.modules.len(), 4);
        assert!(sim.modules.iter().all(|m| m.len() == 4));
    }

    #[test]
    fn member_specs_have_local_priors() {
        let s = single_module(4);
        let specs = s.member_specs();
        assert_eq!(specs[0].len(), 4);
        for spec in &specs[0] {
            // Slower machines see longer local processing times.
            assert!((spec.c_prior - 0.0175 / spec.speed).abs() < 1e-12);
            assert!((spec.phis.last().unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "single module supports")]
    fn oversized_single_module_panics() {
        let _ = single_module(11);
    }
}
