use crate::l0::QueueModel;
use crate::l1::MemberSpec;
use crate::policy::{Action, ClusterPolicy, Observations};
use llc_approx::SimplexGrid;
use llc_core::{Penalty, ScaleEstimatorConfig, ServiceScaleEstimator, SetPoint};
use llc_forecast::{Ewma, Forecaster, LocalLinearTrend};
use llc_sim::PowerState;

/// Configuration of the centralized (non-hierarchical) controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CentralizedConfig {
    /// Decide every this many base ticks (match `T_L1` for fairness).
    pub period_ticks: u64,
    /// Load-fraction quantum for the joint γ enumeration.
    pub gamma_quantum: f64,
    /// Fluid-model steps evaluated per candidate (l = T_L1/T_L0).
    pub horizon_steps: usize,
    /// Base sampling period `T_L0` in seconds.
    pub step_period: f64,
    /// Switch-on penalty `W`.
    pub switch_on_penalty: f64,
    /// Response-time target `r*`.
    pub response_target: f64,
    /// Response-violation weight `Q`.
    pub q_weight: f64,
    /// Power weight `R`.
    pub r_weight: f64,
    /// Base operating cost `a`.
    pub base_cost: f64,
    /// Drift-aware service-rate scale estimation (see
    /// [`llc_core::ServiceScaleEstimator`]); disabled in the paper
    /// defaults so the baseline comparison stays capacity-blind on both
    /// sides unless a scenario opts in.
    pub scale: ScaleEstimatorConfig,
}

impl CentralizedConfig {
    /// Paper-aligned parameters (same weights as the hierarchy, γ
    /// quantized at 0.1 to keep the joint enumeration finite).
    pub fn paper_default() -> Self {
        CentralizedConfig {
            period_ticks: 4,
            gamma_quantum: 0.1,
            horizon_steps: 4,
            step_period: 30.0,
            switch_on_penalty: 8.0,
            response_target: 4.0,
            q_weight: 100.0,
            r_weight: 1.0,
            base_cost: 0.75,
            scale: ScaleEstimatorConfig::default(),
        }
    }
}

/// The flat controller the paper argues *against* (§3): one optimizer
/// jointly deciding `{α, γ, u}` for every computer in the module by
/// exhaustive enumeration over the α subsets and the quantized γ simplex,
/// with the per-computer frequency chosen optimally for each candidate
/// (frequencies are separable given `(α, γ)`, so this is the exact joint
/// optimum of the same fluid model the hierarchy approximates).
///
/// Its decision cost grows as `Σ_α C(levels + k − 1, k − 1) · Σ_j |U_j|`
/// — exponential in the module size — which is precisely the paper's
/// dimensionality argument for hierarchical decomposition. See
/// [`joint_candidate_count`] for the combinatorial count without running
/// the search.
#[derive(Debug, Clone)]
pub struct CentralizedPolicy {
    config: CentralizedConfig,
    members: Vec<MemberSpec>,
    lambda_forecast: LocalLinearTrend,
    c_filters: Vec<Ewma>,
    /// Per-computer delivered-capacity estimators (inert unless
    /// `config.scale.enabled`) — the same drift correction the
    /// hierarchy's L0s run, so the dimensionality comparison is not
    /// confounded by one side seeing the plant and the other not.
    scales: Vec<ServiceScaleEstimator>,
    arrivals_acc: u64,
    states_total: u64,
    decisions: u64,
    last_freq: Vec<usize>,
}

impl CentralizedPolicy {
    /// Build for a single module of `members`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(config: CentralizedConfig, members: Vec<MemberSpec>) -> Self {
        assert!(!members.is_empty(), "need at least one computer");
        let m = members.len();
        CentralizedPolicy {
            members,
            lambda_forecast: LocalLinearTrend::with_default_noise().with_floor(0.0),
            c_filters: vec![Ewma::paper_default(); m],
            scales: vec![ServiceScaleEstimator::new(config.scale); m],
            config,
            arrivals_acc: 0,
            states_total: 0,
            decisions: 0,
            last_freq: vec![0; m],
        }
    }

    /// Mean joint candidates evaluated per decision.
    pub fn mean_states_evaluated(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.states_total as f64 / self.decisions as f64
        }
    }

    fn c_estimate(&self, j: usize) -> f64 {
        let c = self.c_filters[j].estimate();
        if c > 0.0 {
            c
        } else {
            self.members[j].c_prior
        }
    }

    /// Best frequency index and its fluid-model cost for one computer
    /// under `(λ_j, ĉ_j, q_j)` over the horizon, at the computer's
    /// estimated delivered-capacity scale.
    fn best_frequency(&self, j: usize, lambda: f64, q0: f64) -> (usize, f64) {
        let model = QueueModel::with_scale(self.config.step_period, self.scales[j].estimate());
        let response = SetPoint::new(self.config.response_target);
        let q_pen = Penalty::abs(self.config.q_weight);
        let r_pen = Penalty::abs(self.config.r_weight);
        let c = self.c_estimate(j);
        let mut best = (0usize, f64::INFINITY);
        for (idx, &phi) in self.members[j].phis.iter().enumerate() {
            let mut q = q0;
            let mut cost = 0.0;
            for _ in 0..self.config.horizon_steps {
                let (qn, rn) = model.step(q, lambda, c, phi);
                cost += q_pen.eval(response.slack_above(rn))
                    + r_pen.eval(self.config.base_cost + phi * phi);
                q = qn;
            }
            if cost < best.1 {
                best = (idx, cost);
            }
        }
        best
    }
}

/// The number of joint `{α, γ}` candidates a centralized controller must
/// score for a module of `m` computers at γ quantum `1/levels` — the
/// paper's dimensionality argument, computable without enumerating:
/// `Σ_{k=1..m} C(m, k) · C(levels + k − 1, k − 1)`.
pub fn joint_candidate_count(m: usize, levels: usize) -> u128 {
    fn binom(n: u128, k: u128) -> u128 {
        let k = k.min(n - k.min(n));
        let mut acc: u128 = 1;
        for i in 0..k {
            acc = acc * (n - i) / (i + 1);
        }
        acc
    }
    (1..=m as u128)
        .map(|k| binom(m as u128, k) * binom(levels as u128 + k - 1, k - 1))
        .sum()
}

impl ClusterPolicy for CentralizedPolicy {
    fn decide(&mut self, obs: &Observations) -> Vec<Action> {
        let m = self.members.len();
        debug_assert_eq!(obs.computers.len(), m, "single-module policy");
        for comp in &obs.computers {
            if let Some(c) = comp.mean_demand() {
                self.c_filters[comp.index].observe(c);
            }
            let busy =
                comp.queue > 0 && matches!(comp.state, PowerState::On | PowerState::Draining);
            let phi = self.members[comp.index].phis[comp
                .frequency_index
                .min(self.members[comp.index].phis.len() - 1)];
            let c = self.c_estimate(comp.index);
            self.scales[comp.index].observe_window(
                comp.window.completions,
                self.config.step_period,
                phi,
                c,
                busy,
            );
        }
        self.arrivals_acc += obs.modules.iter().map(|mo| mo.arrivals).sum::<u64>();

        let mut actions = Vec::new();
        if obs.tick == 0 {
            actions.push(Action::SetModuleWeights(vec![1.0]));
        }

        if !obs.tick.is_multiple_of(self.config.period_ticks) {
            // Frequency refresh between joint decisions (same cadence as
            // the hierarchy's L0 layer).
            for comp in &obs.computers {
                if matches!(comp.state, PowerState::Off) {
                    continue;
                }
                let lambda_j = comp.arrivals() as f64 / self.config.step_period;
                let (idx, _) = self.best_frequency(comp.index, lambda_j, comp.queue as f64);
                if idx != comp.frequency_index {
                    actions.push(Action::SetFrequency(comp.index, idx));
                }
            }
            return actions;
        }

        let window = self.config.period_ticks as f64 * self.config.step_period;
        self.lambda_forecast
            .observe(self.arrivals_acc as f64 / window);
        self.arrivals_acc = 0;
        let lambda = self.lambda_forecast.predict_one().max(0.0);

        let active: Vec<bool> = obs
            .computers
            .iter()
            .map(|c| !matches!(c.state, PowerState::Off))
            .collect();
        let queues: Vec<f64> = obs.computers.iter().map(|c| c.queue as f64).collect();

        // Exhaustive joint enumeration: α over all non-empty subsets, γ
        // over the quantized simplex of the active set, frequencies
        // optimal per computer (separable).
        // (cost, alpha, gamma, frequency indices)
        #[allow(clippy::type_complexity)]
        let mut best: Option<(f64, Vec<bool>, Vec<f64>, Vec<usize>)> = None;
        let mut states = 0u64;
        for mask in 1u32..(1u32 << m) {
            let alpha: Vec<bool> = (0..m).map(|j| mask & (1 << j) != 0).collect();
            let active_idx: Vec<usize> = (0..m).filter(|&j| alpha[j]).collect();
            let switch_cost = self.config.switch_on_penalty
                * active_idx.iter().filter(|&&j| !active[j]).count() as f64;
            let grid = SimplexGrid::with_quantum(active_idx.len(), self.config.gamma_quantum);
            for gamma_active in grid.enumerate() {
                states += 1;
                let mut cost = switch_cost;
                let mut freqs = self.last_freq.clone();
                for (pos, &j) in active_idx.iter().enumerate() {
                    let (idx, c_j) = self.best_frequency(j, gamma_active[pos] * lambda, queues[j]);
                    cost += c_j / self.config.horizon_steps as f64;
                    freqs[j] = idx;
                }
                // Off computers with backlog still pay to drain.
                for j in (0..m).filter(|&j| !alpha[j] && queues[j] > 0.0) {
                    let (_, drain) = self.best_frequency(j, 0.0, queues[j]);
                    cost += drain / self.config.horizon_steps as f64;
                }
                if best.as_ref().is_none_or(|(b, ..)| cost < *b) {
                    let mut gamma_full = vec![0.0; m];
                    for (pos, &j) in active_idx.iter().enumerate() {
                        gamma_full[j] = gamma_active[pos];
                    }
                    best = Some((cost, alpha.clone(), gamma_full, freqs));
                }
            }
        }
        let (_, alpha, gamma, freqs) = best.expect("non-empty subsets exist");
        self.states_total += states;
        self.decisions += 1;

        for j in 0..m {
            let draining = matches!(obs.computers[j].state, PowerState::Draining);
            if alpha[j] && (!active[j] || draining) {
                actions.push(Action::PowerOn(j));
            } else if !alpha[j] && active[j] && !draining {
                actions.push(Action::PowerOff(j));
            }
            if alpha[j] && freqs[j] != obs.computers[j].frequency_index {
                actions.push(Action::SetFrequency(j, freqs[j]));
            }
        }
        // Boot-aware routing, as in the hierarchy.
        let mut routed = gamma.clone();
        let mut any = false;
        for j in 0..m {
            let can_serve = alpha[j]
                && matches!(
                    obs.computers[j].state,
                    PowerState::On | PowerState::Draining
                );
            if can_serve && routed[j] > 0.0 {
                any = true;
            } else if !can_serve {
                routed[j] = 0.0;
            }
        }
        if !any {
            routed = gamma;
        }
        actions.push(Action::SetComputerWeights(0, routed));
        self.last_freq = freqs;
        actions
    }

    fn name(&self) -> &str {
        "centralized-llc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{single_module, Experiment};
    use llc_workload::{Trace, VirtualStore};

    #[test]
    fn joint_count_matches_hand_computation() {
        // m = 2, levels = 10: k=1: 2·C(10,0)=2; k=2: 1·C(11,1)=11 -> 13.
        assert_eq!(joint_candidate_count(2, 10), 13);
        // Counts explode with m — the paper's argument.
        assert!(joint_candidate_count(10, 10) > 1_000_000);
        assert!(joint_candidate_count(16, 10) > joint_candidate_count(10, 10) * 100);
    }

    #[test]
    fn centralized_controller_manages_a_small_module() {
        let scenario = single_module(3).with_coarse_learning();
        let members: Vec<MemberSpec> = scenario.member_specs().remove(0);
        let mut policy = CentralizedPolicy::new(CentralizedConfig::paper_default(), members);
        let trace = Trace::new(30.0, vec![40.0 * 30.0; 40]).unwrap();
        let store = VirtualStore::paper_default(9);
        let log = Experiment::paper_default(9)
            .run(scenario.to_sim_config(), &mut policy, &trace, &store)
            .unwrap();
        let s = log.summary();
        assert_eq!(s.total_dropped, 0);
        assert!(
            s.mean_response < 4.0,
            "centralized control should hold r*: {:.2}",
            s.mean_response
        );
        assert!(policy.mean_states_evaluated() > 0.0);
    }

    #[test]
    fn centralized_sheds_machines_under_light_load() {
        let scenario = single_module(3).with_coarse_learning();
        let members: Vec<MemberSpec> = scenario.member_specs().remove(0);
        let mut policy = CentralizedPolicy::new(CentralizedConfig::paper_default(), members);
        let trace = Trace::new(30.0, vec![5.0 * 30.0; 40]).unwrap();
        let store = VirtualStore::paper_default(10);
        let log = Experiment::paper_default(10)
            .run(scenario.to_sim_config(), &mut policy, &trace, &store)
            .unwrap();
        let active_late = log
            .ticks
            .last()
            .unwrap()
            .active_flags
            .iter()
            .filter(|&&a| a)
            .count();
        assert!(
            active_late <= 2,
            "light load should shed machines, kept {active_late}"
        );
    }
}
