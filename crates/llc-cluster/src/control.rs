//! The control plane: observation-ingest / directive-emit API.
//!
//! The paper specifies the hierarchy as an *online* controller — each
//! level consumes streamed operating-condition estimates and emits
//! directives on its own period — but the policy used to be drivable
//! only through [`Experiment`]'s synchronous sim callbacks. This module
//! splits decision-making from the drive loop:
//!
//! * plant telemetry arrives as [`ModuleObservation`]s through the
//!   [`ObservationIngest`] trait — timestamped, per-module, tolerant of
//!   out-of-order delivery and missing members;
//! * decisions leave as typed [`Directive`]s through the
//!   [`DirectiveEmit`] trait, each stamped with the level, tick and
//!   epoch that produced it;
//! * [`ControlPlane`] owns the L2/L1/L0 tick cadence on a virtual
//!   clock, assembles per-tick [`Observations`] for any
//!   [`ClusterPolicy`], and exposes a [`MetricsSnapshot`] combining its
//!   own driver counters (ingest, reordering, decide latency) with the
//!   policy's [`PolicyMetrics`] (drift detections per learner, retrain
//!   triggers/rebuilds, member deaths/recoveries, safe-mode periods,
//!   feed-forward events).
//!
//! [`Experiment`] is one client of this API (its sim adapter translates
//! plant state into observations and directives into actuation);
//! `examples/control_plane.rs` is another, running the hierarchy as a
//! long-lived loop fed by a channel with no `Experiment` at all.
//!
//! ## Observe vs Learn at the API boundary
//!
//! The closed-loop mode of the policy behind the plane decides what an
//! ingested observation *does*: in `Learn` mode the hierarchy derives
//! realized outcomes from the stream and absorbs them into its own
//! models (the plane's client supplies telemetry and nothing else); in
//! `Observe` mode outcomes are derived and queued but never learned
//! from, so the client may drain them and drive the learning loop
//! itself. The ingest surface is identical in both — the mode is a
//! property of the policy, not of the transport.
//!
//! [`Experiment`]: crate::Experiment

#![deny(missing_docs)]

use crate::hierarchy::LevelOverhead;
use crate::policy::{Action, ClusterPolicy, ComputerObs, ModuleObs, Observations};
use crate::{L0Config, L1Config, L2Config};
use llc_sim::{PowerState, WindowStats};
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// A hierarchy level, from fastest (per-computer DVFS) to slowest
/// (cluster-wide split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Per-computer frequency control (every base tick, `T_L0`).
    L0,
    /// Per-module on/off and load-split control (`T_L1`).
    L1,
    /// Cluster-wide module-split control (`T_L2`).
    L2,
}

/// The tick cadence of the two slow levels, in base (`T_L0`) ticks: the
/// period bookkeeping that used to live inline in the hierarchy and now
/// belongs to the driver. An L1 decision fires on ticks divisible by
/// `l1_every`, an L2 decision on ticks divisible by `l2_every`; epochs
/// count those firings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cadence {
    /// Base ticks per L1 period (`T_L1 / T_L0`, at least 1).
    pub l1_every: u64,
    /// Base ticks per L2 period (`T_L2 / T_L0`, at least 1).
    pub l2_every: u64,
}

impl Cadence {
    /// The flat cadence: every level fires every base tick (what a
    /// non-hierarchical policy reports).
    pub fn base() -> Self {
        Cadence {
            l1_every: 1,
            l2_every: 1,
        }
    }

    /// Derive the cadence from the three level configurations (periods
    /// rounded to whole base ticks, floored at one).
    pub fn from_configs(l0: &L0Config, l1: &L1Config, l2: &L2Config) -> Self {
        Cadence {
            l1_every: l0.ticks_per(l1.period),
            l2_every: l0.ticks_per(l2.period),
        }
    }

    /// `true` when an L1 decision fires at `tick`.
    pub fn is_l1_tick(&self, tick: u64) -> bool {
        tick.is_multiple_of(self.l1_every)
    }

    /// `true` when an L2 decision fires at `tick`.
    pub fn is_l2_tick(&self, tick: u64) -> bool {
        tick.is_multiple_of(self.l2_every)
    }

    /// The epoch of `level` at `tick`: how many of that level's periods
    /// have started up to and including the tick. Directives carry it so
    /// a consumer can tell which decision round produced them.
    pub fn epoch(&self, level: Level, tick: u64) -> u64 {
        match level {
            Level::L0 => tick,
            Level::L1 => tick / self.l1_every,
            Level::L2 => tick / self.l2_every,
        }
    }

    /// The wall-clock period of `level` in seconds, given the base tick
    /// length.
    pub fn period_of(&self, level: Level, t_l0: f64) -> f64 {
        match level {
            Level::L0 => t_l0,
            Level::L1 => self.l1_every as f64 * t_l0,
            Level::L2 => self.l2_every as f64 * t_l0,
        }
    }
}

/// One member's telemetry for one base tick, as reported over the
/// ingest surface. `member` is the position within the module (not the
/// global computer index — the plane owns the topology and does the
/// translation).
///
/// When `telemetry_ok` is `false` the reporter lost this window
/// (blackout, crash-stop silence): `window` and `queue` arrive blank
/// and `state`/`frequency_index` should be *frozen at the last healthy
/// values the reporter saw* — crash-stop is indistinguishable from a
/// partition, so ground truth is unavailable. `rejected` is measured at
/// the module dispatcher, not the machine, and therefore stays valid
/// through darkness.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberTelemetry {
    /// Position of the member within its module.
    pub member: usize,
    /// Queue length at the sampling instant (queued + in service).
    pub queue: usize,
    /// Realized stats of the window that just ended.
    pub window: WindowStats,
    /// Power state at the sampling instant (last healthy value when
    /// `telemetry_ok` is `false`).
    pub state: PowerState,
    /// Frequency-table index (last healthy value when `telemetry_ok` is
    /// `false`).
    pub frequency_index: usize,
    /// `false` when this window's telemetry was lost.
    pub telemetry_ok: bool,
    /// Dispatcher-side refused sends to this member during the window.
    pub rejected: u64,
}

/// One module's observation for one base tick: the unit of ingest.
///
/// A module reports all the members it heard from; members it omits are
/// dark-filled by the plane (blank window, `telemetry_ok = false`,
/// state frozen at the plane's last record) — absence of telemetry must
/// never stall or crash the controller, because the fault-tolerance
/// path already models exactly this.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleObservation {
    /// Module index.
    pub module: usize,
    /// Base tick the window ended at (the plane's virtual clock).
    pub tick: u64,
    /// Telemetry for the members the reporter heard from.
    pub members: Vec<MemberTelemetry>,
    /// Requests dispatched to the module during the window.
    pub arrivals: u64,
    /// Requests dropped at/inside the module during the window.
    pub dropped: u64,
}

/// A typed decision leaving the control plane.
///
/// Every directive is stamped with the base `tick` and virtual `time`
/// it was decided at, the [`Level`] that decided it, and that level's
/// `epoch` — the count of decision rounds the level has run. Two
/// directives with the same level and epoch came from the same decision
/// round; a consumer reconciling against a slow transport can use the
/// epoch to drop superseded directives (a later epoch at the same level
/// always wins).
#[derive(Debug, Clone, PartialEq)]
pub struct Directive {
    /// Base tick the decision was taken at.
    pub tick: u64,
    /// Virtual time in seconds (`tick · T_L0`).
    pub time: f64,
    /// The hierarchy level that produced the decision.
    pub level: Level,
    /// The producing level's decision-round counter at `tick`.
    pub epoch: u64,
    /// What to do.
    pub kind: DirectiveKind,
}

/// The payload of a [`Directive`].
#[derive(Debug, Clone, PartialEq)]
pub enum DirectiveKind {
    /// Set a computer's frequency-table index (L0).
    Frequency {
        /// Global computer index.
        computer: usize,
        /// Frequency-table index to run at.
        index: usize,
    },
    /// Power a computer on or off (L1's α decision).
    Activation {
        /// Global computer index.
        computer: usize,
        /// `true` = power on (incurs boot dead time), `false` = drain
        /// and power off.
        on: bool,
    },
    /// Install a load split (L1's per-module γ over members when
    /// `module` is set; L2's cluster-wide split over modules when it is
    /// `None`).
    Split {
        /// The module whose member split this is, or `None` for the
        /// cluster-wide module split.
        module: Option<usize>,
        /// The weights, summing to 1 over live targets.
        weights: Vec<f64>,
    },
    /// A module entered or left safe mode (uniform split over live
    /// members, models distrusted). Informational: it accompanies the
    /// `Split`/`Activation` directives that enact the posture, so it
    /// maps to no plant action — consumers use it to raise or clear an
    /// operator-facing alarm.
    SafeMode {
        /// Module index.
        module: usize,
        /// `true` on entry, `false` on exit.
        active: bool,
    },
}

impl Directive {
    /// Translate to the plant-actuation [`Action`], or `None` for
    /// informational directives ([`DirectiveKind::SafeMode`]).
    pub fn to_action(&self) -> Option<Action> {
        match &self.kind {
            DirectiveKind::Frequency { computer, index } => {
                Some(Action::SetFrequency(*computer, *index))
            }
            DirectiveKind::Activation { computer, on } => Some(if *on {
                Action::PowerOn(*computer)
            } else {
                Action::PowerOff(*computer)
            }),
            DirectiveKind::Split {
                module: Some(m),
                weights,
            } => Some(Action::SetComputerWeights(*m, weights.clone())),
            DirectiveKind::Split {
                module: None,
                weights,
            } => Some(Action::SetModuleWeights(weights.clone())),
            DirectiveKind::SafeMode { .. } => None,
        }
    }
}

/// Why an observation was refused at the ingest surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The observation names a module the plane does not manage.
    UnknownModule {
        /// The offending module index.
        module: usize,
        /// Modules managed.
        modules: usize,
    },
    /// The observation names a member position outside its module.
    UnknownMember {
        /// The module reported for.
        module: usize,
        /// The offending member position.
        member: usize,
        /// Members in that module.
        members: usize,
    },
    /// The observation's tick was already decided: the plane never
    /// revisits a decided tick, so late telemetry is dropped (and
    /// counted) rather than buffered.
    Stale {
        /// The observation's tick.
        tick: u64,
        /// The earliest tick still accepted.
        next_tick: u64,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::UnknownModule { module, modules } => {
                write!(f, "unknown module {module} (plane manages {modules})")
            }
            IngestError::UnknownMember {
                module,
                member,
                members,
            } => write!(
                f,
                "unknown member {member} in module {module} ({members} members)"
            ),
            IngestError::Stale { tick, next_tick } => write!(
                f,
                "stale observation for tick {tick} (next undecided tick is {next_tick})"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

/// The observation-ingest surface of a control plane.
///
/// # Ordering guarantees
///
/// * Observations may arrive in **any order** across modules and across
///   future ticks: the plane buffers them by tick and assembles each
///   tick's view when it is decided, so a reordering transport needs no
///   client-side resequencing.
/// * Within one `(tick, module)` pair, the **last observation wins** —
///   a retransmission simply replaces the buffered one.
/// * An observation for a tick **already decided** is refused with
///   [`IngestError::Stale`]: the virtual clock never rewinds, and a
///   decision, once taken, is never revised.
/// * **Missing data never blocks the clock**: a tick may be decided
///   with whole modules or individual members absent — they are treated
///   as dark (blank window, `telemetry_ok = false`), which is exactly
///   the condition the policy's fault-tolerance path models.
pub trait ObservationIngest {
    /// Feed one module's telemetry for one tick.
    ///
    /// # Errors
    ///
    /// Refuses observations naming unknown modules/members and
    /// observations for already-decided ticks (see [`IngestError`]).
    fn ingest(&mut self, observation: ModuleObservation) -> Result<(), IngestError>;
}

/// The directive-emit surface of a control plane: decisions accumulate
/// in an internal queue and are drained by the transport that delivers
/// them to the plant.
pub trait DirectiveEmit {
    /// Take every directive emitted since the last drain, oldest first.
    /// Within one tick the order is the policy's actuation order and
    /// must be preserved by the consumer (a frequency directive may
    /// assume the activation before it has been applied).
    fn drain_directives(&mut self) -> Vec<Directive>;
}

/// Decide-latency accounting: wall-clock time spent inside the policy's
/// `decide`, excluding observation assembly and directive translation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Decisions timed.
    pub decisions: u64,
    /// Total time across all decisions.
    pub total: Duration,
    /// The slowest single decision.
    pub max: Duration,
    /// Search effort behind the latencies: candidate α configurations
    /// whose γ search actually ran across the policy's L1 decisions.
    pub candidates_evaluated: u64,
    /// Candidate α configurations skipped by the branch-and-bound
    /// admissible lower bound — work the decide path *didn't* do. The
    /// pruned fraction explains a latency shift without a profiler.
    pub candidates_pruned: u64,
}

impl LatencyStats {
    fn record(&mut self, elapsed: Duration) {
        self.decisions += 1;
        self.total += elapsed;
        self.max = self.max.max(elapsed);
    }

    /// Mean decide latency, or zero before any decision.
    pub fn mean(&self) -> Duration {
        if self.decisions == 0 {
            Duration::ZERO
        } else {
            self.total / self.decisions as u32
        }
    }
}

/// The operational counters a [`ClusterPolicy`] exposes through the
/// metrics surface. Everything here used to be buried in private
/// counters across three structs with three access idioms
/// (`HierarchicalPolicy`, its watchdog, its retrain manager); the
/// control plane surfaces them all in one place via
/// [`MetricsSnapshot`]. A policy without a given subsystem reports
/// zeros/empties — the defaults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicyMetrics {
    /// Observations blended into learned models so far (all levels).
    pub online_updates: u64,
    /// Drift detections fired per L1 learner: one inner vector per
    /// module, one counter per member abstraction map. Empty while
    /// online learning is off.
    pub map_drift_detections: Vec<Vec<u64>>,
    /// Drift detections fired per L2 learner (one counter per module
    /// cost model). Empty without an L2 or while online learning is
    /// off.
    pub model_drift_detections: Vec<u64>,
    /// Mean prequential tracking error (`|predicted − realized|` cost),
    /// or `None` before any outcome was derived.
    pub tracking_error: Option<f64>,
    /// Realized outcomes derived so far.
    pub tracking_samples: u64,
    /// Background rebuilds triggered so far (completed plus in flight).
    pub retrain_triggers: u64,
    /// Background rebuilds completed and hot-swapped so far.
    pub rebuilds: u64,
    /// `true` while a background rebuild is in flight.
    pub retrain_pending: bool,
    /// Members declared dead so far (cumulative).
    pub member_deaths: u64,
    /// Dead members that rejoined so far.
    pub member_recoveries: u64,
    /// Which members the watchdog currently considers dead, by global
    /// computer index. Empty without fault tolerance.
    pub members_dead: Vec<bool>,
    /// Module-periods spent in safe mode so far.
    pub safe_mode_periods: u64,
    /// Which modules are in safe mode right now. Empty without fault
    /// tolerance.
    pub safe_mode_active: Vec<bool>,
    /// L2→L1 feed-forward events (decided split pushed into a module's
    /// λ forecast) so far.
    pub feed_forward_events: u64,
    /// Per-level wall-clock decide overhead, indexed `[L0, L1, L2]`.
    pub level_overhead: [LevelOverhead; 3],
    /// Candidate α configurations γ-searched across all L1 decisions.
    pub l1_candidates_evaluated: u64,
    /// Candidate α configurations pruned by the L1 branch-and-bound.
    pub l1_candidates_pruned: u64,
}

impl PolicyMetrics {
    /// Total drift detections across every learner at every level.
    pub fn drift_detections(&self) -> u64 {
        let maps: u64 = self.map_drift_detections.iter().flatten().sum();
        maps + self.model_drift_detections.iter().sum::<u64>()
    }
}

/// Transport-layer counters for a control plane that talks to its
/// plant over a real wire (the `llc-net` node-agent/controller split).
/// The in-process [`ControlPlane`] has no transport and reports the
/// all-zero default; a networked driver fills this section into the
/// [`MetricsSnapshot`] it serves, so one endpoint explains both the
/// decisions and the link they rode on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransportMetrics {
    /// Frames received and successfully decoded.
    pub frames_in: u64,
    /// Frames encoded and sent.
    pub frames_out: u64,
    /// Wire bytes received (framing included).
    pub bytes_in: u64,
    /// Wire bytes sent (framing included).
    pub bytes_out: u64,
    /// Frames refused by the decoder (truncated, corrupted, version-
    /// skewed). A refused frame is dropped whole — never partially
    /// applied.
    pub decode_errors: u64,
    /// Observations that arrived after their tick was already decided
    /// and were therefore rejected at ingest (the transport-lateness
    /// face of `stale_observations`).
    pub late_observations: u64,
    /// Module-windows decided without that module's observation — the
    /// deadline fired first and the members were dark-filled.
    pub lost_observation_windows: u64,
    /// Accepted agent connections beyond the first (session
    /// re-establishment after a drop).
    pub reconnects: u64,
    /// Wedged-actuator reports received from agents: directives the
    /// agent applied whose actuator did not take the commanded value.
    pub wedged_reports: u64,
}

/// Everything observable about a control plane at one instant: the
/// driver's own ingest/emit/latency counters plus the policy's
/// [`PolicyMetrics`]. This is the one metrics surface — the counters
/// that used to require knowing which struct owned them
/// (`member_deaths` on the policy, `rebuilds` on the retrain manager,
/// per-learner detections on each controller) are all reachable from
/// here.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// The next undecided tick of the virtual clock.
    pub next_tick: u64,
    /// Ticks decided so far.
    pub ticks_decided: u64,
    /// Observations accepted at the ingest surface.
    pub observations_ingested: u64,
    /// Accepted observations that arrived after an observation for a
    /// later tick (genuine transport reordering).
    pub out_of_order_observations: u64,
    /// Observations refused because their tick was already decided.
    pub stale_observations: u64,
    /// Member-windows dark-filled because no telemetry arrived for them
    /// at a decided tick.
    pub dark_filled_members: u64,
    /// Directives emitted so far.
    pub directives_emitted: u64,
    /// Decide-latency accounting.
    pub decide: LatencyStats,
    /// The policy's own operational counters.
    pub policy: PolicyMetrics,
    /// Wire-transport counters, all zero for an in-process plane (see
    /// [`TransportMetrics`]).
    pub transport: TransportMetrics,
}

impl MetricsSnapshot {
    /// Members declared dead so far (cumulative).
    pub fn member_deaths(&self) -> u64 {
        self.policy.member_deaths
    }

    /// Dead members that rejoined so far.
    pub fn member_recoveries(&self) -> u64 {
        self.policy.member_recoveries
    }

    /// Module-periods spent in safe mode so far.
    pub fn safe_mode_periods(&self) -> u64 {
        self.policy.safe_mode_periods
    }

    /// Background rebuilds completed and hot-swapped so far.
    pub fn rebuilds(&self) -> u64 {
        self.policy.rebuilds
    }

    /// Total drift detections across every learner at every level.
    pub fn drift_detections(&self) -> u64 {
        self.policy.drift_detections()
    }
}

/// What one [`ControlPlane::step`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// The tick decided.
    pub tick: u64,
    /// Virtual time of the decision (seconds).
    pub time: f64,
    /// Wall-clock time spent inside the policy's `decide`.
    pub decide_time: Duration,
    /// Directives emitted by this step.
    pub directives: usize,
}

/// The driver that runs a [`ClusterPolicy`] as a control plane: it owns
/// the virtual clock and the level cadence, buffers ingested
/// observations by tick, assembles each tick's [`Observations`] (dark-
/// filling missing members), times the decision, and translates actions
/// into stamped [`Directive`]s.
///
/// The plane is transport-agnostic: [`Experiment`] drives it in
/// lockstep against the simulator, `examples/control_plane.rs` drives
/// it from a channel. Both produce bit-identical directive sequences
/// for the same telemetry stream, because the plane itself is
/// deterministic — all wall-clock measurement is confined to the
/// latency metrics.
///
/// [`Experiment`]: crate::Experiment
#[derive(Debug)]
pub struct ControlPlane<P: ClusterPolicy> {
    policy: P,
    /// Global computer indices per module (the topology).
    members: Vec<Vec<usize>>,
    /// Reverse topology: module of each global computer index.
    computer_module: Vec<usize>,
    t_l0: f64,
    cadence: Cadence,
    next_tick: u64,
    /// Buffered observations for undecided ticks, one slot per module.
    pending: BTreeMap<u64, Vec<Option<ModuleObservation>>>,
    /// Emitted directives awaiting a drain.
    out: VecDeque<Directive>,
    /// Last known state/frequency per computer, used to dark-fill
    /// members that sent no telemetry at all.
    last_state: Vec<PowerState>,
    last_frequency: Vec<usize>,
    /// Safe-mode posture per module at the previous L1 tick (diffed to
    /// emit `SafeMode` directives on transitions).
    safe_mode_prev: Vec<bool>,
    ingested: u64,
    out_of_order: u64,
    stale: u64,
    dark_filled: u64,
    emitted: u64,
    decide: LatencyStats,
}

impl<P: ClusterPolicy> ControlPlane<P> {
    /// A plane driving `policy` over the topology `members` (global
    /// computer indices per module) with base tick length `t_l0`
    /// seconds. The cadence is taken from the policy.
    ///
    /// # Panics
    ///
    /// Panics if the topology is empty, `t_l0` is not positive, or the
    /// member indices do not form a dense `0..n` cover (every global
    /// computer index in exactly one module).
    pub fn new(policy: P, members: Vec<Vec<usize>>, t_l0: f64) -> Self {
        assert!(t_l0 > 0.0, "base tick length must be positive");
        assert!(
            !members.is_empty(),
            "topology must have at least one module"
        );
        let num_computers: usize = members.iter().map(|m| m.len()).sum();
        let mut computer_module = vec![usize::MAX; num_computers];
        for (m, module) in members.iter().enumerate() {
            for &i in module {
                assert!(
                    i < num_computers && computer_module[i] == usize::MAX,
                    "member indices must form a dense 0..{num_computers} cover"
                );
                computer_module[i] = m;
            }
        }
        let cadence = policy.cadence();
        let num_modules = members.len();
        ControlPlane {
            policy,
            members,
            computer_module,
            t_l0,
            cadence,
            next_tick: 0,
            pending: BTreeMap::new(),
            out: VecDeque::new(),
            last_state: vec![PowerState::Off; num_computers],
            last_frequency: vec![0; num_computers],
            safe_mode_prev: vec![false; num_modules],
            ingested: 0,
            out_of_order: 0,
            stale: 0,
            dark_filled: 0,
            emitted: 0,
            decide: LatencyStats::default(),
        }
    }

    /// The topology: global computer indices per module.
    pub fn members(&self) -> &[Vec<usize>] {
        &self.members
    }

    /// The level cadence in force.
    pub fn cadence(&self) -> Cadence {
        self.cadence
    }

    /// The next undecided tick of the virtual clock.
    pub fn next_tick(&self) -> u64 {
        self.next_tick
    }

    /// The policy behind the plane.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the policy behind the plane.
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Dissolve the plane and hand the policy back.
    pub fn into_policy(self) -> P {
        self.policy
    }

    /// `true` when every module has reported for the next tick — the
    /// natural "step now" signal for an event-driven client. Stepping
    /// without it is allowed (missing reporters are dark-filled).
    pub fn ready(&self) -> bool {
        self.pending
            .get(&self.next_tick)
            .is_some_and(|slot| slot.iter().all(Option::is_some))
    }

    /// How many modules have reported for the next undecided tick. A
    /// deadline-driven transport reads this before forcing a [`step`]
    /// to count the module-windows it is about to dark-fill.
    ///
    /// [`step`]: ControlPlane::step
    pub fn reported_modules(&self) -> usize {
        self.pending
            .get(&self.next_tick)
            .map_or(0, |slot| slot.iter().filter(|o| o.is_some()).count())
    }

    /// Decide the next tick from whatever has been ingested for it,
    /// dark-filling missing members, and queue the resulting
    /// directives. Advances the virtual clock by one base tick.
    pub fn step(&mut self) -> StepReport {
        let tick = self.next_tick;
        let time = tick as f64 * self.t_l0;
        let num_computers = self.computer_module.len();
        let slot = self
            .pending
            .remove(&tick)
            .unwrap_or_else(|| vec![None; self.members.len()]);

        let mut computers: Vec<Option<ComputerObs>> = vec![None; num_computers];
        let mut modules = Vec::with_capacity(self.members.len());
        for (m, entry) in slot.into_iter().enumerate() {
            let (arrivals, dropped) = entry.as_ref().map_or((0, 0), |o| (o.arrivals, o.dropped));
            modules.push(ModuleObs {
                index: m,
                arrivals,
                dropped,
            });
            let Some(observation) = entry else { continue };
            for t in observation.members {
                let i = self.members[m][t.member];
                // The reporter freezes state/frequency at its last
                // healthy values when telemetry is lost; the plane
                // passes them through and remembers them for
                // dark-filling members that stop reporting entirely.
                self.last_state[i] = t.state;
                self.last_frequency[i] = t.frequency_index;
                computers[i] = Some(ComputerObs {
                    index: i,
                    module: m,
                    queue: t.queue,
                    window: t.window,
                    state: t.state,
                    frequency_index: t.frequency_index,
                    telemetry_ok: t.telemetry_ok,
                    rejected: t.rejected,
                });
            }
        }
        let mut dark_filled = 0u64;
        let computers: Vec<ComputerObs> = computers
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                c.unwrap_or_else(|| {
                    dark_filled += 1;
                    ComputerObs {
                        index: i,
                        module: self.computer_module[i],
                        queue: 0,
                        window: WindowStats::default(),
                        state: self.last_state[i],
                        frequency_index: self.last_frequency[i],
                        telemetry_ok: false,
                        rejected: 0,
                    }
                })
            })
            .collect();
        self.dark_filled += dark_filled;

        let obs = Observations {
            tick,
            time,
            computers,
            modules,
        };
        let started = Instant::now();
        let actions = self.policy.decide(&obs);
        let decide_time = started.elapsed();
        self.decide.record(decide_time);

        let mut emitted = 0usize;
        for action in actions {
            let (level, kind) = match action {
                Action::SetFrequency(computer, index) => {
                    (Level::L0, DirectiveKind::Frequency { computer, index })
                }
                Action::PowerOn(computer) => {
                    (Level::L1, DirectiveKind::Activation { computer, on: true })
                }
                Action::PowerOff(computer) => (
                    Level::L1,
                    DirectiveKind::Activation {
                        computer,
                        on: false,
                    },
                ),
                Action::SetComputerWeights(m, weights) => (
                    Level::L1,
                    DirectiveKind::Split {
                        module: Some(m),
                        weights,
                    },
                ),
                Action::SetModuleWeights(weights) => (
                    Level::L2,
                    DirectiveKind::Split {
                        module: None,
                        weights,
                    },
                ),
            };
            self.out.push_back(Directive {
                tick,
                time,
                level,
                epoch: self.cadence.epoch(level, tick),
                kind,
            });
            emitted += 1;
        }

        // Safe mode is an L1-period posture: diff it at L1 ticks and
        // emit transitions as informational directives.
        if self.cadence.is_l1_tick(tick) {
            let safe_now = self.policy.metrics().safe_mode_active;
            if safe_now.len() == self.safe_mode_prev.len() {
                for (m, (&was, &is)) in self.safe_mode_prev.iter().zip(&safe_now).enumerate() {
                    if was != is {
                        self.out.push_back(Directive {
                            tick,
                            time,
                            level: Level::L1,
                            epoch: self.cadence.epoch(Level::L1, tick),
                            kind: DirectiveKind::SafeMode {
                                module: m,
                                active: is,
                            },
                        });
                        emitted += 1;
                    }
                }
                self.safe_mode_prev = safe_now;
            }
        }
        self.emitted += emitted as u64;
        self.next_tick += 1;
        StepReport {
            tick,
            time,
            decide_time,
            directives: emitted,
        }
    }

    /// Step every tick whose window has fully elapsed by virtual time
    /// `now` (seconds), returning one report per decision. The idle
    /// form of the drive loop: feed observations as they arrive, then
    /// let the clock catch up.
    pub fn advance_to(&mut self, now: f64) -> Vec<StepReport> {
        let mut reports = Vec::new();
        while self.next_tick as f64 * self.t_l0 <= now + 1e-9 {
            reports.push(self.step());
        }
        reports
    }

    /// Snapshot every operational counter: the driver's and the
    /// policy's.
    pub fn metrics(&self) -> MetricsSnapshot {
        let policy = self.policy.metrics();
        // The decide-latency stats carry the policy's search-effort
        // counters alongside the wall-clock numbers, so one read
        // explains the other.
        let mut decide = self.decide;
        decide.candidates_evaluated = policy.l1_candidates_evaluated;
        decide.candidates_pruned = policy.l1_candidates_pruned;
        MetricsSnapshot {
            next_tick: self.next_tick,
            ticks_decided: self.next_tick,
            observations_ingested: self.ingested,
            out_of_order_observations: self.out_of_order,
            stale_observations: self.stale,
            dark_filled_members: self.dark_filled,
            directives_emitted: self.emitted,
            decide,
            policy,
            transport: TransportMetrics::default(),
        }
    }
}

impl<P: ClusterPolicy> ObservationIngest for ControlPlane<P> {
    fn ingest(&mut self, observation: ModuleObservation) -> Result<(), IngestError> {
        let m = observation.module;
        if m >= self.members.len() {
            return Err(IngestError::UnknownModule {
                module: m,
                modules: self.members.len(),
            });
        }
        let module_len = self.members[m].len();
        if let Some(bad) = observation.members.iter().find(|t| t.member >= module_len) {
            return Err(IngestError::UnknownMember {
                module: m,
                member: bad.member,
                members: module_len,
            });
        }
        if observation.tick < self.next_tick {
            self.stale += 1;
            return Err(IngestError::Stale {
                tick: observation.tick,
                next_tick: self.next_tick,
            });
        }
        if self
            .pending
            .keys()
            .next_back()
            .is_some_and(|&latest| latest > observation.tick)
        {
            self.out_of_order += 1;
        }
        let modules = self.members.len();
        let slot = self
            .pending
            .entry(observation.tick)
            .or_insert_with(|| vec![None; modules]);
        slot[m] = Some(observation);
        self.ingested += 1;
        Ok(())
    }
}

impl<P: ClusterPolicy> DirectiveEmit for ControlPlane<P> {
    fn drain_directives(&mut self) -> Vec<Directive> {
        self.out.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A policy that powers everything on at tick 0 and re-splits at
    /// its (fake) L1 cadence.
    struct Probe {
        cadence: Cadence,
        seen: Vec<u64>,
        dark_seen: usize,
    }

    impl ClusterPolicy for Probe {
        fn decide(&mut self, obs: &Observations) -> Vec<Action> {
            self.seen.push(obs.tick);
            self.dark_seen += obs.computers.iter().filter(|c| !c.telemetry_ok).count();
            let mut actions = Vec::new();
            if obs.tick == 0 {
                actions.push(Action::PowerOn(0));
                actions.push(Action::SetFrequency(1, 2));
            }
            if self.cadence.is_l1_tick(obs.tick) {
                actions.push(Action::SetComputerWeights(0, vec![0.5, 0.5]));
            }
            actions
        }
        fn name(&self) -> &str {
            "probe"
        }
        fn cadence(&self) -> Cadence {
            self.cadence
        }
    }

    fn plane() -> ControlPlane<Probe> {
        ControlPlane::new(
            Probe {
                cadence: Cadence {
                    l1_every: 4,
                    l2_every: 4,
                },
                seen: Vec::new(),
                dark_seen: 0,
            },
            vec![vec![0, 1]],
            30.0,
        )
    }

    fn telemetry(member: usize) -> MemberTelemetry {
        MemberTelemetry {
            member,
            queue: 1,
            window: WindowStats::default(),
            state: PowerState::On,
            frequency_index: 1,
            telemetry_ok: true,
            rejected: 0,
        }
    }

    fn observation(tick: u64, members: Vec<MemberTelemetry>) -> ModuleObservation {
        ModuleObservation {
            module: 0,
            tick,
            members,
            arrivals: 10,
            dropped: 0,
        }
    }

    #[test]
    fn directives_carry_level_and_epoch() {
        let mut plane = plane();
        plane
            .ingest(observation(0, vec![telemetry(0), telemetry(1)]))
            .unwrap();
        assert!(plane.ready());
        let report = plane.step();
        assert_eq!(report.tick, 0);
        let directives = plane.drain_directives();
        assert_eq!(report.directives, directives.len());
        let freq = directives
            .iter()
            .find(|d| matches!(d.kind, DirectiveKind::Frequency { .. }))
            .expect("frequency directive");
        assert_eq!(freq.level, Level::L0);
        assert_eq!(freq.epoch, 0);
        let split = directives
            .iter()
            .find(|d| matches!(d.kind, DirectiveKind::Split { .. }))
            .expect("split directive");
        assert_eq!(split.level, Level::L1);
        assert_eq!(
            split.to_action(),
            Some(Action::SetComputerWeights(0, vec![0.5, 0.5]))
        );
    }

    #[test]
    fn out_of_order_and_stale_ingest() {
        let mut plane = plane();
        plane
            .ingest(observation(1, vec![telemetry(0), telemetry(1)]))
            .unwrap();
        // Tick 0 arrives after tick 1: accepted, counted as reordered.
        plane
            .ingest(observation(0, vec![telemetry(0), telemetry(1)]))
            .unwrap();
        let _ = plane.step();
        let _ = plane.step();
        // Tick 0 again: already decided.
        let err = plane
            .ingest(observation(0, vec![telemetry(0)]))
            .unwrap_err();
        assert!(matches!(err, IngestError::Stale { tick: 0, .. }));
        let m = plane.metrics();
        assert_eq!(m.out_of_order_observations, 1);
        assert_eq!(m.stale_observations, 1);
        assert_eq!(m.ticks_decided, 2);
        assert_eq!(m.observations_ingested, 2);
    }

    #[test]
    fn missing_members_are_dark_filled() {
        let mut plane = plane();
        // Member 1 healthy at tick 0 so the plane learns its state.
        plane
            .ingest(observation(0, vec![telemetry(0), telemetry(1)]))
            .unwrap();
        let _ = plane.step();
        // Tick 1: member 1 missing entirely. Readiness is per-module —
        // the reporter spoke, so the tick counts as reported; the
        // omitted member is dark-filled at assembly.
        plane.ingest(observation(1, vec![telemetry(0)])).unwrap();
        assert!(plane.ready());
        let _ = plane.step();
        assert_eq!(plane.metrics().dark_filled_members, 1);
        assert_eq!(plane.policy().dark_seen, 1);
        // The dark fill froze the last known state.
        assert_eq!(plane.last_state[1], PowerState::On);
        assert_eq!(plane.last_frequency[1], 1);
    }

    #[test]
    fn advance_to_steps_the_virtual_clock() {
        let mut plane = plane();
        let reports = plane.advance_to(90.0);
        assert_eq!(reports.len(), 4, "ticks 0,1,2,3 elapsed by t=90s");
        assert_eq!(plane.next_tick(), 4);
        // No telemetry at all: everything dark-filled, decisions still
        // taken (absence of telemetry must not stall the controller).
        assert_eq!(plane.metrics().dark_filled_members, 8);
    }

    #[test]
    fn rejects_unknown_topology_references() {
        let mut plane = plane();
        let err = plane
            .ingest(ModuleObservation {
                module: 3,
                tick: 0,
                members: vec![],
                arrivals: 0,
                dropped: 0,
            })
            .unwrap_err();
        assert!(matches!(err, IngestError::UnknownModule { module: 3, .. }));
        let err = plane
            .ingest(observation(0, vec![telemetry(7)]))
            .unwrap_err();
        assert!(matches!(err, IngestError::UnknownMember { member: 7, .. }));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_topology_panics() {
        let _ = ControlPlane::new(
            Probe {
                cadence: Cadence::base(),
                seen: Vec::new(),
                dark_seen: 0,
            },
            vec![vec![0, 2]],
            30.0,
        );
    }

    #[test]
    fn cadence_epochs() {
        let c = Cadence {
            l1_every: 4,
            l2_every: 8,
        };
        assert!(c.is_l1_tick(0) && c.is_l1_tick(4) && !c.is_l1_tick(3));
        assert!(c.is_l2_tick(8) && !c.is_l2_tick(4));
        assert_eq!(c.epoch(Level::L0, 7), 7);
        assert_eq!(c.epoch(Level::L1, 7), 1);
        assert_eq!(c.epoch(Level::L2, 7), 0);
        assert_eq!(c.period_of(Level::L2, 30.0), 240.0);
    }
}
