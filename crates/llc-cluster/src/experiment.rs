use crate::control::{
    ControlPlane, Directive, DirectiveEmit, MemberTelemetry, MetricsSnapshot, ModuleObservation,
    ObservationIngest,
};
use crate::policy::{Action, ClusterPolicy};
use llc_sim::{ClusterConfig, ClusterSim, PowerState, SimError, WindowStats};
use llc_workload::{
    derive_seed, spread_arrivals, CapacityProfile, FaultKind, FaultPlan, Gaussian, RequestSampler,
    Trace, VirtualStore,
};
use rand::SeedableRng;
use std::time::Duration;

/// One base-tick record of an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct TickRecord {
    /// Base tick index.
    pub tick: u64,
    /// Window start time (seconds).
    pub time: f64,
    /// Requests injected during the window.
    pub arrivals: u64,
    /// Requests completed during the window (cluster-wide).
    pub completions: u64,
    /// Mean response time of the window's completions, if any.
    pub mean_response: Option<f64>,
    /// Computers active (on/booting/draining) after this tick's actions.
    pub active: usize,
    /// Frequency index per computer after this tick's actions.
    pub frequency_indices: Vec<usize>,
    /// Mean response per computer for this window.
    pub computer_responses: Vec<Option<f64>>,
    /// Total queued requests at the sampling instant.
    pub queue_total: usize,
    /// Per-computer queue lengths at the end of the window.
    pub queues: Vec<usize>,
    /// Per-computer activity (on/booting/draining) at the end of the window.
    pub active_flags: Vec<bool>,
    /// Cumulative energy at the end of the window.
    pub energy: f64,
    /// Cumulative dropped requests at the end of the window.
    pub dropped: u64,
    /// Wall-clock time the policy spent deciding at this tick.
    pub decision_time: Duration,
}

/// Aggregate outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSummary {
    /// Policy name.
    pub policy: String,
    /// Total requests injected.
    pub total_arrivals: u64,
    /// Total completions.
    pub total_completions: u64,
    /// Mean response time over all completions (seconds).
    pub mean_response: f64,
    /// Fraction of windows whose mean response exceeded the target.
    pub violation_fraction: f64,
    /// Total energy (power·seconds).
    pub total_energy: f64,
    /// Total dropped requests.
    pub total_dropped: u64,
    /// Total switch-on transitions across computers.
    pub total_switch_ons: u64,
    /// Mean policy decision time per tick.
    pub mean_decision_time: Duration,
}

/// The full log of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentLog {
    /// Policy name.
    pub policy: String,
    /// Response-time target used for violation accounting.
    pub response_target: f64,
    /// Per-tick records.
    pub ticks: Vec<TickRecord>,
    /// Every [`Directive`] the control plane emitted over the run, in
    /// emission order (the actuation order).
    pub directives: Vec<Directive>,
    /// The control plane's final [`MetricsSnapshot`] — decide latency,
    /// drift detections, retrain/rebuild counters, member
    /// deaths/recoveries, safe-mode periods.
    pub metrics: MetricsSnapshot,
    /// Switch-on transitions across all computers over the whole run.
    pub(crate) total_switch_ons: u64,
}

impl ExperimentLog {
    /// Summarize the run.
    pub fn summary(&self) -> ExperimentSummary {
        let total_arrivals: u64 = self.ticks.iter().map(|t| t.arrivals).sum();
        let total_completions: u64 = self.ticks.iter().map(|t| t.completions).sum();
        let weighted_response: f64 = self
            .ticks
            .iter()
            .filter_map(|t| t.mean_response.map(|r| r * t.completions as f64))
            .sum();
        let mean_response = if total_completions > 0 {
            weighted_response / total_completions as f64
        } else {
            0.0
        };
        let windows_with_completions = self
            .ticks
            .iter()
            .filter(|t| t.mean_response.is_some())
            .count();
        let violations = self
            .ticks
            .iter()
            .filter(|t| t.mean_response.is_some_and(|r| r > self.response_target))
            .count();
        let violation_fraction = if windows_with_completions > 0 {
            violations as f64 / windows_with_completions as f64
        } else {
            0.0
        };
        let decision_total: Duration = self.ticks.iter().map(|t| t.decision_time).sum();
        ExperimentSummary {
            policy: self.policy.clone(),
            total_arrivals,
            total_completions,
            mean_response,
            violation_fraction,
            total_energy: self.ticks.last().map_or(0.0, |t| t.energy),
            total_dropped: self.ticks.last().map_or(0, |t| t.dropped),
            total_switch_ons: self.total_switch_ons,
            mean_decision_time: if self.ticks.is_empty() {
                Duration::ZERO
            } else {
                decision_total / self.ticks.len() as u32
            },
        }
    }

    /// The number-of-active-computers series (Fig. 4 bottom, Fig. 6
    /// bottom).
    pub fn active_series(&self) -> Vec<(f64, usize)> {
        self.ticks.iter().map(|t| (t.time, t.active)).collect()
    }

    /// The frequency series of one computer (Fig. 5 top).
    ///
    /// # Panics
    ///
    /// Panics if `computer` is out of range.
    pub fn frequency_series(&self, computer: usize) -> Vec<(f64, usize)> {
        self.ticks
            .iter()
            .map(|t| (t.time, t.frequency_indices[computer]))
            .collect()
    }

    /// The per-window mean response series of one computer (Fig. 5
    /// bottom).
    ///
    /// # Panics
    ///
    /// Panics if `computer` is out of range.
    pub fn response_series(&self, computer: usize) -> Vec<(f64, Option<f64>)> {
        self.ticks
            .iter()
            .map(|t| (t.time, t.computer_responses[computer]))
            .collect()
    }

    /// Cluster-wide per-window mean response series.
    pub fn cluster_response_series(&self) -> Vec<(f64, Option<f64>)> {
        self.ticks
            .iter()
            .map(|t| (t.time, t.mean_response))
            .collect()
    }

    /// Total switch-on transitions (chattering metric), recorded at the
    /// end of the run.
    pub fn total_switch_ons(&self) -> u64 {
        self.total_switch_ons
    }

    /// Frequency switches summed over all computers — the limit-cycle
    /// metric of the drift-aware L0: a capacity-blind controller on a
    /// degraded plant keeps flapping between the frequency its model
    /// believes sufficient and the flat-out backlog drain. One shared
    /// definition, so the bench gate, tests and examples count the same
    /// thing.
    pub fn frequency_switches(&self) -> usize {
        let n = self.ticks.first().map_or(0, |t| t.frequency_indices.len());
        (0..n)
            .map(|i| {
                self.frequency_series(i)
                    .windows(2)
                    .filter(|w| w[0].1 != w[1].1)
                    .count()
            })
            .sum()
    }
}

/// Driver: runs a [`ClusterPolicy`] against the simulated cluster fed by
/// a workload trace and the virtual store.
///
/// Since the control-plane split, `Experiment` is one *client* of the
/// ingest/emit API: it owns the plant side (a [`SimAdapter`] wrapping
/// [`ClusterSim`] plus the drift/fault injectors), feeds the plane one
/// [`ModuleObservation`] per module per tick, and actuates the drained
/// [`Directive`]s back into the simulator — the same loop
/// `examples/control_plane.rs` runs over a channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Base sampling period `T_L0` (seconds per tick).
    pub t_l0: f64,
    /// Master seed for arrival spreading and the request sampler.
    pub seed: u64,
    /// Start with every computer already `On` with capacity-proportional
    /// weights (the paper's figures begin with an operating cluster).
    pub prewarmed: bool,
    /// Response-time target for violation accounting.
    pub response_target: f64,
    /// Plant-side capacity drift injected over the run: every computer's
    /// delivered capacity is scaled by the profile evaluated at the
    /// current tick (the drift stays invisible to demand telemetry and
    /// the power meter — the case the closed-loop hierarchy exists for).
    /// `None` = nominal plant.
    pub drift: Option<CapacityProfile>,
    /// Scheduled abrupt faults injected over the run: crashes, restarts
    /// and wedged actuators hit the simulator; blackouts and sensor
    /// noise corrupt the observation stream before the policy sees it.
    /// `None` = fault-free plant.
    pub faults: Option<FaultPlan>,
}

/// The plant side of the control-plane loop: wraps the simulator and
/// translates between its state and the ingest/emit API. `observe`
/// renders one tick of plant truth — filtered through the drift/fault
/// injectors, so a blacked-out machine reports blank and a noisy one
/// reports corrupted sums — as [`ModuleObservation`]s; `actuate` applies
/// drained [`Directive`]s; `advance_window` injects nothing itself but
/// runs the plant to the end of the tick's window and banks the realized
/// stats the *next* observation reports.
///
/// [`Experiment::run`] is one user; `examples/control_plane.rs` drives
/// the same adapter from a separate thread over channels. Both feed the
/// plane identical streams for identical seeds, which is what the golden
/// equivalence test pins.
pub struct SimAdapter {
    sim: ClusterSim,
    t_l0: f64,
    total_ticks: usize,
    drift: Option<CapacityProfile>,
    faults: Option<FaultPlan>,
    applied_scale: f64,
    blacked_out: Vec<bool>,
    // A crashed machine is dark the realistic way: it stops reporting
    // entirely (crash-stop is indistinguishable from a partition), and
    // the observation stream serves the last state the management plane
    // saw before the lights went out — not the plant's ground truth.
    crashed_dark: Vec<bool>,
    last_state: Vec<PowerState>,
    last_frequency: Vec<usize>,
    noise_sigma: Vec<Option<f64>>,
    // Noise draws come from a dedicated seeded stream so a fault plan
    // perturbs nothing else.
    noise_rng: rand::rngs::StdRng,
    unit_gaussian: Gaussian,
    prev_comp_stats: Vec<WindowStats>,
    prev_rejections: Vec<u64>,
    prev_mod_stats: Vec<WindowStats>,
    members: Vec<Vec<usize>>,
}

impl std::fmt::Debug for SimAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimAdapter")
            .field("t_l0", &self.t_l0)
            .field("total_ticks", &self.total_ticks)
            .field("members", &self.members)
            .finish_non_exhaustive()
    }
}

impl SimAdapter {
    /// A fresh plant for `experiment`'s drift/fault schedule, to be
    /// driven for `total_ticks` base ticks.
    ///
    /// # Panics
    ///
    /// Panics if the fault plan references a computer outside the
    /// cluster.
    pub fn new(sim_config: ClusterConfig, experiment: &Experiment, total_ticks: usize) -> Self {
        let sim = ClusterSim::new(sim_config);
        let num_computers = sim.num_computers();
        let num_modules = sim.num_modules();
        if let Some(plan) = &experiment.faults {
            if let Some(max) = plan.max_computer() {
                assert!(
                    max < num_computers,
                    "fault plan references computer {max}, cluster has {num_computers}"
                );
            }
        }
        let members: Vec<Vec<usize>> = (0..num_modules)
            .map(|m| sim.module_members(m).to_vec())
            .collect();
        let last_state = (0..num_computers)
            .map(|i| sim.computer(i).state())
            .collect();
        let last_frequency = (0..num_computers)
            .map(|i| sim.computer(i).frequency_index())
            .collect();
        SimAdapter {
            sim,
            t_l0: experiment.t_l0,
            total_ticks,
            drift: experiment.drift,
            faults: experiment.faults.clone(),
            applied_scale: f64::NAN,
            blacked_out: vec![false; num_computers],
            crashed_dark: vec![false; num_computers],
            last_state,
            last_frequency,
            noise_sigma: vec![None; num_computers],
            noise_rng: rand::rngs::StdRng::seed_from_u64(derive_seed(experiment.seed, 0xFA17)),
            unit_gaussian: Gaussian::new(0.0, 1.0),
            prev_comp_stats: vec![WindowStats::default(); num_computers],
            prev_rejections: vec![0u64; num_computers],
            prev_mod_stats: vec![WindowStats::default(); num_modules],
            members,
        }
    }

    /// Force every computer `On` with uniform weights (the paper's
    /// figures begin with an operating cluster).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] (cannot occur for a well-formed cluster).
    pub fn prewarm(&mut self) -> Result<(), SimError> {
        let num_computers = self.sim.num_computers();
        let num_modules = self.sim.num_modules();
        for i in 0..num_computers {
            self.sim.force_on(i);
        }
        self.sim.set_module_weights(&vec![1.0; num_modules])?;
        for m in 0..num_modules {
            let len = self.sim.module_members(m).len();
            self.sim.set_computer_weights(m, &vec![1.0; len])?;
        }
        for i in 0..num_computers {
            self.last_state[i] = self.sim.computer(i).state();
            self.last_frequency[i] = self.sim.computer(i).frequency_index();
        }
        Ok(())
    }

    /// The topology: global computer indices per module (what
    /// [`ControlPlane::new`] wants).
    pub fn members(&self) -> &[Vec<usize>] {
        &self.members
    }

    /// The plant being driven.
    pub fn sim(&self) -> &ClusterSim {
        &self.sim
    }

    /// The per-computer stats of the last completed window (what the
    /// next observation will report, noise aside).
    pub fn window_stats(&self) -> &[WindowStats] {
        &self.prev_comp_stats
    }

    /// Render tick `tick`'s plant state as one observation per module.
    ///
    /// Applies the scheduled capacity drift and fault events for the
    /// tick first, then reports the previous window plus instantaneous
    /// state: a blacked-out or crashed computer reports a blank window,
    /// no queue reading (`telemetry_ok = false`) and state/frequency
    /// frozen at the last healthy values; a noisy one reports
    /// multiplicatively corrupted response/demand sums; `rejected` is
    /// dispatcher-side and stays valid through darkness.
    pub fn observe(&mut self, tick: u64) -> Vec<ModuleObservation> {
        let num_computers = self.sim.num_computers();

        // Inject plant drift for this window (invisible to the
        // controllers' telemetry by construction). Only on change:
        // re-applying an unchanged scale would still re-time every
        // in-service request and push a fresh departure event per
        // computer per tick.
        if let Some(profile) = &self.drift {
            let scale = profile.scale_at(tick as usize, self.total_ticks);
            if scale != self.applied_scale {
                for i in 0..num_computers {
                    self.sim.set_service_scale(i, scale);
                }
                self.applied_scale = scale;
            }
        }

        // Fire this tick's scheduled faults: crashes, restarts and
        // wedged actuators hit the plant; blackout/noise toggles shape
        // how the observation below is (mis)reported.
        if let Some(plan) = &self.faults {
            for event in plan.events_at(tick) {
                let i = event.computer;
                match event.kind {
                    FaultKind::Crash { requeue } => {
                        self.sim.crash(i, requeue);
                        self.crashed_dark[i] = true;
                    }
                    FaultKind::Restart => {
                        self.sim.restart(i);
                        self.crashed_dark[i] = false;
                    }
                    FaultKind::BlackoutStart => self.blacked_out[i] = true,
                    FaultKind::BlackoutEnd => self.blacked_out[i] = false,
                    FaultKind::NoiseStart { sigma } => self.noise_sigma[i] = Some(sigma),
                    FaultKind::NoiseEnd => self.noise_sigma[i] = None,
                    FaultKind::StickActuator => self.sim.set_actuator_stuck(i, true),
                    FaultKind::UnstickActuator => self.sim.set_actuator_stuck(i, false),
                }
            }
        }

        // Per-computer telemetry in *global index order* — the noise
        // stream draws in that order, so module grouping must not
        // reorder it.
        let telemetry: Vec<MemberTelemetry> = (0..num_computers)
            .map(|i| {
                let c = self.sim.computer(i);
                let dark = self.blacked_out[i] || self.crashed_dark[i];
                if !dark {
                    self.last_state[i] = c.state();
                    self.last_frequency[i] = c.frequency_index();
                }
                let mut window = if dark {
                    WindowStats::default()
                } else {
                    self.prev_comp_stats[i]
                };
                if let (Some(sigma), false) = (self.noise_sigma[i], dark) {
                    // Corruption factors are strictly positive and
                    // finite: garbage, not NaN — estimators must
                    // survive both.
                    let corrupt = |x: f64, g: f64| x * (1.0 + sigma * g).max(0.05);
                    window.response_sum = corrupt(
                        window.response_sum,
                        self.unit_gaussian.sample(&mut self.noise_rng),
                    );
                    window.demand_sum = corrupt(
                        window.demand_sum,
                        self.unit_gaussian.sample(&mut self.noise_rng),
                    );
                }
                MemberTelemetry {
                    member: usize::MAX, // patched to the module position below
                    queue: if dark { 0 } else { c.queue_length() },
                    window,
                    state: self.last_state[i],
                    frequency_index: self.last_frequency[i],
                    telemetry_ok: !dark,
                    // Router-side, so *not* blanked when the machine is
                    // dark: the dispatcher knows its failed sends even
                    // when the target is silent.
                    rejected: self.prev_rejections[i],
                }
            })
            .collect();
        let mut telemetry: Vec<Option<MemberTelemetry>> = telemetry.into_iter().map(Some).collect();

        self.members
            .iter()
            .enumerate()
            .map(|(m, module)| ModuleObservation {
                module: m,
                tick,
                members: module
                    .iter()
                    .enumerate()
                    .map(|(position, &i)| {
                        let mut t = telemetry[i].take().expect("each computer in one module");
                        t.member = position;
                        t
                    })
                    .collect(),
                arrivals: self.prev_mod_stats[m].arrivals,
                dropped: self.prev_mod_stats[m].dropped,
            })
            .collect()
    }

    /// Apply drained directives to the plant in emission order
    /// (informational directives are skipped).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from malformed weight vectors.
    pub fn actuate(&mut self, directives: &[Directive]) -> Result<(), SimError> {
        for directive in directives {
            match directive.to_action() {
                Some(Action::PowerOn(i)) => self.sim.power_on(i),
                Some(Action::PowerOff(i)) => self.sim.power_off(i),
                Some(Action::SetFrequency(i, f)) => self.sim.set_frequency(i, f),
                Some(Action::SetModuleWeights(w)) => self.sim.set_module_weights(&w)?,
                Some(Action::SetComputerWeights(m, w)) => self.sim.set_computer_weights(m, &w)?,
                None => {}
            }
        }
        Ok(())
    }

    /// Schedule one request arriving at absolute time `at` with service
    /// demand `demand`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] for arrivals in the past.
    pub fn schedule_arrival(&mut self, at: f64, demand: f64) -> Result<(), SimError> {
        self.sim.schedule_arrival(at, demand)
    }

    /// Run the plant to the end of tick `tick`'s window and bank the
    /// realized stats for the next observation.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] (cannot occur in a well-formed run).
    pub fn advance_window(&mut self, tick: u64) -> Result<(), SimError> {
        self.sim.run_until((tick + 1) as f64 * self.t_l0)?;
        self.prev_comp_stats = self.sim.drain_computer_stats();
        self.prev_mod_stats = self.sim.drain_module_stats();
        self.prev_rejections = self.sim.drain_dispatch_rejections();
        Ok(())
    }
}

impl Experiment {
    /// Paper-default driver: 30 s ticks, pre-warmed cluster, `r* = 4 s`.
    pub fn paper_default(seed: u64) -> Self {
        Experiment {
            t_l0: 30.0,
            seed,
            prewarmed: true,
            response_target: 4.0,
            drift: None,
            faults: None,
        }
    }

    /// Run `policy` against a cluster built from `sim_config`, driven by
    /// `trace` (arrivals per bucket; rebucketed to the tick length) with
    /// request bodies drawn from `store`.
    ///
    /// The loop is the canonical control-plane client: observe the
    /// plant through a [`SimAdapter`], ingest into a [`ControlPlane`],
    /// step, drain and actuate the directives, advance the plant one
    /// window.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] (cannot occur with a well-formed trace) and
    /// trace rebucketing errors as a panic with context.
    ///
    /// # Panics
    ///
    /// Panics if the trace's bucket width is incompatible with `t_l0`.
    pub fn run(
        &self,
        sim_config: ClusterConfig,
        policy: &mut dyn ClusterPolicy,
        trace: &Trace,
        store: &VirtualStore,
    ) -> Result<ExperimentLog, SimError> {
        let ticks_trace = trace
            .rebucket(self.t_l0)
            .expect("trace bucket width must be an integer ratio of t_l0");
        let total_ticks = ticks_trace.len();
        let mut adapter = SimAdapter::new(sim_config, self, total_ticks);
        if self.prewarmed {
            adapter.prewarm()?;
        }
        let num_computers = adapter.sim().num_computers();

        let mut sampler = RequestSampler::paper_default(store, self.seed);
        let mut spread_rng = rand::rngs::StdRng::seed_from_u64(derive_seed(self.seed, 0xA121));
        let mut log = ExperimentLog {
            policy: policy.name().to_string(),
            response_target: self.response_target,
            ticks: Vec::with_capacity(total_ticks),
            directives: Vec::new(),
            metrics: MetricsSnapshot::default(),
            total_switch_ons: 0,
        };

        let mut plane = ControlPlane::new(policy, adapter.members().to_vec(), self.t_l0);
        for tick in 0..total_ticks as u64 {
            let t = tick as f64 * self.t_l0;

            // 1. Observe: previous window + instantaneous state, one
            // observation per module, through the drift/fault filters.
            for observation in adapter.observe(tick) {
                plane
                    .ingest(observation)
                    .expect("lockstep stream is in-order and well-formed");
            }

            // 2. Decide and actuate.
            debug_assert!(plane.ready(), "every module reported");
            let report = plane.step();
            let directives = plane.drain_directives();
            adapter.actuate(&directives)?;
            log.directives.extend(directives);

            // 3. Inject this window's arrivals and advance the plant.
            let count = ticks_trace.count(tick as usize).round().max(0.0) as usize;
            let times = spread_arrivals(&mut spread_rng, t, self.t_l0, count);
            for at in times {
                let (_, demand) = sampler.next_request();
                adapter.schedule_arrival(at, demand)?;
            }
            adapter.advance_window(tick)?;

            // 4. Record.
            let sim = adapter.sim();
            let stats = adapter.window_stats();
            let completions: u64 = stats.iter().map(|w| w.completions).sum();
            let response_sum: f64 = stats.iter().map(|w| w.response_sum).sum();
            log.ticks.push(TickRecord {
                tick,
                time: t,
                arrivals: count as u64,
                completions,
                mean_response: if completions > 0 {
                    Some(response_sum / completions as f64)
                } else {
                    None
                },
                active: sim.active_count(),
                frequency_indices: (0..num_computers)
                    .map(|i| sim.computer(i).frequency_index())
                    .collect(),
                computer_responses: stats.iter().map(|w| w.mean_response()).collect(),
                queue_total: (0..num_computers)
                    .map(|i| sim.computer(i).queue_length())
                    .sum(),
                queues: (0..num_computers)
                    .map(|i| sim.computer(i).queue_length())
                    .collect(),
                active_flags: (0..num_computers)
                    .map(|i| sim.computer(i).is_active())
                    .collect(),
                energy: sim.total_energy(),
                dropped: sim.dropped(),
                decision_time: report.decide_time,
            });
        }

        log.total_switch_ons = (0..num_computers)
            .map(|i| adapter.sim().computer(i).switch_ons())
            .sum();
        log.metrics = plane.metrics();
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::AlwaysMaxPolicy;
    use crate::policy::{Action, Observations};
    use llc_workload::Trace;

    fn tiny_cluster() -> ClusterConfig {
        use llc_sim::{ComputerConfig, PowerModel};
        ClusterConfig {
            modules: vec![vec![
                ComputerConfig::new(vec![1.0e9, 2.0e9], PowerModel::paper_default(), 120.0),
                ComputerConfig::new(vec![1.0e9, 2.0e9], PowerModel::paper_default(), 120.0),
            ]],
        }
    }

    fn flat_trace(buckets: usize, per_bucket: f64) -> Trace {
        Trace::new(30.0, vec![per_bucket; buckets]).unwrap()
    }

    #[test]
    fn always_max_serves_everything() {
        let store = VirtualStore::paper_default(1);
        let mut policy = AlwaysMaxPolicy::new(vec![vec![(1.0, 2), (1.0, 2)]]);
        let exp = Experiment::paper_default(7);
        let log = exp
            .run(tiny_cluster(), &mut policy, &flat_trace(20, 300.0), &store)
            .unwrap();
        let s = log.summary();
        assert_eq!(s.total_arrivals, 6000);
        assert_eq!(s.total_dropped, 0);
        // 300 req / 30 s = 10 req/s split over two fast machines: no
        // queueing to speak of, responses well under the target.
        assert!(s.mean_response < 0.5, "mean response {}", s.mean_response);
        assert!(s.violation_fraction < 0.05);
        assert!(s.total_completions > 5_500);
        assert!(s.total_energy > 0.0);
        // The run went through the control plane: the log carries its
        // metrics and the emitted directives.
        assert_eq!(log.metrics.ticks_decided, 20);
        assert_eq!(log.metrics.observations_ingested, 20);
        assert_eq!(log.metrics.dark_filled_members, 0);
        assert_eq!(
            log.metrics.directives_emitted as usize,
            log.directives.len()
        );
        assert!(!log.directives.is_empty());
    }

    #[test]
    fn log_series_have_tick_length() {
        let store = VirtualStore::paper_default(2);
        let mut policy = AlwaysMaxPolicy::new(vec![vec![(1.0, 2), (1.0, 2)]]);
        let exp = Experiment::paper_default(8);
        let log = exp
            .run(tiny_cluster(), &mut policy, &flat_trace(10, 100.0), &store)
            .unwrap();
        assert_eq!(log.ticks.len(), 10);
        assert_eq!(log.active_series().len(), 10);
        assert_eq!(log.frequency_series(0).len(), 10);
        assert_eq!(log.response_series(1).len(), 10);
        // Energy is cumulative, hence non-decreasing.
        assert!(log
            .ticks
            .windows(2)
            .all(|w| w[1].energy >= w[0].energy - 1e-9));
    }

    #[test]
    fn determinism_same_seed_same_log() {
        let store = VirtualStore::paper_default(3);
        let exp = Experiment::paper_default(9);
        let mut p1 = AlwaysMaxPolicy::new(vec![vec![(1.0, 2), (1.0, 2)]]);
        let mut p2 = AlwaysMaxPolicy::new(vec![vec![(1.0, 2), (1.0, 2)]]);
        let l1 = exp
            .run(tiny_cluster(), &mut p1, &flat_trace(8, 200.0), &store)
            .unwrap();
        let l2 = exp
            .run(tiny_cluster(), &mut p2, &flat_trace(8, 200.0), &store)
            .unwrap();
        // Decision timings are wall-clock and may differ; compare the
        // physically meaningful fields.
        for (a, b) in l1.ticks.iter().zip(&l2.ticks) {
            assert_eq!(a.arrivals, b.arrivals);
            assert_eq!(a.completions, b.completions);
            assert_eq!(a.mean_response, b.mean_response);
            assert_eq!(a.energy, b.energy);
        }
        assert_eq!(l1.directives, l2.directives);
    }

    #[test]
    fn cold_cluster_drops_until_powered() {
        let store = VirtualStore::paper_default(4);
        struct DoNothing;
        impl ClusterPolicy for DoNothing {
            fn decide(&mut self, _o: &Observations) -> Vec<Action> {
                Vec::new()
            }
            fn name(&self) -> &str {
                "do-nothing"
            }
        }
        let mut policy = DoNothing;
        let exp = Experiment {
            prewarmed: false,
            ..Experiment::paper_default(5)
        };
        let log = exp
            .run(tiny_cluster(), &mut policy, &flat_trace(4, 50.0), &store)
            .unwrap();
        let s = log.summary();
        assert_eq!(s.total_dropped, s.total_arrivals, "nothing on, all dropped");
    }
}
