use crate::l1::{AbstractionMap, L1Config, L1Controller, MemberSpec};
use llc_approx::SimplexGrid;
use llc_approx::{
    BlendConfig, BlendSchedule, CostMap, DenseGrid, GridSampler, RegressionTree, TreeConfig,
};
use llc_core::{BoundedSearch, DriftDetector, LearnRate, ObservationLog, OnlineConfig};
use llc_forecast::{Forecaster, LocalLinearTrend};
use std::sync::Arc;

/// The per-module cost approximation `J̃_i` used by the L2 controller.
///
/// §5.1: "we apply simulation-based learning techniques to generate an
/// architecture that quickly approximates M_i's behavior … A module is
/// first simulated and the corresponding cost values stored in a large
/// lookup table. This table is then used to train a regression tree."
///
/// Features are `(λ_i, c_factor, q̄)`: the arrival rate handed to the
/// module, a multiplicative factor on the members' prior processing times
/// (capturing service-time drift), and the mean member queue.
///
/// Beyond the trained queue range the tree saturates flat — a module
/// 2000 requests deep would look exactly as costly as one at the grid
/// edge, so the L2 would never shift load off a drowning module (the
/// same overload-clamping edge the L1 abstraction map documents). The
/// model therefore extends the cost surface linearly past the trained
/// queue ceiling with a slope measured from the training data.
#[derive(Debug, Clone)]
pub struct ModuleCostModel {
    tree: RegressionTree,
    /// Upper edge of the trained queue grid.
    q_hi: f64,
    /// Marginal cost per queued request past `q_hi`, measured from the
    /// training set (mean cost at the queue ceiling vs at zero queue).
    overload_slope: f64,
    /// Marginal cost of one request *arriving* at a saturated module:
    /// `overload_slope · T_L1 / m`. Within the simulated horizon a
    /// saturated module's capacity is consumed by its backlog, so a new
    /// arrival mostly converts into future queue — which the per-period
    /// tree cannot see. Without this term the learned cost surface is
    /// *flat in λ* for a drowned module, and the split search actually
    /// routes load toward it (its cost looks sunk while the healthy
    /// module's cost rises with load).
    overload_arrival_cost: f64,
    /// The training grid, kept so the online residual layer can be built
    /// over exactly the domain the tree was fit on.
    sampler: GridSampler,
    /// Online residual correction: a dense grid over the training domain
    /// learning `realized − tree` from observed module outcomes (a CART
    /// tree cannot be re-split incrementally, so drift is absorbed by an
    /// additively-corrected surface instead). `None` until
    /// [`ModuleCostModel::enable_online`].
    residual: Option<DenseGrid<f64>>,
}

/// Resolution of the module-learning grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleLearnSpec {
    /// Steps along the module arrival-rate axis.
    pub lambda_steps: usize,
    /// Steps along the processing-time factor axis.
    pub c_steps: usize,
    /// Steps along the initial-queue axis.
    pub q_steps: usize,
    /// Steps along the initially-active-machines axis.
    pub active_steps: usize,
    /// L1 periods simulated per grid point.
    pub periods: usize,
}

impl Default for ModuleLearnSpec {
    fn default() -> Self {
        ModuleLearnSpec {
            lambda_steps: 16,
            c_steps: 3,
            q_steps: 3,
            active_steps: 4,
            periods: 3,
        }
    }
}

impl ModuleLearnSpec {
    /// A coarse grid for fast unit tests.
    ///
    /// The λ axis keeps near-default resolution even here: the tree's λ
    /// cells must be comparable to the load the L2 moves per re-split
    /// (a few γ quanta of the cluster rate), or every candidate split
    /// lands in the same leaf and the cost landscape goes flat. The
    /// dense-grid substrate and shared maps make the extra points cheap.
    /// The c-factor axis needs an odd step count: with two points
    /// `{0.7, 1.4}` a nominal query (1.0) falls in the 0.7 leaf and the
    /// model believes the module is 43 % faster than it is, moving the
    /// overload knee far past the true capacity.
    pub fn coarse() -> Self {
        ModuleLearnSpec {
            lambda_steps: 16,
            c_steps: 3,
            q_steps: 2,
            active_steps: 2,
            periods: 2,
        }
    }
}

/// Analytic module simulator: replays the L1 controller over its
/// abstraction maps for a constant offered load — the inner loop of the
/// L2 learning pipeline ("the behavior of module M_i is learned by
/// simulating the control structure in Fig. 2(b)").
#[allow(clippy::too_many_arguments)] // mirrors the learning grid's axes
fn simulate_module(
    l1_config: &L1Config,
    members: &[MemberSpec],
    maps: &[Arc<AbstractionMap>],
    lambda: f64,
    c_factor: f64,
    q0: f64,
    active_init: usize,
    periods: usize,
) -> f64 {
    // `new_shared` clones Arcs, not tables: the learning grid builds one
    // controller per grid point, so a deep copy here would dominate the
    // whole offline pass.
    let mut l1 = L1Controller::new_shared(
        l1_config.clone_for_training(),
        members.to_vec(),
        maps.to_vec(),
    );
    let m = members.len();
    let mut queues: Vec<f64> = vec![q0; m];
    // Start with the `active_init` highest-capacity machines on — the
    // canonical configuration an L1 controller converges to at that size.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        (members[b].speed / members[b].c_prior).total_cmp(&(members[a].speed / members[a].c_prior))
    });
    let mut active = vec![false; m];
    for &j in order.iter().take(active_init.clamp(1, m)) {
        active[j] = true;
    }
    let demands: Vec<Option<f64>> = members.iter().map(|s| Some(s.c_prior * c_factor)).collect();
    let mut total = 0.0;
    for _ in 0..periods {
        let arrivals = (lambda * l1_config.period).round().max(0.0) as u64;
        l1.observe(arrivals, &demands);
        let q_obs: Vec<usize> = queues.iter().map(|&q| q.round() as usize).collect();
        let d = l1.decide(&q_obs, &active);
        let mut period_cost = 0.0;
        for j in 0..m {
            if d.alpha[j] {
                let entry = maps[j].query(
                    d.gamma[j] * lambda,
                    members[j].c_prior * c_factor,
                    queues[j],
                );
                period_cost += entry.cost;
                queues[j] = entry.final_q;
            } else {
                queues[j] = 0.0; // drained/off computers shed their queue
            }
            if d.alpha[j] && !active[j] {
                period_cost += l1_config.switch_on_penalty;
            }
        }
        active = d.alpha;
        total += period_cost;
    }
    total / periods as f64
}

impl L1Config {
    /// Clone with reduced search budgets for the offline training loop
    /// (thousands of inner decisions; full budgets are unnecessary for
    /// learning the coarse cost surface).
    fn clone_for_training(&self) -> L1Config {
        L1Config {
            search_rounds: self.search_rounds.min(8),
            search_evals: self.search_evals.min(600),
            ..*self
        }
    }
}

impl ModuleCostModel {
    /// Learn a module's cost surface by simulating its L1+L0 stack over a
    /// grid of offered loads, service-time factors and initial queues.
    ///
    /// # Panics
    ///
    /// Panics on degenerate inputs (empty members, non-positive
    /// `lambda_max`).
    pub fn learn(
        l1_config: &L1Config,
        members: &[MemberSpec],
        maps: &[Arc<AbstractionMap>],
        lambda_max: f64,
        spec: ModuleLearnSpec,
    ) -> Self {
        assert!(!members.is_empty(), "module needs members");
        assert!(lambda_max > 0.0, "lambda_max must be positive");
        let m = members.len() as f64;
        let q_hi = 100.0;
        let sampler = llc_approx::GridSampler::new(vec![
            (0.0, lambda_max, spec.lambda_steps),
            (0.7, 1.4, spec.c_steps),
            (0.0, q_hi, spec.q_steps),
            (1.0, m, spec.active_steps.min(members.len())),
        ]);
        let xs = sampler.points();
        // Every grid point is an independent module replay: fan out with
        // llc_par (slot-per-point writes keep the result bit-identical to
        // a serial pass).
        let ys: Vec<f64> = llc_par::par_map(&xs, |p| {
            simulate_module(
                l1_config,
                members,
                maps,
                p[0],
                p[1],
                p[2],
                p[3].round() as usize,
                spec.periods,
            )
        });
        let tree = RegressionTree::fit(
            &xs,
            &ys,
            TreeConfig {
                max_depth: 10,
                min_leaf: 2,
            },
        )
        .expect("grid sampler produces a consistent training set");
        // Marginal per-request cost of a queue beyond the trained grid:
        // mean training cost at the queue ceiling minus at zero queue.
        let mean_at = |q: f64| {
            let (sum, n) = xs
                .iter()
                .zip(&ys)
                .filter(|(x, _)| (x[2] - q).abs() < 1e-9)
                .fold((0.0, 0usize), |(s, n), (_, &y)| (s + y, n + 1));
            if n > 0 {
                sum / n as f64
            } else {
                0.0
            }
        };
        let overload_slope = ((mean_at(q_hi) - mean_at(0.0)) / q_hi).max(0.0);
        // One period of arrivals at rate λ adds λ·T/m to the *mean* queue
        // of a saturated module; each queued request costs the measured
        // marginal slope.
        let overload_arrival_cost = overload_slope * l1_config.period / members.len() as f64;
        ModuleCostModel {
            tree,
            q_hi,
            overload_slope,
            overload_arrival_cost,
            sampler,
            residual: None,
        }
    }

    /// Switch on the online residual layer: a zero-initialized dense grid
    /// over the training domain that [`ModuleCostModel::observe_outcome`]
    /// blends realized-minus-predicted errors into.
    pub fn enable_online(&mut self) {
        if self.residual.is_none() {
            self.residual = Some(DenseGrid::from_fn(&self.sampler, |_| 0.0));
        }
    }

    /// `true` once the online residual layer exists.
    pub fn online_enabled(&self) -> bool {
        self.residual.is_some()
    }

    /// Blend one realized module outcome into the residual layer: the
    /// correction cell at `(λ_i, c_factor, q̄, active)` moves toward
    /// `realized_cost − base prediction`, so repeated visits under drift
    /// bend the cost surface toward what the module actually does now.
    /// Returns the blend weight applied (0.0 when the key fell outside
    /// the trained box, or online learning is disabled).
    ///
    /// Observations beyond the trained queue ceiling are dropped, not
    /// clamped: `key_of` would fold them into the `q_hi` edge cells,
    /// which also answer legitimate near-ceiling queries — the same
    /// edge-poisoning the dense L1 substrate refuses. Overload states
    /// are already handled by the linear extension in `base_predict`.
    pub fn observe_outcome(
        &mut self,
        lambda: f64,
        c_factor: f64,
        q_mean: f64,
        active: usize,
        realized_cost: f64,
        cfg: &OnlineConfig,
    ) -> f64 {
        let blend = BlendConfig::new(cfg.learning_rate, cfg.prior_weight);
        self.observe_outcome_with(lambda, c_factor, q_mean, active, realized_cost, &blend)
    }

    /// [`ModuleCostModel::observe_outcome`] under an explicit blend
    /// schedule — the drift-detector rate switch picks between the
    /// steady-state and fast re-convergence schedules per update.
    pub fn observe_outcome_with(
        &mut self,
        lambda: f64,
        c_factor: f64,
        q_mean: f64,
        active: usize,
        realized_cost: f64,
        blend: &BlendConfig,
    ) -> f64 {
        if q_mean.max(0.0) > self.q_hi {
            return 0.0;
        }
        let key = self.key_of(lambda, c_factor, q_mean, active);
        let target = realized_cost - self.base_predict(lambda, c_factor, q_mean, active);
        match self.residual.as_mut() {
            Some(grid) => grid.update(&key, &target, blend),
            None => 0.0,
        }
    }

    /// Staleness sweep over the residual layer's confidence counts.
    pub fn decay_confidence(&mut self, factor: f64) {
        if let Some(grid) = self.residual.as_mut() {
            grid.decay_confidence(factor);
        }
    }

    /// The tree-domain key for `(λ, c_factor, q̄, active)` (queue clamped
    /// to the trained ceiling, exactly as the tree is queried).
    fn key_of(&self, lambda: f64, c_factor: f64, q_mean: f64, active: usize) -> [f64; 4] {
        [
            lambda.max(0.0),
            c_factor,
            q_mean.max(0.0).min(self.q_hi),
            active as f64,
        ]
    }

    /// Offline prediction: tree plus overload extension, without the
    /// online residual.
    fn base_predict(&self, lambda: f64, c_factor: f64, q_mean: f64, active: usize) -> f64 {
        let q = q_mean.max(0.0);
        let base = self.tree.predict(&self.key_of(lambda, c_factor, q, active));
        if q > self.q_hi {
            base + self.overload_slope * (q - self.q_hi)
                + self.overload_arrival_cost * lambda.max(0.0)
        } else {
            base
        }
    }

    /// Predicted per-period cost of the module at
    /// `(λ_i, c_factor, q̄, active)`.
    ///
    /// Queues beyond the trained ceiling add a linear backlog penalty on
    /// top of the tree's edge prediction, plus a per-arrival penalty that
    /// restores the λ gradient a saturated module loses (see the field
    /// docs on `overload_arrival_cost`) — so the split search sheds load
    /// off a drowning module instead of treating its cost as sunk. With
    /// online learning enabled, the learned residual correction is added
    /// on top.
    pub fn predict(&self, lambda: f64, c_factor: f64, q_mean: f64, active: usize) -> f64 {
        let base = self.base_predict(lambda, c_factor, q_mean, active);
        match &self.residual {
            Some(grid) => {
                base + grid
                    .probe(&self.key_of(lambda, c_factor, q_mean, active))
                    .copied()
                    .unwrap_or(0.0)
            }
            None => base,
        }
    }

    /// Size of the underlying tree (for the "compact" claim).
    pub fn tree_nodes(&self) -> usize {
        self.tree.node_count()
    }
}

/// Configuration of the L2 (cluster) controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L2Config {
    /// Sampling period `T_L2` in seconds (paper: 120).
    pub period: f64,
    /// Module-fraction quantum (paper: 0.1).
    pub gamma_quantum: f64,
    /// Maximum quanta moved per re-split. A module's machine count needs
    /// a full L1 period (the boot dead time) to follow its load share, so
    /// wholesale re-splits outrun the plant; bounding each decision to a
    /// neighborhood of the current split keeps the cascade stable. `0`
    /// disables the bound (full simplex enumeration every decision).
    pub max_move_quanta: usize,
    /// Hysteresis: adopt a new split only if it beats the current one by
    /// this relative margin (tree predictions are noisy; a flapping split
    /// costs boot dead times downstream).
    pub switch_margin: f64,
    /// Feed each re-split forward into the affected modules' λ forecasts
    /// (see `L1Controller::feed_forward_lambda`): without it a module's
    /// own trailing forecast only sees its new share one L1 period — one
    /// boot dead time — after the split moved, the lag the L1/L2
    /// timescale oscillation feeds on. Disable for ablation only.
    pub feed_forward: bool,
}

impl L2Config {
    /// The paper's §5.2 parameters.
    pub fn paper_default() -> Self {
        L2Config {
            period: 120.0,
            gamma_quantum: 0.1,
            max_move_quanta: 1,
            switch_margin: 0.1,
            feed_forward: true,
        }
    }
}

/// Module state as observed by the L2 controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleState {
    /// Processing-time factor relative to priors (1.0 = nominal).
    pub c_factor: f64,
    /// Mean queue length across the module's computers.
    pub queue_mean: f64,
    /// Machines currently active (on/booting/draining) in the module —
    /// the L2 must know how much of the module's capacity is actually
    /// standing, or it re-splits load faster than machines can boot.
    pub active: usize,
}

/// One L2 decision.
#[derive(Debug, Clone, PartialEq)]
pub struct L2Decision {
    /// The global split `{γ_i}` over modules (Σ = 1).
    pub gamma: Vec<f64>,
    /// Expected total cost of the chosen split.
    pub expected_cost: f64,
    /// Candidate splits evaluated.
    pub states_evaluated: usize,
}

/// The cluster-level controller (§5): splits the global arrivals across
/// modules by exhaustive enumeration of the quantized simplex (286 points
/// for four modules at quantum 0.1), scoring each split with the
/// regression-tree module models.
#[derive(Debug, Clone)]
pub struct L2Controller {
    config: L2Config,
    models: Vec<ModuleCostModel>,
    lambda_forecast: LocalLinearTrend,
    last_prediction: Option<f64>,
    prev_gamma: Option<Vec<f64>>,
    forecast_history: Vec<(f64, f64)>,
    total_states: u64,
    decisions: u64,
    /// Online learning state (knobs + pending outcomes), present once
    /// [`L2Controller::enable_online`] has been called.
    online: Option<OnlineL2>,
    /// One-shot hysteresis relaxation (set on cluster membership change):
    /// the next decision enumerates the full simplex and skips the
    /// switching margin, then the flag clears itself.
    relax_once: bool,
}

/// Online-learning state of an [`L2Controller`]. Each pending outcome
/// carries the module index it belongs to alongside the realized cost.
#[derive(Debug, Clone)]
struct OnlineL2 {
    cfg: OnlineConfig,
    /// Steady-state vs fast re-convergence blend schedules; the per
    /// module drift detectors pick between them.
    schedule: BlendSchedule,
    log: ObservationLog<(usize, f64)>,
    /// One Page–Hinkley detector per module over its normalized online
    /// residual stream.
    detectors: Vec<DriftDetector>,
    /// Learning passes run (drives the staleness-sweep cadence).
    passes: u64,
    /// Observations actually blended into a model (weight > 0).
    applied: u64,
}

impl L2Controller {
    /// Build from per-module cost models.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn new(config: L2Config, models: Vec<ModuleCostModel>) -> Self {
        assert!(!models.is_empty(), "cluster needs at least one module");
        L2Controller {
            config,
            models,
            lambda_forecast: LocalLinearTrend::with_default_noise().with_floor(0.0),
            last_prediction: None,
            prev_gamma: None,
            forecast_history: Vec::new(),
            total_states: 0,
            decisions: 0,
            online: None,
            relax_once: false,
        }
    }

    /// Relax hysteresis for the next decision only: membership just
    /// changed (a machine died or rejoined), so the previous split is
    /// stale evidence — enumerate the full simplex and let the winner
    /// through without the switching margin.
    pub fn relax_hysteresis_once(&mut self) {
        self.relax_once = true;
    }

    /// Number of modules managed.
    pub fn num_modules(&self) -> usize {
        self.models.len()
    }

    /// Switch on online incremental learning: enables the residual layer
    /// on every module model; realized outcomes recorded via
    /// [`L2Controller::record_outcome`] are blended in by
    /// [`L2Controller::learn_online`].
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (see [`OnlineConfig::validated`]).
    pub fn enable_online(&mut self, cfg: OnlineConfig) {
        let cfg = cfg.validated();
        for model in &mut self.models {
            model.enable_online();
        }
        self.online = Some(OnlineL2 {
            cfg,
            schedule: BlendSchedule::new(
                cfg.learning_rate,
                cfg.fast_learning_rate,
                cfg.prior_weight,
            ),
            log: ObservationLog::new(cfg.log_capacity),
            detectors: self
                .models
                .iter()
                .map(|_| DriftDetector::new(cfg.detector))
                .collect(),
            passes: 0,
            applied: 0,
        });
    }

    /// `true` once [`L2Controller::enable_online`] has been called.
    pub fn online_enabled(&self) -> bool {
        self.online.is_some()
    }

    /// Observations blended into the module models so far (weight > 0).
    pub fn online_updates(&self) -> u64 {
        self.online.as_ref().map_or(0, |o| o.applied)
    }

    /// Record one module's realized per-period cost at the state it
    /// served under: the arrival rate actually routed to it (`λ_i`), its
    /// processing-time factor, mean queue, active machine count, and the
    /// measured cost over the period.
    ///
    /// # Panics
    ///
    /// Panics if online learning is not enabled or `module` is out of
    /// range.
    pub fn record_outcome(
        &mut self,
        module: usize,
        lambda: f64,
        state: ModuleState,
        realized_cost: f64,
    ) {
        assert!(module < self.models.len(), "module index out of range");
        let tick = self.decisions;
        let online = self
            .online
            .as_mut()
            .expect("call enable_online before record_outcome");
        online.log.push(
            vec![
                lambda.max(0.0),
                state.c_factor,
                state.queue_mean,
                state.active as f64,
            ],
            (module, realized_cost),
            tick,
        );
    }

    /// Drain the outcome log into the module models (oldest first), then
    /// run the staleness sweep on the configured cadence. Returns the
    /// number of observations blended in.
    ///
    /// # Panics
    ///
    /// Panics if online learning is not enabled.
    pub fn learn_online(&mut self) -> usize {
        let online = self
            .online
            .as_mut()
            .expect("call enable_online before learn_online");
        let cfg = online.cfg;
        let mut applied = 0usize;
        for obs in online.log.drain() {
            let (module, realized_cost) = obs.outcome;
            let active = obs.key[3].round() as usize;
            let predicted = self.models[module].predict(obs.key[0], obs.key[1], obs.key[2], active);
            let residual = (realized_cost - predicted) / predicted.abs().max(1.0);
            online.detectors[module].observe(residual);
            let fast = online.detectors[module].rate() == LearnRate::Fast;
            let blend = *online.schedule.select(fast);
            let w = self.models[module].observe_outcome_with(
                obs.key[0],
                obs.key[1],
                obs.key[2],
                active,
                realized_cost,
                &blend,
            );
            if w > 0.0 {
                applied += 1;
            }
        }
        online.passes += 1;
        online.applied += applied as u64;
        if cfg.decay_every > 0 && online.passes.is_multiple_of(cfg.decay_every) {
            for model in &mut self.models {
                model.decay_confidence(cfg.decay_factor);
            }
        }
        applied
    }

    /// Drift detections fired across the module residual streams.
    pub fn drift_detections(&self) -> u64 {
        self.online
            .as_ref()
            .map_or(0, |o| o.detectors.iter().map(|d| d.detections()).sum())
    }

    /// Drift detections fired per module cost model — the per-learner
    /// resolution of the metrics surface. Empty while online learning
    /// is off.
    pub fn module_drift_detections(&self) -> Vec<u64> {
        self.online.as_ref().map_or_else(Vec::new, |o| {
            o.detectors.iter().map(|d| d.detections()).collect()
        })
    }

    /// `true` once any module's detector reports that residuals stopped
    /// being local (an offline re-train should be scheduled).
    pub fn retrain_recommended(&self) -> bool {
        self.online
            .as_ref()
            .is_some_and(|o| o.detectors.iter().any(|d| d.retrain_recommended()))
    }

    /// `true` when *this module's* detector latched the re-train signal —
    /// the per-module resolution the retrain consumer rebuilds at.
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    pub fn module_retrain_recommended(&self, module: usize) -> bool {
        assert!(module < self.models.len(), "module index out of range");
        self.online
            .as_ref()
            .is_some_and(|o| o.detectors[module].retrain_recommended())
    }

    /// Hot-swap a freshly retrained cost model in for `module`: the next
    /// decision scores splits against the new model. The module's online
    /// residual layer starts from zero (the residuals corrected the *old*
    /// tree), its drift detector re-arms, and — if online learning is on —
    /// the new model's residual grid is enabled immediately.
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    pub fn install_model(&mut self, module: usize, mut model: ModuleCostModel) {
        assert!(module < self.models.len(), "module index out of range");
        if let Some(online) = self.online.as_mut() {
            model.enable_online();
            online.detectors[module].rearm();
            // Outcomes recorded against the old model are stale evidence:
            // keep the other modules' pending entries, drop this one's.
            let kept: Vec<_> = online
                .log
                .drain()
                .into_iter()
                .filter(|obs| obs.outcome.0 != module)
                .collect();
            for obs in kept {
                online.log.push(obs.key, obs.outcome, obs.tick);
            }
        }
        self.models[module] = model;
    }

    /// Clear every module detector's re-train latch.
    pub fn acknowledge_retrain(&mut self) {
        if let Some(online) = self.online.as_mut() {
            for d in &mut online.detectors {
                d.acknowledge_retrain();
            }
        }
    }

    /// Seed the controller with an initial split (e.g. proportional to
    /// module capacity). Before any workload has been observed every
    /// candidate split costs the same, so an unseeded first decision
    /// would degenerate to an arbitrary simplex corner and the bounded
    /// re-split would crawl back from it.
    pub fn set_initial_split(&mut self, gamma: Vec<f64>) {
        assert_eq!(gamma.len(), self.models.len(), "one fraction per module");
        let grid = SimplexGrid::with_quantum(self.models.len(), self.config.gamma_quantum);
        self.prev_gamma = Some(grid.snap(&gamma));
    }

    /// Feed one L2 window: global arrivals over `T_L2`.
    pub fn observe(&mut self, global_arrivals: u64) {
        let rate = global_arrivals as f64 / self.config.period;
        if let Some(pred) = self.last_prediction {
            self.forecast_history.push((rate, pred));
        }
        self.lambda_forecast.observe(rate);
    }

    /// Global arrival-rate forecast (req/s).
    pub fn lambda_estimate(&self) -> f64 {
        self.lambda_forecast.predict_one().max(0.0)
    }

    /// Recorded (actual, predicted) global rates.
    pub fn forecast_history(&self) -> &[(f64, f64)] {
        &self.forecast_history
    }

    /// Average splits evaluated per decision.
    pub fn mean_states_evaluated(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.total_states as f64 / self.decisions as f64
        }
    }

    /// Decide the split `{γ_i}` given per-module states.
    ///
    /// # Panics
    ///
    /// Panics if `modules` length differs from the model count.
    pub fn decide(&mut self, modules: &[ModuleState]) -> L2Decision {
        assert_eq!(modules.len(), self.models.len(), "state per module");
        let relaxed = std::mem::take(&mut self.relax_once);
        let lambda_g = self.lambda_forecast.predict_one().max(0.0);
        self.last_prediction = Some(lambda_g);

        let grid = SimplexGrid::with_quantum(self.models.len(), self.config.gamma_quantum);
        // First decision: full enumeration. Afterwards: the bounded
        // neighborhood of the previous split (up to `max_move_quanta`
        // single-quantum transfers), mirroring the L1's "limited
        // neighborhood of [the current] state".
        let candidates = match (&self.prev_gamma, self.config.max_move_quanta) {
            (Some(prev), bound) if bound > 0 && !relaxed => {
                let mut frontier = vec![prev.clone()];
                let mut all = vec![prev.clone()];
                for _ in 0..bound {
                    let mut next = Vec::new();
                    for point in &frontier {
                        for n in grid.neighbors(point) {
                            if !all.iter().any(|p: &Vec<f64>| {
                                p.iter().zip(&n).all(|(a, b)| (a - b).abs() < 1e-9)
                            }) {
                                all.push(n.clone());
                                next.push(n);
                            }
                        }
                    }
                    frontier = next;
                }
                all
            }
            _ => grid.enumerate(),
        };
        let evaluate = |gamma: &Vec<f64>| -> f64 {
            gamma
                .iter()
                .enumerate()
                .map(|(i, &g)| {
                    self.models[i].predict(
                        g * lambda_g,
                        modules[i].c_factor,
                        modules[i].queue_mean,
                        modules[i].active,
                    )
                })
                .sum()
        };
        let opt = BoundedSearch::argmin(candidates, evaluate).expect("simplex grid is never empty");

        // Hysteresis: keep the current split unless the winner clears the
        // switching margin — tree predictions are noisy and a flapping
        // split costs boot dead times downstream.
        let (gamma, cost) = match &self.prev_gamma {
            Some(prev) if !relaxed => {
                let prev_cost = evaluate(prev);
                let moved = prev
                    .iter()
                    .zip(&opt.candidate)
                    .any(|(a, b)| (a - b).abs() > 1e-9);
                if moved && opt.cost > prev_cost * (1.0 - self.config.switch_margin) {
                    (prev.clone(), prev_cost)
                } else {
                    (opt.candidate, opt.cost)
                }
            }
            _ => (opt.candidate, opt.cost),
        };

        self.total_states += opt.evaluations as u64;
        self.decisions += 1;
        self.prev_gamma = Some(gamma.clone());
        L2Decision {
            gamma,
            expected_cost: cost,
            states_evaluated: opt.evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l1::LearnSpec;
    use crate::profiles::{ComputerProfile, FrequencyProfile};

    fn members(n: usize) -> Vec<MemberSpec> {
        let profiles = FrequencyProfile::module_set();
        (0..n)
            .map(|j| {
                let cp = ComputerProfile::paper_default(profiles[j % 4]);
                MemberSpec {
                    phis: cp.phis(),
                    speed: cp.speed,
                    c_prior: 0.0175 / cp.speed,
                }
            })
            .collect()
    }

    fn maps_for(ms: &[MemberSpec]) -> Vec<Arc<AbstractionMap>> {
        let l0 = L0Config::paper_default();
        ms.iter()
            .map(|m| {
                Arc::new(AbstractionMap::learn(
                    &l0,
                    &m.phis,
                    (m.c_prior * 0.6, m.c_prior * 1.5),
                    2.0 / (m.c_prior * 0.6),
                    150.0,
                    LearnSpec::coarse(),
                ))
            })
            .collect()
    }

    use crate::L0Config;

    fn module_model(n: usize) -> ModuleCostModel {
        let ms = members(n);
        let maps = maps_for(&ms);
        ModuleCostModel::learn(
            &L1Config::paper_default(),
            &ms,
            &maps,
            200.0,
            ModuleLearnSpec::coarse(),
        )
    }

    #[test]
    fn module_cost_monotone_in_offered_load() {
        let model = module_model(2);
        let light = model.predict(5.0, 1.0, 0.0, 2);
        let heavy = model.predict(190.0, 1.0, 0.0, 2);
        assert!(
            heavy > light,
            "overloading a module must cost more ({heavy:.2} vs {light:.2})"
        );
        assert!(model.tree_nodes() >= 3, "tree must have learned splits");
    }

    #[test]
    fn l2_balances_identical_modules() {
        let model = module_model(2);
        let models = vec![model.clone(), model.clone(), model.clone(), model];
        let mut l2 = L2Controller::new(L2Config::paper_default(), models);
        for _ in 0..5 {
            l2.observe((200.0 * 120.0) as u64);
        }
        let states = vec![
            ModuleState {
                c_factor: 1.0,
                queue_mean: 0.0,
                active: 2,
            };
            4
        ];
        let d = l2.decide(&states);
        let total: f64 = d.gamma.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Identical modules under heavy load: no module should be starved
        // or monopolized.
        for &g in &d.gamma {
            assert!((0.1..=0.5).contains(&g), "unbalanced split {:?}", d.gamma);
        }
        assert_eq!(d.states_evaluated, 286, "full 0.1-quantum enumeration");
    }

    #[test]
    fn l2_shifts_load_away_from_backlogged_module() {
        let model = module_model(2);
        let models = vec![model.clone(), model];
        let mut l2 = L2Controller::new(L2Config::paper_default(), models);
        for _ in 0..5 {
            l2.observe((100.0 * 120.0) as u64);
        }
        let states = vec![
            ModuleState {
                c_factor: 1.0,
                queue_mean: 95.0, // deeply backlogged
                active: 2,
            },
            ModuleState {
                c_factor: 1.0,
                queue_mean: 0.0,
                active: 2,
            },
        ];
        let d = l2.decide(&states);
        assert!(
            d.gamma[1] >= d.gamma[0],
            "healthy module should get at least as much load: {:?}",
            d.gamma
        );
    }

    #[test]
    fn relaxed_hysteresis_enumerates_full_simplex_once() {
        let model = module_model(2);
        let models = vec![model.clone(), model];
        let mut l2 = L2Controller::new(L2Config::paper_default(), models);
        for _ in 0..5 {
            l2.observe((100.0 * 120.0) as u64);
        }
        let states = vec![
            ModuleState {
                c_factor: 1.0,
                queue_mean: 0.0,
                active: 2,
            };
            2
        ];
        let first = l2.decide(&states);
        assert_eq!(first.states_evaluated, 11, "first decision enumerates");
        let bounded = l2.decide(&states);
        assert!(
            bounded.states_evaluated < 11,
            "steady state searches the bounded neighborhood, got {}",
            bounded.states_evaluated
        );
        l2.relax_hysteresis_once();
        let relaxed = l2.decide(&states);
        assert_eq!(
            relaxed.states_evaluated, 11,
            "membership change re-enumerates the full simplex"
        );
        let after = l2.decide(&states);
        assert!(after.states_evaluated < 11, "relaxation is one-shot");
    }

    #[test]
    fn residual_layer_corrects_drifted_module_cost() {
        let mut model = module_model(2);
        let cfg = OnlineConfig::default();
        model.enable_online();
        assert!(model.online_enabled());
        let offline = model.predict(50.0, 1.0, 10.0, 2);
        // The module drifted: it now costs 40 units more at this state.
        let realized = offline + 40.0;
        for _ in 0..40 {
            let w = model.observe_outcome(50.0, 1.0, 10.0, 2, realized, &cfg);
            assert!(w > 0.0, "in-domain outcome must blend");
        }
        let adapted = model.predict(50.0, 1.0, 10.0, 2);
        assert!(
            (adapted - realized).abs() < 2.0,
            "residual must close most of the 40-unit drift gap: \
             offline {offline:.2}, adapted {adapted:.2}, realized {realized:.2}"
        );
        // Over-ceiling outcomes are dropped, not clamped into the q_hi
        // edge cells that also answer legitimate near-ceiling queries.
        assert_eq!(model.observe_outcome(50.0, 1.0, 500.0, 2, 1e6, &cfg), 0.0);
        // Disabled path unchanged.
        let mut fresh = module_model(2);
        assert!(!fresh.online_enabled());
        assert_eq!(
            fresh.observe_outcome(50.0, 1.0, 10.0, 2, realized, &cfg),
            0.0
        );
    }

    #[test]
    fn l2_learn_online_drains_log_into_models() {
        let model = module_model(2);
        let models = vec![model.clone(), model];
        let mut l2 = L2Controller::new(L2Config::paper_default(), models);
        l2.enable_online(OnlineConfig::default());
        for _ in 0..3 {
            l2.observe((60.0 * 120.0) as u64);
        }
        let state = ModuleState {
            c_factor: 1.0,
            queue_mean: 5.0,
            active: 2,
        };
        let _ = l2.decide(&[state, state]);
        let before = l2.models[0].predict(30.0, 1.0, 5.0, 2);
        for _ in 0..20 {
            l2.record_outcome(0, 30.0, state, before + 25.0);
            l2.record_outcome(1, 30.0, state, before + 25.0);
            assert_eq!(l2.learn_online(), 2);
        }
        assert_eq!(l2.online_updates(), 40);
        let after = l2.models[0].predict(30.0, 1.0, 5.0, 2);
        assert!(
            after > before + 15.0,
            "online outcomes must raise the prediction ({before:.2} -> {after:.2})"
        );
    }

    use llc_core::OnlineConfig;

    #[test]
    fn forecast_history_tracks_pairs() {
        let model = module_model(2);
        let mut l2 = L2Controller::new(L2Config::paper_default(), vec![model]);
        l2.observe(1200);
        let _ = l2.decide(&[ModuleState {
            c_factor: 1.0,
            queue_mean: 0.0,
            active: 2,
        }]);
        l2.observe(1300);
        assert_eq!(l2.forecast_history().len(), 1);
        assert!(l2.mean_states_evaluated() > 0.0);
    }
}
