use crate::{L0Config, L0Controller};
use llc_approx::{
    train_dense, train_table, Blend, BlendConfig, BlendSchedule, CostMap, DenseGrid, DenseSlab,
    GridSampler, LookupTable, SimplexGrid,
};
use llc_core::{DriftDetector, LearnRate, ObservationLog, OnlineConfig, UncertaintyBand};
use llc_forecast::{Ewma, Forecaster, LocalLinearTrend};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A cell of the abstraction map `g`: the average per-`T_L0` cost the L0
/// controller achieves over one L1 period, and the queue it leaves behind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GEntry {
    /// Average cost per L0 period (response slack + power).
    pub cost: f64,
    /// Average power draw over the L1 period (`a + φ²` units).
    pub power: f64,
    /// Queue length at the end of the L1 period.
    pub final_q: f64,
}

impl Blend for GEntry {
    /// Component-wise exponential blend: cost, power and end-queue all
    /// drift toward the observed outcome at the same rate.
    fn blend(&mut self, target: &Self, w: f64) {
        self.cost.blend(&target.cost, w);
        self.power.blend(&target.power, w);
        self.final_q.blend(&target.final_q, w);
    }
}

/// Which lookup substrate backs an [`AbstractionMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapBackend {
    /// Flat dense grid: O(1) clamp + stride probes, zero allocation.
    /// The default — the learning domain is always a full rectangle.
    Dense,
    /// Quantized-key hash table: the paper's literal "hash table",
    /// retained for sparse/ragged domains and equivalence testing.
    Hash,
}

/// The trained table behind an [`AbstractionMap`], in either substrate.
#[derive(Debug, Clone)]
enum GTable {
    Dense(DenseGrid<GEntry>),
    Hash(LookupTable<GEntry>),
}

impl GTable {
    /// Robust probe through the shared [`CostMap`] surface, so clamp
    /// semantics live in one place per substrate.
    #[inline]
    fn get(&self, point: &[f64]) -> GEntry {
        let entry = match self {
            GTable::Dense(grid) => CostMap::probe(grid, point),
            GTable::Hash(table) => CostMap::probe(table, point),
        };
        *entry.expect("abstraction map is trained before use")
    }

    fn len(&self) -> usize {
        match self {
            GTable::Dense(grid) => CostMap::len(grid),
            GTable::Hash(table) => CostMap::len(table),
        }
    }

    fn update(&mut self, point: &[f64], target: &GEntry, cfg: &BlendConfig) -> f64 {
        match self {
            GTable::Dense(grid) => CostMap::update(grid, point, target, cfg),
            GTable::Hash(table) => CostMap::update(table, point, target, cfg),
        }
    }

    fn decay_confidence(&mut self, factor: f64) {
        match self {
            GTable::Dense(grid) => CostMap::decay_confidence(grid, factor),
            GTable::Hash(table) => CostMap::decay_confidence(table, factor),
        }
    }

    fn confidence(&self, point: &[f64]) -> f64 {
        match self {
            GTable::Dense(grid) => CostMap::confidence(grid, point),
            GTable::Hash(table) => CostMap::confidence(table, point),
        }
    }

    fn for_each_confident(&self, min_confidence: f64, f: &mut dyn FnMut(&[f64], &GEntry, f64)) {
        match self {
            GTable::Dense(grid) => CostMap::for_each_confident(grid, min_confidence, f),
            GTable::Hash(table) => CostMap::for_each_confident(table, min_confidence, f),
        }
    }
}

/// The abstraction map `g` for one computer (§4.2): a table over the
/// quantized `(λ, ĉ, q₀)` domain, learned offline by replaying the L0
/// controller on the analytic queue model — "the map g is initially
/// obtained in off-line fashion by simulating the L0 controller using
/// various values from the input set and a quantized approximation of the
/// domain of ω". Backed by a [`DenseGrid`] by default (see
/// [`MapBackend`]); the hash substrate of the paper's prose remains
/// available via [`AbstractionMap::learn_with_backend`].
#[derive(Debug)]
pub struct AbstractionMap {
    table: GTable,
    /// Upper edge of the trained arrival-rate grid.
    lambda_max: f64,
    /// Upper edge of the trained queue grid.
    q_max: f64,
    /// L0 steps per L1 period (l = T_L1 / T_L0).
    steps_per_period: usize,
    /// The L0 configuration replayed for out-of-grid queries.
    l0: L0Config,
    /// The computer's frequency scaling factors.
    phis: Vec<f64>,
    /// Memo of out-of-grid analytic replays (dense substrate only — the
    /// hash substrate stays a faithful seed baseline). The replay is a
    /// pure function of `(λ, ĉ, q₀)` and the offline learning loops
    /// re-ask the same overload points thousands of times across grid
    /// points, so the map caches answers across *all* consumers sharing
    /// it (the maps are `Arc`-shared). Keyed by exact bit patterns:
    /// cached answers are bit-identical to fresh replays.
    replay_cache: Mutex<HashMap<(u64, u64, u64), GEntry>>,
    /// Bumped whenever a table cell's *value* may have changed (online
    /// blends, reseeds) — the cost-slab cache below keys on it.
    version: u64,
    /// Lazily built struct-of-arrays projection of the dense table's
    /// `cost` field (see [`DenseSlab`]), tagged with the `version` it was
    /// built at. The L1 γ search fills whole cost lanes from this —
    /// contiguous `f64` reads instead of per-probe strided [`GEntry`]
    /// lookups. `None` cache or a stale tag rebuilds on demand; the hash
    /// substrate never populates it.
    cost_slab: Mutex<Option<(u64, Arc<DenseSlab>)>>,
}

impl Clone for AbstractionMap {
    fn clone(&self) -> Self {
        AbstractionMap {
            table: self.table.clone(),
            lambda_max: self.lambda_max,
            q_max: self.q_max,
            steps_per_period: self.steps_per_period,
            l0: self.l0,
            phis: self.phis.clone(),
            // Fresh caches: cheaper to refill than to deep-copy, and
            // semantically invisible (pure derivations of the table).
            replay_cache: Mutex::new(HashMap::new()),
            version: self.version,
            cost_slab: Mutex::new(None),
        }
    }
}

/// Resolution of the offline learning grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LearnSpec {
    /// Grid steps along the arrival-rate axis.
    pub lambda_steps: usize,
    /// Grid steps along the processing-time axis.
    pub c_steps: usize,
    /// Grid steps along the initial-queue axis.
    pub q_steps: usize,
}

impl Default for LearnSpec {
    fn default() -> Self {
        LearnSpec {
            lambda_steps: 24,
            c_steps: 5,
            q_steps: 6,
        }
    }
}

impl LearnSpec {
    /// A coarse grid for fast unit tests.
    ///
    /// Coarse must still resolve the overload knee: the λ grid spans
    /// ~3.3× a computer's capacity, so with 8 steps a cell was ~0.5×
    /// capacity wide and a just-overloaded rate quantized down to a
    /// stable one — the L1 would happily shed machines into overload.
    /// 20 steps keep the knee inside one cell of its true position; the
    /// dense-grid substrate makes the extra points cheap even in tests.
    pub fn coarse() -> Self {
        LearnSpec {
            lambda_steps: 20,
            c_steps: 3,
            q_steps: 3,
        }
    }
}

impl AbstractionMap {
    /// Learn the map for a computer with scaling factors `phis` whose
    /// local processing times range over `c_range` seconds, for arrival
    /// rates up to `lambda_max` req/s and queues up to `q_max`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate ranges.
    pub fn learn(
        l0: &L0Config,
        phis: &[f64],
        c_range: (f64, f64),
        lambda_max: f64,
        q_max: f64,
        spec: LearnSpec,
    ) -> Self {
        Self::learn_with_backend(
            l0,
            phis,
            c_range,
            lambda_max,
            q_max,
            spec,
            MapBackend::Dense,
        )
    }

    /// [`AbstractionMap::learn`] with an explicit lookup substrate.
    ///
    /// Both backends are trained over the same [`GridSampler`] with cell
    /// widths equal to the grid pitch ([`GridSampler::cell_steps`] — the
    /// single source of truth, so cell width and grid spacing cannot
    /// desynchronize), and answer every query identically (see the
    /// substrate-equivalence test). Dense training fans out over the grid
    /// with `llc_par`; the result is bit-identical to a serial build.
    ///
    /// # Panics
    ///
    /// Panics on degenerate ranges.
    pub fn learn_with_backend(
        l0: &L0Config,
        phis: &[f64],
        c_range: (f64, f64),
        lambda_max: f64,
        q_max: f64,
        spec: LearnSpec,
        backend: MapBackend,
    ) -> Self {
        assert!(c_range.0 > 0.0 && c_range.1 >= c_range.0, "invalid c range");
        assert!(lambda_max > 0.0, "lambda_max must be positive");
        assert!(q_max >= 0.0, "q_max must be non-negative");
        let steps_per_period = 4; // T_L1 / T_L0 = l = 4 in the paper
        let sampler = GridSampler::new(vec![
            (0.0, lambda_max, spec.lambda_steps),
            (c_range.0, c_range.1, spec.c_steps),
            (0.0, q_max, spec.q_steps),
        ]);
        let g = |p: &[f64]| {
            let (cost, power, final_q) =
                L0Controller::simulate_model(l0, phis, p[2], p[0], p[1], steps_per_period);
            GEntry {
                cost,
                power,
                final_q,
            }
        };
        let table = match backend {
            MapBackend::Dense => GTable::Dense(train_dense(&sampler, g)),
            MapBackend::Hash => GTable::Hash(train_table(&sampler, &sampler.cell_steps(), g)),
        };
        AbstractionMap {
            table,
            lambda_max,
            q_max,
            steps_per_period,
            l0: *l0,
            phis: phis.to_vec(),
            replay_cache: Mutex::new(HashMap::new()),
            version: 0,
            cost_slab: Mutex::new(None),
        }
    }

    /// [`AbstractionMap::learn_with_backend`] over `spec`'s standard
    /// envelope ([`MemberSpec::learn_envelope`]) — the constructor the
    /// hierarchy, benches and drift tests share.
    pub fn learn_for_member(
        l0: &L0Config,
        spec: &MemberSpec,
        learn: LearnSpec,
        backend: MapBackend,
    ) -> Self {
        let (c_range, lambda_max, q_max) = spec.learn_envelope();
        Self::learn_with_backend(l0, &spec.phis, c_range, lambda_max, q_max, learn, backend)
    }

    /// Number of trained cells.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` if the map holds no cells.
    pub fn is_empty(&self) -> bool {
        self.table.len() == 0
    }

    /// `true` when `(λ, q₀)` falls inside the trained grid, i.e. a
    /// [`AbstractionMap::query`] will be a pure table probe rather than an
    /// analytic-model replay. Callers use this to decide what is worth
    /// memoizing: table probes are O(1), replays are not.
    #[inline]
    pub fn in_table(&self, lambda: f64, q0: f64) -> bool {
        lambda.max(0.0) <= self.lambda_max && q0.max(0.0) <= self.q_max
    }

    /// Approximate cost/next-queue for `(λ, ĉ, q₀)`.
    ///
    /// Within the trained grid this is a hash-table lookup. Queries
    /// *outside* the grid — arrival rates beyond the learned ceiling or
    /// backlogs deeper than the learned queue range, both transient
    /// overload states — replay the analytic L0 model directly instead:
    /// clamping them into the grid would flatten the overload cost and
    /// make dumping all load on one saturated computer look as cheap as
    /// splitting it (the paper's table faces the same edge; the hybrid
    /// keeps the common path O(1) while staying exact in the tail).
    ///
    /// # Panics
    ///
    /// Panics if the map is empty (never after [`AbstractionMap::learn`]).
    pub fn query(&self, lambda: f64, c: f64, q0: f64) -> GEntry {
        let lambda = lambda.max(0.0);
        let q0 = q0.max(0.0);
        if lambda <= self.lambda_max && q0 <= self.q_max {
            return self.table.get(&[lambda, c, q0]);
        }
        if let GTable::Hash(table) = &self.table {
            // Online insert-or-blend may have planted a *measured* cell
            // out here; prefer it over replaying the possibly-drifted
            // offline model. Two guards keep this from changing anything
            // else: exact-cell hits only (the robust lookup's
            // nearest-neighbor scan would let one far-out insert flatten
            // the whole overload tail between it and the trained box),
            // and only cells that have absorbed an observation
            // (confidence > 0) — a *trained* edge cell that happens to
            // share a quantizer cell with a just-out-of-envelope query
            // must keep replaying exactly like the dense substrate does.
            let key = [lambda, c, q0];
            if table.confidence(&key) > 0.0 {
                if let Some(entry) = table.get_exact(&key) {
                    return *entry;
                }
            }
        }
        if matches!(self.table, GTable::Dense(_)) {
            // Offline learning re-asks the same overload points thousands
            // of times; a long *online* run under sustained overload asks
            // ever-fresh forecast-derived values instead. The cap keeps
            // the memo effective for the former without letting the
            // latter grow it without bound (~3 MB at the cap).
            let key = (lambda.to_bits(), c.to_bits(), q0.to_bits());
            if let Some(entry) = self.replay_cache.lock().expect("cache lock").get(&key) {
                return *entry;
            }
            let entry = self.replay(lambda, c, q0);
            let mut cache = self.replay_cache.lock().expect("cache lock");
            if cache.len() < Self::REPLAY_CACHE_CAP {
                cache.insert(key, entry);
            }
            return entry;
        }
        self.replay(lambda, c, q0)
    }

    /// Blend the realized outcome of one control period into the map —
    /// the paper's §6 outlook ("the abstraction maps … can be updated
    /// online using the observed values"), so the map self-corrects under
    /// drift without re-running the offline training pass.
    ///
    /// Substrate policies differ exactly where the offline designs do:
    /// the dense grid blends in-box observations only (out-of-box
    /// outcomes are dropped — its edge cells answer every clamped query
    /// and must not be poisoned by overload tails), while the hash table
    /// insert-or-blends *everywhere*, growing its coverage from observed
    /// traffic: a cell inserted beyond the trained envelope is preferred
    /// by [`AbstractionMap::query`] over the analytic replay — but only
    /// that exact cell, so one far-out observation never becomes the
    /// nearest-neighbor authority for the whole region between it and
    /// the trained box. Returns the blend weight applied (0.0 =
    /// observation dropped).
    pub fn update_online(
        &mut self,
        lambda: f64,
        c: f64,
        q0: f64,
        outcome: GEntry,
        cfg: &OnlineConfig,
    ) -> f64 {
        let blend = BlendConfig::new(cfg.learning_rate, cfg.prior_weight);
        self.update_online_with(lambda, c, q0, outcome, &blend)
    }

    /// [`AbstractionMap::update_online`] under an explicit blend
    /// schedule — the drift-detector rate switch picks between the
    /// steady-state and fast re-convergence schedules per update.
    pub fn update_online_with(
        &mut self,
        lambda: f64,
        c: f64,
        q0: f64,
        outcome: GEntry,
        blend: &BlendConfig,
    ) -> f64 {
        let lambda = lambda.max(0.0);
        let q0 = q0.max(0.0);
        let w = self.table.update(&[lambda, c, q0], &outcome, blend);
        if w > 0.0 {
            self.version += 1;
        }
        w
    }

    /// Staleness sweep: shrink every cell's online confidence by
    /// `factor`, so cells the traffic left behind re-adapt quickly when
    /// it returns. Batched over `llc-par` on the dense substrate.
    /// Confidence is metadata — cell *values* are untouched, so the
    /// cost-slab cache stays valid.
    pub fn decay_confidence(&mut self, factor: f64) {
        self.table.decay_confidence(factor);
    }

    /// Online observations credited to the cell containing `(λ, ĉ, q₀)`.
    pub fn confidence_at(&self, lambda: f64, c: f64, q0: f64) -> f64 {
        self.table.confidence(&[lambda.max(0.0), c, q0.max(0.0)])
    }

    /// Carry measured truth across a retrain: re-apply every cell of
    /// `old` that absorbed at least `min_confidence` online observations
    /// into this (freshly rebuilt) map under `blend`. The rebuild
    /// replaces the stale *offline* surface; the cells the plant actually
    /// visited — realized outcomes, not model replays — are the one part
    /// of the old map worth keeping. Returns the number of cells that
    /// blended in (out-of-envelope cells are dropped by the dense
    /// substrate, inserted by the hash substrate — each exactly as its
    /// online update path does).
    pub fn reseed_online_from(
        &mut self,
        old: &AbstractionMap,
        min_confidence: f64,
        blend: &BlendConfig,
    ) -> usize {
        let mut applied = 0usize;
        let table = &mut self.table;
        old.table
            .for_each_confident(min_confidence, &mut |key, entry, _conf| {
                if table.update(key, entry, blend) > 0.0 {
                    applied += 1;
                }
            });
        if applied > 0 {
            self.version += 1;
        }
        applied
    }

    /// The exact out-of-grid answer: replay the analytic L0 model.
    fn replay(&self, lambda: f64, c: f64, q0: f64) -> GEntry {
        let (cost, power, final_q) = L0Controller::simulate_model(
            &self.l0,
            &self.phis,
            q0,
            lambda,
            c.max(1e-6),
            self.steps_per_period,
        );
        GEntry {
            cost,
            power,
            final_q,
        }
    }

    /// Cap on the out-of-grid replay memo (~3 MB of entries).
    const REPLAY_CACHE_CAP: usize = 65_536;

    /// Batched [`AbstractionMap::query`]: resolve many `(λ, ĉ, q₀)`
    /// points at once, answering each exactly as the scalar path would
    /// (same table probes, same replay-cache consultation) but replaying
    /// all cache misses through one lockstep
    /// [`L0Controller::simulate_model_batch`] call — the decision core's
    /// out-of-grid lane fills land here. Hash-backed maps fall through
    /// to scalar queries (they have no replay memo to batch against).
    pub fn query_batch(&self, points: &[(f64, f64, f64)]) -> Vec<GEntry> {
        if !matches!(self.table, GTable::Dense(_)) {
            return points
                .iter()
                .map(|&(l, c, q)| self.query(l, c, q))
                .collect();
        }
        let mut out: Vec<Option<GEntry>> = vec![None; points.len()];
        let mut miss_idx: Vec<usize> = Vec::new();
        let mut miss_pts: Vec<(f64, f64, f64)> = Vec::new();
        {
            let cache = self.replay_cache.lock().expect("cache lock");
            for (i, &(lambda, c, q0)) in points.iter().enumerate() {
                let lambda = lambda.max(0.0);
                let q0 = q0.max(0.0);
                if lambda <= self.lambda_max && q0 <= self.q_max {
                    out[i] = Some(self.table.get(&[lambda, c, q0]));
                } else if let Some(entry) =
                    cache.get(&(lambda.to_bits(), c.to_bits(), q0.to_bits()))
                {
                    out[i] = Some(*entry);
                } else {
                    miss_idx.push(i);
                    // simulate_model_batch lanes are (q₀, λ, ĉ) — and the
                    // scalar replay floors ĉ, so match it exactly.
                    miss_pts.push((q0, lambda, c.max(1e-6)));
                }
            }
        }
        if !miss_pts.is_empty() {
            let replayed = L0Controller::simulate_model_batch(
                &self.l0,
                &self.phis,
                &miss_pts,
                self.steps_per_period,
            );
            let mut cache = self.replay_cache.lock().expect("cache lock");
            for (k, &i) in miss_idx.iter().enumerate() {
                let (cost, power, final_q) = replayed[k];
                let entry = GEntry {
                    cost,
                    power,
                    final_q,
                };
                let (lambda, c, q0) = points[i];
                let key = (
                    lambda.max(0.0).to_bits(),
                    c.to_bits(),
                    q0.max(0.0).to_bits(),
                );
                if cache.len() < Self::REPLAY_CACHE_CAP {
                    cache.insert(key, entry);
                }
                out[i] = Some(entry);
            }
        }
        out.into_iter()
            .map(|e| e.expect("every point resolved"))
            .collect()
    }

    /// The struct-of-arrays projection of the dense table's `cost` field,
    /// rebuilt lazily whenever an online blend or reseed has touched cell
    /// values since the last build (`None` on the hash substrate). Values
    /// read through the slab are bit-identical to
    /// [`AbstractionMap::query`]'s in-grid probes — same per-axis
    /// clamp-and-stride indexing, same stored `f64`s.
    pub fn cost_slab(&self) -> Option<Arc<DenseSlab>> {
        let grid = match &self.table {
            GTable::Dense(grid) => grid,
            GTable::Hash(_) => return None,
        };
        let mut cached = self.cost_slab.lock().expect("slab lock");
        if let Some((version, slab)) = cached.as_ref() {
            if *version == self.version {
                return Some(Arc::clone(slab));
            }
        }
        let slab = Arc::new(grid.project(|e| e.cost));
        *cached = Some((self.version, Arc::clone(&slab)));
        Some(slab)
    }

    /// Upper edge of the trained arrival-rate grid (req/s).
    pub fn trained_lambda_max(&self) -> f64 {
        self.lambda_max
    }

    /// Upper edge of the trained initial-queue grid.
    pub fn trained_q_max(&self) -> f64 {
        self.q_max
    }
}

/// Configuration of an L1 (module) controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L1Config {
    /// Sampling period `T_L1` in seconds (paper: 120, the boot dead time).
    pub period: f64,
    /// Load-fraction quantum (paper: 0.05 for m = 4, 0.1 for m ∈ {6, 10}).
    pub gamma_quantum: f64,
    /// Switch-on transient penalty `W` (paper: 8).
    pub switch_on_penalty: f64,
    /// Minimum number of active computers kept in the module.
    pub min_active: usize,
    /// Bounded-search improvement rounds for the γ search.
    pub search_rounds: usize,
    /// Bounded-search evaluation budget per candidate α.
    pub search_evals: usize,
    /// Chattering mitigation: average candidate costs over the
    /// `{λ̂−δ, λ̂, λ̂+δ}` band (§4.2). Disable for ablation only.
    pub use_uncertainty_band: bool,
    /// Optional hard power budget for the module (the paper's `H(x) ≤ 0`
    /// constraints include "the overall energy budget for the cluster"):
    /// candidate configurations whose expected power draw exceeds the
    /// budget are infeasible. `None` = unconstrained.
    pub power_budget: Option<f64>,
    /// Branch-and-bound over the candidate α vectors: order them by an
    /// admissible lower bound (switch-on penalty + drain cost — both map
    /// costs are ≥ 0, so the bound never exceeds a candidate's true
    /// total) and skip the γ search for any candidate whose bound
    /// already exceeds the incumbent. Picks the *same* decision as the
    /// exhaustive sweep (see the decision-core golden tests); disable
    /// for ablation or to measure the pruning win.
    pub pruned_search: bool,
}

impl L1Config {
    /// The paper's §4.3 parameters for a four-computer module.
    pub fn paper_default() -> Self {
        L1Config {
            period: 120.0,
            gamma_quantum: 0.05,
            switch_on_penalty: 8.0,
            min_active: 1,
            search_rounds: 24,
            search_evals: 4_000,
            use_uncertainty_band: true,
            power_budget: None,
            pruned_search: true,
        }
    }
}

/// One L1 decision.
#[derive(Debug, Clone, PartialEq)]
pub struct L1Decision {
    /// On/off vector `{α_j}` over the module's computers.
    pub alpha: Vec<bool>,
    /// Load fractions `{γ_j}` (zero for inactive computers, Σ = 1).
    pub gamma: Vec<f64>,
    /// Expected (band-averaged) cost of the chosen configuration.
    pub expected_cost: f64,
    /// Candidate states evaluated during the search (overhead metric —
    /// the paper reports ~858 per period for m = 4). Under the pruned
    /// search this counts only the candidates actually γ-searched, so it
    /// drops as pruning bites.
    pub states_evaluated: usize,
    /// Candidate α vectors whose γ search actually ran.
    pub candidates_evaluated: usize,
    /// Candidate α vectors skipped because their admissible lower bound
    /// already exceeded the incumbent's total cost.
    pub candidates_pruned: usize,
}

/// Static description of one module member as the L1 controller sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberSpec {
    /// Frequency scaling factors (ascending, last = 1.0).
    pub phis: Vec<f64>,
    /// Relative full-speed capacity.
    pub speed: f64,
    /// Prior mean local processing time (before observations arrive).
    pub c_prior: f64,
}

impl MemberSpec {
    /// The paper's §4.3 reference computer for `profile`: its frequency
    /// set and relative speed, with the 17.5 ms reference mean demand
    /// (speed-scaled) as the processing-time prior.
    pub fn paper_default(profile: crate::FrequencyProfile) -> Self {
        let cp = crate::ComputerProfile::paper_default(profile);
        MemberSpec {
            phis: cp.phis(),
            speed: cp.speed,
            c_prior: 0.0175 / cp.speed,
        }
    }

    /// The learning envelope every offline pass in this repo trains
    /// over, as `(c_range, lambda_max, q_max)`: ĉ spanning
    /// `(0.6, 1.6)·c_prior`, λ up to 2× the capacity at the *fastest*
    /// in-range service time (so the overload knee is always inside the
    /// trained surface and extrapolation beyond the grid continues an
    /// already-overloaded slope), queues up to 200. One definition keeps
    /// the hierarchy, the benches and the drift tests training —
    /// and therefore gating — over the same maps.
    pub fn learn_envelope(&self) -> ((f64, f64), f64, f64) {
        (
            (self.c_prior * 0.6, self.c_prior * 1.6),
            2.0 / (self.c_prior * 0.6),
            200.0,
        )
    }
}

/// Every per-decision buffer [`L1Controller::decide`] needs, owned by
/// the controller and reused across decisions so the steady decide path
/// performs no heap allocation. Taken off the controller with
/// `std::mem::take` for the duration of a decision (the borrow checker
/// cannot see that the buffers and the rest of `self` are disjoint
/// across the closures the search builds) and restored at the end.
#[derive(Debug, Clone, Default)]
struct DecideScratch {
    /// γ cost lanes: `lanes[(j·3 + s)·(levels+1) + u]` is the map cost
    /// of routing `u` γ quanta to member `j` under band sample `s` —
    /// filled lazily, one (member, unit) column at a time as the
    /// hill-climbs actually visit it, then read by every candidate's
    /// evaluation as three flat loads per active member. Kept
    /// per-sample (not pre-summed across the band) so the evaluator
    /// can reproduce the scalar objective's summation order bit for
    /// bit.
    lanes: Vec<f64>,
    /// Which `(member, unit)` lane columns are filled this decision.
    lane_filled: Vec<bool>,
    /// Candidate α vectors, flattened `m` entries per candidate.
    candidates: Vec<bool>,
    /// Per-candidate switch-on penalty.
    switch_costs: Vec<f64>,
    /// Per-candidate backlog-drain charge for shed members.
    drain_sums: Vec<f64>,
    /// Per-candidate admissible lower bound (switch + drain).
    bounds: Vec<f64>,
    /// Candidate visit order (bound-sorted under the pruned search).
    order: Vec<usize>,
    /// Per-member zero-load backlog drain cost.
    drain_costs: Vec<f64>,
    /// Hill-climb state: current γ split in grid units.
    climb_units: Vec<i64>,
    /// Neighbor-enumeration workspace for the simplex visitor.
    scratch_units: Vec<i64>,
    /// Best neighbor found in the current climb round.
    round_units: Vec<i64>,
    /// Indices of the members active under the current candidate.
    active_idx: Vec<usize>,
    /// Warm-start load split over the active members.
    weights: Vec<f64>,
    /// Largest-remainder workspace for `SimplexGrid::snap_units_into`.
    snap_rema: Vec<(usize, f64)>,
    /// Per-member effective processing-time estimates for this decision.
    cs: Vec<f64>,
    /// Cached all-false liveness vector for the plain `decide` wrapper.
    no_dead: Vec<bool>,
}

/// The module controller (§4.2): decides `{α_j}` and `{γ_j}` by bounded
/// search over the abstraction maps, with three-sample arrival-rate
/// banding for chattering mitigation.
#[derive(Debug, Clone)]
pub struct L1Controller {
    config: L1Config,
    members: Vec<MemberSpec>,
    /// Shared (not cloned) per-member abstraction maps: offline module
    /// learning replays thousands of short-lived `L1Controller`s over the
    /// same maps, so construction must not deep-copy the tables.
    maps: Vec<Arc<AbstractionMap>>,
    lambda_forecast: LocalLinearTrend,
    band: UncertaintyBand,
    c_filters: Vec<Ewma>,
    /// Per-member delivered-capacity scales `ŝ` pushed up from the
    /// drift-aware L0s (1.0 = nominal). [`L1Controller::c_estimates`]
    /// divides by them, so every map query, outcome key and capacity
    /// share runs at the *effective* processing time `ĉ/ŝ` — the
    /// algebraic twin of scaling the queue model's service rate.
    member_scales: Vec<f64>,
    prev_alpha: Vec<bool>,
    /// The previous decision's load split — the warm start of the next γ
    /// search. Quantized cost surfaces plateau (one γ quantum often moves
    /// a query within the same table cell), so a search restarted from
    /// scratch each period stalls wherever its fresh starting point lands;
    /// continuing from the standing split keeps refined allocations.
    prev_gamma: Vec<f64>,
    /// One-shot λ override pushed down by the L2 when it re-splits the
    /// cluster (see [`L1Controller::feed_forward_lambda`]); consumed by
    /// the next decision in place of the trailing forecast.
    pending_feed_forward: Option<f64>,
    last_prediction: Option<f64>,
    /// (actual rate, predicted rate) per L1 period — Fig. 4's Kalman plot.
    forecast_history: Vec<(f64, f64)>,
    total_states: u64,
    decisions: u64,
    /// Lifetime count of candidate α vectors whose γ search ran.
    total_candidates_evaluated: u64,
    /// Lifetime count of candidate α vectors pruned by the bound.
    total_candidates_pruned: u64,
    /// Per-decision buffers, reused so the steady decide path performs
    /// no heap allocation (see [`DecideScratch`]).
    scratch: DecideScratch,
    /// Highest arrival rate each member's recorded outcomes have visited
    /// (drives retrain envelope re-estimation).
    visited_lambda_max: Vec<f64>,
    /// Deepest initial queue each member's recorded outcomes have visited.
    visited_q_max: Vec<f64>,
    /// Outcomes recorded per member (0 = no visited envelope yet).
    visited_outcomes: Vec<u64>,
    /// Online learning state: one outcome log per member plus the knobs,
    /// present once [`L1Controller::enable_online`] has been called.
    online: Option<OnlineL1>,
}

/// Online-learning state of an [`L1Controller`].
#[derive(Debug, Clone)]
struct OnlineL1 {
    cfg: OnlineConfig,
    /// Steady-state vs fast re-convergence blend schedules; the per
    /// member drift detectors pick between them.
    schedule: BlendSchedule,
    /// Realized per-member outcomes awaiting absorption.
    logs: Vec<ObservationLog<GEntry>>,
    /// One Page–Hinkley detector per member over its normalized online
    /// residual stream (`(realized − predicted) / max(1, |predicted|)`).
    detectors: Vec<DriftDetector>,
    /// Learning passes run (drives the staleness-sweep cadence).
    passes: u64,
    /// Observations actually blended into a map (weight > 0).
    applied: u64,
    /// Observations blended at the fast re-convergence rate.
    fast_applied: u64,
}

impl L1Controller {
    /// Build a controller over `members` with their learned abstraction
    /// maps (one per member, same order).
    ///
    /// # Panics
    ///
    /// Panics if members/maps are empty or lengths differ, or if
    /// `min_active` exceeds the member count.
    pub fn new(config: L1Config, members: Vec<MemberSpec>, maps: Vec<AbstractionMap>) -> Self {
        Self::new_shared(config, members, maps.into_iter().map(Arc::new).collect())
    }

    /// [`L1Controller::new`] over maps that are already shared. Cloning an
    /// `Arc` is O(1), so building many controllers over the same maps
    /// (the offline L2 learning loop) costs nothing per build.
    ///
    /// # Panics
    ///
    /// Panics if members/maps are empty or lengths differ, or if
    /// `min_active` exceeds the member count.
    pub fn new_shared(
        config: L1Config,
        members: Vec<MemberSpec>,
        maps: Vec<Arc<AbstractionMap>>,
    ) -> Self {
        assert!(!members.is_empty(), "module needs at least one computer");
        assert_eq!(members.len(), maps.len(), "one abstraction map per member");
        assert!(
            config.min_active >= 1 && config.min_active <= members.len(),
            "min_active must be in 1..=m"
        );
        let m = members.len();
        let c_filters = members.iter().map(|_| Ewma::paper_default()).collect();
        L1Controller {
            config,
            members,
            maps,
            lambda_forecast: LocalLinearTrend::with_default_noise().with_floor(0.0),
            band: UncertaintyBand::new(0.25).with_floor(0.0),
            c_filters,
            member_scales: vec![1.0; m],
            prev_alpha: vec![false; m],
            prev_gamma: vec![0.0; m],
            pending_feed_forward: None,
            last_prediction: None,
            forecast_history: Vec::new(),
            total_states: 0,
            decisions: 0,
            total_candidates_evaluated: 0,
            total_candidates_pruned: 0,
            scratch: DecideScratch::default(),
            visited_lambda_max: vec![0.0; m],
            visited_q_max: vec![0.0; m],
            visited_outcomes: vec![0; m],
            online: None,
        }
    }

    /// Switch on online incremental learning: realized per-member
    /// outcomes recorded via [`L1Controller::record_outcome`] are blended
    /// into the abstraction maps by [`L1Controller::learn_online`].
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (see [`OnlineConfig::validated`]).
    pub fn enable_online(&mut self, cfg: OnlineConfig) {
        let cfg = cfg.validated();
        let logs = self
            .members
            .iter()
            .map(|_| ObservationLog::new(cfg.log_capacity))
            .collect();
        let detectors = self
            .members
            .iter()
            .map(|_| DriftDetector::new(cfg.detector))
            .collect();
        self.online = Some(OnlineL1 {
            cfg,
            schedule: BlendSchedule::new(
                cfg.learning_rate,
                cfg.fast_learning_rate,
                cfg.prior_weight,
            ),
            logs,
            detectors,
            passes: 0,
            applied: 0,
            fast_applied: 0,
        });
    }

    /// `true` once [`L1Controller::enable_online`] has been called.
    pub fn online_enabled(&self) -> bool {
        self.online.is_some()
    }

    /// Observations blended into the maps so far (weight > 0).
    pub fn online_updates(&self) -> u64 {
        self.online.as_ref().map_or(0, |o| o.applied)
    }

    /// Record the realized outcome of the last control period for
    /// `member`: the arrival rate actually routed to it, the queue it
    /// started the period with, and the measured [`GEntry`] (average
    /// cost, power, end queue). The key's ĉ coordinate is the member's
    /// current processing-time estimate — the same coordinate the
    /// decision queried the map at.
    ///
    /// # Panics
    ///
    /// Panics if online learning is not enabled or `member` is out of
    /// range.
    pub fn record_outcome(&mut self, member: usize, lambda: f64, q0: f64, realized: GEntry) {
        assert!(member < self.members.len(), "member index out of range");
        let c = self.c_estimates()[member];
        let tick = self.decisions;
        let online = self
            .online
            .as_mut()
            .expect("call enable_online before record_outcome");
        online.logs[member].push(vec![lambda.max(0.0), c, q0.max(0.0)], realized, tick);
        self.visited_lambda_max[member] = self.visited_lambda_max[member].max(lambda.max(0.0));
        self.visited_q_max[member] = self.visited_q_max[member].max(q0.max(0.0));
        self.visited_outcomes[member] += 1;
    }

    /// The `(λ, q₀)` ceiling `member`'s recorded outcomes have actually
    /// visited, once any outcome exists. Retrain envelope re-estimation
    /// reads this so rebuilt maps size their grids to live traffic
    /// instead of scalar ĉ/ŝ snapshots alone.
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range.
    pub fn visited_envelope(&self, member: usize) -> Option<(f64, f64)> {
        (self.visited_outcomes[member] > 0)
            .then(|| (self.visited_lambda_max[member], self.visited_q_max[member]))
    }

    /// Drain every member's outcome log into its abstraction map (oldest
    /// first), then run the staleness sweep on the configured cadence.
    /// Returns the number of observations blended in.
    ///
    /// Each outcome first feeds the member's drift detector with the
    /// normalized residual against the *current* map; while the detector
    /// reports [`LearnRate::Fast`] (a drift fired within its hold-off
    /// window) the blend runs at the fast re-convergence rate, otherwise
    /// at the steady-state rate.
    ///
    /// The maps are `Arc`-shared; a map still shared with another owner
    /// (offline learning in flight) is copied once on first update and
    /// diverges from there — in the steady running hierarchy each L1 is
    /// the sole owner and the update is in-place.
    ///
    /// # Panics
    ///
    /// Panics if online learning is not enabled.
    pub fn learn_online(&mut self) -> usize {
        let online = self
            .online
            .as_mut()
            .expect("call enable_online before learn_online");
        let cfg = online.cfg;
        let mut applied = 0usize;
        let mut fast_applied = 0usize;
        for (member, log) in online.logs.iter_mut().enumerate() {
            for obs in log.drain() {
                let predicted = self.maps[member]
                    .query(obs.key[0], obs.key[1], obs.key[2])
                    .cost;
                let residual = (obs.outcome.cost - predicted) / predicted.abs().max(1.0);
                online.detectors[member].observe(residual);
                let fast = online.detectors[member].rate() == LearnRate::Fast;
                let blend = *online.schedule.select(fast);
                let map = Arc::make_mut(&mut self.maps[member]);
                if map.update_online_with(obs.key[0], obs.key[1], obs.key[2], obs.outcome, &blend)
                    > 0.0
                {
                    applied += 1;
                    if fast {
                        fast_applied += 1;
                    }
                }
            }
        }
        online.passes += 1;
        online.applied += applied as u64;
        online.fast_applied += fast_applied as u64;
        if cfg.decay_every > 0 && online.passes.is_multiple_of(cfg.decay_every) {
            for map in &mut self.maps {
                Arc::make_mut(map).decay_confidence(cfg.decay_factor);
            }
        }
        applied
    }

    /// Drift detections fired across the members' residual streams.
    pub fn drift_detections(&self) -> u64 {
        self.online
            .as_ref()
            .map_or(0, |o| o.detectors.iter().map(|d| d.detections()).sum())
    }

    /// Drift detections fired per member (position order) — the
    /// per-learner resolution of the metrics surface. Empty while
    /// online learning is off.
    pub fn member_drift_detections(&self) -> Vec<u64> {
        self.online.as_ref().map_or_else(Vec::new, |o| {
            o.detectors.iter().map(|d| d.detections()).collect()
        })
    }

    /// Observations blended at the fast re-convergence rate so far.
    pub fn fast_updates(&self) -> u64 {
        self.online.as_ref().map_or(0, |o| o.fast_applied)
    }

    /// The blend rate member `member`'s updates currently run at.
    ///
    /// # Panics
    ///
    /// Panics if online learning is not enabled or `member` is out of
    /// range.
    pub fn member_learn_rate(&self, member: usize) -> LearnRate {
        self.online
            .as_ref()
            .expect("call enable_online before member_learn_rate")
            .detectors[member]
            .rate()
    }

    /// `true` once any member's detector reports that residuals stopped
    /// being local — the incremental learner is patching a model that is
    /// wrong everywhere, and an offline re-train should be scheduled.
    pub fn retrain_recommended(&self) -> bool {
        self.online
            .as_ref()
            .is_some_and(|o| o.detectors.iter().any(|d| d.retrain_recommended()))
    }

    /// Clear every member detector's re-train latch (call after
    /// scheduling the re-train).
    pub fn acknowledge_retrain(&mut self) {
        if let Some(online) = self.online.as_mut() {
            for d in &mut online.detectors {
                d.acknowledge_retrain();
            }
        }
    }

    /// Number of computers managed.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// The abstraction map the controller currently consults for
    /// `member` (reflects online updates once they are absorbed).
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range.
    pub fn map(&self, member: usize) -> &AbstractionMap {
        &self.maps[member]
    }

    /// The shared handle of `member`'s abstraction map (an `Arc` clone
    /// is O(1) — the retrain path snapshots old maps through this to
    /// re-seed their measured cells into a rebuilt map).
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range.
    pub fn map_arc(&self, member: usize) -> &Arc<AbstractionMap> {
        &self.maps[member]
    }

    /// The static member descriptions the controller was built over.
    pub fn member_specs(&self) -> &[MemberSpec] {
        &self.members
    }

    /// Hot-swap freshly retrained abstraction maps in: the next decision
    /// consults the new maps. The retrain consumer calls this after a
    /// background [`AbstractionMap::learn_for_member`] pass over
    /// drift-corrected telemetry ranges. The online state is re-anchored
    /// on the new models: pending outcome logs are cleared (they were
    /// residuals against the *old* maps), every member's drift detector
    /// restarts from a clean slate, and the re-train latch is released.
    /// Lifetime counters (`online_updates`, `drift_detections`) survive.
    ///
    /// # Panics
    ///
    /// Panics if the map count differs from the member count.
    pub fn install_maps(&mut self, maps: Vec<Arc<AbstractionMap>>) {
        assert_eq!(maps.len(), self.members.len(), "one map per member");
        self.maps = maps;
        if let Some(online) = self.online.as_mut() {
            for log in &mut online.logs {
                let _ = log.drain();
            }
            for d in &mut online.detectors {
                d.rearm();
            }
        }
    }

    /// Feed one L1 window: module arrivals over `T_L1` and the mean local
    /// demand observed per member (`None` where nothing completed).
    pub fn observe(&mut self, module_arrivals: u64, member_demands: &[Option<f64>]) {
        assert_eq!(
            member_demands.len(),
            self.members.len(),
            "one demand slot per member"
        );
        let actual_rate = module_arrivals as f64 / self.config.period;
        if let Some(pred) = self.last_prediction {
            self.band.observe(actual_rate, pred);
            self.forecast_history.push((actual_rate, pred));
        }
        self.lambda_forecast.observe(actual_rate);
        for (filter, demand) in self.c_filters.iter_mut().zip(member_demands) {
            if let Some(c) = demand {
                filter.observe(*c);
            }
        }
    }

    /// Push the per-member delivered-capacity scales `ŝ` estimated by
    /// the drift-aware L0s (1.0 = nominal). Subsequent
    /// [`L1Controller::c_estimates`] return effective processing times
    /// `ĉ/ŝ`, so the abstraction-map queries, realized-outcome keys and
    /// capacity shares all see the capacity actually being delivered.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the member count or any
    /// scale is not positive.
    pub fn set_member_scales(&mut self, scales: &[f64]) {
        assert_eq!(scales.len(), self.members.len(), "one scale per member");
        assert!(
            scales.iter().all(|&s| s > 0.0 && s.is_finite()),
            "scales must be positive and finite"
        );
        self.member_scales.copy_from_slice(scales);
    }

    /// The per-member delivered-capacity scales in force.
    pub fn member_scales(&self) -> &[f64] {
        &self.member_scales
    }

    /// Current per-member *effective* processing-time estimates: the
    /// EWMA-filtered demand telemetry ĉ (falling back to the prior before
    /// any completion), divided by the member's delivered-capacity scale
    /// ŝ — at nominal scale exactly the paper's estimate.
    pub fn c_estimates(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.c_estimates_into(&mut out);
        out
    }

    /// [`c_estimates`](Self::c_estimates) into a caller-owned buffer —
    /// the decide path refreshes its scratch copy through this to keep
    /// the steady loop allocation-free.
    fn c_estimates_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.members
                .iter()
                .zip(&self.c_filters)
                .zip(&self.member_scales)
                .map(|((m, f), s)| {
                    let c = f.estimate();
                    let c = if c > 0.0 { c } else { m.c_prior };
                    c / s
                }),
        );
    }

    /// Aggregate (mean) processing-time estimate — the module state
    /// exposed upward to the L2 controller (eq. 12).
    pub fn module_c_estimate(&self) -> f64 {
        let cs = self.c_estimates();
        cs.iter().sum::<f64>() / cs.len() as f64
    }

    /// Module arrival-rate forecast (one `T_L1` ahead, req/s).
    pub fn lambda_estimate(&self) -> f64 {
        self.lambda_forecast.predict_one().max(0.0)
    }

    /// Feed the upper level's re-split decision forward: the next
    /// decision plans against `lambda` (the share of the global forecast
    /// the L2 just assigned this module) instead of the module's own
    /// trailing forecast, which only sees a re-split one period — one
    /// boot dead time — after the fact. One-shot: subsequent decisions
    /// return to the trailing forecast, which by then has observed the
    /// new share.
    pub fn feed_forward_lambda(&mut self, lambda: f64) {
        self.pending_feed_forward = Some(lambda.max(0.0));
    }

    /// The current uncertainty half-width `δ`.
    pub fn delta(&self) -> f64 {
        self.band.delta()
    }

    /// The recorded (actual, predicted) arrival-rate pairs.
    pub fn forecast_history(&self) -> &[(f64, f64)] {
        &self.forecast_history
    }

    /// Average candidate states evaluated per decision.
    pub fn mean_states_evaluated(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.total_states as f64 / self.decisions as f64
        }
    }

    /// Candidate α vectors whose γ search ran, across all decisions.
    pub fn candidates_evaluated(&self) -> u64 {
        self.total_candidates_evaluated
    }

    /// Candidate α vectors pruned by the admissible bound, across all
    /// decisions. Zero while `pruned_search` is off.
    pub fn candidates_pruned(&self) -> u64 {
        self.total_candidates_pruned
    }

    /// Decide `{α_j}` and `{γ_j}` given each member's observed queue.
    ///
    /// `active` is the current plant state (booting counts as active).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the member count.
    pub fn decide(&mut self, queues: &[usize], active: &[bool]) -> L1Decision {
        // Borrowed out of the scratch (not rebuilt) so the common
        // no-exclusions path stays allocation-free.
        let mut dead = std::mem::take(&mut self.scratch.no_dead);
        dead.clear();
        dead.resize(self.members.len(), false);
        let decision = self.decide_excluding(queues, active, &dead);
        self.scratch.no_dead = dead;
        decision
    }

    /// [`decide`](Self::decide) over the surviving membership only: members
    /// flagged `dead` are forced off in every candidate, excluded from the
    /// γ simplex, charged no drain cost (their queues are unreachable), and
    /// never chosen as the power-budget fallback. `min_active` is clamped
    /// to the live count so churn cannot make the constraint infeasible.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the member count or every
    /// member is dead (the caller's safe mode must handle that case).
    pub fn decide_excluding(
        &mut self,
        queues: &[usize],
        active: &[bool],
        dead: &[bool],
    ) -> L1Decision {
        assert_eq!(queues.len(), self.members.len(), "queue per member");
        assert_eq!(active.len(), self.members.len(), "state per member");
        assert_eq!(dead.len(), self.members.len(), "liveness per member");
        let m = self.members.len();
        let live_count = dead.iter().filter(|&&d| !d).count();
        assert!(live_count > 0, "at least one member must be live");
        let min_active = self.config.min_active.min(live_count);

        let lambda_hat = match self.pending_feed_forward.take() {
            // The L2 just re-split: plan for the assigned share now, not
            // a dead time from now.
            Some(ff) => ff,
            None => self.lambda_forecast.predict_one().max(0.0),
        };
        self.last_prediction = Some(lambda_hat);
        let delta = if self.config.use_uncertainty_band {
            self.band.delta()
        } else {
            0.0
        };
        let samples = [
            (lambda_hat - delta).max(0.0),
            lambda_hat,
            lambda_hat + delta,
        ];
        let mut states = 0usize;

        let quantum = self.config.gamma_quantum;
        let levels = (1.0 / quantum).round() as usize;
        let lane_w = levels + 1;
        let max_rounds = self.config.search_rounds;
        let max_evals = self.config.search_evals;
        // All per-decision buffers live in controller-owned scratch, so
        // the steady decide path allocates nothing; taken out of `self`
        // so the candidate loop can borrow maps/members freely.
        let mut ds = std::mem::take(&mut self.scratch);
        self.c_estimates_into(&mut ds.cs);
        let cs = &ds.cs;
        // Cost of draining each computer's standing queue at zero load.
        ds.drain_costs.clear();
        ds.drain_costs.extend((0..m).map(|j| {
            if queues[j] > 0 {
                self.maps[j].query(0.0, cs[j], queues[j] as f64).cost
            } else {
                0.0
            }
        }));

        // Candidate α vectors — the "limited neighborhood" of the current
        // configuration: keep, single toggles, pairs of switch-ons (so a
        // sharp load step can recruit two machines in one period), and
        // everything-on as the escape hatch for deep overload. Dead
        // members are forced off in the base state and never toggled.
        // Candidates are flattened `m` entries apiece; the base state
        // occupies the first chunk, so toggles copy it from within.
        ds.candidates.clear();
        ds.candidates.extend((0..m).map(|j| active[j] && !dead[j]));
        let mut off_count = 0usize;
        for j in (0..m).filter(|&j| !dead[j]) {
            if !ds.candidates[j] {
                off_count += 1;
            }
            let start = ds.candidates.len();
            ds.candidates.extend_from_within(0..m);
            ds.candidates[start + j] = !ds.candidates[start + j];
            let on = ds.candidates[start..start + m]
                .iter()
                .filter(|&&a| a)
                .count();
            if on < min_active {
                ds.candidates.truncate(start);
            }
        }
        // Plain index loops: the body appends to `ds.candidates`, so an
        // iterator over it would hold the borrow the push needs.
        #[allow(clippy::needless_range_loop)]
        for a in 0..m {
            if ds.candidates[a] || dead[a] {
                continue;
            }
            for b in a + 1..m {
                if ds.candidates[b] || dead[b] {
                    continue;
                }
                let start = ds.candidates.len();
                ds.candidates.extend_from_within(0..m);
                ds.candidates[start + a] = true;
                ds.candidates[start + b] = true;
            }
        }
        if off_count > 2 {
            ds.candidates.extend((0..m).map(|j| !dead[j]));
        }
        let ncand = ds.candidates.len() / m;

        // Per-candidate switch-on penalty and backlog-drain charge. A
        // machine ordered off still has to drain its queue (and cannot
        // take new work while doing so) — without the drain term,
        // shedding the most backlogged machine looks free. Both terms
        // need no map probe beyond the precomputed drain costs, and
        // their sum is an *admissible lower bound* on the candidate's
        // total: every map cost is ≥ 0 (absolute-value penalties over
        // slack and power), so the γ search's band-averaged term can
        // only add to it.
        ds.switch_costs.clear();
        ds.drain_sums.clear();
        ds.bounds.clear();
        for ci in 0..ncand {
            let alpha = &ds.candidates[ci * m..(ci + 1) * m];
            let sw = self.config.switch_on_penalty
                * (0..m).filter(|&j| alpha[j] && !active[j]).count() as f64;
            let dr: f64 = (0..m)
                .filter(|&j| !alpha[j] && !dead[j] && queues[j] > 0)
                .map(|j| ds.drain_costs[j])
                .sum();
            ds.switch_costs.push(sw);
            ds.drain_sums.push(dr);
            ds.bounds.push(sw + dr);
        }

        // Branch-and-bound order: cheapest bound first (original position
        // breaks ties), so a strong incumbent lands early and prunes the
        // rest. The incumbent rule below is lexicographic in (total cost,
        // original position), which keeps the winner exactly the
        // candidate the exhaustive original-order sweep would pick.
        ds.order.clear();
        ds.order.extend(0..ncand);
        if self.config.pruned_search {
            let bounds = &ds.bounds;
            ds.order
                .sort_by(|&a, &b| bounds[a].total_cmp(&bounds[b]).then(a.cmp(&b)));
        }

        // Shared γ cost lanes (see the scratch docs). Lane slots are
        // filled lazily — a (member, unit) column is probed only when
        // some candidate's hill-climb actually evaluates it, which on a
        // warm-started steady decision is a handful of units around the
        // standing split rather than the full quantum range. The fill
        // marks persist across candidates, so shared members are still
        // probed once per decision.
        ds.lanes.resize(m * samples.len() * lane_w, 0.0);
        ds.lane_filled.clear();
        ds.lane_filled.resize(m * lane_w, false);

        let mut best: Option<(f64, usize, Vec<bool>, Vec<f64>)> = None;
        let mut candidates_evaluated = 0usize;
        let mut candidates_pruned = 0usize;
        for oi in 0..ncand {
            let ci = ds.order[oi];
            let alpha = &ds.candidates[ci * m..(ci + 1) * m];
            ds.active_idx.clear();
            ds.active_idx.extend((0..m).filter(|&j| alpha[j]));
            if ds.active_idx.is_empty() {
                continue;
            }
            if self.config.pruned_search {
                if let Some((best_cost, _, _, _)) = &best {
                    if ds.bounds[ci] > *best_cost {
                        candidates_pruned += 1;
                        continue;
                    }
                }
            }
            candidates_evaluated += 1;

            // γ search over the quantized simplex restricted to actives.
            let grid = SimplexGrid::with_quantum(ds.active_idx.len(), quantum);
            // Warm-start from the standing split — "searches a limited
            // neighborhood of [the current] state". Machines without a
            // previous share (newly recruited, or the first decision)
            // enter at their capacity share: "the possible choices for
            // γ_ij … are limited by the maximum processing capacity".
            let total_capacity: f64 = ds
                .active_idx
                .iter()
                .map(|&j| self.members[j].speed / cs[j])
                .sum();
            ds.weights.clear();
            let prev_gamma = &self.prev_gamma;
            let members = &self.members;
            ds.weights.extend(ds.active_idx.iter().map(|&j| {
                if prev_gamma[j] > 0.0 {
                    prev_gamma[j]
                } else {
                    members[j].speed / cs[j] / total_capacity
                }
            }));
            // Snap straight to integer units — the same grid point
            // `snap` would choose, without the f64 roundtrip (grid
            // points are exactly `u·quantum`, so the unit form is
            // lossless) or its allocations.
            grid.snap_units_into(&ds.weights, &mut ds.climb_units, &mut ds.snap_rema);

            let sample_count = samples.len();
            let lanes = &mut ds.lanes;
            let lane_filled = &mut ds.lane_filled;
            let idx_ref = &ds.active_idx;
            let maps = &self.maps;
            let mut evaluate = |units: &[i64]| -> f64 {
                // Bit-exact replica of the scalar objective's summation
                // order (sample-major, member-inner): one register
                // accumulator per band sample, each updated member by
                // member, reproduces every sample's partial sum exactly,
                // and the left-to-right combine matches the scalar
                // `total += sample_cost` fold over the three samples.
                let (mut s0, mut s1, mut s2) = (0.0, 0.0, 0.0);
                for (pos, &j) in idx_ref.iter().enumerate() {
                    let u = units[pos] as usize;
                    if !lane_filled[j * lane_w + u] {
                        // First visit of this (member, unit) column this
                        // decision: probe the whole band at once.
                        // In-grid samples stream off the dense cost slab
                        // (identical values to scalar queries); any
                        // out-of-grid samples resolve through one
                        // batched lockstep replay across the band.
                        lane_filled[j * lane_w + u] = true;
                        let q_j = queues[j] as f64;
                        let c_j = cs[j];
                        let map = &maps[j];
                        let slab = map.cost_slab();
                        let mut pts = [(0.0f64, 0.0f64, 0.0f64); 3];
                        let mut out = [false; 3];
                        let mut npts = 0usize;
                        for (s, &lambda_s) in samples.iter().enumerate() {
                            let lambda_j = u as f64 * quantum * lambda_s;
                            if map.in_table(lambda_j, q_j) {
                                lanes[(j * sample_count + s) * lane_w + u] = match slab.as_ref() {
                                    Some(slab) => slab.value(
                                        slab.fixed_base(&[0.0, c_j, q_j], 0)
                                            + slab.axis_offset(0, lambda_j),
                                    ),
                                    None => map.query(lambda_j, c_j, q_j).cost,
                                };
                            } else {
                                pts[npts] = (lambda_j, c_j, q_j);
                                out[s] = true;
                                npts += 1;
                            }
                        }
                        if npts > 0 {
                            let entries = map.query_batch(&pts[..npts]);
                            let mut k = 0usize;
                            for (s, &o) in out.iter().enumerate() {
                                if o {
                                    lanes[(j * sample_count + s) * lane_w + u] = entries[k].cost;
                                    k += 1;
                                }
                            }
                        }
                    }
                    let base = j * sample_count * lane_w + u;
                    s0 += lanes[base];
                    s1 += lanes[base + lane_w];
                    s2 += lanes[base + 2 * lane_w];
                }
                (s0 + s1 + s2) / sample_count as f64
            };

            // Unit-space hill-climb replicating `BoundedSearch::minimize`
            // move for move (evaluate the start, round/evaluation budgets
            // with the pre-evaluation budget check, strict first-wins
            // round improvement) — but over integer γ quanta through the
            // allocation-free neighbor visitor, so one neighbor
            // evaluation is three flat lane loads per active member and
            // the whole decision is bit-identical to the scalar probe
            // path (shared by the pruned and exhaustive searches alike).
            let mut climb_cost = evaluate(&ds.climb_units);
            let mut evaluations = 1usize;
            let mut rounds = 0usize;
            let round_units = &mut ds.round_units;
            while rounds < max_rounds && evaluations < max_evals {
                rounds += 1;
                let mut round_best: Option<f64> = None;
                grid.for_each_neighbor_units(&ds.climb_units, &mut ds.scratch_units, &mut |cand| {
                    if evaluations >= max_evals {
                        return;
                    }
                    let cost = evaluate(cand);
                    evaluations += 1;
                    if cost < round_best.map_or(climb_cost, |c| c) {
                        round_best = Some(cost);
                        round_units.clear();
                        round_units.extend_from_slice(cand);
                    }
                });
                match round_best {
                    Some(cost) => {
                        ds.climb_units.clear();
                        ds.climb_units.extend_from_slice(round_units);
                        climb_cost = cost;
                    }
                    None => break,
                }
            }
            states += evaluations * samples.len();

            // Hard power-budget constraint: expected draw of the chosen
            // configuration at the nominal forecast.
            if let Some(budget) = self.config.power_budget {
                let power: f64 = ds
                    .active_idx
                    .iter()
                    .enumerate()
                    .map(|(pos, &j)| {
                        self.maps[j]
                            .query(
                                ds.climb_units[pos] as f64 * quantum * lambda_hat,
                                cs[j],
                                queues[j] as f64,
                            )
                            .power
                    })
                    .sum();
                if power > budget {
                    continue;
                }
            }
            let total_cost = climb_cost + ds.switch_costs[ci] + ds.drain_sums[ci];
            let accept = match &best {
                None => true,
                // Lexicographic (cost, original position): under the
                // original order this is exactly "strictly cheaper wins"
                // (positions only increase); under the bound-sorted order
                // it restores first-minimal-wins tie-breaking.
                Some((best_cost, best_ci, _, _)) => {
                    total_cost < *best_cost || (total_cost == *best_cost && ci < *best_ci)
                }
            };
            if accept {
                let mut gamma_full = vec![0.0; m];
                for (pos, &j) in ds.active_idx.iter().enumerate() {
                    gamma_full[j] = ds.climb_units[pos] as f64 * quantum;
                }
                best = Some((total_cost, ci, alpha.to_vec(), gamma_full));
            }
        }
        // With a tight power budget every candidate may be infeasible; fall
        // back to the lowest-power single machine rather than panicking.
        let (expected_cost, alpha, gamma) = match best {
            Some((cost, _, alpha, gamma)) => (cost, alpha, gamma),
            None => {
                let cheapest = (0..m)
                    .filter(|&j| !dead[j])
                    .min_by(|&a, &b| {
                        (self.members[a].speed / cs[a]).total_cmp(&(self.members[b].speed / cs[b]))
                    })
                    .expect("at least one live member");
                let mut alpha = vec![false; m];
                alpha[cheapest] = true;
                let mut gamma = vec![0.0; m];
                gamma[cheapest] = 1.0;
                (f64::INFINITY, alpha, gamma)
            }
        };
        // Hand the scratch back for the next decision's reuse.
        self.scratch = ds;
        self.prev_alpha.copy_from_slice(&alpha);
        self.prev_gamma.copy_from_slice(&gamma);
        self.total_states += states as u64;
        self.total_candidates_evaluated += candidates_evaluated as u64;
        self.total_candidates_pruned += candidates_pruned as u64;
        self.decisions += 1;
        L1Decision {
            alpha,
            gamma,
            expected_cost,
            states_evaluated: states,
            candidates_evaluated,
            candidates_pruned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{ComputerProfile, FrequencyProfile};

    fn member(profile: FrequencyProfile) -> MemberSpec {
        let cp = ComputerProfile::paper_default(profile);
        MemberSpec {
            phis: cp.phis(),
            speed: cp.speed,
            c_prior: 0.0175 / cp.speed,
        }
    }

    fn build_module(n: usize) -> L1Controller {
        let profiles = FrequencyProfile::module_set();
        let members: Vec<MemberSpec> = (0..n).map(|j| member(profiles[j % 4])).collect();
        let l0 = L0Config::paper_default();
        let maps: Vec<AbstractionMap> = members
            .iter()
            .map(|m| {
                let c_mid = m.c_prior;
                AbstractionMap::learn(
                    &l0,
                    &m.phis,
                    (c_mid * 0.6, c_mid * 1.5),
                    2.0 / (c_mid * 0.6),
                    150.0,
                    LearnSpec::coarse(),
                )
            })
            .collect();
        L1Controller::new(L1Config::paper_default(), members, maps)
    }

    #[test]
    fn abstraction_map_cost_monotone_in_load() {
        let m = member(FrequencyProfile::TallEight);
        let map = AbstractionMap::learn(
            &L0Config::paper_default(),
            &m.phis,
            (0.012, 0.03),
            80.0,
            150.0,
            LearnSpec::coarse(),
        );
        assert!(!map.is_empty());
        let light = map.query(5.0, 0.0175, 0.0);
        let heavy = map.query(75.0, 0.0175, 0.0);
        assert!(
            heavy.cost > light.cost,
            "overload {:.2} must cost more than light load {:.2}",
            heavy.cost,
            light.cost
        );
    }

    #[test]
    fn light_load_switches_computers_off() {
        let mut l1 = build_module(4);
        // Feed several quiet windows: ~2 req/s for the whole module.
        for _ in 0..6 {
            l1.observe(240, &[Some(0.0175); 4].map(|d| d));
        }
        let mut active = vec![true; 4];
        let queues = vec![0usize; 4];
        // Iterate a few decisions: the controller sheds computers (one
        // toggle per period) down to min_active.
        for _ in 0..4 {
            let d = l1.decide(&queues, &active);
            active = d.alpha.clone();
        }
        let on = active.iter().filter(|&&a| a).count();
        assert!(on <= 2, "light load should shed computers, kept {on}");
    }

    #[test]
    fn heavy_load_switches_computers_on() {
        let mut l1 = build_module(4);
        // ~180 req/s: needs most of the module's capacity.
        for _ in 0..6 {
            l1.observe(180 * 120, &[Some(0.0175); 4].map(|d| d));
        }
        let mut active = vec![true, false, false, false];
        let queues = vec![0usize; 4];
        for _ in 0..4 {
            let d = l1.decide(&queues, &active);
            active = d.alpha.clone();
        }
        let on = active.iter().filter(|&&a| a).count();
        assert!(on >= 3, "heavy load should recruit computers, got {on}");
    }

    #[test]
    fn gamma_sums_to_one_over_actives() {
        let mut l1 = build_module(4);
        for _ in 0..4 {
            l1.observe(60 * 120, &[Some(0.0175); 4].map(|d| d));
        }
        let d = l1.decide(&[0, 0, 0, 0], &[true, true, true, false]);
        let total: f64 = d.gamma.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "γ sums to 1, got {total}");
        for (j, (&a, &g)) in d.alpha.iter().zip(&d.gamma).enumerate() {
            assert!(a || g == 0.0, "inactive computer {j} got γ = {g}");
            assert!(g >= 0.0);
        }
    }

    #[test]
    fn min_active_is_respected() {
        let mut l1 = build_module(4);
        for _ in 0..6 {
            l1.observe(0, &[None; 4]); // dead silence
        }
        let mut active = vec![true, false, false, false];
        for _ in 0..3 {
            let d = l1.decide(&[0; 4], &active);
            active = d.alpha.clone();
        }
        assert!(
            active.iter().filter(|&&a| a).count() >= 1,
            "at least one computer stays on"
        );
    }

    #[test]
    fn decide_excluding_never_routes_to_dead_members() {
        let mut l1 = build_module(4);
        // Heavy load: without the exclusion every machine would be wanted.
        for _ in 0..6 {
            l1.observe(180 * 120, &[Some(0.0175); 4].map(|d| d));
        }
        let dead = vec![false, true, false, false];
        let mut active = vec![true, true, true, true];
        for _ in 0..3 {
            let d = l1.decide_excluding(&[0; 4], &active, &dead);
            assert!(!d.alpha[1], "dead member must never be switched on");
            assert_eq!(d.gamma[1], 0.0, "dead member must get no load");
            let total: f64 = d.gamma.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "γ sums to 1, got {total}");
            active = d.alpha.clone();
        }
        assert!(
            active.iter().filter(|&&a| a).count() >= 2,
            "survivors must carry the load"
        );
    }

    #[test]
    fn decide_excluding_clamps_min_active_to_live_count() {
        let profiles = FrequencyProfile::module_set();
        let members: Vec<MemberSpec> = (0..2).map(|j| member(profiles[j % 4])).collect();
        let l0 = L0Config::paper_default();
        let maps: Vec<AbstractionMap> = members
            .iter()
            .map(|m| {
                let c_mid = m.c_prior;
                AbstractionMap::learn(
                    &l0,
                    &m.phis,
                    (c_mid * 0.6, c_mid * 1.5),
                    2.0 / (c_mid * 0.6),
                    150.0,
                    LearnSpec::coarse(),
                )
            })
            .collect();
        let config = L1Config {
            min_active: 2,
            ..L1Config::paper_default()
        };
        let mut l1 = L1Controller::new(config, members, maps);
        l1.observe(30 * 120, &[Some(0.0175); 2].map(|d| d));
        // One of two members dead: min_active = 2 would be infeasible.
        let d = l1.decide_excluding(&[0, 0], &[true, true], &[false, true]);
        assert!(d.alpha[0] && !d.alpha[1]);
        assert!((d.gamma[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chattering_band_grows_with_forecast_error() {
        let mut l1 = build_module(2);
        // Alternate loud/quiet windows: the forecaster cannot keep up, so
        // δ must grow.
        for k in 0..10 {
            let arrivals = if k % 2 == 0 { 100 * 120 } else { 10 * 120 };
            l1.observe(arrivals, &[Some(0.0175); 2].map(|d| d));
            let _ = l1.decide(&[0, 0], &[true, true]);
        }
        assert!(
            l1.delta() > 5.0,
            "δ = {} should reflect the noise",
            l1.delta()
        );
        assert!(!l1.forecast_history().is_empty());
    }

    #[test]
    fn states_evaluated_counted() {
        let mut l1 = build_module(4);
        l1.observe(50 * 120, &[Some(0.0175); 4].map(|d| d));
        let d = l1.decide(&[0; 4], &[true; 4]);
        assert!(d.states_evaluated > 0);
        assert!(l1.mean_states_evaluated() > 0.0);
    }

    #[test]
    fn online_update_tracks_drifted_outcomes() {
        use llc_core::OnlineConfig;
        let m = member(FrequencyProfile::TallEight);
        for backend in [MapBackend::Dense, MapBackend::Hash] {
            let mut map = AbstractionMap::learn_with_backend(
                &L0Config::paper_default(),
                &m.phis,
                (0.012, 0.03),
                80.0,
                150.0,
                LearnSpec::coarse(),
                backend,
            );
            let cfg = OnlineConfig::default();
            let offline = map.query(40.0, 0.0175, 10.0);
            // The plant drifted: the same operating point now costs 3x.
            let drifted = GEntry {
                cost: offline.cost * 3.0,
                power: offline.power,
                final_q: offline.final_q + 5.0,
            };
            for _ in 0..40 {
                let w = map.update_online(40.0, 0.0175, 10.0, drifted, &cfg);
                assert!(w > 0.0, "{backend:?}: in-grid update must apply");
            }
            let adapted = map.query(40.0, 0.0175, 10.0);
            assert!(
                (adapted.cost - drifted.cost).abs() < (offline.cost - drifted.cost).abs() * 0.05,
                "{backend:?}: map must converge onto the drifted outcome \
                 (offline {:.2}, adapted {:.2}, drifted {:.2})",
                offline.cost,
                adapted.cost,
                drifted.cost
            );
            assert!(map.confidence_at(40.0, 0.0175, 10.0) > 0.0);
            map.decay_confidence(0.0);
            assert_eq!(map.confidence_at(40.0, 0.0175, 10.0), 0.0);
        }
    }

    #[test]
    fn hash_substrate_grows_coverage_dense_drops_out_of_box() {
        use llc_core::OnlineConfig;
        let m = member(FrequencyProfile::TallEight);
        let cfg = OnlineConfig::default();
        let outcome = GEntry {
            cost: 123.0,
            power: 4.0,
            final_q: 200.0,
        };
        let learn = |backend| {
            AbstractionMap::learn_with_backend(
                &L0Config::paper_default(),
                &m.phis,
                (0.012, 0.03),
                80.0,
                150.0,
                LearnSpec::coarse(),
                backend,
            )
        };
        // Dense: an outcome beyond the trained box is dropped.
        let mut dense = learn(MapBackend::Dense);
        assert_eq!(dense.update_online(500.0, 0.0175, 10.0, outcome, &cfg), 0.0);
        // Hash: the same outcome is inserted; the exact cell answers the
        // next query with the measured value…
        let mut hash = learn(MapBackend::Hash);
        assert_eq!(hash.update_online(500.0, 0.0175, 10.0, outcome, &cfg), 1.0);
        let read = hash.query(500.0, 0.0175, 10.0);
        assert_eq!(read.cost, 123.0);
        // …but only that cell: a different out-of-envelope point still
        // replays the analytic model rather than borrowing the far-out
        // insert through a nearest-neighbor scan.
        let other = hash.query(300.0, 0.0175, 10.0);
        let replayed = learn(MapBackend::Hash).query(300.0, 0.0175, 10.0);
        assert_eq!(other, replayed, "intermediate region keeps exact replay");
    }

    #[test]
    fn reseed_carries_measured_cells_into_a_rebuilt_map() {
        use llc_approx::BlendConfig;
        use llc_core::OnlineConfig;
        let m = member(FrequencyProfile::TallEight);
        let l0 = L0Config::paper_default();
        for backend in [MapBackend::Dense, MapBackend::Hash] {
            let learn = |c_mid: f64| {
                AbstractionMap::learn_with_backend(
                    &l0,
                    &m.phis,
                    (c_mid * 0.6, c_mid * 1.6),
                    2.0 / (c_mid * 0.6),
                    150.0,
                    LearnSpec::coarse(),
                    backend,
                )
            };
            // The old map absorbed measured outcomes at one operating
            // point (in-envelope for both the old and rebuilt grids).
            let mut old = learn(0.0175);
            let measured = GEntry {
                cost: 77.0,
                power: 2.5,
                final_q: 3.0,
            };
            let cfg = OnlineConfig::default();
            for _ in 0..30 {
                assert!(old.update_online(20.0, 0.02, 10.0, measured, &cfg) > 0.0);
            }
            // Rebuild over a drift-corrected (stretched) envelope, then
            // reseed: the visited cell's measured truth carries over. The
            // old cell's *center* re-quantizes into the rebuilt grid, so
            // probe the λ neighborhood rather than one exact key.
            let mut rebuilt = learn(0.02);
            let closest = |map: &AbstractionMap| {
                (0..45)
                    .map(|l| (map.query(l as f64, 0.02, 10.0).cost - measured.cost).abs())
                    .fold(f64::INFINITY, f64::min)
            };
            let before = closest(&rebuilt);
            let applied = rebuilt.reseed_online_from(&old, 2.0, &BlendConfig::new(0.5, 0.0));
            assert!(applied >= 1, "{backend:?}: confident cell must reseed");
            let after = closest(&rebuilt);
            assert!(
                after < before,
                "{backend:?}: reseed must pull the rebuilt surface toward the \
                 measurement (closest gap {before:.2} -> {after:.2})"
            );
            // A low-confidence threshold filter: nothing carried when the
            // bar is higher than any cell's count.
            let mut fresh = learn(0.02);
            assert_eq!(
                fresh.reseed_online_from(&old, 1e9, &BlendConfig::new(0.5, 0.0)),
                0
            );
        }
    }

    #[test]
    fn member_scales_shift_effective_processing_time() {
        let mut l1 = build_module(2);
        for _ in 0..4 {
            l1.observe(30 * 120, &[Some(0.0175); 2]);
        }
        let nominal = l1.c_estimates();
        l1.set_member_scales(&[0.5, 1.0]);
        let scaled = l1.c_estimates();
        assert!((scaled[0] - nominal[0] / 0.5).abs() < 1e-12);
        assert_eq!(scaled[1], nominal[1]);
        assert_eq!(l1.member_scales(), &[0.5, 1.0]);
    }

    #[test]
    fn controller_learn_online_absorbs_recorded_outcomes() {
        let mut l1 = build_module(2);
        l1.enable_online(llc_core::OnlineConfig::default());
        assert!(l1.online_enabled());
        for _ in 0..4 {
            l1.observe(30 * 120, &[Some(0.0175); 2]);
            let _ = l1.decide(&[0, 0], &[true, true]);
            let realized = GEntry {
                cost: 42.0,
                power: 3.0,
                final_q: 1.0,
            };
            l1.record_outcome(0, 20.0, 0.0, realized);
            l1.record_outcome(1, 10.0, 0.0, realized);
            assert_eq!(l1.learn_online(), 2);
        }
        assert_eq!(l1.online_updates(), 8);
    }

    #[test]
    #[should_panic(expected = "enable_online")]
    fn record_outcome_requires_enable() {
        let mut l1 = build_module(2);
        l1.record_outcome(
            0,
            1.0,
            0.0,
            GEntry {
                cost: 1.0,
                power: 1.0,
                final_q: 0.0,
            },
        );
    }

    #[test]
    fn switch_penalty_discourages_flapping() {
        // With an enormous W the controller must not switch anything on.
        let profiles = FrequencyProfile::module_set();
        let members: Vec<MemberSpec> = (0..2).map(|j| member(profiles[j])).collect();
        let l0 = L0Config::paper_default();
        let maps: Vec<AbstractionMap> = members
            .iter()
            .map(|m| {
                AbstractionMap::learn(
                    &l0,
                    &m.phis,
                    (m.c_prior * 0.6, m.c_prior * 1.5),
                    2.0 / (m.c_prior * 0.6),
                    150.0,
                    LearnSpec::coarse(),
                )
            })
            .collect();
        let mut config = L1Config::paper_default();
        config.switch_on_penalty = 1e12;
        let mut l1 = L1Controller::new(config, members, maps);
        for _ in 0..4 {
            l1.observe(30 * 120, &[Some(0.02), Some(0.02)]);
        }
        let d = l1.decide(&[0, 0], &[true, false]);
        assert_eq!(d.alpha, vec![true, false], "prohibitive W freezes α");
    }
}
