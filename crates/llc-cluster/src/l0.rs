use llc_core::{
    Decision, Error as LlcError, Forecast, LookaheadController, Penalty, Plant, SearchStats,
    ServiceScaleEstimator, SetPoint,
};
use llc_forecast::{Ewma, Forecaster, LocalLinearTrend};

/// The analytic single-computer queue model of eqns. (5)–(6), extended
/// with the delivered-capacity scale `ŝ` of the drift-aware L0:
///
/// ```text
/// q̂(k+1) = max(0, q(k) + (λ̂(k) − ŝ·φ(k)/ĉ(k)) · T)
/// r̂(k+1) = (1 + q̂(k+1)) · ĉ(k) / (ŝ·φ(k))
/// ```
///
/// At `ŝ = 1` (the default) this is the paper's model verbatim. A plant
/// whose capacity silently degrades keeps reporting nominal demands ĉ,
/// so `φ/ĉ` overstates the service rate; `ŝ` (estimated online from
/// realized completions, see [`llc_core::ServiceScaleEstimator`])
/// restores the model to the capacity actually being delivered. Scaling
/// the service rate by `ŝ` is algebraically identical to stretching the
/// processing time to `ĉ/ŝ` — the identity the retrain path exploits
/// when it rebuilds abstraction maps over drift-corrected ĉ ranges.
///
/// Shared between the L0 controller's lookahead and the offline learning
/// of the L1 abstraction map (which replays exactly this model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueModel {
    /// Sampling period `T` in seconds.
    pub period: f64,
    /// Delivered-capacity scale `ŝ` (1.0 = nominal).
    pub service_scale: f64,
}

impl QueueModel {
    /// A nominal-capacity model stepped every `period` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn new(period: f64) -> Self {
        Self::with_scale(period, 1.0)
    }

    /// A model whose delivered service rate is scaled by `service_scale`.
    ///
    /// # Panics
    ///
    /// Panics if `period` or `service_scale` is not positive.
    pub fn with_scale(period: f64, service_scale: f64) -> Self {
        assert!(period > 0.0, "sampling period must be positive");
        assert!(service_scale > 0.0, "service scale must be positive");
        QueueModel {
            period,
            service_scale,
        }
    }

    /// One model step: returns `(q̂(k+1), r̂(k+1))`.
    ///
    /// `lambda` is the arrival rate in requests/second, `c` the estimated
    /// full-speed processing time in seconds, `phi ∈ (0, 1]` the frequency
    /// scaling factor.
    pub fn step(&self, q: f64, lambda: f64, c: f64, phi: f64) -> (f64, f64) {
        debug_assert!(phi > 0.0 && phi <= 1.0, "φ out of range: {phi}");
        debug_assert!(c > 0.0, "processing time must be positive");
        let q_next = (q + (lambda - self.service_scale * phi / c) * self.period).max(0.0);
        let r_next = (1.0 + q_next) * c / (self.service_scale * phi);
        (q_next, r_next)
    }

    /// [`QueueModel::step`] over parallel lanes: advance every `(q, λ, ĉ,
    /// φ)` tuple one period, writing `q̂(k+1)` back into `qs` and
    /// `r̂(k+1)` into `rs`. Each lane runs the exact per-element
    /// arithmetic of [`QueueModel::step`] — the flat loop exists so batch
    /// replays (many members × band samples advanced in lockstep) spend
    /// their time in one auto-vectorizable sweep instead of per-probe
    /// dispatch, not to change any value.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree.
    pub fn step_batch(
        &self,
        qs: &mut [f64],
        rs: &mut [f64],
        lambdas: &[f64],
        cs: &[f64],
        phis: &[f64],
    ) {
        let n = qs.len();
        assert!(
            rs.len() == n && lambdas.len() == n && cs.len() == n && phis.len() == n,
            "batch lanes must have equal length"
        );
        for i in 0..n {
            let (q_next, r_next) = self.step(qs[i], lambdas[i], cs[i], phis[i]);
            qs[i] = q_next;
            rs[i] = r_next;
        }
    }
}

/// Configuration of an L0 (per-computer frequency) controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L0Config {
    /// Prediction horizon `N_L0` (paper: 3).
    pub horizon: usize,
    /// Sampling period `T_L0` in seconds (paper: 30).
    pub period: f64,
    /// Response-time violation weight `Q` (paper: 100).
    pub q_weight: f64,
    /// Power weight `R` (paper: 1).
    pub r_weight: f64,
    /// Desired average response time `r*` in seconds (paper: 4).
    pub response_target: f64,
    /// Base operating cost `a` (paper: 0.75).
    pub base_cost: f64,
    /// Drift-aware L0: knobs of the online service-rate scale estimator
    /// threaded through [`QueueModel::step`]. Disabled in the paper
    /// defaults (the paper's model is capacity-blind); enable via
    /// [`crate::ScenarioConfig::with_drift_aware_l0`] or by setting
    /// `scale.enabled` directly.
    pub scale: llc_core::ScaleEstimatorConfig,
}

impl L0Config {
    /// The paper's §4.3 parameters (drift-blind: scale estimation off).
    pub fn paper_default() -> Self {
        L0Config {
            horizon: 3,
            period: 30.0,
            q_weight: 100.0,
            r_weight: 1.0,
            response_target: 4.0,
            base_cost: 0.75,
            scale: llc_core::ScaleEstimatorConfig::default(),
        }
    }

    /// Base ticks per a slower level's period of `period` seconds,
    /// rounded to the nearest whole tick and floored at one — the
    /// cadence arithmetic the control-plane driver schedules L1/L2
    /// decision rounds by (see [`crate::Cadence::from_configs`]).
    pub fn ticks_per(&self, period: f64) -> u64 {
        ((period / self.period).round() as u64).max(1)
    }
}

/// Model state carried through the L0 lookahead tree.
#[derive(Debug, Clone, Copy, PartialEq)]
struct L0State {
    q: f64,
    r: f64,
}

/// Environment sample: forecast arrival rate and processing time.
#[derive(Debug, Clone, Copy, PartialEq)]
struct L0Env {
    lambda: f64,
    c: f64,
}

/// The [`Plant`] adapter exposing the queue model to the generic
/// lookahead controller. Inputs are frequency-table indices.
struct L0Plant<'a> {
    phis: &'a [f64],
    model: QueueModel,
    response: SetPoint,
    q_penalty: Penalty,
    r_penalty: Penalty,
    base_cost: f64,
}

impl Plant for L0Plant<'_> {
    type State = L0State;
    type Input = usize;
    type Env = L0Env;

    fn admissible(&self, _x: &L0State) -> Vec<usize> {
        (0..self.phis.len()).collect()
    }

    fn admissible_into(&self, _x: &L0State, out: &mut Vec<usize>) {
        // State-independent input set: skip the per-node allocation the
        // lookahead search would otherwise pay (it expands thousands of
        // nodes per offline-learning grid point).
        out.extend(0..self.phis.len());
    }

    fn step(&self, x: &L0State, u: &usize, w: &L0Env) -> L0State {
        let (q, r) = self.model.step(x.q, w.lambda, w.c, self.phis[*u]);
        L0State { q, r }
    }

    fn cost(&self, x_next: &L0State, u: &usize, _prev: Option<&usize>) -> f64 {
        // Soft response-time constraint ε = max(0, r − r*), heavily
        // weighted; power ψ = a + φ². Frequency switches are free (§4.1:
        // "switching between different operating frequencies incurs
        // negligible power-consumption overhead").
        let slack = self.response.slack_above(x_next.r);
        let phi = self.phis[*u];
        self.q_penalty.eval(slack) + self.r_penalty.eval(self.base_cost + phi * phi)
    }
}

/// One L0 decision.
#[derive(Debug, Clone, PartialEq)]
pub struct L0Decision {
    /// Chosen frequency index into the computer's table.
    pub frequency_index: usize,
    /// Predicted cumulative cost over the horizon.
    pub predicted_cost: f64,
    /// Search statistics (states explored — the overhead metric).
    pub stats: SearchStats,
}

/// The per-computer frequency controller (§4.1).
///
/// Owns its own forecasters, as the paper prescribes "an ARIMA model,
/// implemented by a Kalman filter, to predict load arrivals at both
/// levels of the control hierarchy" and an EWMA (`π = 0.1`) for the
/// processing time. Each sampling period it observes the last window
/// (arrivals routed to this computer, demands of completed requests) and
/// picks the frequency minimizing the lookahead cost.
#[derive(Debug, Clone)]
pub struct L0Controller {
    config: L0Config,
    phis: Vec<f64>,
    controller: LookaheadController,
    lambda_forecast: LocalLinearTrend,
    c_filter: Ewma,
    /// Online delivered-capacity estimator (the drift-aware L0; inert
    /// unless `config.scale.enabled`).
    scale: ServiceScaleEstimator,
    /// Cumulative states explored (overhead accounting).
    total_stats: SearchStats,
    decisions: u64,
}

impl L0Controller {
    /// Build a controller for a computer with scaling factors `phis`
    /// (ascending, last = 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `phis` is empty, non-ascending, out of (0, 1], or if the
    /// config horizon is 0.
    pub fn new(config: L0Config, phis: Vec<f64>) -> Self {
        assert!(!phis.is_empty(), "need at least one frequency");
        assert!(
            phis.windows(2).all(|w| w[0] < w[1]),
            "φ values must be ascending"
        );
        assert!(
            phis[0] > 0.0 && *phis.last().expect("non-empty") <= 1.0 + 1e-12,
            "φ values must lie in (0, 1]"
        );
        let controller =
            LookaheadController::new(config.horizon).expect("config.horizon must be >= 1");
        L0Controller {
            phis,
            controller,
            lambda_forecast: LocalLinearTrend::with_default_noise().with_floor(0.0),
            c_filter: Ewma::paper_default(),
            scale: ServiceScaleEstimator::new(config.scale),
            config,
            total_stats: SearchStats::default(),
            decisions: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &L0Config {
        &self.config
    }

    /// Feed the last window's observations: arrivals routed to this
    /// computer and the mean full-speed demand of completed requests
    /// (`None` when nothing completed — the filter simply keeps its
    /// previous estimate).
    pub fn observe(&mut self, arrivals: u64, mean_demand: Option<f64>) {
        self.lambda_forecast
            .observe(arrivals as f64 / self.config.period);
        if let Some(c) = mean_demand {
            self.c_filter.observe(c);
        }
    }

    /// Current processing-time estimate `ĉ` (with a conservative floor
    /// before any completion has been observed).
    pub fn c_estimate(&self) -> f64 {
        let c = self.c_filter.estimate();
        if c > 0.0 {
            c
        } else {
            0.0175 // mean of U(10, 25) ms — the store's prior
        }
    }

    /// Current one-step arrival-rate forecast `λ̂` (requests/second).
    pub fn lambda_estimate(&self) -> f64 {
        self.lambda_forecast.predict_one().max(0.0)
    }

    /// Feed the delivery-side half of the last window to the drift-aware
    /// scale estimator: requests completed, whether the computer still
    /// held a backlog at the sampling instant (the busy-window evidence
    /// guard), and the frequency index in force over the window. A no-op
    /// while `config.scale.enabled` is false.
    pub fn observe_service(&mut self, completions: u64, busy: bool, frequency_index: usize) {
        let phi = self.phis[frequency_index.min(self.phis.len() - 1)];
        let c = self.c_estimate();
        self.scale
            .observe_window(completions, self.config.period, phi, c, busy);
    }

    /// The delivered-capacity scale `ŝ` the lookahead model currently
    /// runs at (1.0 while the estimator is disabled or unfed).
    pub fn scale_estimate(&self) -> f64 {
        self.scale.estimate()
    }

    /// Forget the learned capacity scale and re-converge from the
    /// nominal prior — for callers that *know* the plant was restored
    /// (a machine replaced, a throttle lifted). The retrain hot-swap
    /// deliberately does **not** call this: the rebuilt maps are
    /// centered on `ĉ/ŝ`, so ŝ must keep tracking the still-degraded
    /// plant or the L0 would believe in nominal capacity again and
    /// reintroduce the limit cycle the estimator exists to kill.
    pub fn reset_scale(&mut self) {
        self.scale.reset();
    }

    /// Decide the frequency index for the next period given the observed
    /// queue length.
    ///
    /// # Errors
    ///
    /// Propagates [`llc_core::Error`] (cannot occur with a non-empty φ
    /// table and the internally built forecast).
    pub fn decide(&mut self, queue_len: usize) -> Result<L0Decision, LlcError> {
        let lambdas = self.lambda_forecast.predict(self.config.horizon);
        let c = self.c_estimate();
        let forecast = Forecast::from_nominal(
            lambdas
                .into_iter()
                .map(|l| L0Env {
                    lambda: l.max(0.0),
                    c,
                })
                .collect(),
        );
        let plant = L0Plant {
            phis: &self.phis,
            model: QueueModel::with_scale(self.config.period, self.scale.estimate()),
            response: SetPoint::new(self.config.response_target),
            q_penalty: Penalty::abs(self.config.q_weight),
            r_penalty: Penalty::abs(self.config.r_weight),
            base_cost: self.config.base_cost,
        };
        let x0 = L0State {
            q: queue_len as f64,
            r: 0.0,
        };
        let Decision {
            input, cost, stats, ..
        } = self.controller.decide(&plant, &x0, None, &forecast)?;
        self.total_stats.absorb(stats);
        self.decisions += 1;
        Ok(L0Decision {
            frequency_index: input,
            predicted_cost: cost,
            stats,
        })
    }

    /// Average states explored per decision so far (overhead metric).
    pub fn mean_states_explored(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.total_stats.states_explored as f64 / self.decisions as f64
        }
    }

    /// Decisions taken so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Evaluate the model cost the L0 controller would accrue over
    /// `steps` periods starting from queue `q0` under constant arrival
    /// rate `lambda` and processing time `c` — replaying its own decide
    /// loop on the analytic model. This is the inner simulation behind
    /// the offline learning of the L1 abstraction map `g`.
    ///
    /// Returns `(average cost per period, average power draw, final
    /// queue length)`.
    pub fn simulate_model(
        config: &L0Config,
        phis: &[f64],
        q0: f64,
        lambda: f64,
        c: f64,
        steps: usize,
    ) -> (f64, f64, f64) {
        assert!(steps > 0, "need at least one step");
        let plant = L0Plant {
            phis,
            model: QueueModel::new(config.period),
            response: SetPoint::new(config.response_target),
            q_penalty: Penalty::abs(config.q_weight),
            r_penalty: Penalty::abs(config.r_weight),
            base_cost: config.base_cost,
        };
        let controller =
            LookaheadController::new(config.horizon).expect("horizon >= 1 by construction");
        let env = L0Env { lambda, c };
        let forecast = Forecast::from_nominal(vec![env; config.horizon]);
        let mut q = q0;
        let mut total = 0.0;
        let mut power = 0.0;
        for _ in 0..steps {
            let x = L0State { q, r: 0.0 };
            let d = controller
                .decide(&plant, &x, None, &forecast)
                .expect("non-empty input set");
            let next = plant.step(&x, &d.input, &env);
            total += plant.cost(&next, &d.input, None);
            let phi = phis[d.input];
            power += config.base_cost + phi * phi;
            q = next.q;
        }
        (total / steps as f64, power / steps as f64, q)
    }

    /// [`L0Controller::simulate_model`] over many `(q₀, λ, ĉ)` points in
    /// lockstep: every point's replay advances one period per iteration,
    /// with the queue/response updates batched through
    /// [`QueueModel::step_batch`]. Each point's result is bit-identical
    /// to its own [`L0Controller::simulate_model`] call — the per-point
    /// lookahead decisions and cost accumulations run in the same order
    /// with the same operands; only the loop nesting changes. This is the
    /// batch back end for out-of-grid abstraction-map lanes (one γ sweep
    /// can strand a whole band of samples beyond the trained box at
    /// once).
    pub fn simulate_model_batch(
        config: &L0Config,
        phis: &[f64],
        points: &[(f64, f64, f64)],
        steps: usize,
    ) -> Vec<(f64, f64, f64)> {
        assert!(steps > 0, "need at least one step");
        let n = points.len();
        if n == 0 {
            return Vec::new();
        }
        let plant = L0Plant {
            phis,
            model: QueueModel::new(config.period),
            response: SetPoint::new(config.response_target),
            q_penalty: Penalty::abs(config.q_weight),
            r_penalty: Penalty::abs(config.r_weight),
            base_cost: config.base_cost,
        };
        let controller =
            LookaheadController::new(config.horizon).expect("horizon >= 1 by construction");
        let mut qs: Vec<f64> = points.iter().map(|&(q0, _, _)| q0).collect();
        let mut rs = vec![0.0; n];
        let lambdas: Vec<f64> = points.iter().map(|&(_, lambda, _)| lambda).collect();
        let cs: Vec<f64> = points.iter().map(|&(_, _, c)| c).collect();
        let forecasts: Vec<Forecast<L0Env>> = points
            .iter()
            .map(|&(_, lambda, c)| {
                Forecast::from_nominal(vec![L0Env { lambda, c }; config.horizon])
            })
            .collect();
        let mut chosen = vec![0.0f64; n];
        let mut totals = vec![0.0f64; n];
        let mut powers = vec![0.0f64; n];
        for _ in 0..steps {
            for i in 0..n {
                let x = L0State { q: qs[i], r: 0.0 };
                let d = controller
                    .decide(&plant, &x, None, &forecasts[i])
                    .expect("non-empty input set");
                chosen[i] = phis[d.input];
            }
            plant
                .model
                .step_batch(&mut qs, &mut rs, &lambdas, &cs, &chosen);
            for i in 0..n {
                let slack = plant.response.slack_above(rs[i]);
                let phi = chosen[i];
                totals[i] +=
                    plant.q_penalty.eval(slack) + plant.r_penalty.eval(plant.base_cost + phi * phi);
                powers[i] += config.base_cost + phi * phi;
            }
        }
        (0..n)
            .map(|i| (totals[i] / steps as f64, powers[i] / steps as f64, qs[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phis() -> Vec<f64> {
        vec![0.25, 0.5, 0.75, 1.0]
    }

    fn controller() -> L0Controller {
        L0Controller::new(L0Config::paper_default(), phis())
    }

    #[test]
    fn queue_model_drains_when_service_exceeds_arrivals() {
        let m = QueueModel::new(30.0);
        // λ = 10 req/s, c = 20 ms, φ = 1: service rate 50 req/s.
        let (q, r) = m.step(100.0, 10.0, 0.02, 1.0);
        assert_eq!(q, 0.0, "surplus capacity empties the queue");
        assert!((r - 0.02).abs() < 1e-12);
    }

    #[test]
    fn queue_model_grows_when_overloaded() {
        let m = QueueModel::new(30.0);
        // λ = 100 req/s, service rate φ/c = 50 req/s: +50/s for 30 s.
        let (q, r) = m.step(0.0, 100.0, 0.02, 1.0);
        assert!((q - 1500.0).abs() < 1e-9);
        assert!((r - 1501.0 * 0.02).abs() < 1e-9);
    }

    #[test]
    fn idle_computer_picks_lowest_frequency() {
        let mut c = controller();
        for _ in 0..10 {
            c.observe(0, Some(0.0175));
        }
        let d = c.decide(0).unwrap();
        assert_eq!(d.frequency_index, 0, "no load: minimize power");
    }

    #[test]
    fn overloaded_computer_picks_highest_frequency() {
        let mut c = controller();
        // 55 req/s at c = 17.5 ms: needs φ ≈ 0.96 — only φ = 1.0 serves it.
        for _ in 0..10 {
            c.observe(55 * 30, Some(0.0175));
        }
        let d = c.decide(40).unwrap();
        assert_eq!(d.frequency_index, 3, "overload: run flat out");
    }

    #[test]
    fn moderate_load_picks_intermediate_frequency() {
        let mut c = controller();
        // 20 req/s at c = 17.5 ms: φ = 0.5 serves 28.6 req/s with small
        // queues; φ = 0.25 (14.3 req/s) diverges.
        for _ in 0..10 {
            c.observe(20 * 30, Some(0.0175));
        }
        let d = c.decide(0).unwrap();
        assert!(
            d.frequency_index == 1 || d.frequency_index == 2,
            "expected an intermediate setting, got {}",
            d.frequency_index
        );
    }

    #[test]
    fn stats_accumulate_and_bound() {
        let mut c = controller();
        c.observe(100, Some(0.0175));
        let d = c.decide(0).unwrap();
        // Horizon 3, |U| = 4: at most 4 + 16 + 64 = 84 states.
        assert!(d.stats.states_explored <= 84);
        assert!(d.stats.states_explored >= 4);
        assert_eq!(c.decisions(), 1);
        assert!(c.mean_states_explored() > 0.0);
    }

    #[test]
    fn c_estimate_falls_back_before_observations() {
        let c = controller();
        assert!((c.c_estimate() - 0.0175).abs() < 1e-12);
    }

    #[test]
    fn simulate_model_costs_rise_with_load() {
        let cfg = L0Config::paper_default();
        let (low, p_low, _) = L0Controller::simulate_model(&cfg, &phis(), 0.0, 5.0, 0.0175, 4);
        let (high, p_high, _) = L0Controller::simulate_model(&cfg, &phis(), 0.0, 80.0, 0.0175, 4);
        assert!(
            p_high > p_low,
            "overload draws more power ({p_high:.2}) than light load ({p_low:.2})"
        );
        assert!(
            high > low,
            "overload cost {high} must exceed light-load cost {low}"
        );
    }

    #[test]
    fn simulate_model_final_queue_drains_under_capacity() {
        let cfg = L0Config::paper_default();
        let (_, _, q_final) = L0Controller::simulate_model(&cfg, &phis(), 50.0, 5.0, 0.0175, 4);
        assert_eq!(q_final, 0.0, "light load drains the backlog");
    }

    #[test]
    fn step_batch_matches_per_lane_steps() {
        let m = QueueModel::with_scale(30.0, 0.8);
        let mut qs = vec![0.0, 100.0, 17.0, 3.0];
        let mut rs = vec![0.0; 4];
        let lambdas = [10.0, 100.0, 41.0, 0.0];
        let cs = [0.02, 0.02, 0.0175, 0.015];
        let phis = [1.0, 1.0, 0.75, 0.25];
        let expect: Vec<(f64, f64)> = (0..4)
            .map(|i| m.step(qs[i], lambdas[i], cs[i], phis[i]))
            .collect();
        m.step_batch(&mut qs, &mut rs, &lambdas, &cs, &phis);
        for i in 0..4 {
            assert_eq!((qs[i], rs[i]), expect[i], "lane {i}");
        }
    }

    #[test]
    fn simulate_model_batch_matches_serial_replays() {
        let cfg = L0Config::paper_default();
        let points = vec![
            (0.0, 5.0, 0.0175),
            (50.0, 80.0, 0.0175),
            (200.0, 120.0, 0.02),
            (3.0, 0.0, 0.015),
        ];
        let batch = L0Controller::simulate_model_batch(&cfg, &phis(), &points, 4);
        for (i, &(q0, lambda, c)) in points.iter().enumerate() {
            let serial = L0Controller::simulate_model(&cfg, &phis(), q0, lambda, c, 4);
            assert_eq!(batch[i], serial, "point {i} must be bit-identical");
        }
        assert!(L0Controller::simulate_model_batch(&cfg, &phis(), &[], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_phis_panic() {
        let _ = L0Controller::new(L0Config::paper_default(), vec![1.0, 0.5]);
    }

    #[test]
    fn scaled_model_halves_the_service_rate() {
        let nominal = QueueModel::new(30.0);
        let degraded = QueueModel::with_scale(30.0, 0.5);
        // λ = 30 req/s, c = 20 ms, φ = 1: nominal service 50 req/s
        // drains, half-capacity service 25 req/s backs up at +5/s.
        let (q_nom, _) = nominal.step(0.0, 30.0, 0.02, 1.0);
        let (q_deg, r_deg) = degraded.step(0.0, 30.0, 0.02, 1.0);
        assert_eq!(q_nom, 0.0);
        assert!((q_deg - 150.0).abs() < 1e-9);
        assert!((r_deg - 151.0 * 0.02 / 0.5).abs() < 1e-9);
        // ŝ = 1 must reproduce the nominal model bit for bit.
        assert_eq!(
            nominal.step(17.0, 41.0, 0.0175, 0.75),
            QueueModel::with_scale(30.0, 1.0).step(17.0, 41.0, 0.0175, 0.75)
        );
    }

    #[test]
    fn drift_aware_l0_raises_frequency_on_a_degraded_plant() {
        // 20 req/s at c = 17.5 ms on a plant delivering half its nominal
        // capacity: the drift-blind L0 believes φ = 0.5 serves 28.6 req/s
        // and settles there (the too-low leg of the limit cycle — it
        // really delivers 14.3); the drift-aware L0 learns ŝ ≈ 0.5 from
        // the completions and provisions at a setting whose *delivered*
        // rate covers the load (φ ≥ 0.75: ≥ 21.4 req/s).
        let mut cfg = L0Config::paper_default();
        cfg.scale = llc_core::ScaleEstimatorConfig::enabled();
        let mut aware = L0Controller::new(cfg, phis());
        let mut blind = controller();
        let true_scale: f64 = 0.5;
        for _ in 0..10 {
            blind.observe(20 * 30, Some(0.0175));
            aware.observe(20 * 30, Some(0.0175));
            // Busy windows at φ = 0.5: the plant completes ŝ·φ/c·T.
            let completions = (true_scale * 0.5 / 0.0175 * 30.0).round() as u64;
            aware.observe_service(completions, true, 1);
        }
        assert!(
            (aware.scale_estimate() - true_scale).abs() < 0.05,
            "ŝ = {} should track the degraded plant",
            aware.scale_estimate()
        );
        let blind_choice = blind.decide(0).unwrap().frequency_index;
        let aware_choice = aware.decide(0).unwrap().frequency_index;
        assert!(
            aware_choice > blind_choice,
            "drift-aware must provision above the drift-blind choice \
             ({aware_choice} vs {blind_choice})"
        );
        assert!(
            aware_choice >= 2,
            "half capacity at 20 req/s needs delivered rate ≥ load (φ ≥ 0.75), got index {aware_choice}"
        );
        aware.reset_scale();
        assert_eq!(aware.scale_estimate(), 1.0);
    }

    #[test]
    fn disabled_scale_estimator_ignores_service_windows() {
        let mut c = controller();
        c.observe_service(10_000, true, 0);
        assert_eq!(c.scale_estimate(), 1.0, "paper default stays blind");
    }
}
