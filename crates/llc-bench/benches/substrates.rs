//! Criterion benches for the substrates: event-simulator throughput,
//! forecasting filters and function approximation. These establish that
//! the run-time overhead claims rest on cheap primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llc_approx::{GridSampler, RegressionTree, SimplexGrid, TreeConfig};
use llc_forecast::{Ewma, Forecaster, KalmanFilter, LocalLinearTrend, Matrix};
use llc_sim::{ClusterConfig, ClusterSim, ComputerConfig, PowerModel};
use std::hint::black_box;

/// Event-engine throughput: requests fully served per second of wall
/// time on a four-computer module.
fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("serve_requests", n), &n, |b, &n| {
            b.iter(|| {
                let config = ClusterConfig {
                    modules: vec![(0..4)
                        .map(|_| {
                            ComputerConfig::new(
                                vec![1.0e9, 2.0e9],
                                PowerModel::paper_default(),
                                0.0,
                            )
                        })
                        .collect()],
                };
                let mut sim = ClusterSim::new(config);
                for i in 0..4 {
                    sim.power_on(i);
                }
                sim.set_module_weights(&[1.0]).unwrap();
                sim.set_computer_weights(0, &[1.0; 4]).unwrap();
                for k in 0..n {
                    sim.schedule_arrival(k as f64 * 1e-3, 0.0005).unwrap();
                }
                sim.run_until(n as f64 * 1e-3 + 10.0).unwrap();
                black_box(sim.total_energy())
            })
        });
    }
    group.finish();
}

/// Kalman filter predict+update and multi-step forecasting.
fn bench_forecasting(c: &mut Criterion) {
    let mut group = c.benchmark_group("forecasting");
    group.sample_size(50);

    group.bench_function("kalman_step_2state", |b| {
        let mut kf = KalmanFilter::new(
            Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]),
            Matrix::from_rows(&[&[1.0, 0.0]]),
            Matrix::diagonal(&[10.0, 0.1]),
            Matrix::diagonal(&[100.0]),
            Matrix::column(&[0.0, 0.0]),
            Matrix::diagonal(&[1e6, 1e6]),
        )
        .unwrap();
        let mut z = 0.0;
        b.iter(|| {
            z += 1.0;
            kf.step_scalar(black_box(z)).unwrap();
            black_box(kf.observation())
        })
    });

    group.bench_function("trend_observe_predict3", |b| {
        let mut f = LocalLinearTrend::with_default_noise();
        let mut z = 100.0;
        b.iter(|| {
            z += 0.5;
            f.observe(black_box(z));
            black_box(f.predict(3))
        })
    });

    group.bench_function("ewma_observe", |b| {
        let mut f = Ewma::paper_default();
        b.iter(|| {
            f.observe(black_box(0.0175));
            black_box(f.estimate())
        })
    });
    group.finish();
}

/// Function approximation: CART training and prediction, simplex grids.
fn bench_approximation(c: &mut Criterion) {
    let mut group = c.benchmark_group("approximation");
    group.sample_size(20);

    let sampler = GridSampler::new(vec![(0.0, 1.0, 20), (0.0, 1.0, 20)]);
    let xs = sampler.points();
    let ys: Vec<f64> = xs.iter().map(|p| p[0] * 3.0 + p[1] * p[1]).collect();
    group.bench_function("cart_fit_400pts", |b| {
        b.iter(|| {
            black_box(
                RegressionTree::fit(black_box(&xs), black_box(&ys), TreeConfig::default())
                    .unwrap(),
            )
        })
    });

    let tree = RegressionTree::fit(&xs, &ys, TreeConfig::default()).unwrap();
    group.bench_function("cart_predict", |b| {
        b.iter(|| black_box(tree.predict(black_box(&[0.37, 0.61]))))
    });

    group.bench_function("simplex_enumerate_4mod_q01", |b| {
        let grid = SimplexGrid::with_quantum(4, 0.1);
        b.iter(|| black_box(grid.enumerate().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_forecasting, bench_approximation);
criterion_main!(benches);
