//! Benches for the substrates: event-simulator throughput, forecasting
//! filters, function approximation and the two lookup substrates. These
//! establish that the run-time overhead claims rest on cheap primitives.
//!
//! Hand-timed (`harness = false`): the build environment has no registry
//! access for criterion. Run with `cargo bench --bench substrates`.

use llc_approx::{train_dense, train_table, GridSampler, RegressionTree, SimplexGrid, TreeConfig};
use llc_bench::microbench::bench;
use llc_forecast::{Ewma, Forecaster, KalmanFilter, LocalLinearTrend, Matrix};
use llc_sim::{ClusterConfig, ClusterSim, ComputerConfig, PowerModel};
use std::hint::black_box;

/// Event-engine throughput: requests fully served on a four-computer
/// module.
fn bench_simulator() {
    for n in [1_000usize, 10_000] {
        bench(&format!("sim: serve_requests/{n}"), 20, || {
            let config = ClusterConfig {
                modules: vec![(0..4)
                    .map(|_| {
                        ComputerConfig::new(vec![1.0e9, 2.0e9], PowerModel::paper_default(), 0.0)
                    })
                    .collect()],
            };
            let mut sim = ClusterSim::new(config);
            for i in 0..4 {
                sim.power_on(i);
            }
            sim.set_module_weights(&[1.0]).unwrap();
            sim.set_computer_weights(0, &[1.0; 4]).unwrap();
            for k in 0..n {
                sim.schedule_arrival(k as f64 * 1e-3, 0.0005).unwrap();
            }
            sim.run_until(n as f64 * 1e-3 + 10.0).unwrap();
            black_box(sim.total_energy());
        });
    }
}

/// Kalman filter predict+update and multi-step forecasting.
fn bench_forecasting() {
    let mut kf = KalmanFilter::new(
        Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]),
        Matrix::from_rows(&[&[1.0, 0.0]]),
        Matrix::diagonal(&[10.0, 0.1]),
        Matrix::diagonal(&[100.0]),
        Matrix::column(&[0.0, 0.0]),
        Matrix::diagonal(&[1e6, 1e6]),
    )
    .unwrap();
    let mut z = 0.0;
    bench("forecast: kalman_step_2state", 100_000, || {
        z += 1.0;
        kf.step_scalar(black_box(z)).unwrap();
        black_box(kf.observation());
    });

    let mut trend = LocalLinearTrend::with_default_noise();
    let mut y = 100.0;
    bench("forecast: trend_observe_predict3", 100_000, || {
        y += 0.5;
        trend.observe(black_box(y));
        black_box(trend.predict(3));
    });

    let mut ewma = Ewma::paper_default();
    bench("forecast: ewma_observe", 1_000_000, || {
        ewma.observe(black_box(0.0175));
        black_box(ewma.estimate());
    });
}

/// Function approximation: CART training and prediction, simplex grids,
/// and the dense-vs-hash lookup substrates over the same trained domain.
fn bench_approximation() {
    let sampler = GridSampler::new(vec![(0.0, 1.0, 20), (0.0, 1.0, 20)]);
    let xs = sampler.points();
    let ys: Vec<f64> = xs.iter().map(|p| p[0] * 3.0 + p[1] * p[1]).collect();
    bench("approx: cart_fit_400pts", 100, || {
        black_box(
            RegressionTree::fit(black_box(&xs), black_box(&ys), TreeConfig::default()).unwrap(),
        );
    });

    let tree = RegressionTree::fit(&xs, &ys, TreeConfig::default()).unwrap();
    bench("approx: cart_predict", 1_000_000, || {
        black_box(tree.predict(black_box(&[0.37, 0.61])));
    });

    bench("approx: simplex_enumerate_4mod_q01", 1_000, || {
        let grid = SimplexGrid::with_quantum(4, 0.1);
        black_box(grid.enumerate().len());
    });

    // The two lookup substrates over an identical trained rectangle.
    let domain = GridSampler::new(vec![(0.0, 200.0, 24), (0.01, 0.03, 5), (0.0, 200.0, 6)]);
    let f = |p: &[f64]| p[0] * 0.5 + p[1] * 100.0 + p[2];
    let hash = train_table(&domain, &domain.cell_steps(), f);
    let dense = train_dense(&domain, f);
    let queries: Vec<[f64; 3]> = (0..10_000)
        .map(|i| {
            let t = i as f64;
            [
                (t * 7.3) % 260.0,          // ~23 % beyond the λ edge
                0.008 + (t * 0.013) % 0.03, // wanders past both c edges
                (t * 11.1) % 220.0,         // ~9 % beyond the queue edge
            ]
        })
        .collect();
    bench("approx: lookup_hash_10k_probes", 200, || {
        let mut acc = 0.0;
        for q in &queries {
            acc += *hash.get(q).unwrap();
        }
        black_box(acc);
    });
    bench("approx: lookup_dense_10k_probes", 200, || {
        let mut acc = 0.0;
        for q in &queries {
            acc += *dense.get_clamped(q);
        }
        black_box(acc);
    });
}

fn main() {
    bench_simulator();
    bench_forecasting();
    bench_approximation();
}
