//! Benches for the control overhead tables (§4.3, §5.2): the
//! per-decision cost of each hierarchy level as a function of its sizing
//! knobs. These are the machine-checkable counterparts of the
//! `overhead_module` / `overhead_cluster` binaries.
//!
//! Hand-timed (`harness = false`): the build environment has no registry
//! access for criterion. Run with `cargo bench --bench controller_overhead`.

use llc_bench::microbench::bench;
use llc_cluster::{
    AbstractionMap, L0Config, L0Controller, L1Config, L1Controller, L2Config, L2Controller,
    LearnSpec, MemberSpec, ModuleCostModel, ModuleLearnSpec, ModuleState,
};
use std::hint::black_box;
use std::sync::Arc;

fn member_specs(m: usize) -> Vec<MemberSpec> {
    use llc_cluster::{ComputerProfile, FrequencyProfile};
    let profiles = FrequencyProfile::module_set();
    (0..m)
        .map(|j| {
            let cp = ComputerProfile::paper_default(profiles[j % 4]);
            MemberSpec {
                phis: cp.phis(),
                speed: cp.speed,
                c_prior: 0.0175 / cp.speed,
            }
        })
        .collect()
}

fn maps_for(specs: &[MemberSpec]) -> Vec<Arc<AbstractionMap>> {
    let l0 = L0Config::paper_default();
    specs
        .iter()
        .map(|m| {
            Arc::new(AbstractionMap::learn(
                &l0,
                &m.phis,
                (m.c_prior * 0.6, m.c_prior * 1.6),
                2.0 / (m.c_prior * 0.6),
                200.0,
                LearnSpec::coarse(),
            ))
        })
        .collect()
}

/// L0 exhaustive lookahead vs prediction horizon (paper: N = 3, states
/// explored grow as Σ|U|^q).
fn bench_l0() {
    for horizon in [1usize, 2, 3, 4] {
        let mut config = L0Config::paper_default();
        config.horizon = horizon;
        // C4's eight frequency settings.
        let phis: Vec<f64> = (1..=8).map(|k| k as f64 / 8.0).collect();
        let mut l0 = L0Controller::new(config, phis);
        for _ in 0..8 {
            l0.observe(40 * 30, Some(0.0175));
        }
        bench(&format!("l0_decide/horizon={horizon}"), 2_000, || {
            black_box(l0.decide(black_box(12)).unwrap());
        });
    }
}

/// L1 bounded search vs module size (paper: m = 4, 6, 10 with γ quantum
/// 0.05 / 0.1 / 0.1).
fn bench_l1() {
    for m in [4usize, 6, 10] {
        let specs = member_specs(m);
        let maps = maps_for(&specs);
        let mut config = L1Config::paper_default();
        if m > 4 {
            config.gamma_quantum = 0.1;
        }
        let mut l1 = L1Controller::new_shared(config, specs, maps);
        for _ in 0..6 {
            l1.observe(60 * 120, &vec![Some(0.0175); m]);
        }
        let queues = vec![3usize; m];
        let active = vec![true; m];
        bench(&format!("l1_decide/module_size={m}"), 200, || {
            black_box(l1.decide(black_box(&queues), black_box(&active)));
        });
    }
}

/// L2 split search vs module count (paper: 4 and 5 modules at quantum
/// 0.1 — 286 vs 1001 simplex points when unbounded).
fn bench_l2() {
    let specs = member_specs(2);
    let maps = maps_for(&specs);
    let model = ModuleCostModel::learn(
        &L1Config::paper_default(),
        &specs,
        &maps,
        200.0,
        ModuleLearnSpec::coarse(),
    );
    for p in [4usize, 5] {
        let mut l2 = L2Controller::new(
            L2Config::paper_default(),
            (0..p).map(|_| model.clone()).collect(),
        );
        for _ in 0..5 {
            l2.observe(200 * 120);
        }
        let states = vec![
            ModuleState {
                c_factor: 1.0,
                queue_mean: 2.0,
                active: 2,
            };
            p
        ];
        bench(&format!("l2_decide/modules={p}"), 500, || {
            black_box(l2.decide(black_box(&states)));
        });
    }
}

fn main() {
    bench_l0();
    bench_l1();
    bench_l2();
}
