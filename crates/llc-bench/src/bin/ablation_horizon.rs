//! Ablation of the L0 prediction horizon: sweep `N_L0 ∈ {1, 2, 3, 4}`
//! (the paper uses 3) on the single-module experiment and report QoS,
//! energy and search cost. The expected trade-off: longer horizons
//! explore exponentially more states for marginal QoS gains.

use llc_bench::figures::FIGURE_SEED;
use llc_bench::report::{quick_mode, write_csv};
use llc_cluster::{single_module, Experiment, HierarchicalPolicy};
use llc_workload::{synthetic_paper_workload, VirtualStore};

fn main() {
    println!("Ablation — L0 prediction horizon sweep (paper: N_L0 = 3)\n");
    println!(
        "{:>3} | {:>14} | {:>12} | {:>12} | {:>14}",
        "N", "mean resp (s)", "violations", "energy", "L0 states/dec"
    );
    println!("{}", "-".repeat(70));

    let mut rows = Vec::new();
    for horizon in [1usize, 2, 3, 4] {
        let mut scenario = single_module(4);
        scenario.l0.horizon = horizon;
        let mut trace = synthetic_paper_workload(FIGURE_SEED);
        if quick_mode() {
            scenario = scenario.with_coarse_learning();
            trace = trace.slice(0, 250);
        }
        let store = VirtualStore::paper_default(FIGURE_SEED);
        let mut policy = HierarchicalPolicy::build(&scenario);
        let log = Experiment::paper_default(FIGURE_SEED)
            .run(scenario.to_sim_config(), &mut policy, &trace, &store)
            .expect("well-formed scenario");
        let s = log.summary();
        // Mean over the four computers' lookahead stats.
        let states: f64 = (0..4)
            .map(|i| policy.l0(i).mean_states_explored())
            .sum::<f64>()
            / 4.0;
        println!(
            "{horizon:>3} | {:>14.2} | {:>11.1}% | {:>12.0} | {states:>14.0}",
            s.mean_response,
            s.violation_fraction * 100.0,
            s.total_energy,
        );
        rows.push(format!(
            "{horizon},{:.3},{:.4},{:.0},{states:.0}",
            s.mean_response, s.violation_fraction, s.total_energy
        ));
    }

    println!();
    println!("expected shape: states/decision grows ~|U|^N; QoS plateaus by N = 3.");
    let path = write_csv(
        "ablation_horizon.csv",
        "horizon,mean_response_s,violation_fraction,energy,l0_states_per_decision",
        &rows,
    );
    println!("wrote {}", path.display());
}
