//! §4.3 control-overhead table: states examined and execution times of
//! the module-level hierarchy for m ∈ {4, 6, 10} computers.
//!
//! The paper (MATLAB, 3.0 GHz Pentium 4) reports: L1 examines ~858 states
//! per sampling period for m = 4; combined L0+L1 execution times of
//! 2.0 s (m = 4, γ-quantum 0.05), 1.1 s (m = 6, 0.1) and 2.0 s
//! (m = 10, 0.1). Compiled Rust is orders of magnitude faster in absolute
//! terms; the *shape* to check is that overhead stays low and scales
//! gently with module size.

use llc_bench::figures::{module_experiment_sized, FIGURE_SEED};
use llc_bench::report::{ms, write_csv};

fn main() {
    println!("§4.3 — module controller overhead vs module size\n");
    println!(
        "{:>3} | {:>9} | {:>14} | {:>12} | {:>12} | {:>14}",
        "m", "γ-quantum", "L1 states/dec", "L1 mean", "L0 mean", "combined/period"
    );
    println!("{}", "-".repeat(80));

    let mut rows = Vec::new();
    for m in [4usize, 6, 10] {
        let run = module_experiment_sized(m, FIGURE_SEED);
        let l1 = run.policy.l1(0);
        let states = l1.mean_states_evaluated();
        let overhead = run.policy.overhead();
        let l1_mean = overhead[1].mean();
        let l0_mean = overhead[0].mean();
        // One L1 period = one L1 decision + 4 L0 decisions per computer.
        let combined = l1_mean + l0_mean * (4 * m) as u32;
        println!(
            "{:>3} | {:>9} | {:>14.0} | {:>12} | {:>12} | {:>14}",
            m,
            run.scenario.l1.gamma_quantum,
            states,
            ms(l1_mean),
            ms(l0_mean),
            ms(combined),
        );
        rows.push(format!(
            "{m},{},{:.0},{:.6},{:.6},{:.6}",
            run.scenario.l1.gamma_quantum,
            states,
            l1_mean.as_secs_f64(),
            l0_mean.as_secs_f64(),
            combined.as_secs_f64()
        ));
    }

    println!();
    println!("paper reference: m=4 -> ~858 L1 states/period, 2.0 s combined (MATLAB);");
    println!("                 m=6 -> 1.1 s; m=10 -> 2.0 s (coarser γ-quantum 0.1).");
    println!("expected shape: near-flat growth in m thanks to bounded search + coarser quanta.");

    let path = write_csv(
        "overhead_module.csv",
        "m,gamma_quantum,l1_states_per_decision,l1_mean_s,l0_mean_s,combined_per_period_s",
        &rows,
    );
    println!("wrote {}", path.display());
}
