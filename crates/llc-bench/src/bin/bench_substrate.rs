//! Substrate perf trajectory: dense-grid vs hash-table lookups, and the
//! offline learning pipeline (shared maps + parallel fan-out) vs the
//! seed's serial clone-per-point baseline. Emits machine-readable
//! `BENCH_substrate.json` at the workspace root so future PRs can track
//! the trend. Pass `--quick` for a fast smoke run (coarse grids, no
//! JSON). Pass `--check` for the CI regression gate: measure at full
//! grid resolution (coarse grids change the hash/dense *ratios*, so
//! quick numbers are not comparable to the committed baselines) but with
//! reduced timing iterations, then fail if any probe/learn/decide
//! speedup regresses more than 20% below the committed
//! `BENCH_substrate.json`.

use llc_bench::microbench;
use llc_bench::report::{
    self, check_mode, gate_ratio, json_number, median3, quick_mode, runner_json,
};
use llc_cluster::{
    AbstractionMap, FrequencyProfile, L0Config, L1Config, L1Controller, LearnSpec, MapBackend,
    MemberSpec, ModuleCostModel, ModuleLearnSpec,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn member_specs(m: usize) -> Vec<MemberSpec> {
    let profiles = FrequencyProfile::module_set();
    (0..m)
        .map(|j| MemberSpec::paper_default(profiles[j % 4]))
        .collect()
}

fn learn_map(spec: &MemberSpec, learn: LearnSpec, backend: MapBackend) -> AbstractionMap {
    AbstractionMap::learn_for_member(&L0Config::paper_default(), spec, learn, backend)
}

/// Deterministic query mix over (λ, ĉ, q): ~70 % inside the trained grid,
/// ~30 % outside on at least one axis — the latter answered by the
/// hash table's clamp-and-reprobe (allocating twice, hashing twice) and
/// by the dense grid's per-axis clamp (no allocation at all).
fn query_points(spec: &MemberSpec, n: usize) -> Vec<[f64; 3]> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBE7C);
    let lambda_max = 2.0 / (spec.c_prior * 0.6);
    (0..n)
        .map(|_| {
            let out_of_grid = rng.gen::<f64>() < 0.3;
            let lam = rng.gen_range(0.0..lambda_max);
            // ĉ ranges well past the trained (0.6, 1.6)·c_prior band —
            // EWMA estimates drift there routinely in the online path.
            let c = if out_of_grid {
                rng.gen_range(spec.c_prior * 0.1..spec.c_prior * 3.0)
            } else {
                rng.gen_range(spec.c_prior * 0.7..spec.c_prior * 1.5)
            };
            let q = rng.gen_range(0.0..190.0);
            [lam, c, q]
        })
        .collect()
}

/// The seed's training-budget reduction (kept in lockstep with
/// `L1Config::clone_for_training`).
fn training_config(c: &L1Config) -> L1Config {
    L1Config {
        search_rounds: c.search_rounds.min(8),
        search_evals: c.search_evals.min(600),
        ..*c
    }
}

/// The seed's module-learning inner loop, verbatim economics: a fresh
/// `L1Controller` per grid point over *deep-cloned* hash-backed maps.
#[allow(clippy::too_many_arguments)] // mirrors the learning grid's axes
fn simulate_module_baseline(
    l1_config: &L1Config,
    members: &[MemberSpec],
    maps: &[AbstractionMap],
    lambda: f64,
    c_factor: f64,
    q0: f64,
    active_init: usize,
    periods: usize,
) -> f64 {
    let mut l1 = L1Controller::new(training_config(l1_config), members.to_vec(), maps.to_vec());
    let m = members.len();
    let mut queues: Vec<f64> = vec![q0; m];
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        (members[b].speed / members[b].c_prior).total_cmp(&(members[a].speed / members[a].c_prior))
    });
    let mut active = vec![false; m];
    for &j in order.iter().take(active_init.clamp(1, m)) {
        active[j] = true;
    }
    let demands: Vec<Option<f64>> = members.iter().map(|s| Some(s.c_prior * c_factor)).collect();
    let mut total = 0.0;
    for _ in 0..periods {
        let arrivals = (lambda * l1_config.period).round().max(0.0) as u64;
        l1.observe(arrivals, &demands);
        let q_obs: Vec<usize> = queues.iter().map(|&q| q.round() as usize).collect();
        let d = l1.decide(&q_obs, &active);
        for j in 0..m {
            if d.alpha[j] {
                let entry = maps[j].query(
                    d.gamma[j] * lambda,
                    members[j].c_prior * c_factor,
                    queues[j],
                );
                total += entry.cost;
                queues[j] = entry.final_q;
            } else {
                queues[j] = 0.0;
            }
            if d.alpha[j] && !active[j] {
                total += l1_config.switch_on_penalty;
            }
        }
        active = d.alpha;
    }
    total / periods as f64
}

fn main() {
    let check = check_mode();
    // The gate compares speedup *ratios* against the committed full-run
    // baselines, so it must keep full grid resolution; `--quick` alone
    // (no gate) keeps its coarse smoke grids.
    let quick = quick_mode() && !check;
    let short_iters = quick_mode() || check;
    let threads = llc_par::num_threads();
    let learn_spec = if quick {
        LearnSpec::coarse()
    } else {
        LearnSpec::default()
    };
    let module_spec = if quick {
        ModuleLearnSpec::coarse()
    } else {
        ModuleLearnSpec::default()
    };
    let members = member_specs(4);
    let l1_config = L1Config::paper_default();
    println!("substrate benchmark (threads = {threads}, quick = {quick}, check = {check})");

    // --- Probes: hash table vs dense grid over the same trained map. ---
    let hash_map = learn_map(&members[0], learn_spec, MapBackend::Hash);
    let dense_map = learn_map(&members[0], learn_spec, MapBackend::Dense);
    let queries = query_points(&members[0], if short_iters { 50_000 } else { 200_000 });
    let probe_iters = if short_iters { 5 } else { 10 };

    // Every timing below is the median of three runs (gate calibration:
    // one bad scheduler draw on a shared runner must not move the gate).
    let hash_ns = median3(|| {
        microbench::bench(
            "probe: LookupTable (hash) warm single map",
            probe_iters,
            || {
                let mut acc = 0.0;
                for q in &queries {
                    acc += hash_map.query(q[0], q[1], q[2]).cost;
                }
                black_box(acc);
            },
        ) / queries.len() as f64
    });
    let dense_ns = median3(|| {
        microbench::bench("probe: DenseGrid warm single map", probe_iters, || {
            let mut acc = 0.0;
            for q in &queries {
                acc += dense_map.query(q[0], q[1], q[2]).cost;
            }
            black_box(acc);
        }) / queries.len() as f64
    });
    let probe_speedup = hash_ns / dense_ns;
    println!(
        "single-map probe speedup: {probe_speedup:.1}x  ({:.1} -> {:.1} ns/probe)",
        hash_ns, dense_ns
    );

    // Cluster-scale probing: the §5.2 pattern — the decision loops of a
    // 16-computer cluster interleave probes across every member's map.
    // The hash substrate pays two dependent heap derefs per probe
    // (bucket, then the boxed `Vec<i64>` key it must compare against)
    // over megabytes of scattered allocations; the dense grids are small
    // contiguous slabs.
    let cluster_members = member_specs(16);
    let cluster_hash: Vec<AbstractionMap> = cluster_members
        .iter()
        .map(|s| learn_map(s, learn_spec, MapBackend::Hash))
        .collect();
    let cluster_dense: Vec<AbstractionMap> = cluster_members
        .iter()
        .map(|s| learn_map(s, learn_spec, MapBackend::Dense))
        .collect();
    let cluster_queries: Vec<(usize, [f64; 3])> = cluster_members
        .iter()
        .enumerate()
        .flat_map(|(i, s)| {
            query_points(s, queries.len() / 16)
                .into_iter()
                .map(move |q| (i, q))
        })
        .collect();
    // Interleave across members the way the decide loops do.
    let mut cluster_queries = cluster_queries;
    cluster_queries.sort_by_key(|(i, q)| ((q[2] * 1e6) as i64, *i));

    let cluster_hash_ns = median3(|| {
        microbench::bench("probe: LookupTable 16-map cluster", probe_iters, || {
            let mut acc = 0.0;
            for (i, q) in &cluster_queries {
                acc += cluster_hash[*i].query(q[0], q[1], q[2]).cost;
            }
            black_box(acc);
        }) / cluster_queries.len() as f64
    });
    let cluster_dense_ns = median3(|| {
        microbench::bench("probe: DenseGrid 16-map cluster", probe_iters, || {
            let mut acc = 0.0;
            for (i, q) in &cluster_queries {
                acc += cluster_dense[*i].query(q[0], q[1], q[2]).cost;
            }
            black_box(acc);
        }) / cluster_queries.len() as f64
    });
    let cluster_speedup = cluster_hash_ns / cluster_dense_ns;
    println!(
        "cluster probe speedup: {cluster_speedup:.1}x  ({:.1} -> {:.1} ns/probe)",
        cluster_hash_ns, cluster_dense_ns
    );

    // --- Offline learning: seed baseline (serial, hash substrate, deep
    // clone per module grid point) vs the new pipeline (parallel fan-out,
    // dense substrate, Arc-shared maps). ---
    let map_points = learn_spec.lambda_steps * learn_spec.c_steps * learn_spec.q_steps;
    let module_points = module_spec.lambda_steps
        * module_spec.c_steps
        * module_spec.q_steps
        * module_spec.active_steps.min(members.len());
    let capacity: f64 = members.iter().map(|m| m.speed / m.c_prior).sum();

    llc_par::set_threads(1);
    let baseline_maps_ms = median3(|| {
        let started = Instant::now();
        let maps: Vec<AbstractionMap> = members
            .iter()
            .map(|s| learn_map(s, learn_spec, MapBackend::Hash))
            .collect();
        black_box(&maps);
        microbench::ms(started.elapsed())
    });
    let baseline_hash_maps: Vec<AbstractionMap> = members
        .iter()
        .map(|s| learn_map(s, learn_spec, MapBackend::Hash))
        .collect();

    let sampler = llc_approx::GridSampler::new(vec![
        (0.0, capacity * 1.3, module_spec.lambda_steps),
        (0.7, 1.4, module_spec.c_steps),
        (0.0, 100.0, module_spec.q_steps),
        (
            1.0,
            members.len() as f64,
            module_spec.active_steps.min(members.len()),
        ),
    ]);
    let baseline_module_ms = median3(|| {
        let started = Instant::now();
        let mut baseline_acc = 0.0;
        for p in sampler.points() {
            baseline_acc += simulate_module_baseline(
                &l1_config,
                &members,
                &baseline_hash_maps,
                p[0],
                p[1],
                p[2],
                p[3].round() as usize,
                module_spec.periods,
            );
        }
        black_box(baseline_acc);
        microbench::ms(started.elapsed())
    });
    llc_par::set_threads(0);

    let new_maps_ms = median3(|| {
        let started = Instant::now();
        let maps: Vec<Arc<AbstractionMap>> = llc_par::par_map(&members, |s| {
            Arc::new(learn_map(s, learn_spec, MapBackend::Dense))
        });
        black_box(&maps);
        microbench::ms(started.elapsed())
    });
    let new_maps: Vec<Arc<AbstractionMap>> = llc_par::par_map(&members, |s| {
        Arc::new(learn_map(s, learn_spec, MapBackend::Dense))
    });

    let new_module_ms = median3(|| {
        // Fresh maps per run: the dense maps' out-of-grid replay memo
        // warms during module learning, so timing three runs over one
        // shared map set would measure memo-warm passes against the
        // memo-less cold hash baseline — a different quantity than the
        // first-train path the gate is meant to protect.
        let run_maps: Vec<Arc<AbstractionMap>> = llc_par::par_map(&members, |s| {
            Arc::new(learn_map(s, learn_spec, MapBackend::Dense))
        });
        let started = Instant::now();
        let model =
            ModuleCostModel::learn(&l1_config, &members, &run_maps, capacity * 1.3, module_spec);
        black_box(model.tree_nodes());
        microbench::ms(started.elapsed())
    });

    // The same pipeline pinned to one worker: separates the pure
    // substrate win (Arc-sharing + dense probes + replay memo) from the
    // llc-par fan-out, whose contribution is the ratio between the two
    // arms and scales with the runner's core count.
    let (new_maps_ms_1t, new_module_ms_1t) = llc_par::with_threads(1, || {
        let maps_ms = median3(|| {
            let started = Instant::now();
            let maps: Vec<Arc<AbstractionMap>> = llc_par::par_map(&members, |s| {
                Arc::new(learn_map(s, learn_spec, MapBackend::Dense))
            });
            black_box(&maps);
            microbench::ms(started.elapsed())
        });
        let module_ms = median3(|| {
            let run_maps: Vec<Arc<AbstractionMap>> = llc_par::par_map(&members, |s| {
                Arc::new(learn_map(s, learn_spec, MapBackend::Dense))
            });
            let started = Instant::now();
            let model = ModuleCostModel::learn(
                &l1_config,
                &members,
                &run_maps,
                capacity * 1.3,
                module_spec,
            );
            black_box(model.tree_nodes());
            microbench::ms(started.elapsed())
        });
        (maps_ms, module_ms)
    });

    let baseline_total = baseline_maps_ms + baseline_module_ms;
    let new_total = new_maps_ms + new_module_ms;
    let new_total_1t = new_maps_ms_1t + new_module_ms_1t;
    let learn_speedup = baseline_total / new_total;
    let substrate_speedup = baseline_total / new_total_1t;
    let fanout_speedup = new_total_1t / new_total;
    println!(
        "offline learning: maps {baseline_maps_ms:.0} -> {new_maps_ms:.0} ms, \
         module tree {baseline_module_ms:.0} -> {new_module_ms:.0} ms, \
         total {baseline_total:.0} -> {new_total:.0} ms ({learn_speedup:.1}x at \
         {threads} threads; substrate alone {substrate_speedup:.1}x at 1 thread, \
         fan-out x{fanout_speedup:.2})"
    );

    // --- Online decision path: L1 decide over each substrate. ---
    let mut l1_hash = L1Controller::new(l1_config, members.clone(), baseline_hash_maps);
    let mut l1_dense = L1Controller::new_shared(l1_config, members.clone(), new_maps.clone());
    for l1 in [&mut l1_hash, &mut l1_dense] {
        for _ in 0..6 {
            l1.observe(60 * 120, &[Some(0.0175); 4]);
        }
    }
    let queues = vec![3usize; 4];
    let active = vec![true; 4];
    let decide_iters = if short_iters { 40 } else { 400 };
    // Steady-state warmup on both substrates: a long-lived controller's
    // dense maps fill their replay memo over its first decisions, and
    // the gate must measure the same (steady) regime at every iteration
    // count — otherwise the short check-mode run is partly cold while
    // the committed full-run baseline is warm.
    for _ in 0..40 {
        black_box(l1_hash.decide(&queues, &active));
        black_box(l1_dense.decide(&queues, &active));
    }
    let hash_decide_ns = median3(|| {
        microbench::bench("decide: L1 over hash maps", decide_iters, || {
            black_box(l1_hash.decide(black_box(&queues), black_box(&active)));
        })
    });
    let dense_decide_ns = median3(|| {
        microbench::bench("decide: L1 over dense maps", decide_iters, || {
            black_box(l1_dense.decide(black_box(&queues), black_box(&active)));
        })
    });
    let decide_speedup = hash_decide_ns / dense_decide_ns;
    println!("decide speedup: {decide_speedup:.1}x");

    if check {
        // Prefer the per-runner-class baseline: a snapshot recorded on a
        // like runner (same thread count, OS and CPU model) compares
        // absolute ratios directly, so the tolerance tightens to 10%.
        // Without one for this class, fall back to the workspace-root
        // file — possibly recorded on different hardware — at the
        // historical 20%.
        let (committed, tolerance, source) = match report::load_class_baseline("substrate", threads)
        {
            Some(json) => (
                json,
                report::CLASS_TOLERANCE,
                format!("class baseline {}", report::runner_class(threads)),
            ),
            None => (
                std::fs::read_to_string("BENCH_substrate.json").expect(
                    "--check needs BENCH_substrate.json (or a per-class baseline) \
                         at the workspace root",
                ),
                report::FALLBACK_TOLERANCE,
                "workspace-root BENCH_substrate.json (no class baseline)".to_string(),
            ),
        };
        println!("gating against {source} at {:.0}%", tolerance * 100.0);
        let mut failures = Vec::new();
        for (label, section, measured) in [
            ("probe speedup", "probes", probe_speedup),
            (
                "offline-learning speedup",
                "offline_learning",
                learn_speedup,
            ),
            ("l1-decide speedup", "l1_decide", decide_speedup),
        ] {
            let baseline = json_number(&committed, section, "speedup")
                .unwrap_or_else(|| panic!("no \"{section}\".speedup in committed baseline"));
            if let Err(e) = gate_ratio(label, measured, baseline, tolerance) {
                failures.push(e);
            }
        }
        if failures.is_empty() {
            println!(
                "bench gate passed: all substrate speedups within {:.0}% of baseline",
                tolerance * 100.0
            );
            return;
        }
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
    if quick {
        println!("(quick mode: BENCH_substrate.json not rewritten)");
        return;
    }

    let json = format!(
        "{{\n  {runner},\n  \"timing\": \"median of 3 runs per measurement\",\n  \"probes\": {{\n    \"query_mix\": \"70% in-grid, 30% out-of-grid, {n} queries\",\n    \"hash_ns_per_probe\": {hash_ns:.2},\n    \"dense_ns_per_probe\": {dense_ns:.2},\n    \"hash_probes_per_sec\": {hps:.0},\n    \"dense_probes_per_sec\": {dps:.0},\n    \"speedup\": {probe_speedup:.2}\n  }},\n  \"offline_learning\": {{\n    \"map_grid_points_per_member\": {map_points},\n    \"module_grid_points\": {module_points},\n    \"baseline\": \"serial, hash substrate, deep map clone per module grid point\",\n    \"threads\": {threads},\n    \"baseline_map_learn_ms\": {baseline_maps_ms:.1},\n    \"baseline_module_learn_ms\": {baseline_module_ms:.1},\n    \"baseline_total_ms\": {baseline_total:.1},\n    \"new_map_learn_ms\": {new_maps_ms:.1},\n    \"new_module_learn_ms\": {new_module_ms:.1},\n    \"new_total_ms\": {new_total:.1},\n    \"new_total_ms_one_worker\": {new_total_1t:.1},\n    \"substrate_speedup_one_worker\": {substrate_speedup:.2},\n    \"parallel_fanout_speedup\": {fanout_speedup:.2},\n    \"speedup\": {learn_speedup:.2}\n  }},\n  \"l1_decide\": {{\n    \"hash_us\": {hdu:.1},\n    \"dense_us\": {ddu:.1},\n    \"speedup\": {decide_speedup:.2}\n  }}\n}}\n",
        runner = runner_json(threads),
        n = queries.len(),
        hps = 1e9 / hash_ns,
        dps = 1e9 / dense_ns,
        hdu = hash_decide_ns / 1e3,
        ddu = dense_decide_ns / 1e3,
    );
    std::fs::write("BENCH_substrate.json", &json).expect("cannot write BENCH_substrate.json");
    println!("wrote BENCH_substrate.json");
    if let Some(class_path) = report::write_class_baseline("substrate", threads, &json) {
        println!("wrote {} (runner-class baseline)", class_path.display());
    }
}
