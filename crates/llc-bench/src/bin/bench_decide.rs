//! Decision-core microbench: what one L1 decide costs after the pruned
//! branch-and-bound γ search and the struct-of-arrays lane probes, and
//! what the whole decision plane costs per period as the cluster grows.
//!
//! Three arms over identical trained dense maps and identical observed
//! load:
//!
//! * **reference** — a faithful replication of the pre-optimization
//!   evaluation path: every candidate α vector γ-searched with the
//!   allocating `Vec<f64>` simplex walk (`SimplexGrid::neighbors`
//!   materializing every neighbor) and one scalar `AbstractionMap::query`
//!   per (member, band sample) probe, memoized per decision exactly like
//!   the old controller-owned replay memo. It exists so the speedup is
//!   measured in-build on this machine rather than against a number
//!   recorded on different hardware — and, because the lane evaluator
//!   reproduces the scalar objective's summation order bit for bit, the
//!   equivalence sweep holds its directives to the shipping core's too.
//! * **exhaustive** — the shipping lane-based core with pruning off
//!   (`pruned_search = false`): every candidate still γ-searched, but
//!   over flat per-(member, sample) cost lanes read out of the dense
//!   slab.
//! * **pruned** — the shipping default: candidates ordered by their
//!   admissible lower bound (switch + drain cost) and skipped outright
//!   once the bound exceeds the incumbent.
//!
//! The pruned and exhaustive arms are driven through an identical load
//! sweep (ramp to overload, shed to idle, recover — so switch-on,
//! switch-off and deep-backlog regimes all appear) and must emit
//! bit-identical directive sequences `(α, γ, cost)`: pruning is a pure
//! optimization, never a decision change. Timing runs under four load
//! regimes (steady, overload, shed, recovery) because the decide cost
//! depends on where the plant sits — how many candidates the bound
//! prunes, how much of the λ band falls off the trained grid — and the
//! speedup gate takes the median across regimes rather than one lucky
//! point. The per-period section scales the steady per-module cost to
//! 4/32/250-module clusters and times a real `llc-par` fan-out over
//! that many controller clones.
//!
//! Emits `BENCH_decide.json` at the workspace root (full runs). Pass
//! `--quick` for a fast smoke run, `--check` for the CI regression gate:
//! identical directives (pruned vs exhaustive, and both vs the reference
//! path), pruning actually biting, the median speedup at least 5x over
//! the reference path (a same-machine ratio, so it holds on shared
//! runners), and speedup floors against the committed per-class
//! baseline. The parallel-faster comparison gates only on multi-core
//! runners.

use llc_approx::SimplexGrid;
use llc_bench::report::{
    self, check_mode, gate_ratio, json_number, median3, quick_mode, runner_json, CLASS_TOLERANCE,
    FALLBACK_TOLERANCE,
};
use llc_cluster::{
    cluster_of, AbstractionMap, L0Config, L1Config, L1Controller, LearnSpec, MapBackend,
    MemberSpec, ScenarioConfig,
};
use llc_core::BoundedSearch;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Mean request demand in reference-seconds (the paper's 17.5 ms).
const DEMAND_S: f64 = 0.0175;
/// L1 period length in L0 ticks (the paper's 30 s / 0.25 s).
const PERIOD_TICKS: u64 = 120;
/// Cluster sizes the per-period section extrapolates and fans out to.
const MODULE_COUNTS: [usize; 3] = [4, 32, 250];
/// Hard floor on the median pruned-vs-reference decide speedup. Both
/// arms run on the same machine in the same minute, so the ratio holds
/// even when co-tenant load makes absolute microseconds breathe.
const MIN_DECIDE_SPEEDUP: f64 = 5.0;

/// One load regime the per-decide arms are timed under.
struct LoadConfig {
    name: &'static str,
    /// Arrival multiplier vs the module's steady design load.
    mult: f64,
    /// Standing queues when the decision fires.
    queues: [usize; 4],
    /// Machine states when the decision fires. Partially-off states
    /// exercise the recruit candidates whose switch-on bounds the
    /// pruned search can reject without a γ search.
    active: [bool; 4],
}

/// Steady keeps every candidate alive (bounds near zero); overload makes
/// the band tail leave the trained grid; shed and recovery make the
/// switch-on penalty and drain charges dominate, which is where the
/// admissible bound actually prunes.
const LOAD_CONFIGS: [LoadConfig; 4] = [
    LoadConfig {
        name: "steady",
        mult: 1.0,
        queues: [3, 3, 3, 3],
        active: [true, true, true, true],
    },
    LoadConfig {
        name: "overload",
        mult: 2.0,
        queues: [30, 25, 20, 35],
        active: [true, true, true, true],
    },
    LoadConfig {
        name: "shed",
        mult: 0.15,
        queues: [0, 0, 0, 0],
        active: [true, true, false, false],
    },
    LoadConfig {
        name: "recovery",
        mult: 1.5,
        queues: [20, 0, 0, 0],
        active: [true, false, false, false],
    },
];

/// Per-regime timing of all three arms on identical inputs.
struct ConfigRow {
    name: &'static str,
    reference_us: f64,
    exhaustive_us: f64,
    pruned_us: f64,
    speedup: f64,
    pruning_speedup: f64,
    candidates: usize,
    pruned_candidates: usize,
}

/// What the equivalence sweep observed.
struct SweepOutcome {
    compared: usize,
    /// Pruned-vs-exhaustive directive mismatches (must be zero).
    mismatches: usize,
    /// Shipping-vs-reference directive mismatches (must be zero).
    reference_mismatches: usize,
    evaluated: u64,
    pruned: u64,
}

/// The 4-member paper module with trained dense maps and a warmed-up
/// forecast: the prototype every sweep and timing arm clones from.
struct Rig {
    pruned: L1Controller,
    exhaustive: L1Controller,
}

fn build_rig(learn: LearnSpec) -> Rig {
    let scenario = ScenarioConfig {
        modules: cluster_of(1),
        ..llc_cluster::paper_cluster_16()
    };
    let members: Vec<MemberSpec> = scenario.member_specs().remove(0);
    let maps: Vec<Arc<AbstractionMap>> = llc_par::par_map(&members, |s| {
        Arc::new(AbstractionMap::learn_for_member(
            &L0Config::paper_default(),
            s,
            learn,
            MapBackend::Dense,
        ))
    });
    let pruned_cfg = L1Config::paper_default();
    let exhaustive_cfg = L1Config {
        pruned_search: false,
        ..pruned_cfg
    };
    let mut pruned = L1Controller::new_shared(pruned_cfg, members.clone(), maps.clone());
    let mut exhaustive = L1Controller::new_shared(exhaustive_cfg, members.clone(), maps);
    for _ in 0..6 {
        let demands = vec![Some(DEMAND_S); members.len()];
        pruned.observe(60 * PERIOD_TICKS, &demands);
        exhaustive.observe(60 * PERIOD_TICKS, &demands);
    }
    Rig { pruned, exhaustive }
}

/// Clone a warmed controller and settle its forecast on a regime's load.
fn settle(proto: &L1Controller, mult: f64) -> L1Controller {
    let mut l1 = proto.clone();
    let demands = vec![Some(DEMAND_S); l1.member_specs().len()];
    for _ in 0..6 {
        l1.observe(((60 * PERIOD_TICKS) as f64 * mult) as u64, &demands);
    }
    l1
}

/// One decision of the pre-optimization evaluation path, replicated from
/// the shipping controller as of the previous release: per-candidate
/// `SimplexGrid` allocation, `Vec<f64>`-materializing neighbor
/// enumeration, scalar `query` per probe behind an `in_table` check, and
/// a per-decision out-of-grid replay memo. `prev_gamma` is threaded by
/// the caller exactly like the controller threads its own.
#[allow(clippy::too_many_arguments)]
fn reference_decide(
    config: &L1Config,
    members: &[MemberSpec],
    maps: &[Arc<AbstractionMap>],
    cs: &[f64],
    queues: &[usize],
    active: &[bool],
    prev_gamma: &[f64],
    lambda_hat: f64,
    delta: f64,
    memo: &mut HashMap<(usize, usize, i64), f64>,
) -> (Vec<bool>, Vec<f64>, f64) {
    let m = members.len();
    let min_active = config.min_active.min(m);
    let samples = [
        (lambda_hat - delta).max(0.0),
        lambda_hat,
        lambda_hat + delta,
    ];
    let quantum = config.gamma_quantum;
    memo.clear();
    let drain_costs: Vec<f64> = (0..m)
        .map(|j| {
            if queues[j] > 0 {
                maps[j].query(0.0, cs[j], queues[j] as f64).cost
            } else {
                0.0
            }
        })
        .collect();

    let base: Vec<bool> = active.to_vec();
    let mut candidates: Vec<Vec<bool>> = vec![base.clone()];
    for j in 0..m {
        let mut alt = base.clone();
        alt[j] = !alt[j];
        if alt.iter().filter(|&&a| a).count() >= min_active {
            candidates.push(alt);
        }
    }
    let off: Vec<usize> = (0..m).filter(|&j| !base[j]).collect();
    for (i, &a) in off.iter().enumerate() {
        for &b in &off[i + 1..] {
            let mut alt = base.clone();
            alt[a] = true;
            alt[b] = true;
            candidates.push(alt);
        }
    }
    if off.len() > 2 {
        candidates.push(vec![true; m]);
    }

    let mut best: Option<(f64, Vec<bool>, Vec<f64>)> = None;
    for alpha in candidates {
        let active_idx: Vec<usize> = (0..m).filter(|&j| alpha[j]).collect();
        if active_idx.is_empty() {
            continue;
        }
        let switch_cost =
            config.switch_on_penalty * (0..m).filter(|&j| alpha[j] && !active[j]).count() as f64;
        let drain_cost: f64 = (0..m)
            .filter(|&j| !alpha[j] && queues[j] > 0)
            .map(|j| drain_costs[j])
            .sum();
        let grid = SimplexGrid::with_quantum(active_idx.len(), quantum);
        let total_capacity: f64 = active_idx.iter().map(|&j| members[j].speed / cs[j]).sum();
        let weights: Vec<f64> = active_idx
            .iter()
            .map(|&j| {
                if prev_gamma[j] > 0.0 {
                    prev_gamma[j]
                } else {
                    members[j].speed / cs[j] / total_capacity
                }
            })
            .collect();
        let start = grid.snap(&weights);
        let mut evaluate = |gamma_active: &Vec<f64>| -> f64 {
            let mut total = 0.0;
            for (s, &lambda_s) in samples.iter().enumerate() {
                // Per-sample subtotal folded into the band total, exactly
                // like the pre-optimization controller summed — the
                // equivalence check compares cost bits, so even the
                // floating-point grouping must match.
                let mut sample_cost = 0.0;
                for (pos, &j) in active_idx.iter().enumerate() {
                    let units = (gamma_active[pos] / quantum).round() as i64;
                    let lambda_j = units as f64 * quantum * lambda_s;
                    let q_j = queues[j] as f64;
                    sample_cost += if maps[j].in_table(lambda_j, q_j) {
                        maps[j].query(lambda_j, cs[j], q_j).cost
                    } else {
                        *memo
                            .entry((j, s, units))
                            .or_insert_with(|| maps[j].query(lambda_j, cs[j], q_j).cost)
                    };
                }
                total += sample_cost;
            }
            total / samples.len() as f64
        };
        let search = BoundedSearch::new(config.search_rounds, config.search_evals);
        let opt = search.minimize(start, &mut evaluate, |g| grid.neighbors(g));
        let total_cost = opt.cost + switch_cost + drain_cost;
        if best.as_ref().is_none_or(|(c, _, _)| total_cost < *c) {
            let mut gamma_full = vec![0.0; m];
            for (pos, &j) in active_idx.iter().enumerate() {
                gamma_full[j] = opt.candidate[pos];
            }
            best = Some((total_cost, alpha, gamma_full));
        }
    }
    let (cost, alpha, gamma) = best.expect("at least the base candidate");
    (alpha, gamma, cost)
}

/// Median-of-three per-decide microseconds for one shipping-core arm.
fn time_decide_us(l1: &mut L1Controller, queues: &[usize], active: &[bool], iters: usize) -> f64 {
    for _ in 0..20 {
        black_box(l1.decide(queues, active));
    }
    median3(|| {
        let started = Instant::now();
        for _ in 0..iters {
            black_box(l1.decide(black_box(queues), black_box(active)));
        }
        started.elapsed().as_secs_f64() * 1e6 / iters as f64
    })
}

/// Median-of-three per-decide microseconds for the reference arm, fed
/// the same λ̂/δ/ĉ the shipping controller would decide against.
fn time_reference_us(l1: &L1Controller, queues: &[usize], active: &[bool], iters: usize) -> f64 {
    let config = L1Config {
        pruned_search: false,
        ..L1Config::paper_default()
    };
    let members = l1.member_specs().to_vec();
    let maps: Vec<Arc<AbstractionMap>> = (0..members.len())
        .map(|j| Arc::clone(l1.map_arc(j)))
        .collect();
    let cs = l1.c_estimates();
    let lambda_hat = l1.lambda_estimate();
    let delta = l1.delta();
    let mut prev_gamma = vec![0.0; members.len()];
    let mut memo: HashMap<(usize, usize, i64), f64> = HashMap::new();
    for _ in 0..20 {
        let (_, gamma, _) = reference_decide(
            &config,
            &members,
            &maps,
            &cs,
            queues,
            active,
            &prev_gamma,
            lambda_hat,
            delta,
            &mut memo,
        );
        prev_gamma = gamma;
    }
    median3(|| {
        let started = Instant::now();
        for _ in 0..iters {
            let (alpha, gamma, cost) = reference_decide(
                &config,
                &members,
                &maps,
                &cs,
                black_box(queues),
                black_box(active),
                &prev_gamma,
                lambda_hat,
                delta,
                &mut memo,
            );
            black_box((alpha, cost));
            prev_gamma = gamma;
        }
        started.elapsed().as_secs_f64() * 1e6 / iters as f64
    })
}

/// Time all three arms under one load regime on freshly settled clones.
fn time_config(rig: &Rig, cfg: &LoadConfig, iters: usize) -> ConfigRow {
    let mut pruned = settle(&rig.pruned, cfg.mult);
    let mut exhaustive = settle(&rig.exhaustive, cfg.mult);
    let reference_us = time_reference_us(&pruned, &cfg.queues, &cfg.active, iters);
    let exhaustive_us = time_decide_us(&mut exhaustive, &cfg.queues, &cfg.active, iters);
    let pruned_us = time_decide_us(&mut pruned, &cfg.queues, &cfg.active, iters);
    let sample = pruned.decide(&cfg.queues, &cfg.active);
    ConfigRow {
        name: cfg.name,
        reference_us,
        exhaustive_us,
        pruned_us,
        speedup: reference_us / pruned_us,
        pruning_speedup: exhaustive_us / pruned_us,
        candidates: sample.candidates_evaluated + sample.candidates_pruned,
        pruned_candidates: sample.candidates_pruned,
    }
}

/// Drive both shipping arms and the reference replica through an
/// identical load sweep covering steady load, overload with deep
/// backlogs, shed-to-idle and recovery, and compare every directive bit
/// for bit.
fn equivalence_sweep(rig: &Rig) -> SweepOutcome {
    // Arrival multipliers per period: ramp → overload → idle → recover.
    let schedule: [f64; 12] = [0.6, 0.9, 1.2, 1.6, 2.0, 1.2, 0.4, 0.1, 0.1, 0.5, 1.0, 1.4];
    let mut pruned = rig.pruned.clone();
    let mut exhaustive = rig.exhaustive.clone();
    let m = pruned.member_specs().len();
    let ref_config = L1Config {
        pruned_search: false,
        ..L1Config::paper_default()
    };
    let members = pruned.member_specs().to_vec();
    let maps: Vec<Arc<AbstractionMap>> = (0..m).map(|j| Arc::clone(pruned.map_arc(j))).collect();
    let mut ref_prev_gamma = vec![0.0; m];
    let mut memo: HashMap<(usize, usize, i64), f64> = HashMap::new();
    let base_arrivals = 60.0 * PERIOD_TICKS as f64;
    let mut out = SweepOutcome {
        compared: 0,
        mismatches: 0,
        reference_mismatches: 0,
        evaluated: 0,
        pruned: 0,
    };
    let mut active = vec![true; m];
    for (step, mult) in schedule.iter().enumerate() {
        let arrivals = (base_arrivals * mult) as u64;
        let demands = vec![Some(DEMAND_S); m];
        pruned.observe(arrivals, &demands);
        exhaustive.observe(arrivals, &demands);
        // Queues grow with overload and vary across members so drain
        // costs (and with them the pruning bounds) are non-trivial.
        let queues: Vec<usize> = (0..m)
            .map(|j| ((mult * 6.0) as usize + j * step) % 40)
            .collect();
        // The reference replica decides against the same λ̂/δ/ĉ the
        // shipping controller is about to use.
        let lambda_hat = pruned.lambda_estimate();
        let delta = pruned.delta();
        let cs = pruned.c_estimates();
        let d_pruned = pruned.decide(&queues, &active);
        let d_exhaustive = exhaustive.decide(&queues, &active);
        let (r_alpha, r_gamma, r_cost) = reference_decide(
            &ref_config,
            &members,
            &maps,
            &cs,
            &queues,
            &active,
            &ref_prev_gamma,
            lambda_hat,
            delta,
            &mut memo,
        );
        out.compared += 1;
        let bit_equal = |d: &llc_cluster::L1Decision, alpha: &[bool], gamma: &[f64], cost: f64| {
            d.alpha == alpha
                && d.gamma.len() == gamma.len()
                && d.gamma
                    .iter()
                    .zip(gamma)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
                && d.expected_cost.to_bits() == cost.to_bits()
        };
        if !bit_equal(
            &d_pruned,
            &d_exhaustive.alpha,
            &d_exhaustive.gamma,
            d_exhaustive.expected_cost,
        ) {
            out.mismatches += 1;
            eprintln!(
                "directive mismatch at sweep step {step}: pruned ({:?}, {:?}, {}) \
                 vs exhaustive ({:?}, {:?}, {})",
                d_pruned.alpha,
                d_pruned.gamma,
                d_pruned.expected_cost,
                d_exhaustive.alpha,
                d_exhaustive.gamma,
                d_exhaustive.expected_cost
            );
        }
        if !bit_equal(&d_pruned, &r_alpha, &r_gamma, r_cost) {
            out.reference_mismatches += 1;
            eprintln!(
                "reference mismatch at sweep step {step}: shipping ({:?}, {:?}, {}) \
                 vs reference ({:?}, {:?}, {})",
                d_pruned.alpha, d_pruned.gamma, d_pruned.expected_cost, r_alpha, r_gamma, r_cost
            );
        }
        out.evaluated += d_pruned.candidates_evaluated as u64;
        out.pruned += d_pruned.candidates_pruned as u64;
        ref_prev_gamma = r_gamma;
        // The plant follows the directive, so switch regimes compound.
        active = d_pruned.alpha.clone();
    }
    out
}

/// Wall-clock milliseconds for one decision-plane period over `modules`
/// controller clones fanned out across the worker pool (median of 3).
fn parallel_period_ms(proto: &L1Controller, modules: usize, queues: &[usize]) -> f64 {
    let mut fleet: Vec<L1Controller> = (0..modules).map(|_| proto.clone()).collect();
    let active = vec![true; queues.len()];
    llc_par::par_for_each_mut(&mut fleet, |l1| {
        black_box(l1.decide(queues, &active));
    });
    median3(|| {
        let started = Instant::now();
        llc_par::par_for_each_mut(&mut fleet, |l1| {
            black_box(l1.decide(queues, &active));
        });
        started.elapsed().as_secs_f64() * 1e3
    })
}

/// Lower-middle median: conservative for even-length samples.
fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(f64::total_cmp);
    v[(v.len() - 1) / 2]
}

fn main() {
    let check = check_mode();
    let quick = quick_mode() || check;
    let threads = llc_par::num_threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Full grid resolution always — the gate measures the same decision
    // core the closed-loop stack runs; only timing iterations shrink.
    let iters = if quick { 60 } else { 300 };
    println!(
        "decision-core benchmark (threads = {threads}, cores = {cores}, quick = {quick}, \
         check = {check})"
    );

    let rig = build_rig(LearnSpec::default());

    // --- Equivalence: pruning must never change a directive, and the
    // --- lane core must match the scalar reference path bit for bit.
    let sweep = equivalence_sweep(&rig);
    let identical_directives = sweep.mismatches == 0;
    let reference_identical = sweep.reference_mismatches == 0;
    let pruned_fraction = sweep.pruned as f64 / (sweep.evaluated + sweep.pruned).max(1) as f64;
    println!(
        "directive equivalence over {}-step load sweep: pruned vs exhaustive {}, \
         shipping vs reference {} ({} candidates searched, {} pruned = {:.0}%)",
        sweep.compared,
        if identical_directives {
            "bit-identical"
        } else {
            "MISMATCH"
        },
        if reference_identical {
            "bit-identical"
        } else {
            "MISMATCH"
        },
        sweep.evaluated,
        sweep.pruned,
        pruned_fraction * 100.0,
    );

    // --- Per-decide timing, three arms under four load regimes. -------
    let rows: Vec<ConfigRow> = LOAD_CONFIGS
        .iter()
        .map(|cfg| {
            let row = time_config(&rig, cfg, iters);
            println!(
                "{:>9}: reference {:>7.2} us | lanes exhaustive {:>6.2} us | lanes+pruning \
                 {:>6.2} us ({:.1}x vs reference, {:.2}x from pruning, {} of {} candidates \
                 pruned)",
                row.name,
                row.reference_us,
                row.exhaustive_us,
                row.pruned_us,
                row.speedup,
                row.pruning_speedup,
                row.pruned_candidates,
                row.candidates,
            );
            row
        })
        .collect();
    let median_speedup = median(rows.iter().map(|r| r.speedup));
    let median_pruning_speedup = median(rows.iter().map(|r| r.pruning_speedup));
    let steady = &rows[0];
    let pruned_ns_per_candidate = steady.pruned_us * 1e3 / steady.candidates.max(1) as f64;
    println!(
        "median speedup across regimes: {median_speedup:.1}x vs reference \
         ({median_pruning_speedup:.2}x from pruning); steady-state cost \
         {pruned_ns_per_candidate:.0} ns/candidate"
    );

    // --- Decision plane per period at cluster scale (steady regime). --
    let proto = settle(&rig.pruned, 1.0);
    let queues = LOAD_CONFIGS[0].queues;
    let mut period_rows = Vec::new();
    for &modules in &MODULE_COUNTS {
        let serial_ms = steady.pruned_us * modules as f64 / 1e3;
        let reference_ms = steady.reference_us * modules as f64 / 1e3;
        let parallel_ms = parallel_period_ms(&proto, modules, &queues);
        println!(
            "{modules:>4} modules/period: reference serial {reference_ms:>8.2} ms | \
             pruned serial {serial_ms:>8.2} ms | {threads}-thread fan-out \
             {parallel_ms:>8.2} ms"
        );
        period_rows.push((modules, reference_ms, serial_ms, parallel_ms));
    }

    if check {
        let mut failures = Vec::new();
        if !identical_directives {
            failures.push(format!(
                "REGRESSION directive equivalence: {}/{} sweep steps diverge between \
                 pruned and exhaustive search",
                sweep.mismatches, sweep.compared
            ));
        }
        if !reference_identical {
            failures.push(format!(
                "REGRESSION reference equivalence: {}/{} sweep steps diverge between \
                 the lane core and the scalar reference path",
                sweep.reference_mismatches, sweep.compared
            ));
        }
        if sweep.pruned == 0 {
            failures.push(
                "REGRESSION pruning inert: admissible bound never pruned a candidate \
                 across the load sweep"
                    .to_string(),
            );
        } else {
            println!(
                "gate ok  pruning bites: {} candidates pruned ({:.0}% of {})",
                sweep.pruned,
                pruned_fraction * 100.0,
                sweep.evaluated + sweep.pruned
            );
        }
        if median_speedup < MIN_DECIDE_SPEEDUP {
            failures.push(format!(
                "REGRESSION decide speedup: median {median_speedup:.2}x < \
                 {MIN_DECIDE_SPEEDUP:.0}x floor over the reference evaluation path"
            ));
        } else {
            println!(
                "gate ok  decide speedup: median {median_speedup:.2}x >= \
                 {MIN_DECIDE_SPEEDUP:.0}x floor over the reference evaluation path"
            );
        }
        // Pruning must stay at worst neutral in every regime (slack for
        // timer noise on shared runners — steady regimes prune nothing
        // and hover around 1.0x): the sorted candidate order costs a few
        // comparisons, the skipped γ searches pay for them. A real
        // inversion (bound computation dominating the search it prunes)
        // lands far below this.
        for row in &rows {
            if row.pruning_speedup < 0.85 {
                failures.push(format!(
                    "REGRESSION pruning slower than exhaustive under {}: {:.2}x \
                     (bound computation must not dominate the search it prunes)",
                    row.name, row.pruning_speedup
                ));
            }
        }
        // Speedup floors against the committed baseline — ratios, so the
        // tight same-class tolerance applies.
        let (committed, tolerance, source) = match report::load_class_baseline("decide", threads) {
            Some(json) => (
                Some(json),
                CLASS_TOLERANCE,
                format!("class baseline {}", report::runner_class(threads)),
            ),
            None => (
                std::fs::read_to_string("BENCH_decide.json").ok(),
                FALLBACK_TOLERANCE,
                "workspace-root BENCH_decide.json".to_string(),
            ),
        };
        match committed {
            Some(committed) => {
                println!("gating against {source} at {:.0}%", tolerance * 100.0);
                for (label, measured, key) in [
                    (
                        "median decide speedup vs reference",
                        median_speedup,
                        "speedup",
                    ),
                    (
                        "median pruning speedup",
                        median_pruning_speedup,
                        "pruning_speedup",
                    ),
                ] {
                    if let Some(baseline) = json_number(&committed, "decide", key) {
                        if let Err(e) = gate_ratio(label, measured, baseline, tolerance) {
                            failures.push(e);
                        }
                    } else {
                        println!("note: no {key} baseline in {source}; skipping its floor");
                    }
                }
            }
            None => println!("note: no committed baseline found; speedup floors skipped"),
        }
        // The fan-out claim is only checkable on multi-core hardware.
        if cores > 1 {
            let (modules, _, serial_ms, parallel_ms) = period_rows[period_rows.len() - 1];
            if parallel_ms >= serial_ms {
                failures.push(format!(
                    "REGRESSION parallel decide not faster at {modules} modules: \
                     {parallel_ms:.2} ms ({threads} threads) vs {serial_ms:.2} ms serial \
                     on a {cores}-core runner"
                ));
            } else {
                println!(
                    "gate ok  parallel decide faster at {modules} modules \
                     ({parallel_ms:.2} ms < {serial_ms:.2} ms, {cores} cores)"
                );
            }
        } else {
            println!(
                "note: single-core runner — parallel-faster gate skipped (the fan-out \
                 runs the same serial path); the directive-equivalence gate covers the \
                 deterministic-merge discipline"
            );
        }
        if failures.is_empty() {
            println!("bench gate passed: decision core equivalent, pruned and fast enough");
            return;
        }
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
    if quick {
        println!("(quick mode: BENCH_decide.json not rewritten)");
        return;
    }

    // --- Full run: emit BENCH_decide.json. ----------------------------
    let mut sections = String::new();
    for row in &rows {
        sections.push_str(&format!(
            "  \"config_{}\": {{\n    \"reference_us\": {:.3},\n    \
             \"exhaustive_us\": {:.3},\n    \"pruned_us\": {:.3},\n    \
             \"speedup\": {:.2},\n    \"pruning_speedup\": {:.2},\n    \
             \"candidates_per_decide\": {},\n    \"candidates_pruned\": {}\n  }},\n",
            row.name,
            row.reference_us,
            row.exhaustive_us,
            row.pruned_us,
            row.speedup,
            row.pruning_speedup,
            row.candidates,
            row.pruned_candidates,
        ));
    }
    for (modules, reference_ms, serial_ms, parallel_ms) in &period_rows {
        sections.push_str(&format!(
            "  \"period_{modules}\": {{\n    \"modules\": {modules},\n    \
             \"reference_serial_ms\": {reference_ms:.3},\n    \
             \"pruned_serial_ms\": {serial_ms:.3},\n    \
             \"parallel_threads\": {threads},\n    \
             \"parallel_ms\": {parallel_ms:.3}\n  }},\n"
        ));
    }
    let json = format!(
        "{{\n  {runner},\n  \"timing\": \"median of 3 runs per arm per regime, {iters} \
         decides per run\",\n  \
         \"decide\": {{\n    \"speedup\": {median_speedup:.2},\n    \
         \"pruning_speedup\": {median_pruning_speedup:.2},\n    \
         \"steady_pruned_us\": {steady_us:.3},\n    \
         \"pruned_ns_per_candidate\": {pruned_ns_per_candidate:.0},\n    \
         \"pruned_fraction\": {pruned_fraction:.3},\n    \
         \"identical_directives\": {identical_directives},\n    \
         \"reference_identical\": {reference_identical},\n    \
         \"directives_compared\": {compared}\n  }},\n{sections}  \
         \"note\": \"speedup keys are medians across the four load regimes; the \
         reference arm replicates the pre-optimization evaluation path (allocating \
         simplex walk, scalar map probes with a per-decision replay memo) in-build, \
         so every ratio is a same-machine comparison\"\n}}\n",
        runner = runner_json(threads),
        steady_us = steady.pruned_us,
        compared = sweep.compared,
    );
    std::fs::write("BENCH_decide.json", &json).expect("cannot write BENCH_decide.json");
    println!("wrote BENCH_decide.json");
    if let Some(class_path) = report::write_class_baseline("decide", threads, &json) {
        println!("wrote {} (runner-class baseline)", class_path.display());
    }
}
