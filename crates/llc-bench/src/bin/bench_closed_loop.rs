//! Closed-loop trajectory: the full event-driven hierarchy against the
//! drifting simulated plant, in three arms per drift scenario —
//!
//! * **offline-only** — the policy derives realized outcomes and tracks
//!   its prequential prediction error but never learns from them (the
//!   train-once controller);
//! * **caller-driven** — the PR 2 wiring: harness code drains the
//!   derived outcomes after every tick and pushes them back through
//!   `record_outcome`/`learn_online` by hand;
//! * **closed-loop** — `PolicyBuilder::closed_loop` and *zero* harness code: the
//!   hierarchy records and absorbs its own outcomes in-loop.
//!
//! Tracking error is the prequential mean `|predicted − realized|` cost
//! over every derived per-member outcome, measured against the maps
//! before each outcome is absorbed — identical bookkeeping in all three
//! arms, so the arms differ only in who closes the loop. All arms are
//! fully deterministic (seeded workload, seeded spread); each arm is run
//! three times and the median taken (MAEs agree across runs, wall-clock
//! medians de-noise the overhead numbers per the gate-calibration
//! policy).
//!
//! A fourth scenario, **deep-degradation** (capacity steps to half of
//! nominal while the load still fits the degraded plant), compares the
//! plain closed loop against the **self-healing** stack — drift-aware
//! L0 (`ServiceScaleEstimator` threaded through the queue model) plus
//! the `RetrainManager` background rebuild + hot-swap.
//!
//! Emits machine-readable `BENCH_closed_loop.json` at the workspace
//! root; `--quick` shortens the run (no JSON rewrite); `--check` gates:
//! exit non-zero unless, on **every** drift scenario, closed-loop beats
//! offline-only tracking error and stays within 1.5× of the
//! caller-driven arm — and, on deep degradation, self-healing strictly
//! beats the drift-blind closed loop's tracking MAE without flapping
//! frequencies more, with at least one in-run rebuild hot-swapped.

use llc_bench::report::{check_mode, quick_mode, runner_json};
use llc_cluster::{
    single_module, Action, Cadence, ClusterPolicy, Experiment, HierarchicalPolicy, Observations,
    PolicyBuilder, PolicyMetrics, RetrainConfig, ScenarioConfig,
};
use llc_core::OnlineConfig;
use llc_workload::{
    deep_degradation_scenario, drift_scenarios, CapacityProfile, DriftScenario, VirtualStore,
};
use std::time::Instant;

/// The scenario capacity profiles are expressed over the drift trace's
/// 120 s buckets; the experiment ticks every `T_L0 = 30 s`. Fractional
/// profiles (ramp/step) are invariant under re-bucketing, but the
/// diurnal dip's period is in buckets and must be stretched by the
/// bucket/tick ratio or the capacity would cycle four times per arrival
/// hump.
fn profile_in_ticks(profile: CapacityProfile, ratio: f64) -> CapacityProfile {
    match profile {
        CapacityProfile::Diurnal {
            base,
            amplitude,
            period,
        } => CapacityProfile::Diurnal {
            base,
            amplitude,
            period: period * ratio,
        },
        other => other,
    }
}

/// The PR 2 caller-driven wiring as a policy wrapper: after every tick
/// the harness (this struct) drains the outcomes the hierarchy derived
/// and replays them through the public `record_outcome`/`learn_online`
/// surface.
struct CallerDriven {
    inner: HierarchicalPolicy,
}

impl ClusterPolicy for CallerDriven {
    fn decide(&mut self, obs: &Observations) -> Vec<Action> {
        let actions = self.inner.decide(obs);
        let outcomes = self.inner.drain_realized_outcomes();
        let mut touched = vec![false; self.inner.num_modules()];
        for o in &outcomes {
            self.inner
                .l1_mut(o.module)
                .record_outcome(o.member, o.lambda, o.q0, o.entry);
            touched[o.module] = true;
        }
        for (m, touched) in touched.iter().enumerate() {
            if *touched {
                self.inner.l1_mut(m).learn_online();
            }
        }
        actions
    }

    fn name(&self) -> &str {
        "hierarchical-llc-caller-driven"
    }

    fn cadence(&self) -> Cadence {
        self.inner.cadence()
    }

    fn metrics(&self) -> PolicyMetrics {
        self.inner.metrics()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    Offline,
    Caller,
    Closed,
    /// Closed loop + drift-aware L0 + retrain consumer (PR 4): the
    /// self-healing stack, benched on the deep-degradation scenario
    /// against the plain closed loop.
    SelfHeal,
}

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::Offline => "offline",
            Arm::Caller => "caller",
            Arm::Closed => "closed",
            Arm::SelfHeal => "selfheal",
        }
    }
}

struct ArmResult {
    tracking_mae: f64,
    samples: u64,
    online_updates: u64,
    detections: u64,
    retrain: bool,
    /// Frequency switches summed over computers — the deep-degradation
    /// limit-cycle metric (the φ decision variance of the gate).
    freq_switches: usize,
    /// Background rebuilds hot-swapped by the retrain consumer.
    rebuilds: usize,
    run_ms: f64,
}

fn json_entry(scenario: &str, arm: &str, r: &ArmResult) -> String {
    format!(
        "    \"{scenario}:{arm}\": {{\n      \"tracking_mae\": {:.4},\n      \"samples\": {},\n      \"online_updates\": {},\n      \"drift_detections\": {},\n      \"retrain_recommended\": {},\n      \"freq_switches\": {},\n      \"rebuilds\": {},\n      \"run_ms\": {:.1}\n    }}",
        r.tracking_mae,
        r.samples,
        r.online_updates,
        r.detections,
        r.retrain,
        r.freq_switches,
        r.rebuilds,
        r.run_ms,
    )
}

fn scenario_config() -> ScenarioConfig {
    // Hash-backed maps: the drift scenarios push the plant beyond the
    // offline envelope, and only the hash substrate absorbs outcomes out
    // there. `min_active = 2` pins both machines on so the three arms
    // compare *map tracking* under identical plant dynamics rather than
    // boot-dead-time noise (the feed-forward test owns the transition
    // story).
    let mut sc = single_module(2).with_coarse_learning().with_hash_maps();
    sc.l1.min_active = 2;
    sc
}

fn run_arm(scenario: &DriftScenario, arm: Arm, seed: u64) -> ArmResult {
    let sc = scenario_config();
    let cfg = OnlineConfig::default().validated();
    let builder = PolicyBuilder::new(sc.clone());
    let mut policy = match arm {
        Arm::Offline | Arm::Caller => builder.outcome_tracking(cfg),
        Arm::Closed => builder.closed_loop(cfg),
        Arm::SelfHeal => builder
            .drift_aware_l0()
            .closed_loop(cfg)
            .retrain(RetrainConfig::default()),
    }
    .build();
    if arm == Arm::Caller {
        for m in 0..policy.num_modules() {
            policy.l1_mut(m).enable_online(cfg);
        }
    }
    let ratio = scenario.trace.interval() / 30.0;
    let exp = Experiment {
        drift: Some(profile_in_ticks(scenario.capacity, ratio)),
        ..Experiment::paper_default(seed)
    };
    let store = VirtualStore::paper_default(seed);
    let started = Instant::now();
    let log = match arm {
        Arm::Caller => {
            let mut wrapped = CallerDriven { inner: policy };
            let log = exp
                .run(sc.to_sim_config(), &mut wrapped, &scenario.trace, &store)
                .expect("well-formed scenario");
            policy = wrapped.inner;
            log
        }
        _ => exp
            .run(sc.to_sim_config(), &mut policy, &scenario.trace, &store)
            .expect("well-formed scenario"),
    };
    let run_ms = started.elapsed().as_secs_f64() * 1e3;
    ArmResult {
        tracking_mae: policy.tracking_error().expect("outcomes were derived"),
        samples: policy.tracking_samples(),
        online_updates: policy.online_updates(),
        detections: (0..policy.num_modules())
            .map(|m| policy.l1(m).drift_detections())
            .sum(),
        retrain: policy.retrain_recommended(),
        freq_switches: log.frequency_switches(),
        rebuilds: policy.retrain_rebuilds(),
        run_ms,
    }
}

fn main() {
    let quick = quick_mode();
    let check = check_mode();
    let threads = llc_par::num_threads();
    let buckets = if quick { 60 } else { 150 };
    // Peak near 55% of the two-machine module's nominal capacity: heavy
    // enough that the 0.65–0.7× capacity drifts bite, light enough that
    // the plant stays inside the trained envelope most of the run.
    let sc = scenario_config();
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    let scenarios = drift_scenarios(0xC105ED, buckets, 120.0, 0.55 * capacity);
    println!("closed-loop benchmark (threads = {threads}, quick = {quick}, periods = {buckets})");

    let mut lines = Vec::new();
    let mut offline_beaten = 0usize;
    let mut within_caller = 0usize;
    for scenario in &scenarios {
        let mut results: Vec<(Arm, ArmResult)> = Vec::new();
        for arm in [Arm::Offline, Arm::Caller, Arm::Closed] {
            // The gate consults only the tracking MAEs, which are fully
            // deterministic (seeded workload, seeded spread) — one run
            // suffices in check/quick mode. The JSON-writing path runs
            // each arm three times and takes the median so the reported
            // wall-clock (`run_ms`) is de-noised per the
            // gate-calibration policy.
            let result = if check || quick {
                run_arm(scenario, arm, 0xBEEF)
            } else {
                let mut runs = vec![
                    run_arm(scenario, arm, 0xBEEF),
                    run_arm(scenario, arm, 0xBEEF),
                    run_arm(scenario, arm, 0xBEEF),
                ];
                runs.sort_by(|a, b| a.run_ms.total_cmp(&b.run_ms));
                debug_assert!(
                    (runs[0].tracking_mae - runs[2].tracking_mae).abs() < 1e-12,
                    "tracking error must be deterministic"
                );
                runs.swap_remove(1)
            };
            results.push((arm, result));
        }
        let offline = &results[0].1;
        let caller = &results[1].1;
        let closed = &results[2].1;
        println!(
            "{:<22} offline MAE {:>8.3}  caller MAE {:>8.3}  closed MAE {:>8.3}  \
             ({:.1}x better than offline, {} updates, {} detections{})",
            scenario.name,
            offline.tracking_mae,
            caller.tracking_mae,
            closed.tracking_mae,
            offline.tracking_mae / closed.tracking_mae.max(1e-12),
            closed.online_updates,
            closed.detections,
            if closed.retrain {
                ", retrain flagged"
            } else {
                ""
            },
        );
        if closed.tracking_mae < offline.tracking_mae {
            offline_beaten += 1;
        }
        if closed.tracking_mae <= 1.5 * caller.tracking_mae {
            within_caller += 1;
        }
        for (arm, r) in &results {
            lines.push(json_entry(scenario.name, arm.name(), r));
        }
    }

    // --- Deep degradation: the self-healing stack (drift-aware L0 +
    // retrain hot-swap) against the PR 3 closed loop. The drift-blind
    // closed loop limit-cycles here: its queue model believes in
    // capacity the plant stopped delivering. ---
    let deep = deep_degradation_scenario(0xC105ED, buckets, 120.0, capacity);
    let mut deep_results: Vec<(Arm, ArmResult)> = Vec::new();
    for arm in [Arm::Closed, Arm::SelfHeal] {
        let result = if check || quick {
            run_arm(&deep, arm, 0xBEEF)
        } else {
            let mut runs = vec![
                run_arm(&deep, arm, 0xBEEF),
                run_arm(&deep, arm, 0xBEEF),
                run_arm(&deep, arm, 0xBEEF),
            ];
            runs.sort_by(|a, b| a.run_ms.total_cmp(&b.run_ms));
            debug_assert!(
                (runs[0].tracking_mae - runs[2].tracking_mae).abs() < 1e-12,
                "tracking error must be deterministic"
            );
            runs.swap_remove(1)
        };
        deep_results.push((arm, result));
    }
    let deep_closed = &deep_results[0].1;
    let deep_heal = &deep_results[1].1;
    println!(
        "{:<22} closed MAE {:>8.3} ({} switches)  selfheal MAE {:>8.3} ({} switches, {} rebuilds)  \
         ({:.1}x better)",
        deep.name,
        deep_closed.tracking_mae,
        deep_closed.freq_switches,
        deep_heal.tracking_mae,
        deep_heal.freq_switches,
        deep_heal.rebuilds,
        deep_closed.tracking_mae / deep_heal.tracking_mae.max(1e-12),
    );
    for (arm, r) in &deep_results {
        lines.push(json_entry(deep.name, arm.name(), r));
    }

    if check {
        // The acceptance invariant: with zero harness code the closed
        // loop must beat the train-once controller on every drift
        // scenario and stay within 1.5x of the hand-driven PR 2 wiring.
        let mut failed = false;
        if offline_beaten == 3 {
            println!("gate ok  closed-loop beats offline-only on 3/3 drift scenarios");
        } else {
            eprintln!(
                "REGRESSION closed-loop beats offline-only on only {offline_beaten}/3 scenarios"
            );
            failed = true;
        }
        if within_caller == 3 {
            println!("gate ok  closed-loop within 1.5x of caller-driven on 3/3 scenarios");
        } else {
            eprintln!(
                "REGRESSION closed-loop within 1.5x of caller-driven on only \
                 {within_caller}/3 scenarios"
            );
            failed = true;
        }
        // The self-healing invariants (PR 4): on deep degradation the
        // drift-aware L0 + retrain hot-swap must strictly beat the
        // drift-blind closed loop's tracking, must not flap frequencies
        // more (no limit-cycle regression), and must have actually
        // rebuilt and hot-swapped maps in-run.
        if deep_heal.tracking_mae < deep_closed.tracking_mae {
            println!(
                "gate ok  self-healing beats drift-blind closed loop on deep degradation \
                 ({:.3} < {:.3})",
                deep_heal.tracking_mae, deep_closed.tracking_mae
            );
        } else {
            eprintln!(
                "REGRESSION self-healing MAE {:.3} does not beat drift-blind {:.3}",
                deep_heal.tracking_mae, deep_closed.tracking_mae
            );
            failed = true;
        }
        if deep_heal.freq_switches <= deep_closed.freq_switches {
            println!(
                "gate ok  self-healing frequency decisions do not flap more ({} <= {})",
                deep_heal.freq_switches, deep_closed.freq_switches
            );
        } else {
            eprintln!(
                "REGRESSION self-healing flaps frequencies more ({} > {})",
                deep_heal.freq_switches, deep_closed.freq_switches
            );
            failed = true;
        }
        if deep_heal.rebuilds >= 1 {
            println!(
                "gate ok  retrain consumer rebuilt and hot-swapped {} time(s) in-run",
                deep_heal.rebuilds
            );
        } else {
            eprintln!("REGRESSION retrain consumer never fired on deep degradation");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    if quick {
        println!("(quick mode: BENCH_closed_loop.json not rewritten)");
        return;
    }

    let cfg = OnlineConfig::default();
    let json = format!(
        "{{\n  {runner},\n  \"config\": {{\n    \"cluster\": \"single_module(2), coarse learning\",\n    \"periods\": {buckets},\n    \"period_seconds\": 120,\n    \"learning_rate\": {lr},\n    \"fast_learning_rate\": {flr},\n    \"timing\": \"median of 3 runs per arm\"\n  }},\n  \"results\": {{\n{body}\n  }}\n}}\n",
        runner = runner_json(threads),
        lr = cfg.learning_rate,
        flr = cfg.fast_learning_rate,
        body = lines.join(",\n"),
    );
    std::fs::write("BENCH_closed_loop.json", &json).expect("cannot write BENCH_closed_loop.json");
    println!("wrote BENCH_closed_loop.json");
    if let Some(class_path) = llc_bench::report::write_class_baseline("closed_loop", threads, &json)
    {
        println!("wrote {} (runner-class baseline)", class_path.display());
    }
}
