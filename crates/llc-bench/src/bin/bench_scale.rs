//! Mega-cluster plant throughput: how fast the struct-of-arrays,
//! batch-routed, shard-stepped `ClusterSim` chews through simulated time
//! as the cluster grows to 1000+ machines.
//!
//! For each cluster size the bench drives the same windowed workload
//! through the batched plant twice — once pinned to one worker thread,
//! once at the runner's full thread count — and reports simulated
//! seconds per wall-clock second for both arms. A third arm on the
//! smallest cluster replays identical traffic through the per-request
//! event heap, measuring what batching itself buys. Controller overhead
//! (one L1 decide over trained maps, extrapolated to the module count)
//! is reported alongside so the plant and the decision plane can be
//! compared at scale. Traffic is a constant-rate synthetic stream by
//! default; `--trace wc98` switches the size sweep to a WC'98-like
//! match-evening crest replay, and the gated path always replays that
//! crest on the small cluster so the trace loader stays exercised in CI.
//!
//! Emits `BENCH_scale.json` at the workspace root (full runs). Pass
//! `--quick` for a fast smoke run, `--check` for the CI regression gate:
//! bit-identical sharding determinism, batched-vs-per-request accounting
//! equivalence, and sim-rate floors against the committed baseline. The
//! sharded-faster-than-serial comparison is only *gated* when the runner
//! actually has more than one core — on a single-core runner both arms
//! run the same serial code path and the comparison is meaningless (the
//! numbers are still recorded, honestly labeled).

use llc_bench::report::{
    self, check_mode, gate_ratio, json_number, median3, quick_mode, runner_json,
};
use llc_cluster::{
    cluster_of, AbstractionMap, L0Config, L1Config, L1Controller, LearnSpec, MapBackend,
    MemberSpec, ScenarioConfig,
};
use llc_sim::{ClusterConfig, ClusterSim, WindowStats};
use llc_workload::wc98_like_day;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Controller window width (the paper's 30-second L1 period).
const WINDOW_S: f64 = 30.0;
/// Mean request demand in reference-seconds (the paper's 17.5 ms).
const DEMAND_S: f64 = 0.0175;
/// Synthetic-arm target utilization.
const RHO: f64 = 0.6;

/// Gate tolerances for the sim-rate floors. Unlike the substrate gate,
/// these floors are *absolute* wall-clock throughput, and shared or
/// virtualized runners swing well beyond the 10% same-class headroom
/// with co-tenant load — the same container has measured 25% apart an
/// hour apart. The floors exist to catch structural regressions (an
/// accidental O(requests) path would cost 10x, not 1.3x), so they get
/// generous headroom; the load-invariant batching floor below carries
/// the fine-grained claim.
const SCALE_CLASS_TOLERANCE: f64 = 0.30;
const SCALE_FALLBACK_TOLERANCE: f64 = 0.40;

/// Structural floor on what batching buys over the per-request event
/// heap. Measured 12–18x depending on load; a drop below 4x means the
/// batched path has stopped amortizing per-request work, regardless of
/// how fast the runner is — both arms see the same machine.
const MIN_BATCH_SPEEDUP: f64 = 4.0;

/// One cluster size of the sweep: `modules` heterogeneous modules of
/// four computers each (the §5.2 composition patterns).
struct Size {
    modules: usize,
}

impl Size {
    fn machines(&self) -> usize {
        self.modules * 4
    }

    fn key(&self) -> String {
        format!("scale_{}", self.machines())
    }

    fn sim_config(&self) -> ClusterConfig {
        ClusterConfig {
            modules: cluster_of(self.modules)
                .iter()
                .map(|module| module.iter().map(|c| c.to_sim_config()).collect())
                .collect(),
        }
    }

    /// Sum of relative machine speeds — cluster capacity in
    /// reference-demand units per second is `speed_sum / DEMAND_S`.
    fn speed_sum(&self) -> f64 {
        cluster_of(self.modules)
            .iter()
            .flatten()
            .map(|c| c.speed)
            .sum()
    }
}

/// Everything one plant run produces, for timing and for bit-exact
/// comparison across thread counts and drive modes.
struct RunOutcome {
    wall_s: f64,
    sim_s: f64,
    arrivals: u64,
    completions: u64,
    dropped: u64,
    energy: f64,
    /// Per-window, per-machine drained stats — the determinism witness.
    windows: Vec<Vec<WindowStats>>,
    module_arrivals: Vec<u64>,
}

fn fresh_sim(size: &Size) -> ClusterSim {
    let mut sim = ClusterSim::new(size.sim_config());
    let p = sim.num_modules();
    for i in 0..sim.num_computers() {
        sim.force_on(i);
    }
    sim.set_module_weights(&vec![1.0; p]).expect("p modules");
    for m in 0..p {
        sim.set_computer_weights(m, &[1.0, 1.0, 1.0, 1.0])
            .expect("4 members");
    }
    sim
}

/// Drive `counts[w]` arrivals through window `w` of the batched plant at
/// the given worker-thread count.
fn run_batched(size: &Size, counts: &[u64], threads: usize) -> RunOutcome {
    llc_par::with_threads(threads, || {
        let mut sim = fresh_sim(size);
        let started = Instant::now();
        let mut windows = Vec::with_capacity(counts.len());
        let mut module_arrivals = vec![0u64; sim.num_modules()];
        let mut completions = 0u64;
        let mut energy_prev = 0.0;
        for (w, &count) in counts.iter().enumerate() {
            let t0 = w as f64 * WINDOW_S;
            sim.inject_batch(t0, WINDOW_S, count, DEMAND_S)
                .expect("monotone windows");
            sim.step_window(t0 + WINDOW_S).expect("monotone windows");
            let stats = sim.drain_computer_stats();
            completions += stats.iter().map(|s| s.completions).sum::<u64>();
            for (m, s) in sim.drain_module_stats().iter().enumerate() {
                module_arrivals[m] += s.arrivals;
            }
            windows.push(stats);
            energy_prev = sim.total_energy();
        }
        RunOutcome {
            wall_s: started.elapsed().as_secs_f64(),
            sim_s: sim.now(),
            arrivals: counts.iter().sum(),
            completions,
            dropped: sim.dropped(),
            energy: energy_prev,
            windows,
            module_arrivals,
        }
    })
}

/// Drive the identical workload through the per-request event heap:
/// every arrival is its own scheduled event, spaced evenly across its
/// window exactly like the batched run spreads its runs.
fn run_per_request(size: &Size, counts: &[u64]) -> RunOutcome {
    let mut sim = fresh_sim(size);
    let started = Instant::now();
    let mut windows = Vec::with_capacity(counts.len());
    let mut module_arrivals = vec![0u64; sim.num_modules()];
    let mut completions = 0u64;
    let mut energy = 0.0;
    for (w, &count) in counts.iter().enumerate() {
        let t0 = w as f64 * WINDOW_S;
        let spacing = WINDOW_S / count as f64;
        for k in 0..count {
            sim.schedule_arrival(t0 + k as f64 * spacing, DEMAND_S)
                .expect("monotone windows");
        }
        sim.run_until(t0 + WINDOW_S).expect("monotone windows");
        let stats = sim.drain_computer_stats();
        completions += stats.iter().map(|s| s.completions).sum::<u64>();
        for (m, s) in sim.drain_module_stats().iter().enumerate() {
            module_arrivals[m] += s.arrivals;
        }
        windows.push(stats);
        energy = sim.total_energy();
    }
    RunOutcome {
        wall_s: started.elapsed().as_secs_f64(),
        sim_s: sim.now(),
        arrivals: counts.iter().sum(),
        completions,
        dropped: sim.dropped(),
        energy,
        windows,
        module_arrivals,
    }
}

/// Synthetic constant-rate schedule: `windows` windows at `RHO`
/// utilization of the cluster's full-speed capacity.
fn synthetic_counts(size: &Size, windows: usize) -> Vec<u64> {
    let per_window = (RHO * WINDOW_S * size.speed_sum() / DEMAND_S).round() as u64;
    vec![per_window; windows]
}

/// WC'98-like match-evening crest, rebucketed to controller windows and
/// scaled so the crest's peak window sits at ~0.9 utilization of this
/// cluster — the trace's *shape* replayed at the plant's scale.
fn wc98_counts(size: &Size, windows: usize) -> Vec<u64> {
    let day = wc98_like_day(0xC98);
    // 2-minute buckets 540..660 cover 18:00-22:00 — the crest.
    let crest = day.slice(540, 660).rebucket(WINDOW_S).expect("120/30");
    let peak_per_window = crest.peak();
    let capacity_per_window = WINDOW_S * size.speed_sum() / DEMAND_S;
    let scaled = crest.scaled(0.9 * capacity_per_window / peak_per_window);
    scaled
        .counts()
        .iter()
        .take(windows)
        .map(|&c| c.round() as u64)
        .collect()
}

/// Median-of-three wall time (seconds) for one plant arm.
fn time_arm(size: &Size, counts: &[u64], threads: usize) -> f64 {
    median3(|| run_batched(size, counts, threads).wall_s)
}

/// Time one L1 decide over trained dense maps for a 4-member module —
/// the per-period decision cost the hierarchy pays per module.
fn controller_decide_us(quick: bool) -> f64 {
    let scenario = ScenarioConfig {
        modules: cluster_of(1),
        ..llc_cluster::paper_cluster_16()
    };
    let members: Vec<MemberSpec> = scenario.member_specs().remove(0);
    let learn = if quick {
        LearnSpec::coarse()
    } else {
        LearnSpec::default()
    };
    let maps: Vec<Arc<AbstractionMap>> = llc_par::par_map(&members, |s| {
        Arc::new(AbstractionMap::learn_for_member(
            &L0Config::paper_default(),
            s,
            learn,
            MapBackend::Dense,
        ))
    });
    let mut l1 = L1Controller::new_shared(L1Config::paper_default(), members.clone(), maps);
    for _ in 0..6 {
        l1.observe(60 * 120, &vec![Some(DEMAND_S); members.len()]);
    }
    let queues = vec![3usize; members.len()];
    let active = vec![true; members.len()];
    for _ in 0..20 {
        black_box(l1.decide(&queues, &active));
    }
    let iters = if quick { 40 } else { 200 };
    median3(|| {
        let started = Instant::now();
        for _ in 0..iters {
            black_box(l1.decide(black_box(&queues), black_box(&active)));
        }
        started.elapsed().as_secs_f64() * 1e6 / iters as f64
    })
}

/// `true` when two runs produced bit-identical per-window stats, drops
/// and energy — the sharding determinism contract.
fn identical(a: &RunOutcome, b: &RunOutcome) -> bool {
    a.windows == b.windows
        && a.dropped == b.dropped
        && a.energy.to_bits() == b.energy.to_bits()
        && a.module_arrivals == b.module_arrivals
}

fn main() {
    let check = check_mode();
    let quick = quick_mode() || check;
    let threads = llc_par::num_threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let trace_mode = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2).any(|w| w[0] == "--trace" && w[1] == "wc98")
    };
    let windows = if quick { 6 } else { 20 };
    let sizes = [
        Size { modules: 4 },   // 16 machines — the paper's §5.2 cluster
        Size { modules: 32 },  // 128 machines
        Size { modules: 250 }, // 1000 machines
    ];
    println!(
        "scale benchmark (threads = {threads}, cores = {cores}, quick = {quick}, \
         check = {check}, traffic = {})",
        if trace_mode {
            "wc98 crest"
        } else {
            "synthetic"
        }
    );

    // --- Size sweep: serial vs sharded batched plant. -----------------
    let mut size_rows = Vec::new();
    let sharded_threads = threads.max(2);
    for size in &sizes {
        let counts = if trace_mode {
            wc98_counts(size, windows)
        } else {
            synthetic_counts(size, windows)
        };
        let serial_s = time_arm(size, &counts, 1);
        let sharded_s = time_arm(size, &counts, sharded_threads);
        let outcome = run_batched(size, &counts, 1);
        let sim_s = outcome.sim_s;
        let serial_rate = sim_s / serial_s;
        let sharded_rate = sim_s / sharded_s;
        println!(
            "{:>4} machines: {:>11} arrivals over {sim_s:.0} sim-s | \
             serial {serial_rate:>9.0} sim-s/wall-s | \
             {sharded_threads} threads {sharded_rate:>9.0} sim-s/wall-s ({:.2}x)",
            size.machines(),
            outcome.arrivals,
            serial_s / sharded_s,
        );
        size_rows.push((size, counts, serial_s, sharded_s, outcome));
    }

    // --- Sharding determinism: 1 vs 2 vs 8 workers, bit-identical. ----
    let det_size = &sizes[1];
    let det_counts = synthetic_counts(det_size, windows.min(6));
    let det1 = run_batched(det_size, &det_counts, 1);
    let det2 = run_batched(det_size, &det_counts, 2);
    let det8 = run_batched(det_size, &det_counts, 8);
    let deterministic = identical(&det1, &det2) && identical(&det1, &det8);
    println!(
        "sharding determinism (128 machines, 1/2/8 workers): {}",
        if deterministic {
            "bit-identical"
        } else {
            "MISMATCH"
        }
    );

    // --- Batching vs the per-request event heap, identical traffic. ---
    let small = &sizes[0];
    let small_counts = synthetic_counts(small, windows);
    let per_req = run_per_request(small, &small_counts);
    let batched = run_batched(small, &small_counts, 1);
    let per_req_s = median3(|| run_per_request(small, &small_counts).wall_s);
    let batched_s = median3(|| run_batched(small, &small_counts, 1).wall_s);
    let batch_speedup = per_req_s / batched_s;
    let accounting_ok = per_req.module_arrivals == batched.module_arrivals
        && per_req.dropped == batched.dropped
        && per_req.arrivals == batched.arrivals;
    println!(
        "batched vs per-request heap (16 machines, serial): {batch_speedup:.2}x, \
         accounting {}",
        if accounting_ok {
            "equivalent"
        } else {
            "MISMATCH"
        }
    );

    // --- Gated WC'98 replay on the small cluster (trace loader path). -
    let wc98_small_counts = wc98_counts(small, windows);
    let wc98_small = run_batched(small, &wc98_small_counts, 1);
    let wc98_rate = wc98_small.sim_s / wc98_small.wall_s;
    println!(
        "wc98 crest replay (16 machines): {} arrivals, {} dropped, \
         {wc98_rate:.0} sim-s/wall-s",
        wc98_small.arrivals, wc98_small.dropped
    );

    // --- Controller overhead at scale. --------------------------------
    let decide_us = controller_decide_us(quick);
    let largest = &sizes[sizes.len() - 1];
    let extrapolated_ms = decide_us * largest.modules as f64 / 1e3;
    println!(
        "controller overhead: {decide_us:.1} us per module decide, \
         x{} modules = {extrapolated_ms:.1} ms/period serial-extrapolated \
         (modules decide independently; llc-par fans out across cores)",
        largest.modules
    );

    if check {
        let mut failures = Vec::new();
        if !deterministic {
            failures.push("REGRESSION sharding determinism: 1/2/8-worker runs differ".to_string());
        }
        if !accounting_ok {
            failures.push(
                "REGRESSION batched accounting: module arrivals/drops diverge from \
                 the per-request stream"
                    .to_string(),
            );
        }
        if wc98_small.arrivals == 0 || wc98_small.completions == 0 {
            failures.push("REGRESSION wc98 replay: no traffic served".to_string());
        }
        // Load-invariant floor: both arms run on the same machine in the
        // same minute, so their ratio holds even when co-tenant load
        // makes the absolute sim-rate floors breathe.
        if batch_speedup < MIN_BATCH_SPEEDUP {
            failures.push(format!(
                "REGRESSION batching speedup: {batch_speedup:.2}x < {MIN_BATCH_SPEEDUP:.0}x \
                 floor over the per-request heap"
            ));
        } else {
            println!(
                "gate ok  batching speedup: {batch_speedup:.2}x >= {MIN_BATCH_SPEEDUP:.0}x \
                 floor over the per-request heap"
            );
        }
        // Sim-rate floors against the committed baseline (per-class when
        // this runner has a snapshot, workspace-root fallback otherwise).
        let (committed, tolerance, source) = match report::load_class_baseline("scale", threads) {
            Some(json) => (
                Some(json),
                SCALE_CLASS_TOLERANCE,
                format!("class baseline {}", report::runner_class(threads)),
            ),
            None => (
                std::fs::read_to_string("BENCH_scale.json").ok(),
                SCALE_FALLBACK_TOLERANCE,
                "workspace-root BENCH_scale.json".to_string(),
            ),
        };
        match committed {
            Some(committed) => {
                println!("gating against {source} at {:.0}%", tolerance * 100.0);
                for (size, _, serial_s, sharded_s, outcome) in &size_rows {
                    let measured = outcome.sim_s / serial_s.min(*sharded_s);
                    if let Some(baseline) =
                        json_number(&committed, &size.key(), "best_sim_s_per_wall_s")
                    {
                        if let Err(e) = gate_ratio(
                            &format!("{} machines sim rate", size.machines()),
                            measured,
                            baseline,
                            tolerance,
                        ) {
                            failures.push(e);
                        }
                    } else {
                        println!(
                            "note: no {} baseline in {source}; skipping its floor",
                            size.key()
                        );
                    }
                }
            }
            None => println!("note: no committed baseline found; sim-rate floors skipped"),
        }
        // The multi-core claim is only checkable on multi-core hardware:
        // with one core both arms execute the same serial code path.
        if cores > 1 {
            let (_, _, serial_s, sharded_s, _) = &size_rows[size_rows.len() - 1];
            if sharded_s >= serial_s {
                failures.push(format!(
                    "REGRESSION sharded arm not faster on largest size: \
                     {sharded_s:.2}s (x{sharded_threads}) vs {serial_s:.2}s serial \
                     on a {cores}-core runner"
                ));
            } else {
                println!(
                    "gate ok  sharded arm faster on largest size \
                     ({sharded_s:.2}s < {serial_s:.2}s, {cores} cores)"
                );
            }
        } else {
            println!(
                "note: single-core runner — sharded-faster gate skipped \
                 (both arms run the identical serial path); determinism gate \
                 covers the sharding discipline"
            );
        }
        if failures.is_empty() {
            println!("bench gate passed: scale plant deterministic, equivalent and fast enough");
            return;
        }
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
    if quick {
        println!("(quick mode: BENCH_scale.json not rewritten)");
        return;
    }

    // --- Full run: emit BENCH_scale.json. -----------------------------
    let mut sections = String::new();
    for (size, counts, serial_s, sharded_s, outcome) in &size_rows {
        let best = serial_s.min(*sharded_s);
        sections.push_str(&format!(
            "  \"{key}\": {{\n    \"machines\": {machines},\n    \"modules\": {modules},\n    \
             \"windows\": {w},\n    \"sim_seconds\": {sim:.0},\n    \"arrivals\": {arr},\n    \
             \"completions\": {comp},\n    \"dropped\": {drop},\n    \
             \"serial_wall_s\": {serial_s:.3},\n    \"serial_sim_s_per_wall_s\": {sr:.0},\n    \
             \"sharded_threads\": {st},\n    \"sharded_wall_s\": {sharded_s:.3},\n    \
             \"sharded_sim_s_per_wall_s\": {shr:.0},\n    \
             \"best_sim_s_per_wall_s\": {br:.0},\n    \
             \"sharded_over_serial\": {sos:.3}\n  }},\n",
            key = size.key(),
            machines = size.machines(),
            modules = size.modules,
            w = counts.len(),
            sim = outcome.sim_s,
            arr = outcome.arrivals,
            comp = outcome.completions,
            drop = outcome.dropped,
            sr = outcome.sim_s / serial_s,
            st = sharded_threads,
            shr = outcome.sim_s / sharded_s,
            br = outcome.sim_s / best,
            sos = serial_s / sharded_s,
        ));
    }
    let json = format!(
        "{{\n  {runner},\n  \"timing\": \"median of 3 runs per arm\",\n  \
         \"traffic\": \"{traffic}\",\n  \
         \"note\": \"sharded arm recorded at {sharded_threads} workers on a {cores}-core \
         runner; on one core both arms execute the same serial path and the ratio \
         reflects thread-pool overhead only — the determinism gate (1/2/8 workers \
         bit-identical) is what certifies the sharding discipline there\",\n\
         {sections}  \"batching\": {{\n    \"machines\": {bm},\n    \
         \"per_request_wall_s\": {prs:.3},\n    \"batched_wall_s\": {bts:.3},\n    \
         \"speedup\": {bsp:.2},\n    \"accounting_equivalent\": {acc}\n  }},\n  \
         \"wc98_replay\": {{\n    \"machines\": {wm},\n    \"windows\": {ww},\n    \
         \"arrivals\": {wa},\n    \"dropped\": {wd},\n    \
         \"sim_s_per_wall_s\": {wr:.0}\n  }},\n  \
         \"controller\": {{\n    \"per_module_decide_us\": {dus:.1},\n    \
         \"modules_at_largest\": {ml},\n    \
         \"extrapolated_serial_ms_per_period\": {ems:.1},\n    \
         \"period_s\": {ps:.0}\n  }},\n  \
         \"determinism\": \"{det}\"\n}}\n",
        runner = runner_json(threads),
        traffic = if trace_mode {
            "wc98 crest replay"
        } else {
            "synthetic constant-rate at rho 0.6"
        },
        bm = small.machines(),
        prs = per_req_s,
        bts = batched_s,
        bsp = batch_speedup,
        acc = accounting_ok,
        wm = small.machines(),
        ww = wc98_small_counts.len(),
        wa = wc98_small.arrivals,
        wd = wc98_small.dropped,
        wr = wc98_rate,
        dus = decide_us,
        ml = largest.modules,
        ems = extrapolated_ms,
        ps = WINDOW_S,
        det = if deterministic {
            "1/2/8-worker runs bit-identical (128 machines)"
        } else {
            "MISMATCH"
        },
    );
    std::fs::write("BENCH_scale.json", &json).expect("cannot write BENCH_scale.json");
    println!("wrote BENCH_scale.json");
    if let Some(class_path) = report::write_class_baseline("scale", threads, &json) {
        println!("wrote {} (runner-class baseline)", class_path.display());
    }
}
