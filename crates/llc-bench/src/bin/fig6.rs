//! Fig. 6: the WC'98 workload trace and the number of computers operated
//! by the control hierarchy (16 computers in 4 modules).

use llc_bench::figures::{cluster_experiment, FIGURE_SEED};
use llc_bench::report::{ascii_plot, write_csv};

fn main() {
    let run = cluster_experiment(FIGURE_SEED);

    let workload: Vec<(f64, f64)> = run.trace.iter().map(|(t, c)| (t / 120.0, c)).collect();
    println!(
        "{}",
        ascii_plot(
            "Fig. 6 (top) — WC'98-like request arrivals per 2-minute bucket",
            &workload,
            100,
            16,
        )
    );

    let active: Vec<(f64, f64)> = run
        .policy
        .active_history()
        .iter()
        .map(|&(tick, a)| (tick as f64 / 4.0, a as f64))
        .collect();
    println!(
        "{}",
        ascii_plot(
            "Fig. 6 (bottom) — computers operated (of 16) per 2-minute tick",
            &active,
            100,
            10,
        )
    );

    let s = run.log.summary();
    let min_on = active.iter().map(|(_, a)| *a as usize).min().unwrap_or(0);
    let max_on = active.iter().map(|(_, a)| *a as usize).max().unwrap_or(0);
    println!("run summary: {s:?}");
    println!(
        "active range {min_on}..{max_on} of 16; mean response {:.2} s vs r* = {} s; \
         violation fraction {:.1}%",
        s.mean_response,
        run.log.response_target,
        s.violation_fraction * 100.0
    );
    println!(
        "paper: 'the desired response time r* = 4 was achieved throughout' with the \
         machine count tracking the workload."
    );

    let rows: Vec<String> = run
        .policy
        .active_history()
        .iter()
        .map(|(tick, a)| format!("{tick},{a}"))
        .collect();
    let p1 = write_csv("fig6_computers_operated.csv", "l0_tick,active", &rows);
    let rows: Vec<String> = run
        .trace
        .iter()
        .map(|(t, c)| format!("{t},{c:.0}"))
        .collect();
    let p2 = write_csv("fig6_workload.csv", "time_secs,requests", &rows);
    println!("wrote {} and {}", p1.display(), p2.display());
}
