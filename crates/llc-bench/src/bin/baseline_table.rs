//! The headline comparison: hierarchical LLC vs the reactive threshold
//! heuristic (Pinheiro'01/Elnozahy'02 style) vs always-on/max-frequency,
//! on the synthetic module workload.
//!
//! The paper's claim to reproduce in shape: the LLC controller meets the
//! response-time goal while consuming substantially less energy than an
//! uncontrolled cluster, and manages switching more deliberately than a
//! threshold heuristic.

use llc_bench::figures::FIGURE_SEED;
use llc_bench::report::{quick_mode, write_csv};
use llc_cluster::{
    single_module, AlwaysMaxPolicy, ClusterPolicy, Experiment, HierarchicalPolicy, ThresholdConfig,
    ThresholdPolicy,
};
use llc_workload::{synthetic_paper_workload, Trace, VirtualStore};

struct Row {
    name: String,
    mean_response: f64,
    violations: f64,
    energy: f64,
    switch_ons: u64,
    dropped: u64,
}

fn run(policy: &mut dyn ClusterPolicy, trace: &Trace) -> Row {
    let scenario = if quick_mode() {
        single_module(4).with_coarse_learning()
    } else {
        single_module(4)
    };
    let store = VirtualStore::paper_default(FIGURE_SEED);
    let log = Experiment::paper_default(FIGURE_SEED)
        .run(scenario.to_sim_config(), policy, trace, &store)
        .expect("well-formed scenario");
    let s = log.summary();
    Row {
        name: policy.name().to_string(),
        mean_response: s.mean_response,
        violations: s.violation_fraction,
        energy: s.total_energy,
        switch_ons: log.total_switch_ons(),
        dropped: s.total_dropped,
    }
}

fn main() {
    let scenario = if quick_mode() {
        single_module(4).with_coarse_learning()
    } else {
        single_module(4)
    };
    let mut trace = synthetic_paper_workload(FIGURE_SEED);
    if quick_mode() {
        trace = trace.slice(0, 250);
    }

    let layout: Vec<Vec<(f64, Vec<f64>)>> = scenario
        .member_specs()
        .iter()
        .map(|module| module.iter().map(|m| (m.speed, m.phis.clone())).collect())
        .collect();
    let layout_sizes: Vec<Vec<(f64, usize)>> = layout
        .iter()
        .map(|module| module.iter().map(|(s, p)| (*s, p.len())).collect())
        .collect();

    let mut rows = Vec::new();
    {
        let mut p = HierarchicalPolicy::build(&scenario);
        rows.push(run(&mut p, &trace));
    }
    {
        let mut p = ThresholdPolicy::new(ThresholdConfig::default(), layout);
        rows.push(run(&mut p, &trace));
    }
    {
        let mut p = AlwaysMaxPolicy::new(layout_sizes);
        rows.push(run(&mut p, &trace));
    }

    println!("LLC vs baselines — synthetic module workload, r* = 4 s\n");
    println!(
        "{:<22} | {:>14} | {:>11} | {:>12} | {:>11} | {:>8}",
        "policy", "mean resp (s)", "violations", "energy", "switch-ons", "dropped"
    );
    println!("{}", "-".repeat(92));
    let mut csv = Vec::new();
    for r in &rows {
        println!(
            "{:<22} | {:>14.2} | {:>10.1}% | {:>12.0} | {:>11} | {:>8}",
            r.name,
            r.mean_response,
            r.violations * 100.0,
            r.energy,
            r.switch_ons,
            r.dropped
        );
        csv.push(format!(
            "{},{:.3},{:.4},{:.0},{},{}",
            r.name, r.mean_response, r.violations, r.energy, r.switch_ons, r.dropped
        ));
    }

    let llc = &rows[0];
    let always = &rows[2];
    println!();
    println!(
        "energy: LLC uses {:.0}% of always-max; shape check: LLC < threshold <= always-max \
         while holding r*.",
        100.0 * llc.energy / always.energy
    );

    let path = write_csv(
        "baseline_table.csv",
        "policy,mean_response_s,violation_fraction,energy,switch_ons,dropped",
        &csv,
    );
    println!("wrote {}", path.display());
}
