//! Fig. 3: the discrete operating frequencies of each computer in the
//! four-computer module.

use llc_bench::report::write_csv;
use llc_cluster::{ComputerProfile, FrequencyProfile};

fn main() {
    println!("Fig. 3 — operating frequencies available within each computer\n");
    println!("(the printed table in the paper is an image; we model the cited");
    println!(" parts — AMD K6-2+: 8 settings, Pentium M: 6-10 settings — with");
    println!(" heterogeneous round-valued sets; C4 reaches 2.0 GHz as Fig. 5 shows)\n");

    let mut rows = Vec::new();
    for (i, profile) in FrequencyProfile::module_set().into_iter().enumerate() {
        let cp = ComputerProfile::paper_default(profile);
        let mhz: Vec<String> = profile
            .frequencies()
            .iter()
            .map(|f| format!("{:.0}", f / 1e6))
            .collect();
        println!(
            "C{} ({:?}, speed {:.2}): {} MHz",
            i + 1,
            profile,
            cp.speed,
            mhz.join(", ")
        );
        for f in profile.frequencies() {
            rows.push(format!("C{},{}", i + 1, f));
        }
    }
    let path = write_csv("fig3_frequencies.csv", "computer,frequency_hz", &rows);
    println!("\nwrote {}", path.display());
}
