//! Fig. 4: the synthetic workload with its Kalman predictions (top) and
//! the number of computers operated by the L1 controller (bottom).

use llc_bench::figures::{module_experiment, FIGURE_SEED};
use llc_bench::report::{ascii_plot, ascii_plot_multi, write_csv};

fn main() {
    let run = module_experiment(FIGURE_SEED);
    let t_l1 = run.scenario.l1.period;

    // Top panel: actual vs predicted arrivals per L1 period.
    let history = run.policy.l1(0).forecast_history();
    let actual: Vec<(f64, f64)> = history
        .iter()
        .enumerate()
        .map(|(k, (a, _))| (k as f64, a * t_l1))
        .collect();
    let predicted: Vec<(f64, f64)> = history
        .iter()
        .enumerate()
        .map(|(k, (_, p))| (k as f64, p * t_l1))
        .collect();
    println!(
        "{}",
        ascii_plot_multi(
            "Fig. 4 (top) — synthetic workload: actual (a) vs Kalman-predicted (p) \
             requests per 2-minute period",
            &[("a", &actual), ("p", &predicted)],
            100,
            18,
        )
    );

    // Forecast accuracy summary.
    let mut stats = llc_forecast::AccuracyStats::new();
    for &(a, p) in history {
        stats.record(a, p);
    }
    println!(
        "forecast: n={} MAE={:.1} req/s RMSE={:.1} req/s MAPE={:.1}%\n",
        stats.count(),
        stats.mae(),
        stats.rmse(),
        stats.mape() * 100.0
    );

    // Bottom panel: computers operated per L1 tick.
    let active: Vec<(f64, f64)> = run
        .policy
        .active_history()
        .iter()
        .map(|&(tick, a)| (tick as f64 / 4.0, a as f64))
        .collect();
    println!(
        "{}",
        ascii_plot(
            "Fig. 4 (bottom) — computers operated by the L1 controller (per 2-minute tick)",
            &active,
            100,
            8,
        )
    );

    let s = run.log.summary();
    println!("run summary: {s:?}\n");
    println!("paper: the L1 controller sets α in anticipation of workload fluctuations;");
    println!(
        "measured: active count spans {}..{} computers over the day",
        active.iter().map(|(_, a)| *a as usize).min().unwrap_or(0),
        active.iter().map(|(_, a)| *a as usize).max().unwrap_or(0)
    );

    let rows: Vec<String> = history
        .iter()
        .enumerate()
        .map(|(k, (a, p))| format!("{k},{:.1},{:.1}", a * t_l1, p * t_l1))
        .collect();
    let p1 = write_csv(
        "fig4_workload_forecast.csv",
        "l1_tick,actual,predicted",
        &rows,
    );
    let rows: Vec<String> = run
        .policy
        .active_history()
        .iter()
        .map(|(tick, a)| format!("{tick},{a}"))
        .collect();
    let p2 = write_csv("fig4_computers_operated.csv", "l0_tick,active", &rows);
    println!("wrote {} and {}", p1.display(), p2.display());
}
