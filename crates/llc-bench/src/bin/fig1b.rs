//! Fig. 1(b): a sample WC'98 day — HTTP requests at 2-minute buckets.

use llc_bench::report::{ascii_plot, write_csv};
use llc_workload::wc98_like_day;

fn main() {
    let trace = wc98_like_day(llc_bench::figures::FIGURE_SEED);
    let series: Vec<(f64, f64)> = trace.iter().map(|(t, c)| (t / 3600.0, c)).collect();

    println!(
        "{}",
        ascii_plot(
            "Fig. 1(b) — WC'98-like day (requests per 2-minute bucket vs hour of day)",
            &series,
            100,
            20,
        )
    );
    println!("buckets:         {}", trace.len());
    println!("bucket width:    {} s", trace.interval());
    println!("total requests:  {:.0}", trace.total());
    println!("peak bucket:     {:.0} requests", trace.peak());
    println!("mean bucket:     {:.0} requests", trace.mean());
    println!(
        "peak / trough:   {:.1}x",
        trace.peak()
            / trace
                .counts()
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
                .max(1.0)
    );
    println!();
    println!("paper: strong time-of-day variation, 2-minute granularity, one day.");

    let rows: Vec<String> = trace.iter().map(|(t, c)| format!("{t},{c:.0}")).collect();
    let path = write_csv("fig1b_wc98_day.csv", "time_secs,requests", &rows);
    println!("wrote {}", path.display());
}
