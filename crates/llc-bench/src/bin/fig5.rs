//! Fig. 5: the operating frequencies selected by the L0 controller for
//! computer C4 (top) and the achieved response times (bottom).

use llc_bench::figures::{module_experiment, FIGURE_SEED};
use llc_bench::report::{ascii_plot, write_csv};
use llc_cluster::FrequencyProfile;

fn main() {
    let run = module_experiment(FIGURE_SEED);
    let c4 = 3; // TallEight — the 2 GHz machine, as in the paper's Fig. 5
    let table = FrequencyProfile::TallEight.frequencies();

    let freq_hz: Vec<(f64, f64)> = run
        .log
        .frequency_series(c4)
        .into_iter()
        .map(|(t, idx)| (t / 30.0, table[idx]))
        .collect();
    println!(
        "{}",
        ascii_plot(
            "Fig. 5 (top) — C4 operating frequency (Hz) per 30-second tick",
            &freq_hz,
            100,
            14,
        )
    );

    let responses: Vec<(f64, f64)> = run
        .log
        .response_series(c4)
        .into_iter()
        .filter_map(|(t, r)| r.map(|r| (t / 30.0, r)))
        .collect();
    println!(
        "{}",
        ascii_plot(
            "Fig. 5 (bottom) — C4 achieved response time (s) per 30-second tick",
            &responses,
            100,
            14,
        )
    );

    let target = run.log.response_target;
    let within = responses.iter().filter(|(_, r)| *r <= target).count();
    println!(
        "response windows within r* = {target} s: {}/{} ({:.1}%)",
        within,
        responses.len(),
        100.0 * within as f64 / responses.len().max(1) as f64
    );
    println!(
        "frequency range exercised: {:.2e}..{:.2e} Hz (table spans {:.2e}..{:.2e})",
        freq_hz
            .iter()
            .map(|(_, f)| *f)
            .fold(f64::INFINITY, f64::min),
        freq_hz.iter().map(|(_, f)| *f).fold(0.0, f64::max),
        table[0],
        table[table.len() - 1],
    );
    println!(
        "L0 lookahead: mean {:.0} states explored per decision (horizon {}, {} settings)",
        run.policy.l0(c4).mean_states_explored(),
        run.scenario.l0.horizon,
        table.len(),
    );

    let rows: Vec<String> = run
        .log
        .frequency_series(c4)
        .iter()
        .zip(run.log.response_series(c4))
        .map(|((t, idx), (_, r))| {
            format!(
                "{t},{},{}",
                table[*idx],
                r.map(|r| format!("{r:.4}")).unwrap_or_default()
            )
        })
        .collect();
    let path = write_csv(
        "fig5_c4_frequency_response.csv",
        "time_secs,frequency_hz,response_s",
        &rows,
    );
    println!("wrote {}", path.display());
}
