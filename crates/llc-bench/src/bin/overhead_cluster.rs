//! §5.2 hierarchy-path overhead: the execution time along one path of the
//! hierarchy (one L2 + one L1 + one L0 decision) for the 16-computer /
//! 4-module cluster and the 20-computer / 5-module variant.
//!
//! The paper reports 2.5 s (16 computers) and ~3.4 s (20 computers) in
//! MATLAB. The shape to reproduce: overhead grows mildly when adding a
//! fifth module (the L2 simplex at quantum 0.1 grows 286 -> 1001 points).

use llc_bench::figures::{cluster20_experiment, cluster_experiment, FIGURE_SEED};
use llc_bench::report::{ms, write_csv};

fn main() {
    println!("§5.2 — execution time along one hierarchy path (L2 + L1 + L0)\n");
    println!(
        "{:>10} | {:>8} | {:>12} | {:>12} | {:>12} | {:>12} | {:>14}",
        "computers", "modules", "L2 mean", "L1 mean", "L0 mean", "path", "L2 states/dec"
    );
    println!("{}", "-".repeat(100));

    let mut rows = Vec::new();
    for (label, run) in [
        ("16/4", cluster_experiment(FIGURE_SEED)),
        ("20/5", cluster20_experiment(FIGURE_SEED)),
    ] {
        let overhead = run.policy.overhead();
        let path = run.policy.path_overhead();
        let l2_states = run
            .policy
            .l2()
            .map(|l2| l2.mean_states_evaluated())
            .unwrap_or(0.0);
        let (computers, modules) = (run.scenario.num_computers(), run.scenario.num_modules());
        println!(
            "{computers:>10} | {modules:>8} | {:>12} | {:>12} | {:>12} | {:>12} | {l2_states:>14.0}",
            ms(overhead[2].mean()),
            ms(overhead[1].mean()),
            ms(overhead[0].mean()),
            ms(path),
        );
        rows.push(format!(
            "{label},{computers},{modules},{:.6},{:.6},{:.6},{:.6},{l2_states:.0}",
            overhead[2].mean().as_secs_f64(),
            overhead[1].mean().as_secs_f64(),
            overhead[0].mean().as_secs_f64(),
            path.as_secs_f64(),
        ));
    }

    println!();
    println!("paper reference: 2.5 s for 16 computers, ~3.4 s for 20 (MATLAB, P4 3 GHz);");
    println!(
        "expected shape: path time grows ~1.3-3.5x from 16/4 to 20/5 (L2 simplex 286 -> 1001)."
    );

    let path = write_csv(
        "overhead_cluster.csv",
        "config,computers,modules,l2_mean_s,l1_mean_s,l0_mean_s,path_s,l2_states",
        &rows,
    );
    println!("wrote {}", path.display());
}
