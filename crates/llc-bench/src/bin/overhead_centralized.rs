//! The paper's §3 dimensionality argument, measured: a centralized
//! controller jointly deciding `{α, γ, u}` for every computer vs the
//! hierarchical decomposition, on the same module scenario.
//!
//! "Where a centralized controller must decide the variables {γ, α, u}
//! for each of the n computers in the cluster, in our method, the L2
//! controller only decides a single-dimensional variable {γ} for k
//! modules … Similarly, the L1 controller decides control variables only
//! for those computers within its module."

use llc_bench::figures::FIGURE_SEED;
use llc_bench::report::{ms, quick_mode, write_csv};
use llc_cluster::{
    joint_candidate_count, single_module, CentralizedConfig, CentralizedPolicy, Experiment,
    HierarchicalPolicy,
};
use llc_workload::{synthetic_paper_workload, VirtualStore};
use std::time::Instant;

fn main() {
    println!("§3 — centralized vs hierarchical decision complexity\n");

    // Analytic joint-candidate counts (γ quantum 0.1): the curse of
    // dimensionality in one column.
    println!(
        "{:>3} | {:>26} | {:>16}",
        "m", "centralized candidates", "hierarchy (≈)"
    );
    println!("{}", "-".repeat(56));
    for m in [2usize, 4, 6, 8, 10, 16] {
        // The hierarchy's L1 evaluates candidate-α (≈ m + pairs) × γ
        // neighborhood rounds — hundreds, independent of 2^m.
        println!(
            "{m:>3} | {:>26} | {:>16}",
            joint_candidate_count(m, 10),
            "~10^2 - 10^3"
        );
    }

    // Measured head-to-head on m = 4 and m = 6.
    println!("\nmeasured (same workload, same plant):\n");
    println!(
        "{:<18} | {:>3} | {:>14} | {:>13} | {:>12} | {:>12}",
        "policy", "m", "states/dec", "decision", "mean resp", "energy"
    );
    println!("{}", "-".repeat(90));

    let mut rows = Vec::new();
    for m in [4usize, 6] {
        let scenario = if quick_mode() {
            single_module(m).with_coarse_learning()
        } else {
            single_module(m)
        };
        let mut trace = synthetic_paper_workload(FIGURE_SEED).scaled(m as f64 / 4.0);
        if quick_mode() {
            trace = trace.slice(0, 200);
        } else {
            trace = trace.slice(0, 600);
        }
        let store = VirtualStore::paper_default(FIGURE_SEED);

        // Hierarchical.
        let mut h = HierarchicalPolicy::build(&scenario);
        let log_h = Experiment::paper_default(FIGURE_SEED)
            .run(scenario.to_sim_config(), &mut h, &trace, &store)
            .expect("well-formed scenario");
        let sh = log_h.summary();
        let h_states = h.l1(0).mean_states_evaluated();
        println!(
            "{:<18} | {m:>3} | {:>14.0} | {:>13} | {:>12.2} | {:>12.0}",
            "hierarchical",
            h_states,
            ms(h.overhead()[1].mean()),
            sh.mean_response,
            sh.total_energy
        );
        rows.push(format!(
            "hierarchical,{m},{h_states:.0},{:.6},{:.3},{:.0}",
            h.overhead()[1].mean().as_secs_f64(),
            sh.mean_response,
            sh.total_energy
        ));

        // Centralized.
        let members = scenario.member_specs().remove(0);
        let mut c = CentralizedPolicy::new(CentralizedConfig::paper_default(), members);
        let started = Instant::now();
        let log_c = Experiment::paper_default(FIGURE_SEED)
            .run(scenario.to_sim_config(), &mut c, &trace, &store)
            .expect("well-formed scenario");
        let elapsed = started.elapsed();
        let sc = log_c.summary();
        let decisions = (trace.rebucket(30.0).unwrap().len() as u64 / 4).max(1);
        println!(
            "{:<18} | {m:>3} | {:>14.0} | {:>13} | {:>12.2} | {:>12.0}",
            "centralized",
            c.mean_states_evaluated(),
            ms(elapsed / decisions as u32),
            sc.mean_response,
            sc.total_energy
        );
        rows.push(format!(
            "centralized,{m},{:.0},{:.6},{:.3},{:.0}",
            c.mean_states_evaluated(),
            (elapsed / decisions as u32).as_secs_f64(),
            sc.mean_response,
            sc.total_energy
        ));
    }

    println!();
    println!("shape to observe: centralized candidates grow exponentially in m while");
    println!("the hierarchy stays near-constant; both meet QoS at small m, only the");
    println!("hierarchy remains viable at cluster scale.");
    let path = write_csv(
        "overhead_centralized.csv",
        "policy,m,states_per_decision,decision_s,mean_response_s,energy",
        &rows,
    );
    println!("wrote {}", path.display());
}
