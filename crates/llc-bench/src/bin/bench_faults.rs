//! Fault tolerance: the churn-hardened hierarchy against the fault-blind
//! closed loop, across the four canonical fault scenarios of
//! `llc_workload::fault_scenarios` —
//!
//! * **crash-restart** — a member crashes (queue lost, telemetry dark)
//!   and comes back through the boot dead time;
//! * **rolling-blackout** — telemetry goes dark machine by machine while
//!   everything keeps serving;
//! * **flapping-member** — one member crash/restart-cycles three times;
//! * **stuck-actuator** — a wedged DVFS actuator plus noisy sensors.
//!
//! Both arms run the identical closed-loop hierarchy
//! (`PolicyBuilder::closed_loop`); the **fault-tolerant** arm additionally
//! enables the watchdog stack (`PolicyBuilder::fault_tolerance`): suspect
//! counting, dead-member exclusion from the L1 search, one-shot L2
//! hysteresis relaxation on membership change, telemetry-gated
//! estimators and the safe-mode fallback. The **fault-blind** arm takes
//! blank windows and crashed machines at face value.
//!
//! Tracking error is the prequential mean `|predicted − realized|` cost
//! over derived per-member outcomes, where the realized cost *prices
//! dropped traffic*: every request the dispatcher offered to a machine
//! that refused it is charged a client-timeout's worth of slack. Without
//! that charge a controller that routes traffic into a dead machine
//! would grade *better* — the drops vanish from the books and the
//! relieved survivors look beautifully modeled.
//!
//! **Recovery time** is measured per arm as the number of L1 periods
//! after the last scheduled fault until the trailing-3-period MAE
//! returns to within 1.5× the pre-fault steady-state MAE (median of the
//! per-period MAE before the first fault).
//!
//! Emits machine-readable `BENCH_faults.json` at the workspace root;
//! `--quick` shortens the run (no JSON rewrite); `--check` gates: exit
//! non-zero unless the fault-tolerant arm strictly beats the fault-blind
//! arm's tracking MAE on **every** scenario and recovers within
//! 20 L1 periods of the last fault. All arms are fully deterministic
//! (seeded workload, seeded spread, seeded faults) and independent of
//! the thread count — the map substrate is queried, never rebuilt, so
//! no parallel reduction order enters the trajectory.

use llc_bench::report::{check_mode, quick_mode, runner_json};
use llc_cluster::{
    single_module, Action, Cadence, ClusterPolicy, Experiment, FaultToleranceConfig,
    HierarchicalPolicy, Observations, PolicyBuilder, PolicyMetrics, ScenarioConfig,
};
use llc_core::OnlineConfig;
use llc_workload::{fault_scenarios, FaultScenario, VirtualStore};
use std::time::Instant;

/// L1 periods allowed between the last scheduled fault and the tracking
/// error returning to within [`RECOVERY_FACTOR`]× of steady state. At
/// the paper's T_L1 = 120 s this is 40 minutes — enough for a restarted
/// machine to boot, rejoin and be re-planned over, with margin.
const RECOVERY_BOUND: u64 = 20;
/// Multiple of the pre-fault steady-state MAE the trailing error must
/// return under to count as recovered.
const RECOVERY_FACTOR: f64 = 1.5;
/// Base ticks per L1 period (T_L1 / T_L0 at paper defaults).
const L1_EVERY: u64 = 4;

/// Records the cumulative prequential error after every tick, so the
/// per-L1-period error trajectory (and hence recovery time) can be
/// reconstructed without touching the hierarchy's internals.
struct ErrProbe {
    inner: HierarchicalPolicy,
    /// `(tick, err_sum, err_n)` after each decide.
    history: Vec<(u64, f64, u64)>,
}

impl ClusterPolicy for ErrProbe {
    fn decide(&mut self, obs: &Observations) -> Vec<Action> {
        let actions = self.inner.decide(obs);
        let n = self.inner.tracking_samples();
        let sum = self.inner.tracking_error().unwrap_or(0.0) * n as f64;
        self.history.push((obs.tick, sum, n));
        actions
    }

    fn name(&self) -> &str {
        "hierarchical-llc-err-probe"
    }

    fn cadence(&self) -> Cadence {
        self.inner.cadence()
    }

    fn metrics(&self) -> PolicyMetrics {
        self.inner.metrics()
    }
}

/// Per-L1-period mean prediction error, from the cumulative history.
fn period_maes(history: &[(u64, f64, u64)]) -> Vec<(u64, f64, u64)> {
    let mut out = Vec::new();
    let (mut prev_sum, mut prev_n) = (0.0, 0u64);
    for &(tick, sum, n) in history {
        if tick % L1_EVERY != 0 {
            continue;
        }
        let dn = n - prev_n;
        if dn > 0 {
            out.push((tick / L1_EVERY, (sum - prev_sum) / dn as f64, dn));
        }
        prev_sum = sum;
        prev_n = n;
    }
    out
}

/// Recovery time in L1 periods: first period after `last_fault_period`
/// whose trailing-3-period aggregate MAE is within `RECOVERY_FACTOR`× of
/// the pre-fault steady state (median per-period MAE before the first
/// fault). `None` if the error never comes back down.
fn recovery_periods(
    periods: &[(u64, f64, u64)],
    first_fault_period: u64,
    last_fault_period: u64,
) -> Option<u64> {
    let mut pre: Vec<f64> = periods
        .iter()
        .filter(|&&(p, _, _)| p >= 2 && p < first_fault_period)
        .map(|&(_, mae, _)| mae)
        .collect();
    if pre.is_empty() {
        return None;
    }
    pre.sort_by(f64::total_cmp);
    let steady = pre[pre.len() / 2];
    let threshold = RECOVERY_FACTOR * steady;
    let post: Vec<&(u64, f64, u64)> = periods
        .iter()
        .filter(|&&(p, _, _)| p > last_fault_period)
        .collect();
    for w in post.windows(3) {
        let err: f64 = w.iter().map(|&&(_, mae, dn)| mae * dn as f64).sum();
        let n: u64 = w.iter().map(|&&(_, _, dn)| dn).sum();
        if n > 0 && err / n as f64 <= threshold {
            return Some(w[2].0 - last_fault_period);
        }
    }
    None
}

struct ArmResult {
    tracking_mae: f64,
    samples: u64,
    dropped: u64,
    mean_response: f64,
    violation_fraction: f64,
    deaths: u64,
    recoveries: u64,
    safe_mode_periods: u64,
    recovery_periods: Option<u64>,
    run_ms: f64,
}

fn json_entry(scenario: &str, arm: &str, r: &ArmResult) -> String {
    format!(
        "    \"{scenario}:{arm}\": {{\n      \"tracking_mae\": {:.4},\n      \"samples\": {},\n      \"dropped\": {},\n      \"mean_response_s\": {:.4},\n      \"violation_fraction\": {:.4},\n      \"member_deaths\": {},\n      \"member_recoveries\": {},\n      \"safe_mode_periods\": {},\n      \"recovery_l1_periods\": {},\n      \"run_ms\": {:.1}\n    }}",
        r.tracking_mae,
        r.samples,
        r.dropped,
        r.mean_response,
        r.violation_fraction,
        r.deaths,
        r.recoveries,
        r.safe_mode_periods,
        r.recovery_periods
            .map_or("null".to_string(), |p| p.to_string()),
        r.run_ms,
    )
}

fn scenario_config() -> ScenarioConfig {
    // Hash-backed maps: crashes push the survivors beyond the offline
    // envelope, and only the hash substrate absorbs outcomes out there.
    single_module(4).with_coarse_learning().with_hash_maps()
}

fn run_arm(fs: &FaultScenario, tolerant: bool, seed: u64) -> ArmResult {
    let sc = scenario_config();
    let mut builder =
        PolicyBuilder::new(sc.clone()).closed_loop(OnlineConfig::default().validated());
    if tolerant {
        builder = builder.fault_tolerance(FaultToleranceConfig::default());
    }
    let policy = builder.build();
    let exp = Experiment {
        faults: Some(fs.plan.clone()),
        ..Experiment::paper_default(seed)
    };
    let store = VirtualStore::paper_default(5);
    let started = Instant::now();
    let mut probe = ErrProbe {
        inner: policy,
        history: Vec::new(),
    };
    let log = exp
        .run(sc.to_sim_config(), &mut probe, &fs.trace, &store)
        .expect("well-formed scenario");
    let run_ms = started.elapsed().as_secs_f64() * 1e3;
    let policy = probe.inner;
    let summary = log.summary();
    let periods = period_maes(&probe.history);
    let first_fault = fs.plan.events().first().expect("plans are non-empty").tick / L1_EVERY;
    let last_fault = fs.plan.last_fault_tick().expect("plans are non-empty") / L1_EVERY;
    ArmResult {
        tracking_mae: policy.tracking_error().expect("outcomes were derived"),
        samples: policy.tracking_samples(),
        dropped: summary.total_dropped,
        mean_response: summary.mean_response,
        violation_fraction: summary.violation_fraction,
        deaths: policy.member_deaths(),
        recoveries: policy.member_recoveries(),
        safe_mode_periods: policy.safe_mode_periods(),
        recovery_periods: recovery_periods(&periods, first_fault, last_fault),
        run_ms,
    }
}

fn main() {
    let quick = quick_mode();
    let check = check_mode();
    let threads = llc_par::num_threads();
    // The fault schedules are laid out over the run's fraction marks, so
    // shortening the run squeezes the faults together and thins the
    // post-fault recovery window; 90 periods keeps every scenario's
    // margin comfortable and still runs in seconds, so quick mode keeps
    // the full horizon and only skips the median-of-3 timing runs.
    let buckets = 90;
    let sc = scenario_config();
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    let scenarios = fault_scenarios(0xFA11, buckets, 120.0, capacity, 4);
    println!("fault benchmark (threads = {threads}, quick = {quick}, periods = {buckets})");

    let mut lines = Vec::new();
    let mut blind_beaten = 0usize;
    let mut recovered = 0usize;
    for fs in &scenarios {
        let mut arms: Vec<ArmResult> = Vec::new();
        for tolerant in [false, true] {
            // The gate consults only tracking MAEs and recovery times,
            // which are fully deterministic (seeded workload, spread and
            // faults) — one run suffices in check/quick mode. The
            // JSON-writing path runs each arm three times and takes the
            // wall-clock median so `run_ms` is de-noised.
            let result = if check || quick {
                run_arm(fs, tolerant, 0xBEEF)
            } else {
                let mut runs = vec![
                    run_arm(fs, tolerant, 0xBEEF),
                    run_arm(fs, tolerant, 0xBEEF),
                    run_arm(fs, tolerant, 0xBEEF),
                ];
                runs.sort_by(|a, b| a.run_ms.total_cmp(&b.run_ms));
                debug_assert!(
                    (runs[0].tracking_mae - runs[2].tracking_mae).abs() < 1e-12,
                    "tracking error must be deterministic"
                );
                runs.swap_remove(1)
            };
            arms.push(result);
        }
        let blind = &arms[0];
        let tol = &arms[1];
        println!(
            "{:<17} blind MAE {:>9.3} ({:>6} drops)  tolerant MAE {:>9.3} ({:>6} drops)  \
             {:.2}x better, {} deaths/{} rejoins, recovery {} periods",
            fs.name,
            blind.tracking_mae,
            blind.dropped,
            tol.tracking_mae,
            tol.dropped,
            blind.tracking_mae / tol.tracking_mae.max(1e-12),
            tol.deaths,
            tol.recoveries,
            tol.recovery_periods
                .map_or("—".to_string(), |p| p.to_string()),
        );
        if tol.tracking_mae < blind.tracking_mae {
            blind_beaten += 1;
        }
        if tol.recovery_periods.is_some_and(|p| p <= RECOVERY_BOUND) {
            recovered += 1;
        }
        lines.push(json_entry(fs.name, "blind", blind));
        lines.push(json_entry(fs.name, "tolerant", tol));
    }

    let total = scenarios.len();
    if check {
        let mut failed = false;
        if blind_beaten == total {
            println!("gate ok  fault-tolerant beats fault-blind on {total}/{total} scenarios");
        } else {
            eprintln!(
                "REGRESSION fault-tolerant beats fault-blind on only {blind_beaten}/{total} \
                 scenarios"
            );
            failed = true;
        }
        if recovered == total {
            println!(
                "gate ok  tracking recovers within {RECOVERY_BOUND} L1 periods of the last \
                 fault on {total}/{total} scenarios"
            );
        } else {
            eprintln!(
                "REGRESSION tracking recovers within {RECOVERY_BOUND} L1 periods on only \
                 {recovered}/{total} scenarios"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    if quick {
        println!("(quick mode: BENCH_faults.json not rewritten)");
        return;
    }

    let ft = FaultToleranceConfig::default();
    let json = format!(
        "{{\n  {runner},\n  \"config\": {{\n    \"cluster\": \"single_module(4), coarse learning, hash maps\",\n    \"periods\": {buckets},\n    \"period_seconds\": 120,\n    \"suspect_after\": {sa},\n    \"telemetry_quorum\": {tq},\n    \"recovery_bound_l1_periods\": {RECOVERY_BOUND},\n    \"recovery_factor\": {RECOVERY_FACTOR},\n    \"timing\": \"median of 3 runs per arm\"\n  }},\n  \"results\": {{\n{body}\n  }}\n}}\n",
        runner = runner_json(threads),
        sa = ft.suspect_after,
        tq = ft.telemetry_quorum,
        body = lines.join(",\n"),
    );
    std::fs::write("BENCH_faults.json", &json).expect("cannot write BENCH_faults.json");
    println!("wrote BENCH_faults.json");
    if let Some(class_path) = llc_bench::report::write_class_baseline("faults", threads, &json) {
        println!("wrote {} (runner-class baseline)", class_path.display());
    }
}
