//! Fig. 7: the load distribution factor γ_i decided by the L2 controller
//! for each of the four modules.

use llc_bench::figures::{cluster_experiment, FIGURE_SEED};
use llc_bench::report::{ascii_plot, write_csv};

fn main() {
    let run = cluster_experiment(FIGURE_SEED);
    let history = run.policy.gamma_module_history();
    assert!(!history.is_empty(), "L2 must have decided at least once");
    let p = history[0].1.len();

    for module in 0..p {
        let series: Vec<(f64, f64)> = history
            .iter()
            .map(|(tick, gamma)| (*tick as f64 / 4.0, gamma[module]))
            .collect();
        println!(
            "{}",
            ascii_plot(
                &format!(
                    "Fig. 7 — module {} load fraction γ (per 2-minute L2 tick)",
                    module + 1
                ),
                &series,
                100,
                8,
            )
        );
        let mean: f64 = series.iter().map(|(_, g)| g).sum::<f64>() / series.len() as f64;
        let lo = series.iter().map(|(_, g)| *g).fold(f64::INFINITY, f64::min);
        let hi = series.iter().map(|(_, g)| *g).fold(0.0, f64::max);
        println!(
            "  γ_{}: mean {mean:.2}, range {lo:.1}..{hi:.1}\n",
            module + 1
        );
    }

    // Sanity: every decided split sums to 1.
    for (tick, gamma) in history {
        let total: f64 = gamma.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "tick {tick}: split sums to {total}"
        );
    }
    if let Some(l2) = run.policy.l2() {
        println!(
            "L2 evaluated {:.0} candidate splits per decision (0.1 quantum over {p} modules)",
            l2.mean_states_evaluated()
        );
    }
    println!("paper: fractions quantized at 0.1, adapting with module states while Σγ_i = 1.");

    let rows: Vec<String> = history
        .iter()
        .map(|(tick, gamma)| {
            let cells: Vec<String> = gamma.iter().map(|g| format!("{g:.2}")).collect();
            format!("{tick},{}", cells.join(","))
        })
        .collect();
    let header = {
        let cols: Vec<String> = (1..=p).map(|i| format!("gamma_{i}")).collect();
        format!("l0_tick,{}", cols.join(","))
    };
    let path = write_csv("fig7_module_gammas.csv", &header, &rows);
    println!("wrote {}", path.display());
}
