//! Diagnostic dump of the Fig. 6 cluster run (development aid).

use llc_bench::figures::{cluster_experiment, FIGURE_SEED};

fn main() {
    let run = cluster_experiment(FIGURE_SEED);
    println!("tick time    arr   comp  resp     act  qtot   drop");
    for t in run.log.ticks.iter().step_by(8) {
        println!(
            "{:4} {:6.0} {:6} {:6} {:>8} {:4} {:6} {:6}",
            t.tick,
            t.time,
            t.arrivals,
            t.completions,
            t.mean_response
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "-".into()),
            t.active,
            t.queue_total,
            t.dropped,
        );
    }
    println!("\ngamma history (every 8th):");
    for (tick, g) in run.policy.gamma_module_history().iter().step_by(8) {
        let cells: Vec<String> = g.iter().map(|x| format!("{x:.1}")).collect();
        println!("{tick:5}: {}", cells.join(" "));
    }
    let s = run.log.summary();
    println!("\nsummary: {s:?}");
}
