//! Forecaster ablation: the paper's Kalman/ARIMA choice vs alternatives
//! on arrival prediction over the evaluation workloads (2-minute
//! sampling, as the L1/L2 controllers see them).
//!
//! Two horizons are scored: one step (2 min — what the controllers use)
//! and 30 steps (1 h — where trend extrapolation degrades and the
//! seasonal profile pays off).

use llc_bench::report::write_csv;
use llc_forecast::{AccuracyStats, Arima, Ewma, Forecaster, LocalLinearTrend, SeasonalTrend};
use llc_workload::{synthetic_paper_workload, wc98_like_days, Trace};
use std::collections::VecDeque;

fn evaluate(forecaster: &mut dyn Forecaster, trace: &Trace, horizon: usize) -> (f64, f64) {
    let mut stats = AccuracyStats::new();
    // (due_bucket, prediction) pairs issued `horizon` buckets ago.
    let mut pending: VecDeque<(usize, f64)> = VecDeque::new();
    for (k, (_, count)) in trace.iter().enumerate() {
        while pending.front().is_some_and(|(due, _)| *due == k) {
            let (_, pred) = pending.pop_front().expect("checked");
            stats.record(count, pred);
        }
        if forecaster.observations() >= 4 {
            let preds = forecaster.predict(horizon);
            pending.push_back((k + horizon, preds[horizon - 1]));
        }
        forecaster.observe(count);
    }
    (stats.mae(), stats.mape() * 100.0)
}

fn battery(trace: &Trace, horizon: usize) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    let mut run = |name: &str, f: &mut dyn Forecaster| {
        let (mae, mape) = evaluate(f, trace, horizon);
        out.push((name.to_string(), mae, mape));
    };
    run(
        "local-linear-trend",
        &mut LocalLinearTrend::with_default_noise().with_floor(0.0),
    );
    run(
        "seasonal-trend (720)",
        &mut SeasonalTrend::new(720, 0.3).with_floor(0.0),
    );
    run(
        "arima(2,1) w=240",
        &mut Arima::new(2, 1, 240).with_floor(0.0),
    );
    run("ewma(0.1)", &mut Ewma::paper_default());
    out
}

fn main() {
    println!("Forecaster ablation — arrival counts per 2-minute bucket\n");
    let workloads: Vec<(&str, Trace)> = vec![
        ("synthetic (Fig. 4)", synthetic_paper_workload(2006)),
        // Three consecutive WC'98-like days: the repeated daily shape is
        // what the seasonal forecaster exists for.
        ("wc98-like 3 days", wc98_like_days(2006, 3)),
    ];

    let mut rows = Vec::new();
    for (wname, trace) in &workloads {
        for horizon in [1usize, 30] {
            println!(
                "{wname} — horizon {horizon} step(s) ({} min ahead):",
                horizon * 2
            );
            println!("{:<26} | {:>12} | {:>9}", "forecaster", "MAE (req)", "MAPE");
            println!("{}", "-".repeat(54));
            for (name, mae, mape) in battery(trace, horizon) {
                println!("{name:<26} | {mae:>12.1} | {mape:>8.2}%");
                rows.push(format!("{wname},{horizon},{name},{mae:.2},{mape:.3}"));
            }
            println!();
        }
    }
    println!("expected shape: the paper's Kalman trend filter dominates at the 2-minute");
    println!("control horizon; at one hour ahead the seasonal profile overtakes plain");
    println!("trend extrapolation on the repeating multi-day trace.");
    let path = write_csv(
        "ablation_forecaster.csv",
        "workload,horizon,forecaster,mae,mape_pct",
        &rows,
    );
    println!("wrote {}", path.display());
}
