//! Online-learning trajectory under drift: offline-only vs
//! online-updated abstraction maps on both substrates, across the three
//! canonical drift scenarios (`llc_workload::drift_scenarios`). For each
//! control period the map is queried at the operating point the
//! controller would see (nominal ĉ — capacity drift is invisible to
//! demand telemetry), the *drifted* plant generates the realized outcome,
//! and the online map absorbs it prequentially (error measured before the
//! update). Emits machine-readable `BENCH_online.json` at the workspace
//! root; `--quick` shortens the run (no JSON rewrite); `--check` gates:
//! exit non-zero unless online tracking error beats offline-only on at
//! least two scenarios per substrate.

use llc_bench::report::{check_mode, quick_mode, runner_json};
use llc_cluster::{
    AbstractionMap, FrequencyProfile, GEntry, L0Config, L0Controller, LearnSpec, MapBackend,
    MemberSpec,
};
use llc_core::OnlineConfig;
use llc_workload::{drift_scenarios, DriftScenario};
use std::time::Instant;

/// Tracking comparison over one scenario on one substrate.
struct RunResult {
    offline_mae: f64,
    online_mae: f64,
    update_ns: f64,
    updates_applied: usize,
    periods: usize,
}

impl RunResult {
    fn improvement(&self) -> f64 {
        if self.online_mae > 0.0 {
            self.offline_mae / self.online_mae
        } else {
            f64::INFINITY
        }
    }
}

/// Replay one drift scenario: every bucket is one L1 period. The plant's
/// realized outcome comes from the analytic L0 model at the *drifted*
/// effective service time `ĉ / scale` (a machine at 70% capacity takes
/// 1/0.7 longer per request); both maps are queried at the nominal key.
fn run_scenario(
    scenario: &DriftScenario,
    backend: MapBackend,
    spec: &MemberSpec,
    learn: LearnSpec,
    cfg: &OnlineConfig,
) -> RunResult {
    let l0 = L0Config::paper_default();
    let offline = AbstractionMap::learn_for_member(&l0, spec, learn, backend);
    let mut online = offline.clone();
    let c_nom = spec.c_prior;
    let steps_per_period = 4;
    let mut q = 0.0f64;
    let (mut off_err, mut on_err) = (0.0, 0.0);
    let mut update_time = std::time::Duration::ZERO;
    let mut applied = 0usize;
    let periods = scenario.trace.len();
    for k in 0..periods {
        let lambda = scenario.trace.rate(k);
        let scale = scenario.scale_at(k);
        let (cost, power, final_q) = L0Controller::simulate_model(
            &l0,
            &spec.phis,
            q,
            lambda,
            c_nom / scale,
            steps_per_period,
        );
        let truth = GEntry {
            cost,
            power,
            final_q,
        };
        off_err += (offline.query(lambda, c_nom, q).cost - truth.cost).abs();
        on_err += (online.query(lambda, c_nom, q).cost - truth.cost).abs();
        let started = Instant::now();
        let w = online.update_online(lambda, c_nom, q, truth, cfg);
        update_time += started.elapsed();
        if w > 0.0 {
            applied += 1;
        }
        if cfg.decay_every > 0 && (k as u64 + 1).is_multiple_of(cfg.decay_every) {
            online.decay_confidence(cfg.decay_factor);
        }
        q = truth.final_q;
    }
    RunResult {
        offline_mae: off_err / periods as f64,
        online_mae: on_err / periods as f64,
        update_ns: update_time.as_secs_f64() * 1e9 / periods as f64,
        updates_applied: applied,
        periods,
    }
}

fn backend_name(backend: MapBackend) -> &'static str {
    match backend {
        MapBackend::Dense => "dense",
        MapBackend::Hash => "hash",
    }
}

fn main() {
    let quick = quick_mode();
    let check = check_mode();
    let threads = llc_par::num_threads();
    let spec = MemberSpec::paper_default(FrequencyProfile::TallEight);
    let learn = if quick {
        LearnSpec::coarse()
    } else {
        LearnSpec::default()
    };
    let buckets = if quick { 150 } else { 600 };
    let cfg = OnlineConfig::default().validated();
    // Peak near 45% of the machine's nominal capacity: stable throughout
    // the drift range, so queries stay inside the trained grid where both
    // substrates can be compared cell-for-cell.
    let peak_rate = 0.45 / spec.c_prior;
    let scenarios = drift_scenarios(0xD21F7, buckets, 120.0, peak_rate);
    println!(
        "online-learning benchmark (threads = {threads}, quick = {quick}, periods = {buckets})"
    );

    let mut lines = Vec::new();
    let mut wins: Vec<(MapBackend, usize)> = Vec::new();
    for backend in [MapBackend::Dense, MapBackend::Hash] {
        let mut backend_wins = 0usize;
        for scenario in &scenarios {
            let r = run_scenario(scenario, backend, &spec, learn, &cfg);
            println!(
                "{:<22} {:<5}  offline MAE {:>8.3}  online MAE {:>8.3}  ({:.1}x better, \
                 {:.0} ns/update, {}/{} applied)",
                scenario.name,
                backend_name(backend),
                r.offline_mae,
                r.online_mae,
                r.improvement(),
                r.update_ns,
                r.updates_applied,
                r.periods,
            );
            if r.online_mae < r.offline_mae {
                backend_wins += 1;
            }
            lines.push(format!(
                "    \"{}:{}\": {{\n      \"offline_mae\": {:.4},\n      \"online_mae\": {:.4},\n      \"improvement\": {:.3},\n      \"update_ns\": {:.1},\n      \"updates_applied\": {},\n      \"periods\": {}\n    }}",
                scenario.name,
                backend_name(backend),
                r.offline_mae,
                r.online_mae,
                r.improvement(),
                r.update_ns,
                r.updates_applied,
                r.periods,
            ));
        }
        wins.push((backend, backend_wins));
    }

    if check {
        // The acceptance invariant this repo commits to: online tracking
        // beats offline-only on at least two drift scenarios per
        // substrate. (BENCH_substrate speedups are gated separately by
        // `bench_substrate --check`.)
        let mut failed = false;
        for (backend, n) in &wins {
            if *n >= 2 {
                println!(
                    "gate ok  {}: online beats offline on {n}/3 drift scenarios",
                    backend_name(*backend)
                );
            } else {
                eprintln!(
                    "REGRESSION {}: online beats offline on only {n}/3 drift scenarios (need 2)",
                    backend_name(*backend)
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    if quick {
        println!("(quick mode: BENCH_online.json not rewritten)");
        return;
    }

    let json = format!(
        "{{\n  {runner},\n  \"config\": {{\n    \"learning_rate\": {lr},\n    \"prior_weight\": {pw},\n    \"decay_factor\": {df},\n    \"decay_every\": {de},\n    \"periods\": {buckets},\n    \"period_seconds\": 120\n  }},\n  \"results\": {{\n{body}\n  }}\n}}\n",
        runner = runner_json(threads),
        lr = cfg.learning_rate,
        pw = cfg.prior_weight,
        df = cfg.decay_factor,
        de = cfg.decay_every,
        body = lines.join(",\n"),
    );
    std::fs::write("BENCH_online.json", &json).expect("cannot write BENCH_online.json");
    println!("wrote BENCH_online.json");
    if let Some(class_path) = llc_bench::report::write_class_baseline("online", threads, &json) {
        println!("wrote {} (runner-class baseline)", class_path.display());
    }
}
