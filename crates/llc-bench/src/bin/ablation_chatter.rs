//! Ablation of the §4.2 chattering mitigation: run the module experiment
//! with the `{λ̂−δ, λ̂, λ̂+δ}` uncertainty band enabled vs disabled and
//! compare switching activity.
//!
//! "Such estimation errors may cause the L1 controller to chatter, i.e.,
//! switch computers on and off excessively within short time spans …
//! Clearly, excessive switching is undesirable since it reduces the
//! reliability of a computer."

use llc_bench::figures::FIGURE_SEED;
use llc_bench::report::{quick_mode, write_csv};
use llc_cluster::{single_module, Experiment, HierarchicalPolicy};
use llc_workload::{synthetic_paper_workload, VirtualStore};

fn run_with_band(band: bool) -> (u64, f64, f64, f64) {
    let mut scenario = single_module(4);
    scenario.l1.use_uncertainty_band = band;
    let mut trace = synthetic_paper_workload(FIGURE_SEED);
    if quick_mode() {
        scenario = scenario.with_coarse_learning();
        trace = trace.slice(0, 250);
    }
    // Extra noise stresses the forecaster — chattering shows under noise.
    trace.add_gaussian_noise(0, trace.len(), 1200.0, FIGURE_SEED ^ 0xC4A7);
    let store = VirtualStore::paper_default(FIGURE_SEED);
    let mut policy = HierarchicalPolicy::build(&scenario);
    let log = Experiment::paper_default(FIGURE_SEED)
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .expect("well-formed scenario");
    let s = log.summary();
    (
        log.total_switch_ons(),
        s.mean_response,
        s.violation_fraction,
        s.total_energy,
    )
}

fn main() {
    println!("Ablation — §4.2 chattering mitigation (uncertainty band) on a noisy workload\n");
    let (sw_on, resp_on, viol_on, energy_on) = run_with_band(true);
    let (sw_off, resp_off, viol_off, energy_off) = run_with_band(false);

    println!(
        "{:<22} | {:>12} | {:>14} | {:>12} | {:>12}",
        "variant", "switch-ons", "mean resp (s)", "violations", "energy"
    );
    println!("{}", "-".repeat(84));
    println!(
        "{:<22} | {sw_on:>12} | {resp_on:>14.2} | {:>11.1}% | {energy_on:>12.0}",
        "band (paper)",
        viol_on * 100.0
    );
    println!(
        "{:<22} | {sw_off:>12} | {resp_off:>14.2} | {:>11.1}% | {energy_off:>12.0}",
        "no band (ablated)",
        viol_off * 100.0
    );
    println!();
    println!(
        "expected shape: the banded controller switches at most as often as the \
         ablated one\nunder forecast noise, at comparable QoS."
    );

    let rows = vec![
        format!("band,{sw_on},{resp_on:.3},{viol_on:.4},{energy_on:.0}"),
        format!("no_band,{sw_off},{resp_off:.3},{viol_off:.4},{energy_off:.0}"),
    ];
    let path = write_csv(
        "ablation_chatter.csv",
        "variant,switch_ons,mean_response_s,violation_fraction,energy",
        &rows,
    );
    println!("wrote {}", path.display());
}
