//! Diagnostic dump of a single-module run (development aid).

use llc_cluster::{single_module, Experiment, HierarchicalPolicy};
use llc_workload::{synthetic_paper_workload, VirtualStore};

fn main() {
    let scenario = single_module(4).with_coarse_learning();
    let mut policy = HierarchicalPolicy::build(&scenario);
    let trace = synthetic_paper_workload(42).slice(0, 400);
    let store = VirtualStore::paper_default(42);
    let log = Experiment::paper_default(42)
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .expect("well-formed scenario");
    let mut prev_drop = 0u64;
    for t in &log.ticks {
        let d = t.dropped - prev_drop;
        prev_drop = t.dropped;
        if d > 0 || t.mean_response.is_some_and(|r| r > 8.0) {
            println!(
                "tick {:4} t={:6.0} arr={:5} comp={:5} resp={:>8} act={:?} q={:?} drop+={} freq={:?}",
                t.tick,
                t.time,
                t.arrivals,
                t.completions,
                t.mean_response
                    .map(|r| format!("{r:.2}"))
                    .unwrap_or_else(|| "-".into()),
                t.active_flags,
                t.queues,
                d,
                t.frequency_indices,
            );
        }
    }
    println!("total dropped: {}", log.summary().total_dropped);
}
