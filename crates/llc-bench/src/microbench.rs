//! Minimal hand-rolled timing harness.
//!
//! The registry-less build environment cannot pull `criterion`, so the
//! bench targets (`benches/*.rs`, `harness = false`) and the substrate
//! perf binary time themselves with `Instant`: warmup passes, then the
//! best-of-`reps` wall clock over a fixed iteration count. Numbers are
//! indicative rather than statistically rigorous — good enough to track
//! order-of-magnitude substrate changes across PRs.

use std::time::{Duration, Instant};

/// Wall-clock time of `iters` calls of `f` (no warmup).
pub fn time<F: FnMut()>(iters: u64, mut f: F) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed()
}

/// Best-of-`reps` duration of `iters` calls of `f`, after one warmup rep.
pub fn time_best<F: FnMut()>(reps: u32, iters: u64, mut f: F) -> Duration {
    let _ = time(iters.clamp(1, 8), &mut f);
    (0..reps.max(1))
        .map(|_| time(iters, &mut f))
        .min()
        .expect("at least one rep")
}

/// Run a named micro-benchmark and print `ns/iter`; returns ns/iter.
pub fn bench<F: FnMut()>(label: &str, iters: u64, f: F) -> f64 {
    let best = time_best(3, iters, f);
    let ns = best.as_secs_f64() * 1e9 / iters as f64;
    println!("{label:<44} {:>12.1} ns/iter   ({iters} iters)", ns);
    ns
}

/// Format a duration as fractional milliseconds.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_monotone_in_iters() {
        let short = time(10, || {
            std::hint::black_box(1 + 1);
        });
        let long = time(100_000, || {
            std::hint::black_box((0..64).sum::<u64>());
        });
        assert!(long >= short);
    }

    #[test]
    fn bench_reports_positive() {
        let ns = bench("noopish", 1000, || {
            std::hint::black_box(42u64);
        });
        assert!(ns >= 0.0);
        assert!(ms(Duration::from_millis(2)) > 1.9);
    }
}
