//! Benchmark harness regenerating every figure and table of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index).
//!
//! Each `src/bin/*` binary reproduces one artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1b` | Fig. 1(b) — sample WC'98 day at 2-minute buckets |
//! | `fig3` | Fig. 3 — per-computer frequency sets |
//! | `fig4` | Fig. 4 — synthetic workload, Kalman predictions, computers operated |
//! | `fig5` | Fig. 5 — C4 frequency choices and achieved response times |
//! | `fig6` | Fig. 6 — WC'98 trace and computers operated (16 machines) |
//! | `fig7` | Fig. 7 — per-module load fractions γ decided by L2 |
//! | `overhead_module` | §4.3 — controller overhead vs module size (m = 4, 6, 10) |
//! | `overhead_cluster` | §5.2 — hierarchy-path overhead (16 and 20 machines) |
//! | `ablation_chatter` | §4.2 design choice — uncertainty band on/off |
//! | `ablation_horizon` | L0 horizon sweep (N = 1..4) |
//! | `baseline_table` | LLC vs threshold heuristic vs always-max |
//!
//! Binaries write CSV series under `results/` and print ASCII renderings
//! plus paper-vs-measured notes; run them in release mode. Pass `--quick`
//! for a shortened run (coarse learning grids, truncated traces).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod microbench;
pub mod report;
