//! Shared experiment setups behind the figure binaries.

use crate::report::quick_mode;
use llc_cluster::{
    paper_cluster_16, paper_cluster_20, single_module, Experiment, ExperimentLog,
    HierarchicalPolicy, ScenarioConfig,
};
use llc_workload::{synthetic_paper_workload, wc98_like_fig6, Trace, VirtualStore};

/// A completed hierarchical run plus everything the plots need.
pub struct FigureRun {
    /// The workload used (at its native bucket width).
    pub trace: Trace,
    /// Per-tick simulation log.
    pub log: ExperimentLog,
    /// The controller (carries forecast/γ/active histories and overhead).
    pub policy: HierarchicalPolicy,
    /// The scenario that was run.
    pub scenario: ScenarioConfig,
}

/// Default master seed used by the figure binaries.
pub const FIGURE_SEED: u64 = 2006;

/// The §4.3 module experiment behind Figs. 4 and 5: four heterogeneous
/// computers under the synthetic workload, `r* = 4 s`.
///
/// In quick mode the trace is truncated to 200 buckets and the learning
/// grids are coarse.
pub fn module_experiment(seed: u64) -> FigureRun {
    let mut scenario = single_module(4);
    let mut trace = synthetic_paper_workload(seed);
    if quick_mode() {
        scenario = scenario.with_coarse_learning();
        trace = trace.slice(0, 200);
    }
    run(scenario, trace, seed)
}

/// A module experiment with `m` computers under the synthetic workload
/// scaled to the module's capacity (the paper "appropriately scales" the
/// workload for m = 6 and m = 10).
pub fn module_experiment_sized(m: usize, seed: u64) -> FigureRun {
    let mut scenario = single_module(m);
    let mut trace = synthetic_paper_workload(seed).scaled(m as f64 / 4.0);
    if quick_mode() {
        scenario = scenario.with_coarse_learning();
        trace = trace.slice(0, 200);
    }
    run(scenario, trace, seed)
}

/// The §5.2 cluster experiment behind Figs. 6 and 7: sixteen computers in
/// four modules under the WC'98-like trace.
pub fn cluster_experiment(seed: u64) -> FigureRun {
    let mut scenario = paper_cluster_16();
    let mut trace = wc98_like_fig6(seed);
    if quick_mode() {
        scenario = scenario.with_coarse_learning();
        trace = trace.slice(0, 120);
    }
    run(scenario, trace, seed)
}

/// The 20-computer / five-module variant of §5.2.
pub fn cluster20_experiment(seed: u64) -> FigureRun {
    let mut scenario = paper_cluster_20();
    // Five modules get 25% more offered load at the same shape.
    let mut trace = wc98_like_fig6(seed).scaled(1.25);
    if quick_mode() {
        scenario = scenario.with_coarse_learning();
        trace = trace.slice(0, 120);
    }
    run(scenario, trace, seed)
}

fn run(scenario: ScenarioConfig, trace: Trace, seed: u64) -> FigureRun {
    let store = VirtualStore::paper_default(seed);
    let mut policy = HierarchicalPolicy::build(&scenario);
    let experiment = Experiment::paper_default(seed);
    let log = experiment
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .expect("experiment configuration is well-formed");
    FigureRun {
        trace,
        log,
        policy,
        scenario,
    }
}
