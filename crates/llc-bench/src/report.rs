//! Plot/CSV/reporting helpers shared by the figure binaries.

use std::fs;
use std::path::{Path, PathBuf};

/// The output directory for regenerated figures (`results/`, created on
/// demand next to the workspace root or the current directory).
pub fn results_dir() -> PathBuf {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("cannot create results directory");
    dir.to_path_buf()
}

/// Write rows as CSV with a header line. Returns the path written.
///
/// # Panics
///
/// Panics on I/O failure (binaries want loud failures).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(name);
    let mut text = String::with_capacity(rows.len() * 32 + header.len() + 1);
    text.push_str(header);
    text.push('\n');
    for row in rows {
        text.push_str(row);
        text.push('\n');
    }
    fs::write(&path, text).expect("cannot write CSV");
    path
}

/// Render one series as an ASCII chart (x left-to-right, y bottom-up).
pub fn ascii_plot(title: &str, series: &[(f64, f64)], width: usize, height: usize) -> String {
    ascii_plot_multi(title, &[("*", series)], width, height)
}

/// Render several series on a shared canvas, each with its own glyph.
pub fn ascii_plot_multi(
    title: &str,
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
) -> String {
    let width = width.max(10);
    let height = height.max(4);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if all.is_empty() {
        return format!("{title}\n(empty series)\n");
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if (x_hi - x_lo).abs() < 1e-12 {
        x_hi = x_lo + 1.0;
    }
    if (y_hi - y_lo).abs() < 1e-12 {
        y_hi = y_lo + 1.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    for (glyph, s) in series {
        let g = glyph.chars().next().unwrap_or('*');
        for &(x, y) in s.iter() {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = ((x - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            canvas[row][cx.min(width - 1)] = g;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in canvas.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_hi:>10.1} |")
        } else if i == height - 1 {
            format!("{y_lo:>10.1} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>10}  {}\n{:>10}  {:<width$.1}{:>rest$.1}\n",
        "",
        "-".repeat(width),
        "",
        x_lo,
        x_hi,
        width = width / 2,
        rest = width - width / 2,
    ));
    out
}

/// Format a `Duration` as milliseconds with 3 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3} ms", d.as_secs_f64() * 1e3)
}

/// `--quick` flag: shortened runs for CI and development.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("LLC_QUICK").is_some()
}

/// `--check` flag: regression-gate mode — compare fresh measurements
/// against the committed baseline JSON and exit non-zero on regression
/// instead of rewriting the file.
pub fn check_mode() -> bool {
    std::env::args().any(|a| a == "--check")
}

/// Read the number at `"key":` inside the `"section": { … }` object of
/// one of this repo's hand-written benchmark reports.
///
/// This is *not* a JSON parser — it is the minimal extractor the
/// registry-less build can afford (no serde), sufficient for the flat
/// two-level objects `bench_substrate`/`bench_online` emit: find the
/// section name, then the first occurrence of the key after it, then
/// parse the literal that follows the colon.
pub fn json_number(text: &str, section: &str, key: &str) -> Option<f64> {
    let sect = format!("\"{section}\"");
    let rest = &text[text.find(&sect)? + sect.len()..];
    let needle = format!("\"{key}\"");
    let rest = &rest[rest.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Median of three runs of a timing measurement — the gate-calibration
/// primitive: a single timing run on a shared CI runner is hostage to
/// scheduler noise, while the median of three discards one bad draw in
/// either direction. Deterministic measurements (tracking MAEs) pass
/// through unchanged since all three runs agree.
pub fn median3<F: FnMut() -> f64>(mut measure: F) -> f64 {
    let mut runs = [measure(), measure(), measure()];
    runs.sort_by(f64::total_cmp);
    runs[1]
}

/// The CPU model string of this machine (from `/proc/cpuinfo` on Linux),
/// or `"unknown"` — recorded in the benchmark JSONs so baselines can be
/// keyed per runner class instead of assuming one hardware profile.
pub fn cpu_model() -> String {
    if let Ok(text) = fs::read_to_string("/proc/cpuinfo") {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, name)) = rest.split_once(':') {
                    return name.trim().to_string();
                }
            }
        }
    }
    "unknown".to_string()
}

/// The `"runner"` JSON object shared by every benchmark report:
/// `threads`, `os` and the CPU model — the key material of the
/// per-runner-class baseline store.
pub fn runner_json(threads: usize) -> String {
    format!(
        "\"runner\": {{\n    \"threads\": {threads},\n    \"os\": \"{}\",\n    \"cpu\": \"{}\"\n  }}",
        std::env::consts::OS,
        cpu_model().replace('"', "'"),
    )
}

/// The runner-class slug this machine belongs to, derived from
/// `runner.{threads, os, cpu}`: lowercase alphanumerics with runs of
/// everything else collapsed to single dashes (e.g.
/// `linux-1t-intel-r-xeon-r-processor-2-10ghz`). Two machines with the
/// same slug are "like runners" whose absolute measurements are
/// comparable.
pub fn runner_class(threads: usize) -> String {
    let raw = format!("{}-{}t-{}", std::env::consts::OS, threads, cpu_model());
    let mut slug = String::with_capacity(raw.len());
    let mut dash = false;
    for ch in raw.chars() {
        if ch.is_ascii_alphanumeric() {
            slug.push(ch.to_ascii_lowercase());
            dash = false;
        } else if !dash && !slug.is_empty() {
            slug.push('-');
            dash = true;
        }
    }
    slug.trim_end_matches('-').to_string()
}

/// Path of `bench`'s committed baseline for this machine's runner class:
/// `bench_baselines/<bench>/<runner-class>.json` at the workspace root.
pub fn class_baseline_path(bench: &str, threads: usize) -> PathBuf {
    Path::new("bench_baselines")
        .join(bench)
        .join(format!("{}.json", runner_class(threads)))
}

/// The committed per-class baseline for `bench` on this runner class, if
/// one exists. Gates prefer it over the single workspace-root
/// `BENCH_*.json` — like runners compare absolute numbers directly, so
/// the tolerance can tighten (see [`CLASS_TOLERANCE`] vs
/// [`FALLBACK_TOLERANCE`]).
pub fn load_class_baseline(bench: &str, threads: usize) -> Option<String> {
    fs::read_to_string(class_baseline_path(bench, threads)).ok()
}

/// `--rebaseline` flag: allow a full bench run to overwrite an
/// *existing* per-class baseline. Without it, baselines are only
/// written when the class has none yet — otherwise a regressed run
/// could silently replace the snapshot its own gate compares against,
/// ratcheting the regression in.
pub fn rebaseline_mode() -> bool {
    std::env::args().any(|a| a == "--rebaseline")
}

/// Store this run's report as the runner class's baseline snapshot —
/// but only when the class has no snapshot yet, or `--rebaseline` was
/// passed (a deliberate re-anchor). Returns the path written, or
/// `None` when an existing baseline was deliberately left alone.
///
/// # Panics
///
/// Panics on I/O failure (benches want loud failures).
pub fn write_class_baseline(bench: &str, threads: usize, json: &str) -> Option<PathBuf> {
    let path = class_baseline_path(bench, threads);
    if path.exists() && !rebaseline_mode() {
        println!(
            "kept existing {} (pass --rebaseline to overwrite)",
            path.display()
        );
        return None;
    }
    fs::create_dir_all(path.parent().expect("path has a parent"))
        .expect("cannot create bench_baselines directory");
    fs::write(&path, json).expect("cannot write per-class baseline");
    Some(path)
}

/// Gate tolerance against a same-class baseline: like runners compare
/// like numbers, so 10% headroom suffices.
pub const CLASS_TOLERANCE: f64 = 0.10;

/// Gate tolerance against the workspace-root fallback baseline, which
/// may have been recorded on different hardware: the historical 20%.
pub const FALLBACK_TOLERANCE: f64 = 0.20;

/// One gate comparison: fail (return an error line) when `measured`
/// falls more than `tolerance` (fractional) below `baseline`.
pub fn gate_ratio(label: &str, measured: f64, baseline: f64, tolerance: f64) -> Result<(), String> {
    let floor = baseline * (1.0 - tolerance);
    if measured < floor {
        Err(format!(
            "REGRESSION {label}: measured {measured:.2} < floor {floor:.2} \
             (baseline {baseline:.2}, tolerance {:.0}%)",
            tolerance * 100.0
        ))
    } else {
        println!(
            "gate ok  {label}: measured {measured:.2} >= floor {floor:.2} (baseline {baseline:.2})"
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_reads_nested_keys() {
        let text = r#"{
  "threads": 4,
  "probes": { "speedup": 36.81, "hash_ns_per_probe": 1042.48 },
  "l1_decide": { "speedup": 24.90 }
}"#;
        assert_eq!(json_number(text, "probes", "speedup"), Some(36.81));
        assert_eq!(json_number(text, "l1_decide", "speedup"), Some(24.9));
        assert_eq!(
            json_number(text, "probes", "hash_ns_per_probe"),
            Some(1042.48)
        );
        assert_eq!(json_number(text, "nope", "speedup"), None);
        assert_eq!(json_number(text, "probes", "nope"), None);
    }

    #[test]
    fn gate_ratio_flags_regression_only() {
        assert!(gate_ratio("x", 10.0, 10.0, 0.2).is_ok());
        assert!(gate_ratio("x", 8.01, 10.0, 0.2).is_ok());
        assert!(gate_ratio("x", 7.9, 10.0, 0.2).is_err());
    }

    #[test]
    fn plot_renders_bounds_and_glyphs() {
        let series: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, (i * i) as f64)).collect();
        let p = ascii_plot("test", &series, 40, 10);
        assert!(p.contains("test"));
        assert!(p.contains('*'));
        assert!(p.contains("2401.0"), "max y labelled: {p}");
    }

    #[test]
    fn plot_multi_uses_distinct_glyphs() {
        let a: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64)).collect();
        let b: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, (10 - i) as f64)).collect();
        let p = ascii_plot_multi("two", &[("a", &a), ("b", &b)], 30, 8);
        assert!(p.contains('a'));
        assert!(p.contains('b'));
    }

    #[test]
    fn empty_series_is_graceful() {
        let p = ascii_plot("none", &[], 30, 8);
        assert!(p.contains("empty"));
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(std::time::Duration::from_micros(1500)), "1.500 ms");
    }

    #[test]
    fn median3_discards_one_outlier() {
        let mut runs = [10.0, 300.0, 11.0].into_iter();
        assert_eq!(median3(|| runs.next().unwrap()), 11.0);
        let mut runs = [5.0, 5.0, 5.0].into_iter();
        assert_eq!(median3(|| runs.next().unwrap()), 5.0);
    }

    #[test]
    fn runner_json_carries_key_material() {
        let j = runner_json(4);
        assert!(j.contains("\"threads\": 4"));
        assert!(j.contains("\"os\""));
        assert!(j.contains("\"cpu\""));
        assert_eq!(json_number(&j, "runner", "threads"), Some(4.0));
    }
}
