use crate::{derive_seed, Gaussian, Trace};
use rand::SeedableRng;

/// Catmull-Rom interpolation through control points (index, value),
/// evaluated at integer buckets `0..buckets`. Control points must cover
/// the full range.
fn interpolate(control: &[(f64, f64)], buckets: usize) -> Vec<f64> {
    assert!(control.len() >= 2, "need at least two control points");
    let mut out = Vec::with_capacity(buckets);
    for k in 0..buckets {
        let x = k as f64;
        // Find the segment [p1, p2] containing x.
        let seg = control
            .windows(2)
            .position(|w| x >= w[0].0 && x <= w[1].0)
            .unwrap_or(control.len() - 2);
        let p1 = control[seg];
        let p2 = control[seg + 1];
        let p0 = if seg == 0 { p1 } else { control[seg - 1] };
        let p3 = if seg + 2 < control.len() {
            control[seg + 2]
        } else {
            p2
        };
        let t = ((x - p1.0) / (p2.0 - p1.0)).clamp(0.0, 1.0);
        let t2 = t * t;
        let t3 = t2 * t;
        let v = 0.5
            * ((2.0 * p1.1)
                + (-p0.1 + p2.1) * t
                + (2.0 * p0.1 - 5.0 * p1.1 + 4.0 * p2.1 - p3.1) * t2
                + (-p0.1 + 3.0 * p1.1 - 3.0 * p2.1 + p3.1) * t3);
        out.push(v.max(0.0));
    }
    out
}

/// A WC'98-like full day at 2-minute buckets (720 buckets = 24 h),
/// matching the qualitative shape of Fig. 1(b): a quiet overnight floor,
/// a morning ramp, an afternoon plateau and a sharp evening (match-time)
/// crest, with multiplicative noise.
///
/// This is a **documented substitution** for the HP Labs WC'98 trace of
/// June 26, 1998, which is not redistributable; the controllers consume
/// only the count series, so shape fidelity is what matters.
pub fn wc98_like_day(seed: u64) -> Trace {
    // Control points: (bucket, requests per 2 min). Day starts at 00:00.
    let control = [
        (0.0, 9_000.0),    // midnight tail of the previous evening
        (90.0, 4_000.0),   // ~03:00 overnight floor
        (180.0, 3_500.0),  // ~06:00
        (270.0, 9_000.0),  // ~09:00 morning ramp
        (360.0, 17_000.0), // ~12:00
        (450.0, 22_000.0), // ~15:00 afternoon plateau
        (540.0, 40_000.0), // ~18:00 pre-match climb
        (600.0, 55_000.0), // ~20:00 match-time crest
        (660.0, 35_000.0), // ~22:00 decline
        (719.0, 15_000.0), // 23:58
    ];
    noisy_trace(&control, 720, seed)
}

/// A multi-day WC'98-like trace: `days` consecutive diurnal cycles at
/// 2-minute buckets, each day re-noised independently and with mild
/// day-over-day growth (tournament traffic grew toward the finals). The
/// repeating daily structure is what seasonal forecasters exploit.
///
/// # Panics
///
/// Panics if `days == 0`.
pub fn wc98_like_days(seed: u64, days: usize) -> Trace {
    assert!(days >= 1, "need at least one day");
    let mut counts = Vec::with_capacity(720 * days);
    for d in 0..days {
        let day = wc98_like_day(crate::derive_seed(seed, d as u64));
        let growth = 1.0 + 0.05 * d as f64;
        counts.extend(day.counts().iter().map(|c| c * growth));
    }
    Trace::new(120.0, counts).expect("scaled counts stay valid")
}

/// The 600-bucket (20-hour) window used in Fig. 6 for the 16-computer
/// experiment: starts mid-morning, contains the full evening crest.
pub fn wc98_like_fig6(seed: u64) -> Trace {
    let control = [
        (0.0, 10_000.0),
        (80.0, 14_000.0),
        (160.0, 19_000.0),
        (260.0, 23_000.0),
        (350.0, 33_000.0),
        (430.0, 52_000.0), // crest
        (480.0, 45_000.0),
        (540.0, 30_000.0),
        (599.0, 18_000.0),
    ];
    noisy_trace(&control, 600, seed)
}

fn noisy_trace(control: &[(f64, f64)], buckets: usize, seed: u64) -> Trace {
    let base = interpolate(control, buckets);
    let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(seed, 0xC98));
    let g = Gaussian::new(0.0, 1.0);
    let counts: Vec<f64> = base
        .iter()
        .map(|&b| {
            // ~6 % multiplicative noise — WC'98 "shows high variability
            // and noise" at minute scales.
            let noisy = b * (1.0 + 0.06 * g.sample(&mut rng));
            noisy.max(0.0)
        })
        .collect();
    Trace::new(120.0, counts).expect("counts are clamped non-negative")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_trace_dimensions() {
        let t = wc98_like_day(1);
        assert_eq!(t.len(), 720);
        assert_eq!(t.interval(), 120.0);
        assert!((t.duration() - 86_400.0).abs() < 1e-9);
    }

    #[test]
    fn day_trace_has_diurnal_swing_and_evening_peak() {
        let t = wc98_like_day(1);
        let overnight = t.slice(60, 120).mean(); // 02:00-04:00
        let evening = t.slice(570, 630).mean(); // 19:00-21:00
        assert!(
            evening > 6.0 * overnight,
            "evening {evening:.0} should dwarf overnight {overnight:.0}"
        );
        // Peak sits in the evening window.
        let peak = t.peak();
        let evening_peak = t.slice(540, 660).peak();
        assert!((peak - evening_peak).abs() < 1e-9);
    }

    #[test]
    fn fig6_trace_matches_papers_axis() {
        let t = wc98_like_fig6(1);
        assert_eq!(t.len(), 600);
        // Fig. 6's y-axis reaches ~6e4 requests per 2-minute bucket.
        assert!(t.peak() > 4.0e4, "peak {}", t.peak());
        assert!(t.peak() < 6.5e4, "peak {}", t.peak());
        // Rising from start toward the crest region.
        assert!(t.slice(400, 470).mean() > 2.0 * t.slice(0, 70).mean());
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        assert_eq!(wc98_like_day(5), wc98_like_day(5));
        assert_ne!(wc98_like_day(5).counts(), wc98_like_day(6).counts());
    }

    #[test]
    fn counts_nonnegative() {
        for seed in 0..5 {
            assert!(wc98_like_fig6(seed).counts().iter().all(|&c| c >= 0.0));
        }
    }

    #[test]
    fn interpolation_passes_near_control_points() {
        let control = [(0.0, 10.0), (5.0, 50.0), (10.0, 10.0)];
        let vals = interpolate(&control, 11);
        assert!((vals[0] - 10.0).abs() < 1e-9);
        assert!((vals[5] - 50.0).abs() < 1e-9);
        assert!((vals[10] - 10.0).abs() < 1e-9);
        // Smooth in between: strictly above the endpoints near the peak.
        assert!(vals[4] > 30.0 && vals[6] > 30.0);
    }
}
