//! Drift scenarios: workloads paired with plant-side model drift.
//!
//! The paper's §6 outlook motivates *online* map updates with exactly
//! these situations — the world the maps were trained on stops matching
//! the world being controlled. A [`DriftScenario`] bundles an arrival
//! trace with a [`CapacityProfile`] describing how the machines' real
//! delivered capacity departs from nominal over the run. The capacity
//! side is *invisible to telemetry*: request demands (what the
//! controllers' ĉ filters measure) stay nominal while service silently
//! stretches — the case a train-once controller cannot see coming. Feed
//! the profile to `llc_sim`'s `set_service_scale` drift hook, or divide
//! analytic service times by the scale when replaying queue models.
//!
//! Three canonical scenarios ship with [`drift_scenarios`]:
//!
//! 1. **gradual-degradation** — steady traffic, capacity ramping down
//!    linearly (aging heat-throttled hardware, creeping background load);
//! 2. **diurnal-shift** — a diurnal arrival swing whose *peak hours also
//!    slow the machines* (cache pressure, noisy neighbors), so the
//!    worst-case operating points are precisely where the offline maps
//!    are most wrong;
//! 3. **post-failure-capacity** — steady traffic with a sharp capacity
//!    step mid-run (a machine comes back from a failure degraded).

use crate::{DiurnalShape, SyntheticBuilder, Trace};

/// How delivered capacity (as a fraction of nominal, in `(0, 1]`) evolves
/// over a run of `len` buckets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityProfile {
    /// No drift: scale 1.0 throughout (the control arm).
    Nominal,
    /// Linear ramp from `from` at bucket 0 to `to` at the last bucket.
    Ramp {
        /// Scale at the start of the run.
        from: f64,
        /// Scale at the end of the run.
        to: f64,
    },
    /// Step change: `before` until `at` (fraction of the run in `[0, 1]`),
    /// `after` from there on.
    Step {
        /// Fraction of the run at which the step occurs.
        at: f64,
        /// Scale before the step.
        before: f64,
        /// Scale after the step.
        after: f64,
    },
    /// Sinusoidal dip tied to the diurnal cycle: scale
    /// `base − amplitude · sin²(π·k/period)` — deepest mid-cycle.
    Diurnal {
        /// Scale at the cycle troughs.
        base: f64,
        /// Depth of the mid-cycle dip (`base − amplitude > 0`).
        amplitude: f64,
        /// Cycle length in buckets.
        period: f64,
    },
}

impl CapacityProfile {
    /// Delivered-capacity scale during bucket `k` of a `len`-bucket run.
    /// Always in `(0, 1]` for well-formed profiles.
    pub fn scale_at(&self, k: usize, len: usize) -> f64 {
        let frac = if len <= 1 {
            0.0
        } else {
            k as f64 / (len - 1) as f64
        };
        let scale = match *self {
            CapacityProfile::Nominal => 1.0,
            CapacityProfile::Ramp { from, to } => from + (to - from) * frac,
            CapacityProfile::Step { at, before, after } => {
                if frac < at {
                    before
                } else {
                    after
                }
            }
            CapacityProfile::Diurnal {
                base,
                amplitude,
                period,
            } => {
                let s = (std::f64::consts::PI * k as f64 / period.max(1.0)).sin();
                base - amplitude * s * s
            }
        };
        scale.clamp(1e-6, 1.0)
    }
}

/// An arrival trace plus the plant drift it runs against.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftScenario {
    /// Stable scenario identifier (used in benchmark JSON keys).
    pub name: &'static str,
    /// Arrival counts per bucket.
    pub trace: Trace,
    /// Delivered-capacity drift over the run.
    pub capacity: CapacityProfile,
}

impl DriftScenario {
    /// Capacity scale during bucket `k` of this scenario's trace.
    pub fn scale_at(&self, k: usize) -> f64 {
        self.capacity.scale_at(k, self.trace.len())
    }
}

/// The three canonical drift scenarios over `buckets` buckets of
/// `interval` seconds, with arrival rates peaking near `peak_rate`
/// requests/second. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `buckets == 0`, `interval <= 0`, or `peak_rate <= 0`.
pub fn drift_scenarios(
    seed: u64,
    buckets: usize,
    interval: f64,
    peak_rate: f64,
) -> Vec<DriftScenario> {
    assert!(buckets > 0, "need at least one bucket");
    assert!(interval > 0.0, "interval must be positive");
    assert!(peak_rate > 0.0, "peak rate must be positive");
    let b = buckets as f64;
    // Steady traffic near 60% of peak, light noise.
    let steady = SyntheticBuilder::new(
        DiurnalShape::new(0.6 * peak_rate * interval),
        buckets,
        interval,
    )
    .with_noise(crate::NoiseSegment {
        start: 0,
        end: buckets,
        var_per_30s: (0.02 * peak_rate * interval).powi(2) / (interval / 30.0),
    })
    .build(seed);
    // One diurnal cycle: quiet shoulders, a broad peak past mid-run.
    let diurnal = SyntheticBuilder::new(
        DiurnalShape::new(0.25 * peak_rate * interval).with_hump(
            0.7 * peak_rate * interval,
            0.6 * b,
            0.18 * b,
        ),
        buckets,
        interval,
    )
    .with_noise(crate::NoiseSegment {
        start: 0,
        end: buckets,
        var_per_30s: (0.02 * peak_rate * interval).powi(2) / (interval / 30.0),
    })
    .build(seed ^ 0x5eed);
    vec![
        DriftScenario {
            name: "gradual-degradation",
            trace: steady.clone(),
            capacity: CapacityProfile::Ramp { from: 1.0, to: 0.7 },
        },
        DriftScenario {
            name: "diurnal-shift",
            trace: diurnal,
            capacity: CapacityProfile::Diurnal {
                base: 1.0,
                amplitude: 0.3,
                period: b,
            },
        },
        DriftScenario {
            name: "post-failure-capacity",
            trace: steady,
            capacity: CapacityProfile::Step {
                at: 0.5,
                before: 1.0,
                after: 0.65,
            },
        },
    ]
}

/// The *deep* degradation scenario the drift-aware L0 exists for: steady
/// traffic near 40% of peak while delivered capacity steps down to half
/// of nominal 30% into the run. The load still *fits* the degraded plant
/// — but only at frequencies well above what a capacity-blind queue
/// model believes necessary, which is exactly the regime where the
/// drift-blind L0 limit-cycles between too-low frequencies (queues grow
/// against the model's prediction) and flat-out backlog drains (the
/// model thinks they finish early). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `buckets == 0`, `interval <= 0`, or `peak_rate <= 0`.
pub fn deep_degradation_scenario(
    seed: u64,
    buckets: usize,
    interval: f64,
    peak_rate: f64,
) -> DriftScenario {
    assert!(buckets > 0, "need at least one bucket");
    assert!(interval > 0.0, "interval must be positive");
    assert!(peak_rate > 0.0, "peak rate must be positive");
    let steady = SyntheticBuilder::new(
        DiurnalShape::new(0.4 * peak_rate * interval),
        buckets,
        interval,
    )
    .with_noise(crate::NoiseSegment {
        start: 0,
        end: buckets,
        var_per_30s: (0.02 * peak_rate * interval).powi(2) / (interval / 30.0),
    })
    .build(seed ^ 0xdeeb);
    DriftScenario {
        name: "deep-degradation",
        trace: steady,
        capacity: CapacityProfile::Step {
            at: 0.3,
            before: 1.0,
            after: 0.5,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_stay_in_unit_interval() {
        let profiles = [
            CapacityProfile::Nominal,
            CapacityProfile::Ramp { from: 1.0, to: 0.5 },
            CapacityProfile::Step {
                at: 0.5,
                before: 1.0,
                after: 0.6,
            },
            CapacityProfile::Diurnal {
                base: 1.0,
                amplitude: 0.4,
                period: 100.0,
            },
        ];
        for p in profiles {
            for k in 0..200 {
                let s = p.scale_at(k, 200);
                assert!(s > 0.0 && s <= 1.0, "{p:?} at {k}: {s}");
            }
        }
    }

    #[test]
    fn ramp_hits_endpoints() {
        let p = CapacityProfile::Ramp { from: 1.0, to: 0.7 };
        assert!((p.scale_at(0, 101) - 1.0).abs() < 1e-12);
        assert!((p.scale_at(100, 101) - 0.7).abs() < 1e-12);
        assert!((p.scale_at(50, 101) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn step_switches_at_fraction() {
        let p = CapacityProfile::Step {
            at: 0.5,
            before: 1.0,
            after: 0.65,
        };
        assert_eq!(p.scale_at(0, 100), 1.0);
        assert_eq!(p.scale_at(49, 100), 1.0);
        assert_eq!(p.scale_at(50, 100), 0.65);
        assert_eq!(p.scale_at(99, 100), 0.65);
    }

    #[test]
    fn deep_degradation_is_deterministic_and_deep() {
        let a = deep_degradation_scenario(7, 120, 120.0, 50.0);
        let b = deep_degradation_scenario(7, 120, 120.0, 50.0);
        assert_eq!(a, b, "same seed, same scenario");
        assert_eq!(a.name, "deep-degradation");
        assert_eq!(a.trace.len(), 120);
        // Nominal before the step, half capacity after.
        assert!(a.scale_at(0) > 0.99);
        assert!((a.scale_at(119) - 0.5).abs() < 1e-12);
        // The post-step load still fits the degraded plant: ~40% of peak
        // against 50% of capacity — the limit-cycle regime, not pure
        // overload.
        let mean = a.trace.counts().iter().sum::<f64>() / a.trace.len() as f64 / 120.0;
        assert!(mean < 0.5 * 50.0, "mean rate {mean} must fit 50% capacity");
        assert!(mean > 0.3 * 50.0, "mean rate {mean} must stress the plant");
    }

    #[test]
    fn scenarios_are_deterministic_and_shaped() {
        let a = drift_scenarios(7, 200, 120.0, 50.0);
        let b = drift_scenarios(7, 200, 120.0, 50.0);
        assert_eq!(a, b, "same seed, same scenarios");
        assert_eq!(a.len(), 3);
        let names: Vec<&str> = a.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "gradual-degradation",
                "diurnal-shift",
                "post-failure-capacity"
            ]
        );
        for s in &a {
            assert_eq!(s.trace.len(), 200);
            assert!(
                s.trace.peak() <= 1.3 * 50.0 * 120.0,
                "{}: sane peak",
                s.name
            );
        }
        // The diurnal scenario actually swings.
        let d = &a[1];
        assert!(d.trace.peak() > 2.5 * d.trace.counts()[0].max(1.0));
        // Drift deepens mid-run for the diurnal capacity dip.
        assert!(d.scale_at(100) < 0.8);
        assert!(d.scale_at(0) > 0.95);
    }
}
