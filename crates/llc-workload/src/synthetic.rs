use crate::Trace;

/// A smooth diurnal base curve: a baseline plus Gaussian-shaped humps,
/// mimicking the de-noised "underlying structure" the paper extracts from
/// the ISP workload of Arlitt & Williamson before re-adding noise.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalShape {
    baseline: f64,
    /// (amplitude, center bucket, width in buckets) per hump.
    humps: Vec<(f64, f64, f64)>,
}

impl DiurnalShape {
    /// A flat baseline with no humps.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is negative or non-finite.
    pub fn new(baseline: f64) -> Self {
        assert!(
            baseline.is_finite() && baseline >= 0.0,
            "baseline must be finite and >= 0"
        );
        DiurnalShape {
            baseline,
            humps: Vec::new(),
        }
    }

    /// Add a Gaussian hump of the given amplitude centered at bucket
    /// `center` with width (std dev) `width` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude < 0` or `width <= 0`.
    #[must_use]
    pub fn with_hump(mut self, amplitude: f64, center: f64, width: f64) -> Self {
        assert!(amplitude >= 0.0, "hump amplitude must be >= 0");
        assert!(width > 0.0, "hump width must be positive");
        self.humps.push((amplitude, center, width));
        self
    }

    /// Evaluate the curve at (fractional) bucket index `k`.
    pub fn eval(&self, k: f64) -> f64 {
        let mut v = self.baseline;
        for &(a, c, w) in &self.humps {
            let z = (k - c) / w;
            v += a * (-0.5 * z * z).exp();
        }
        v
    }
}

/// One noise segment: buckets `[start, end)` receive zero-mean Gaussian
/// noise of variance `var_per_30s` *per 30-second interval* (the paper's
/// unit). The builder converts to the trace's bucket width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseSegment {
    /// First bucket of the segment.
    pub start: usize,
    /// One past the last bucket.
    pub end: usize,
    /// Noise variance per 30-second interval (arrivals²).
    pub var_per_30s: f64,
}

/// Builder for §4.3-style synthetic workloads: a smooth diurnal base
/// curve, a global scale factor, and segment-wise Gaussian noise.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticBuilder {
    shape: DiurnalShape,
    buckets: usize,
    interval: f64,
    scale: f64,
    segments: Vec<NoiseSegment>,
}

impl SyntheticBuilder {
    /// Start from a base shape sampled into `buckets` buckets of
    /// `interval` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `interval <= 0`.
    pub fn new(shape: DiurnalShape, buckets: usize, interval: f64) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(interval > 0.0, "interval must be positive");
        SyntheticBuilder {
            shape,
            buckets,
            interval,
            scale: 1.0,
            segments: Vec::new(),
        }
    }

    /// Scale the whole curve ("scaled by a factor of four before adding
    /// noise").
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale must be >= 0");
        self.scale = factor;
        self
    }

    /// Add a noise segment.
    #[must_use]
    pub fn with_noise(mut self, segment: NoiseSegment) -> Self {
        assert!(segment.start <= segment.end, "segment range inverted");
        assert!(segment.end <= self.buckets, "segment out of range");
        assert!(segment.var_per_30s >= 0.0, "variance must be >= 0");
        self.segments.push(segment);
        self
    }

    /// Generate the trace deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Trace {
        let counts: Vec<f64> = (0..self.buckets)
            .map(|k| self.scale * self.shape.eval(k as f64))
            .collect();
        let mut trace = Trace::new(self.interval, counts)
            .expect("shape values are finite and non-negative by construction");
        // Independent per-30s noise aggregates over a w-second bucket with
        // variance var_per_30s · (w / 30).
        let per_bucket_factor = self.interval / 30.0;
        for seg in &self.segments {
            let std_dev = (seg.var_per_30s * per_bucket_factor).sqrt();
            trace.add_gaussian_noise(seg.start, seg.end, std_dev, seed);
        }
        trace
    }
}

/// The paper's §4.3 synthetic workload: 1600 two-minute buckets shaped
/// like the (denoised, ×4-scaled) ISP trace, with Gaussian noise of
/// variance 200 / 300 / 500 arrivals per 30-second interval over segments
/// `[0, 300]`, `[301, 1025]` and `[1026, 1600]`, peaking near 2·10⁴
/// requests per bucket as in Fig. 4.
pub fn synthetic_paper_workload(seed: u64) -> Trace {
    let shape = DiurnalShape::new(2500.0)
        .with_hump(8000.0, 420.0, 160.0) // first (smaller) daily crest
        .with_hump(15500.0, 1150.0, 200.0) // main crest, ~1.8e4 peak
        .with_hump(3000.0, 800.0, 300.0); // broad shoulder between crests
    SyntheticBuilder::new(shape, 1600, 120.0)
        .scaled(1.0) // the ×4 of the paper is already folded into amplitudes
        .with_noise(NoiseSegment {
            start: 0,
            end: 301,
            var_per_30s: 200.0,
        })
        .with_noise(NoiseSegment {
            start: 301,
            end: 1026,
            var_per_30s: 300.0,
        })
        .with_noise(NoiseSegment {
            start: 1026,
            end: 1600,
            var_per_30s: 500.0,
        })
        .build(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_eval_sums_humps() {
        let s = DiurnalShape::new(100.0).with_hump(50.0, 10.0, 5.0);
        assert!(
            (s.eval(10.0) - 150.0).abs() < 1e-9,
            "peak = baseline + amplitude"
        );
        assert!(s.eval(0.0) < 150.0 && s.eval(0.0) >= 100.0);
        // Far from the hump, only the baseline remains.
        assert!((s.eval(1000.0) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn paper_workload_dimensions() {
        let t = synthetic_paper_workload(42);
        assert_eq!(t.len(), 1600);
        assert_eq!(t.interval(), 120.0);
    }

    #[test]
    fn paper_workload_peak_matches_fig4_scale() {
        let t = synthetic_paper_workload(42);
        // Fig. 4's y-axis tops out near 2e4 requests per 2-minute bucket.
        assert!(t.peak() > 1.4e4, "peak {}", t.peak());
        assert!(t.peak() < 2.2e4, "peak {}", t.peak());
        // Trough stays well below the crest (time-of-day variation).
        let early_mean = t.slice(0, 100).mean();
        let crest_mean = t.slice(1100, 1200).mean();
        assert!(crest_mean > 3.0 * early_mean);
    }

    #[test]
    fn paper_workload_noise_grows_by_segment() {
        // Estimate per-segment residual variance against the smooth base.
        let noisy = synthetic_paper_workload(1);
        let shape = DiurnalShape::new(2500.0)
            .with_hump(8000.0, 420.0, 160.0)
            .with_hump(15500.0, 1150.0, 200.0)
            .with_hump(3000.0, 800.0, 300.0);
        let clean = SyntheticBuilder::new(shape, 1600, 120.0).build(0);
        let seg_var = |a: usize, b: usize| {
            let diffs: Vec<f64> = (a..b).map(|k| noisy.count(k) - clean.count(k)).collect();
            let m = diffs.iter().sum::<f64>() / diffs.len() as f64;
            diffs.iter().map(|d| (d - m).powi(2)).sum::<f64>() / diffs.len() as f64
        };
        let v1 = seg_var(0, 300);
        let v3 = seg_var(1026, 1600);
        assert!(
            v3 > 1.5 * v1,
            "variance must grow between segment 1 ({v1:.0}) and segment 3 ({v3:.0})"
        );
        // Absolute level: segment 1 should be near 200 · (120/30) = 800.
        assert!(
            (v1 - 800.0).abs() / 800.0 < 0.35,
            "segment-1 variance {v1:.0}"
        );
    }

    #[test]
    fn build_is_deterministic() {
        assert_eq!(synthetic_paper_workload(9), synthetic_paper_workload(9));
        assert_ne!(
            synthetic_paper_workload(9).counts(),
            synthetic_paper_workload(10).counts()
        );
    }

    #[test]
    #[should_panic(expected = "segment out of range")]
    fn out_of_range_segment_panics() {
        let _ = SyntheticBuilder::new(DiurnalShape::new(1.0), 10, 30.0).with_noise(NoiseSegment {
            start: 0,
            end: 11,
            var_per_30s: 1.0,
        });
    }

    #[test]
    fn all_counts_nonnegative() {
        let t = synthetic_paper_workload(3);
        assert!(t.counts().iter().all(|&c| c >= 0.0));
    }
}
