use crate::Trace;

/// Parameters of a flash-crowd event superimposed on a trace.
///
/// The paper motivates proactive control with workloads that "change
/// quite significantly and quickly — usually in the order of a few
/// minutes"; a flash crowd is the extreme case: a sudden external event
/// multiplies traffic within minutes, then interest decays exponentially.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Bucket index at which the ramp starts.
    pub start: usize,
    /// Peak multiplier over the base trace (≥ 1).
    pub magnitude: f64,
    /// Buckets from onset to peak (linear ramp; ≥ 1).
    pub rise: usize,
    /// Exponential decay constant after the peak, in buckets.
    pub decay: f64,
}

impl FlashCrowd {
    /// The multiplier applied to bucket `k`.
    pub fn multiplier(&self, k: usize) -> f64 {
        if k < self.start {
            return 1.0;
        }
        let peak_at = self.start + self.rise.max(1);
        if k < peak_at {
            // Linear climb 1 → magnitude.
            let frac = (k - self.start) as f64 / self.rise.max(1) as f64;
            1.0 + (self.magnitude - 1.0) * frac
        } else {
            // Exponential relaxation back to 1.
            let dt = (k - peak_at) as f64;
            1.0 + (self.magnitude - 1.0) * (-dt / self.decay.max(1e-9)).exp()
        }
    }

    /// Apply the event to a trace, returning the stressed trace.
    #[must_use]
    pub fn apply(&self, trace: &Trace) -> Trace {
        let counts: Vec<f64> = trace
            .counts()
            .iter()
            .enumerate()
            .map(|(k, &c)| c * self.multiplier(k))
            .collect();
        Trace::new(trace.interval(), counts)
            .expect("multiplying non-negative counts keeps them valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(n: usize) -> Trace {
        Trace::new(120.0, vec![1000.0; n]).unwrap()
    }

    #[test]
    fn multiplier_shape() {
        let f = FlashCrowd {
            start: 10,
            magnitude: 5.0,
            rise: 4,
            decay: 8.0,
        };
        assert_eq!(f.multiplier(0), 1.0);
        assert_eq!(f.multiplier(9), 1.0);
        assert!((f.multiplier(12) - 3.0).abs() < 1e-9, "halfway up the ramp");
        assert!((f.multiplier(14) - 5.0).abs() < 1e-9, "at the peak");
        assert!(f.multiplier(20) < 3.0, "decaying");
        assert!(f.multiplier(100) < 1.01, "eventually back to base");
    }

    #[test]
    fn apply_scales_counts() {
        let f = FlashCrowd {
            start: 5,
            magnitude: 3.0,
            rise: 2,
            decay: 4.0,
        };
        let stressed = f.apply(&flat(20));
        assert_eq!(stressed.count(0), 1000.0);
        assert!((stressed.count(7) - 3000.0).abs() < 1e-9);
        assert!(stressed.peak() <= 3000.0 + 1e-9);
        assert_eq!(stressed.len(), 20);
        assert_eq!(stressed.interval(), 120.0);
    }

    #[test]
    fn monotone_rise_then_monotone_decay() {
        let f = FlashCrowd {
            start: 0,
            magnitude: 10.0,
            rise: 5,
            decay: 6.0,
        };
        let t = f.apply(&flat(40));
        for k in 0..5 {
            assert!(t.count(k + 1) >= t.count(k), "rise must be monotone at {k}");
        }
        for k in 6..39 {
            assert!(
                t.count(k + 1) <= t.count(k) + 1e-9,
                "decay must be monotone at {k}"
            );
        }
    }
}
