use rand::Rng;

/// Derive an independent stream seed from a master seed and a stream id
/// (SplitMix64 finalizer). Separate components (noise, store, locality,
/// arrival jitter) get separate streams so ablations perturb one factor at
/// a time.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Gaussian (normal) distribution sampled by the Box-Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    std_dev: f64,
}

impl Gaussian {
    /// A normal distribution with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "standard deviation must be finite and >= 0, got {std_dev}"
        );
        Gaussian { mean, std_dev }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draw one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Box-Muller; guard u1 away from 0.
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Lognormal distribution: `exp(N(mu, sigma))`.
///
/// The paper's temporal-locality model: "in many web workloads, temporal
/// locality follows a lognormal distribution" (Barford & Crovella).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Gaussian,
}

impl LogNormal {
    /// Lognormal with log-space mean `mu` and log-space std `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            normal: Gaussian::new(mu, sigma),
        }
    }

    /// The median of the distribution, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.normal.mean().exp()
    }

    /// Draw one sample (always positive).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Zipf distribution over ranks `1..=n`: `P(rank k) ∝ 1/k^s`.
///
/// Sampling is by inverse CDF over a precomputed table (O(log n) per
/// draw), sized for the virtual store's 10,000 objects.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Zipf over `n` ranks with exponent `s` (classic Zipf's law: `s = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf, exponent: s }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if there are no ranks (never: the constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of rank `k` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds `len()`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "rank out of range");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }

    /// Draw a 0-based rank (`0` = most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Poisson distribution, for converting rates to integer counts.
///
/// Knuth's product method below mean 30, Gaussian approximation (rounded,
/// clamped at 0) above.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Poisson with mean `lambda >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be finite and >= 0, got {lambda}"
        );
        Poisson { lambda }
    }

    /// The mean `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draw one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until the product drops below e^-λ.
            let limit = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= limit {
                    return k;
                }
                k += 1;
            }
        } else {
            let g = Gaussian::new(self.lambda, self.lambda.sqrt());
            g.sample(rng).round().max(0.0) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn derive_seed_differs_per_stream() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(42, 0), "deterministic");
    }

    #[test]
    fn gaussian_moments() {
        let g = Gaussian::new(10.0, 2.0);
        let mut r = rng(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn zero_std_gaussian_is_constant() {
        let g = Gaussian::new(5.0, 0.0);
        let mut r = rng(2);
        assert_eq!(g.sample(&mut r), 5.0);
    }

    #[test]
    fn lognormal_median_and_positivity() {
        let ln = LogNormal::new(3.0, 1.0);
        let mut r = rng(3);
        let n = 20_000;
        let mut samples: Vec<f64> = (0..n).map(|_| ln.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!(
            (median - ln.median()).abs() / ln.median() < 0.1,
            "median {median} vs {}",
            ln.median()
        );
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut r = rng(4);
        let n = 50_000;
        let mut counts = vec![0usize; 1000];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        // With s=1 and n=1000, P(rank 1) = 1/H(1000) ≈ 0.1336.
        let p1 = counts[0] as f64 / n as f64;
        assert!((p1 - 0.1336).abs() < 0.01, "p1 = {p1}");
        // Monotone-ish decay over decades.
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[99]);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 0.8);
        let total: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.pmf(1) > z.pmf(2));
        assert_eq!(z.len(), 50);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let p = Poisson::new(3.0);
        let mut r = rng(5);
        let n = 20_000;
        let mean = (0..n).map(|_| p.sample(&mut r)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let p = Poisson::new(500.0);
        let mut r = rng(6);
        let n = 5_000;
        let mean = (0..n).map(|_| p.sample(&mut r)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 500.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let p = Poisson::new(0.0);
        let mut r = rng(7);
        assert_eq!(p.sample(&mut r), 0);
    }

    proptest! {
        #[test]
        fn zipf_sample_in_range(n in 1usize..200, s in 0.0..2.5f64, seed in 0u64..100) {
            let z = Zipf::new(n, s);
            let mut r = rng(seed);
            for _ in 0..20 {
                prop_assert!(z.sample(&mut r) < n);
            }
        }

        #[test]
        fn gaussian_is_finite(mean in -1e6..1e6f64, std in 0.0..1e3f64, seed in 0u64..100) {
            let g = Gaussian::new(mean, std);
            let mut r = rng(seed);
            prop_assert!(g.sample(&mut r).is_finite());
        }
    }
}
