//! Workload generation for the hierarchical LLC reproduction.
//!
//! The paper evaluates its controllers against two workloads:
//!
//! 1. **§4.3 synthetic workload** — an ISP HTTP trace (Arlitt & Williamson
//!    1996) denoised, scaled ×4, with segment-wise Gaussian noise of
//!    variance 200/300/500 arrivals per 30-second interval added back
//!    ([`synthetic_paper_workload`]).
//! 2. **WC'98** — HTTP requests to the France'98 World Cup site.
//!    The original HP Labs trace is not distributable, so
//!    [`wc98_like_day`] and [`wc98_like_fig6`] synthesize traces with the
//!    same qualitative features (strong diurnal swing, sharp match-time
//!    peak, 2-minute buckets); DESIGN.md documents the substitution.
//!
//! Request bodies are drawn from a **virtual store** of 10,000 objects
//! whose per-object processing times are uniform on (10, 25) ms, with a
//! popular set of 1,000 objects receiving 90 % of requests (Zipf-ranked
//! within each set) and lognormal **temporal locality** — all exactly the
//! §4.3 recipe.
//!
//! Every sampler is seeded and deterministic. Distributions (Gaussian,
//! Zipf, lognormal, Poisson) are implemented in this crate on top of the
//! `rand` uniform source — no external statistics dependency.
//!
//! # Example
//!
//! ```
//! use llc_workload::{Trace, VirtualStore, RequestSampler, synthetic_paper_workload};
//!
//! let trace = synthetic_paper_workload(42);
//! assert_eq!(trace.len(), 1600);            // 1600 two-minute buckets
//! let store = VirtualStore::paper_default(7);
//! let mut sampler = RequestSampler::paper_default(&store, 11);
//! let (object, demand) = sampler.next_request();
//! assert!(object < 10_000);
//! assert!(demand >= 0.010 && demand <= 0.025);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distributions;
mod drift;
mod faults;
mod flash;
mod locality;
mod store;
mod synthetic;
mod trace;
mod wc98;

pub use distributions::{derive_seed, Gaussian, LogNormal, Poisson, Zipf};
pub use drift::{deep_degradation_scenario, drift_scenarios, CapacityProfile, DriftScenario};
pub use faults::{fault_scenarios, FaultEvent, FaultKind, FaultPlan, FaultScenario};
pub use flash::FlashCrowd;
pub use locality::{LocalityModel, RequestSampler};
pub use store::VirtualStore;
pub use synthetic::{synthetic_paper_workload, DiurnalShape, NoiseSegment, SyntheticBuilder};
pub use trace::{Trace, TraceError};
pub use wc98::{wc98_like_day, wc98_like_days, wc98_like_fig6};

/// Spread `n` arrivals uniformly at random inside the window
/// `[start, start + width)`, returned sorted — the standard way of turning
/// a per-bucket count trace into individual arrival instants.
///
/// # Panics
///
/// Panics if `width` is not positive.
pub fn spread_arrivals<R: rand::Rng>(rng: &mut R, start: f64, width: f64, n: usize) -> Vec<f64> {
    assert!(width > 0.0, "window width must be positive");
    let mut times: Vec<f64> = (0..n).map(|_| start + rng.gen::<f64>() * width).collect();
    times.sort_by(f64::total_cmp);
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn spread_arrivals_sorted_within_window() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let times = spread_arrivals(&mut rng, 100.0, 30.0, 500);
        assert_eq!(times.len(), 500);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| (100.0..130.0).contains(&t)));
    }

    #[test]
    fn spread_zero_arrivals_is_empty() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(spread_arrivals(&mut rng, 0.0, 1.0, 0).is_empty());
    }
}
