use crate::{derive_seed, Gaussian};
use rand::SeedableRng;
use std::fmt;

/// Errors from trace construction and I/O.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// The bucket interval must be positive and finite.
    InvalidInterval(f64),
    /// A bucket count was negative or non-finite.
    InvalidCount {
        /// Index of the offending bucket.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Rebucketing requires the new interval to be an integer multiple or
    /// divisor of the old one.
    IncompatibleInterval {
        /// Current bucket width (seconds).
        current: f64,
        /// Requested bucket width (seconds).
        requested: f64,
    },
    /// CSV parsing failed at the given line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidInterval(v) => {
                write!(f, "bucket interval must be positive and finite, got {v}")
            }
            TraceError::InvalidCount { index, value } => {
                write!(f, "bucket {index} has invalid count {value}")
            }
            TraceError::IncompatibleInterval { current, requested } => write!(
                f,
                "cannot rebucket from {current} s to {requested} s (not an integer ratio)"
            ),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// An arrival-count time series: `counts[k]` requests arrived during
/// bucket `k` of fixed width `interval` seconds.
///
/// This is the exchange format between workload generators, the plotting
/// binaries (the paper plots HTTP requests "at 2-minute intervals") and
/// the experiment driver, which spreads each bucket into individual
/// arrival instants.
// CSV (`to_csv`/`from_csv`) is the wire format; the build environment has
// no registry access for serde, whose derives were unused here.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    interval: f64,
    counts: Vec<f64>,
}

impl Trace {
    /// Build a trace from a bucket width (seconds) and per-bucket counts.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidInterval`] / [`TraceError::InvalidCount`].
    pub fn new(interval: f64, counts: Vec<f64>) -> Result<Self, TraceError> {
        if interval <= 0.0 || !interval.is_finite() {
            return Err(TraceError::InvalidInterval(interval));
        }
        for (index, &value) in counts.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(TraceError::InvalidCount { index, value });
            }
        }
        Ok(Trace { interval, counts })
    }

    /// Bucket width in seconds.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` if the trace has no buckets.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Count in bucket `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn count(&self, k: usize) -> f64 {
        self.counts[k]
    }

    /// Arrival rate of bucket `k` in requests/second.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn rate(&self, k: usize) -> f64 {
        self.counts[k] / self.interval
    }

    /// Total requests across the trace.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Largest bucket count (0.0 for an empty trace).
    pub fn peak(&self) -> f64 {
        self.counts.iter().copied().fold(0.0, f64::max)
    }

    /// Mean bucket count (0.0 for an empty trace).
    pub fn mean(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            self.total() / self.counts.len() as f64
        }
    }

    /// Total duration covered, in seconds.
    pub fn duration(&self) -> f64 {
        self.interval * self.counts.len() as f64
    }

    /// Multiply every bucket by `factor` (the paper scales its base ISP
    /// workload "by a factor of four").
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Trace {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and >= 0"
        );
        Trace {
            interval: self.interval,
            counts: self.counts.iter().map(|c| c * factor).collect(),
        }
    }

    /// A sub-trace over bucket range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, start: usize, end: usize) -> Trace {
        assert!(
            start <= end && end <= self.counts.len(),
            "invalid slice range"
        );
        Trace {
            interval: self.interval,
            counts: self.counts[start..end].to_vec(),
        }
    }

    /// Add zero-mean Gaussian noise with the given standard deviation to
    /// buckets `[start, end)`, clamping at zero. The paper adds noise with
    /// variance 200/300/500 arrivals *per 30-second interval* to three
    /// segments of its synthetic workload; callers convert variances to
    /// the trace's bucket width before calling (independent noise scales
    /// linearly in the interval).
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid or `std_dev < 0`.
    pub fn add_gaussian_noise(&mut self, start: usize, end: usize, std_dev: f64, seed: u64) {
        assert!(
            start <= end && end <= self.counts.len(),
            "invalid noise range"
        );
        let g = Gaussian::new(0.0, std_dev);
        let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(seed, start as u64));
        for c in &mut self.counts[start..end] {
            *c = (*c + g.sample(&mut rng)).max(0.0);
        }
    }

    /// Re-bucket to a new interval. Aggregates when `new_interval` is an
    /// integer multiple of the current width (the final partial bucket is
    /// dropped); splits counts evenly when it is an integer divisor.
    ///
    /// # Errors
    ///
    /// [`TraceError::IncompatibleInterval`] when the ratio is not integral
    /// either way.
    pub fn rebucket(&self, new_interval: f64) -> Result<Trace, TraceError> {
        if new_interval <= 0.0 || !new_interval.is_finite() {
            return Err(TraceError::InvalidInterval(new_interval));
        }
        let ratio = new_interval / self.interval;
        let err = TraceError::IncompatibleInterval {
            current: self.interval,
            requested: new_interval,
        };
        if ratio >= 1.0 {
            let k = ratio.round();
            if (ratio - k).abs() > 1e-9 {
                return Err(err);
            }
            let k = k as usize;
            let counts = self
                .counts
                .chunks_exact(k)
                .map(|chunk| chunk.iter().sum())
                .collect();
            Ok(Trace {
                interval: new_interval,
                counts,
            })
        } else {
            let inv = (1.0 / ratio).round();
            if (1.0 / ratio - inv).abs() > 1e-9 {
                return Err(err);
            }
            let k = inv as usize;
            let mut counts = Vec::with_capacity(self.counts.len() * k);
            for &c in &self.counts {
                for _ in 0..k {
                    counts.push(c / k as f64);
                }
            }
            Ok(Trace {
                interval: new_interval,
                counts,
            })
        }
    }

    /// Iterate `(bucket_start_time_secs, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(k, &c)| (k as f64 * self.interval, c))
    }

    /// Serialize as two-column CSV (`time_secs,count`) with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_secs,count\n");
        for (t, c) in self.iter() {
            out.push_str(&format!("{t},{c}\n"));
        }
        out
    }

    /// Parse the CSV format produced by [`Trace::to_csv`]. The interval is
    /// inferred from the first two rows (a single-row trace gets interval
    /// 1.0).
    ///
    /// # Errors
    ///
    /// [`TraceError::Parse`] on malformed input.
    pub fn from_csv(text: &str) -> Result<Trace, TraceError> {
        let mut times = Vec::new();
        let mut counts = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 && line.starts_with("time") {
                continue;
            }
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let parse = |s: Option<&str>, what: &str| -> Result<f64, TraceError> {
                s.ok_or_else(|| TraceError::Parse {
                    line: i + 1,
                    message: format!("missing {what}"),
                })?
                .trim()
                .parse::<f64>()
                .map_err(|e| TraceError::Parse {
                    line: i + 1,
                    message: format!("bad {what}: {e}"),
                })
            };
            times.push(parse(parts.next(), "time")?);
            counts.push(parse(parts.next(), "count")?);
        }
        let interval = if times.len() >= 2 {
            times[1] - times[0]
        } else {
            1.0
        };
        Trace::new(interval, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn trace(counts: Vec<f64>) -> Trace {
        Trace::new(120.0, counts).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let t = trace(vec![10.0, 20.0, 30.0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.interval(), 120.0);
        assert_eq!(t.total(), 60.0);
        assert_eq!(t.peak(), 30.0);
        assert_eq!(t.mean(), 20.0);
        assert_eq!(t.duration(), 360.0);
        assert!((t.rate(1) - 20.0 / 120.0).abs() < 1e-12);
        assert!(!t.is_empty());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            Trace::new(0.0, vec![1.0]),
            Err(TraceError::InvalidInterval(_))
        ));
        assert!(matches!(
            Trace::new(1.0, vec![1.0, -2.0]),
            Err(TraceError::InvalidCount { index: 1, .. })
        ));
        assert!(matches!(
            Trace::new(1.0, vec![f64::NAN]),
            Err(TraceError::InvalidCount { index: 0, .. })
        ));
    }

    #[test]
    fn scaling_multiplies_counts() {
        let t = trace(vec![1.0, 2.0]).scaled(4.0);
        assert_eq!(t.counts(), &[4.0, 8.0]);
    }

    #[test]
    fn slicing() {
        let t = trace(vec![1.0, 2.0, 3.0, 4.0]);
        let s = t.slice(1, 3);
        assert_eq!(s.counts(), &[2.0, 3.0]);
        assert_eq!(s.interval(), 120.0);
    }

    #[test]
    fn rebucket_aggregate() {
        let t = Trace::new(30.0, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let agg = t.rebucket(60.0).unwrap();
        assert_eq!(agg.counts(), &[3.0, 7.0], "partial tail dropped");
        assert_eq!(agg.interval(), 60.0);
    }

    #[test]
    fn rebucket_split_conserves_total() {
        let t = Trace::new(120.0, vec![8.0, 4.0]).unwrap();
        let split = t.rebucket(30.0).unwrap();
        assert_eq!(split.len(), 8);
        assert!((split.total() - t.total()).abs() < 1e-12);
        assert_eq!(split.count(0), 2.0);
        assert_eq!(split.count(4), 1.0);
    }

    #[test]
    fn rebucket_incompatible_ratio_errors() {
        let t = trace(vec![1.0; 10]);
        assert!(matches!(
            t.rebucket(50.0),
            Err(TraceError::IncompatibleInterval { .. })
        ));
    }

    #[test]
    fn noise_clamps_at_zero_and_is_deterministic() {
        let mut a = trace(vec![5.0; 100]);
        let mut b = trace(vec![5.0; 100]);
        a.add_gaussian_noise(0, 100, 50.0, 7);
        b.add_gaussian_noise(0, 100, 50.0, 7);
        assert_eq!(a, b, "same seed, same noise");
        assert!(a.counts().iter().all(|&c| c >= 0.0));
        assert_ne!(a.counts(), trace(vec![5.0; 100]).counts());
    }

    #[test]
    fn noise_outside_range_untouched() {
        let mut t = trace(vec![5.0; 10]);
        t.add_gaussian_noise(2, 4, 100.0, 1);
        assert_eq!(t.count(0), 5.0);
        assert_eq!(t.count(9), 5.0);
    }

    #[test]
    fn csv_roundtrip() {
        let t = trace(vec![10.0, 20.5, 0.0]);
        let parsed = Trace::from_csv(&t.to_csv()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn csv_loader_reads_embedded_wc98_slice() {
        // A 12-bucket slice of a WC'98-like day around the evening
        // crest (2-minute buckets, requests per bucket) — the exact
        // wire format `bench_scale --trace wc98` replays.
        let slice = "\
time_secs,count
71280,39894
71400,41103
71520,42467
71640,43912
71760,45391
71880,46842
72000,48227
72120,49551
72240,50801
72360,51938
72480,52942
72600,53801
";
        let t = Trace::from_csv(slice).unwrap();
        assert_eq!(t.len(), 12);
        assert_eq!(t.interval(), 120.0, "interval inferred from rows");
        assert_eq!(t.count(0), 39894.0);
        assert_eq!(t.peak(), 53801.0);
        assert!((t.total() - 566_869.0).abs() < 1e-9);
        // The bench path rebuckets to 30 s controller windows and
        // scales to the plant's capacity; both must survive the load.
        let windows = t.rebucket(30.0).unwrap().scaled(0.5);
        assert_eq!(windows.len(), 48);
        assert!((windows.total() - 566_869.0 * 0.5).abs() < 1e-6);
    }

    #[test]
    fn csv_bad_line_reports_position() {
        let err = Trace::from_csv("time_secs,count\n0,1\n120,garbage\n").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 3, .. }));
    }

    proptest! {
        #[test]
        fn rebucket_aggregate_conserves_prefix_total(
            counts in proptest::collection::vec(0.0..100.0f64, 4..40),
            k in 2usize..5,
        ) {
            let t = Trace::new(10.0, counts.clone()).unwrap();
            let agg = t.rebucket(10.0 * k as f64).unwrap();
            let whole = (counts.len() / k) * k;
            let expected: f64 = counts[..whole].iter().sum();
            prop_assert!((agg.total() - expected).abs() < 1e-9);
        }
    }
}
