use crate::{derive_seed, Zipf};
use rand::{Rng, SeedableRng};

/// The paper's virtual store of web objects (§4.3):
///
/// * 10,000 objects whose request processing times are drawn uniformly
///   from (10, 25) ms at store-generation time;
/// * a **popular** partition of 1,000 objects receiving 90 % of all
///   requests and a **rare** partition (the remaining 9,000) receiving
///   10 %, with Zipf-ranked popularity inside each partition.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualStore {
    /// Full-speed processing time per object, seconds.
    demands: Vec<f64>,
    popular_count: usize,
    popular_share: f64,
    popular_zipf: Zipf,
    rare_zipf: Zipf,
}

impl VirtualStore {
    /// Build a store of `n_objects` with `popular_count` objects receiving
    /// `popular_share` of the traffic; processing times drawn uniformly
    /// from `[demand_lo, demand_hi]` seconds with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `popular_count` is 0 or ≥ `n_objects`, if the share is
    /// outside `[0, 1]`, or if the demand range is invalid.
    pub fn new(
        n_objects: usize,
        popular_count: usize,
        popular_share: f64,
        demand_lo: f64,
        demand_hi: f64,
        seed: u64,
    ) -> Self {
        assert!(
            popular_count > 0 && popular_count < n_objects,
            "popular set must be a strict non-empty subset"
        );
        assert!(
            (0.0..=1.0).contains(&popular_share),
            "popular share must be in [0, 1]"
        );
        assert!(
            demand_lo > 0.0 && demand_hi >= demand_lo && demand_hi.is_finite(),
            "demand range must satisfy 0 < lo <= hi"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(seed, 0x5702E));
        let demands = (0..n_objects)
            .map(|_| rng.gen_range(demand_lo..=demand_hi))
            .collect();
        VirtualStore {
            demands,
            popular_count,
            popular_share,
            popular_zipf: Zipf::new(popular_count, 1.0),
            rare_zipf: Zipf::new(n_objects - popular_count, 1.0),
        }
    }

    /// The paper's store: 10,000 objects, 1,000 popular receiving 90 %,
    /// processing times U(10, 25) ms.
    pub fn paper_default(seed: u64) -> Self {
        VirtualStore::new(10_000, 1_000, 0.9, 0.010, 0.025, seed)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// `true` if the store holds no objects (never: constructor forbids).
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Size of the popular partition.
    pub fn popular_count(&self) -> usize {
        self.popular_count
    }

    /// Full-speed processing time of `object` in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn demand(&self, object: usize) -> f64 {
        self.demands[object]
    }

    /// Mean processing time over the whole store.
    pub fn mean_demand(&self) -> f64 {
        self.demands.iter().sum::<f64>() / self.demands.len() as f64
    }

    /// Sample an object id according to popularity (no temporal
    /// locality — see [`RequestSampler`](crate::RequestSampler) for the
    /// locality-aware stream). Popular objects occupy ids
    /// `0..popular_count`.
    pub fn sample_object<R: Rng>(&self, rng: &mut R) -> usize {
        if rng.gen::<f64>() < self.popular_share {
            self.popular_zipf.sample(rng)
        } else {
            self.popular_count + self.rare_zipf.sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_store_shape() {
        let s = VirtualStore::paper_default(1);
        assert_eq!(s.len(), 10_000);
        assert_eq!(s.popular_count(), 1_000);
        assert!(s.demands.iter().all(|&d| (0.010..=0.025).contains(&d)));
        let m = s.mean_demand();
        assert!((m - 0.0175).abs() < 0.0005, "mean demand {m}");
    }

    #[test]
    fn popular_partition_receives_its_share() {
        let s = VirtualStore::paper_default(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let n = 50_000;
        let popular_hits = (0..n)
            .filter(|_| s.sample_object(&mut rng) < s.popular_count())
            .count();
        let share = popular_hits as f64 / n as f64;
        assert!((share - 0.9).abs() < 0.01, "popular share {share}");
    }

    #[test]
    fn zipf_head_dominates_within_popular_set() {
        let s = VirtualStore::paper_default(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut counts = vec![0u32; s.len()];
        for _ in 0..n {
            counts[s.sample_object(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = VirtualStore::paper_default(5);
        let b = VirtualStore::paper_default(5);
        assert_eq!(a, b);
        let c = VirtualStore::paper_default(6);
        assert_ne!(a.demands, c.demands);
    }

    #[test]
    #[should_panic(expected = "strict non-empty subset")]
    fn popular_set_must_be_proper() {
        let _ = VirtualStore::new(10, 10, 0.9, 0.01, 0.02, 1);
    }
}
