//! Fault plans: scheduled abrupt faults paired with workloads.
//!
//! [`crate::drift`] models *slow* plant change — capacity quietly
//! ramping away from the trained models. This module models the abrupt
//! faults a production fleet actually throws at an autonomic controller:
//! machines crashing mid-run and coming back through the boot dead time,
//! telemetry windows going dark, sensors reporting garbage, and
//! frequency actuators wedging. A [`FaultPlan`] is a deterministic
//! schedule of [`FaultEvent`]s keyed by control tick; the experiment
//! driver applies each event to the simulator (crash/restart/stuck
//! actuator) or to the observation stream (blackout/noise) at the start
//! of its tick, exactly like the capacity profiles of
//! [`crate::CapacityProfile`].
//!
//! Four canonical fault scenarios ship with [`fault_scenarios`]:
//!
//! 1. **crash-restart** — one member crashes with its queue lost and
//!    restarts after a dead window (the bread-and-butter churn case);
//! 2. **rolling-blackout** — telemetry windows go dark machine by
//!    machine while every machine keeps serving (the estimators must
//!    hold state, not poison it);
//! 3. **flapping-member** — one member crash/restart-cycles repeatedly
//!    (hysteresis and watchdog thresholds get stress-tested);
//! 4. **stuck-actuator** — one machine's DVFS actuator wedges at full
//!    speed while another's sensors turn noisy (actuation *and* sensing
//!    degrade at once).

use crate::{DiurnalShape, SyntheticBuilder, Trace};

/// One kind of injectable fault, applied to a single computer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Machine crash: queued and in-service work is ripped out
    /// instantly, the machine becomes unbootable until a
    /// [`FaultKind::Restart`], and it goes dark — telemetry stops
    /// (`telemetry_ok = false`) with its reported power state frozen at
    /// the last value seen, because crash-stop is indistinguishable
    /// from a partition. With `requeue = true` the lost work is
    /// re-dispatched through the module router at the crash instant;
    /// with `false` it is dropped.
    Crash {
        /// Re-dispatch the crashed-out work instead of dropping it.
        requeue: bool,
    },
    /// Repair a crashed machine and order it back on (normal
    /// Off→Booting boot dead time applies).
    Restart,
    /// The machine's telemetry goes dark: its observation window
    /// arrives blank (no arrivals/completions/queue visible) until
    /// [`FaultKind::BlackoutEnd`]. The machine itself keeps serving.
    BlackoutStart,
    /// Telemetry comes back.
    BlackoutEnd,
    /// The machine's sensors turn noisy: reported response-time and
    /// demand sums are corrupted by multiplicative Gaussian noise of
    /// relative standard deviation `sigma` until [`FaultKind::NoiseEnd`].
    NoiseStart {
        /// Relative standard deviation of the multiplicative corruption.
        sigma: f64,
    },
    /// Sensors return to clean readings.
    NoiseEnd,
    /// The machine's frequency actuator wedges: `SetFrequency`
    /// directives are silently ignored until
    /// [`FaultKind::UnstickActuator`].
    StickActuator,
    /// The frequency actuator frees up again.
    UnstickActuator,
}

/// One scheduled fault: `kind` hits `computer` at the start of control
/// tick `tick`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Control tick (experiment base tick) at which the fault fires.
    pub tick: u64,
    /// Global computer index the fault applies to.
    pub computer: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events over a run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Events sorted by tick (stable on ties: plan order).
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan from the given events (sorted by tick; same-tick events
    /// keep their given order).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.tick);
        FaultPlan { events }
    }

    /// An empty plan (no faults — the control arm).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// All events, sorted by tick.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events that fire at control tick `tick`, in plan order.
    pub fn events_at(&self, tick: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.tick == tick)
    }

    /// Tick of the last scheduled fault, if any — benches measure
    /// recovery time from here.
    pub fn last_fault_tick(&self) -> Option<u64> {
        self.events.last().map(|e| e.tick)
    }

    /// Largest computer index referenced by the plan, if any — drivers
    /// validate it against the cluster size.
    pub fn max_computer(&self) -> Option<usize> {
        self.events.iter().map(|e| e.computer).max()
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// An arrival trace plus the fault schedule it runs against.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Stable scenario identifier (used in benchmark JSON keys).
    pub name: &'static str,
    /// Arrival counts per bucket.
    pub trace: Trace,
    /// Scheduled faults over the run.
    pub plan: FaultPlan,
}

/// Steady trace near `load_frac` of peak with light noise (shared by all
/// fault scenarios: the faults, not the traffic, are the experiment).
fn steady_trace(seed: u64, buckets: usize, interval: f64, peak_rate: f64, load_frac: f64) -> Trace {
    SyntheticBuilder::new(
        DiurnalShape::new(load_frac * peak_rate * interval),
        buckets,
        interval,
    )
    .with_noise(crate::NoiseSegment {
        start: 0,
        end: buckets,
        var_per_30s: (0.02 * peak_rate * interval).powi(2) / (interval / 30.0),
    })
    .build(seed)
}

/// The four canonical fault scenarios over `buckets` buckets of
/// `interval` seconds, with arrival rates near 55–70 % of `peak_rate`
/// requests/second (the load must still fit the survivors of a crash),
/// against a module of `machines` computers (global indices
/// `0..machines`). Fault ticks are laid out for the paper-default 30 s
/// control tick, i.e. over `buckets · interval / 30` experiment ticks.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `buckets == 0`, `interval <= 0`, `peak_rate <= 0`, or
/// `machines < 2` (every scenario needs a surviving peer).
pub fn fault_scenarios(
    seed: u64,
    buckets: usize,
    interval: f64,
    peak_rate: f64,
    machines: usize,
) -> Vec<FaultScenario> {
    assert!(buckets > 0, "need at least one bucket");
    assert!(interval > 0.0, "interval must be positive");
    assert!(peak_rate > 0.0, "peak rate must be positive");
    assert!(machines >= 2, "fault scenarios need a surviving peer");
    let ticks = (buckets as f64 * interval / 30.0).round() as u64;
    assert!(ticks >= 40, "run too short for the fault schedules");
    let t = |frac: f64| (frac * ticks as f64).round() as u64;
    let trace =
        |salt: u64, load: f64| steady_trace(seed ^ salt, buckets, interval, peak_rate, load);

    // 1. One crash with the queue lost, restart after ~12 ticks dead.
    let crash_restart = FaultPlan::new(vec![
        FaultEvent {
            tick: t(0.35),
            computer: 1,
            kind: FaultKind::Crash { requeue: false },
        },
        FaultEvent {
            tick: t(0.35) + 12,
            computer: 1,
            kind: FaultKind::Restart,
        },
    ]);

    // 2. Telemetry goes dark machine by machine, ~10 ticks each,
    // sweeping the whole module while everything keeps serving.
    let mut rolling = Vec::new();
    for j in 0..machines {
        let start = t(0.3) + (j as u64) * 10;
        rolling.push(FaultEvent {
            tick: start,
            computer: j,
            kind: FaultKind::BlackoutStart,
        });
        rolling.push(FaultEvent {
            tick: start + 10,
            computer: j,
            kind: FaultKind::BlackoutEnd,
        });
    }
    let rolling_blackout = FaultPlan::new(rolling);

    // 3. One member flaps: three crash/restart cycles in a row, each
    // dead window shorter than the watchdog would like.
    let mut flapping = Vec::new();
    for cycle in 0..3u64 {
        let start = t(0.3) + cycle * 14;
        flapping.push(FaultEvent {
            tick: start,
            computer: 1,
            kind: FaultKind::Crash { requeue: true },
        });
        flapping.push(FaultEvent {
            tick: start + 6,
            computer: 1,
            kind: FaultKind::Restart,
        });
    }
    let flapping_member = FaultPlan::new(flapping);

    // 4. Machine 0's actuator wedges for the middle third of the run
    // while machine 1's sensors turn noisy over the same stretch.
    let stuck_actuator = FaultPlan::new(vec![
        FaultEvent {
            tick: t(1.0 / 3.0),
            computer: 0,
            kind: FaultKind::StickActuator,
        },
        FaultEvent {
            tick: t(1.0 / 3.0),
            computer: 1,
            kind: FaultKind::NoiseStart { sigma: 0.6 },
        },
        FaultEvent {
            tick: t(2.0 / 3.0),
            computer: 0,
            kind: FaultKind::UnstickActuator,
        },
        FaultEvent {
            tick: t(2.0 / 3.0),
            computer: 1,
            kind: FaultKind::NoiseEnd,
        },
    ]);

    vec![
        FaultScenario {
            name: "crash-restart",
            trace: trace(0xC4A5, 0.7),
            plan: crash_restart,
        },
        FaultScenario {
            name: "rolling-blackout",
            trace: trace(0xB1AC, 0.7),
            plan: rolling_blackout,
        },
        FaultScenario {
            name: "flapping-member",
            trace: trace(0xF1A9, 0.7),
            plan: flapping_member,
        },
        FaultScenario {
            name: "stuck-actuator",
            trace: trace(0x57CC, 0.7),
            plan: stuck_actuator,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_sorted_and_queryable() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                tick: 20,
                computer: 0,
                kind: FaultKind::Restart,
            },
            FaultEvent {
                tick: 5,
                computer: 0,
                kind: FaultKind::Crash { requeue: false },
            },
            FaultEvent {
                tick: 5,
                computer: 1,
                kind: FaultKind::BlackoutStart,
            },
        ]);
        assert_eq!(plan.events().len(), 3);
        assert!(plan.events().windows(2).all(|w| w[0].tick <= w[1].tick));
        assert_eq!(plan.events_at(5).count(), 2);
        assert_eq!(plan.events_at(6).count(), 0);
        assert_eq!(plan.last_fault_tick(), Some(20));
        assert_eq!(plan.max_computer(), Some(1));
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().last_fault_tick(), None);
    }

    #[test]
    fn scenarios_are_deterministic_and_shaped() {
        let a = fault_scenarios(7, 120, 120.0, 50.0, 3);
        let b = fault_scenarios(7, 120, 120.0, 50.0, 3);
        assert_eq!(a, b, "same seed, same scenarios");
        let names: Vec<&str> = a.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "crash-restart",
                "rolling-blackout",
                "flapping-member",
                "stuck-actuator"
            ]
        );
        let ticks = 120 * 120 / 30;
        for s in &a {
            assert_eq!(s.trace.len(), 120);
            assert!(!s.plan.is_empty());
            assert!(
                s.plan.last_fault_tick().unwrap() < ticks * 9 / 10,
                "{}: faults must end early enough to measure recovery",
                s.name
            );
            assert!(s.plan.max_computer().unwrap() < 3);
            // Load fits the survivors: mean rate under peak capacity
            // with headroom for a one-machine crash.
            let mean = s.trace.counts().iter().sum::<f64>() / s.trace.len() as f64 / 120.0;
            assert!(mean < 0.8 * 50.0, "{}: mean rate {mean} too hot", s.name);
        }
        // The rolling blackout sweeps every machine.
        let blackout = &a[1];
        for j in 0..3 {
            assert!(blackout
                .plan
                .events()
                .iter()
                .any(|e| e.computer == j && e.kind == FaultKind::BlackoutStart));
        }
    }

    #[test]
    #[should_panic(expected = "surviving peer")]
    fn single_machine_rejected() {
        let _ = fault_scenarios(7, 120, 120.0, 50.0, 1);
    }
}
