use crate::{derive_seed, LogNormal, VirtualStore};
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Lognormal temporal-locality model (§4.3: "in many web workloads,
/// temporal locality follows a lognormal distribution", after Barford &
/// Crovella).
///
/// An LRU stack of recently referenced objects is maintained. For each
/// request a stack distance `d` is drawn from a lognormal; if `d` lands
/// inside the current stack the object at that depth is re-referenced and
/// moved to the front, otherwise a fresh object is drawn from the
/// popularity distribution. Re-references therefore exhibit lognormal
/// stack distances while the miss stream follows the store's Zipf
/// popularity.
#[derive(Debug, Clone)]
pub struct LocalityModel {
    distance: LogNormal,
    stack: VecDeque<usize>,
    max_depth: usize,
}

impl LocalityModel {
    /// A model with lognormal(`mu`, `sigma`) stack distances and an LRU
    /// stack capped at `max_depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth == 0`.
    pub fn new(mu: f64, sigma: f64, max_depth: usize) -> Self {
        assert!(max_depth > 0, "stack depth must be positive");
        LocalityModel {
            distance: LogNormal::new(mu, sigma),
            stack: VecDeque::new(),
            max_depth,
        }
    }

    /// Defaults calibrated for the 10,000-object store: median
    /// re-reference distance 50, heavy tail reaching past the stack.
    pub fn paper_default() -> Self {
        LocalityModel::new(50.0_f64.ln(), 1.5, 4_096)
    }

    /// Current stack occupancy.
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }

    /// Produce the next object reference: either a re-reference from the
    /// LRU stack (lognormal depth) or a fresh popularity draw from
    /// `store`.
    pub fn next_object<R: Rng>(&mut self, rng: &mut R, store: &VirtualStore) -> usize {
        let d = self.distance.sample(rng);
        let depth = d.floor() as usize;
        let object = if depth < self.stack.len() {
            self.stack.remove(depth).expect("depth checked")
        } else {
            store.sample_object(rng)
        };
        // Move-to-front; drop the coldest entry when over capacity.
        self.stack.push_front(object);
        while self.stack.len() > self.max_depth {
            self.stack.pop_back();
        }
        object
    }
}

/// A deterministic stream of `(object, demand)` requests combining the
/// virtual store's popularity with the temporal-locality model — what the
/// experiment driver draws from when spreading a trace bucket into
/// individual requests.
#[derive(Debug, Clone)]
pub struct RequestSampler<'a> {
    store: &'a VirtualStore,
    locality: LocalityModel,
    rng: rand::rngs::StdRng,
}

impl<'a> RequestSampler<'a> {
    /// A sampler over `store` with an explicit locality model and seed.
    pub fn new(store: &'a VirtualStore, locality: LocalityModel, seed: u64) -> Self {
        RequestSampler {
            store,
            locality,
            rng: rand::rngs::StdRng::seed_from_u64(derive_seed(seed, 0x10CA1)),
        }
    }

    /// A sampler with the paper-default locality model.
    pub fn paper_default(store: &'a VirtualStore, seed: u64) -> Self {
        RequestSampler::new(store, LocalityModel::paper_default(), seed)
    }

    /// Draw the next request: object id and its full-speed demand in
    /// seconds.
    pub fn next_request(&mut self) -> (usize, f64) {
        let object = self.locality.next_object(&mut self.rng, self.store);
        (object, self.store.demand(object))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rereferences_have_short_distances() {
        let store = VirtualStore::paper_default(1);
        let mut model = LocalityModel::paper_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        // Warm the stack.
        for _ in 0..1_000 {
            model.next_object(&mut rng, &store);
        }
        // A warmed model should frequently re-reference: the number of
        // distinct objects in a window must be well below the window size.
        let mut seen = std::collections::HashSet::new();
        let window = 2_000;
        for _ in 0..window {
            seen.insert(model.next_object(&mut rng, &store));
        }
        assert!(
            seen.len() < window * 3 / 4,
            "distinct {} of {window} — locality too weak",
            seen.len()
        );
    }

    #[test]
    fn stack_is_bounded() {
        let store = VirtualStore::paper_default(1);
        let mut model = LocalityModel::new(10.0_f64.ln(), 2.0, 64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            model.next_object(&mut rng, &store);
        }
        assert!(model.stack_len() <= 64);
    }

    #[test]
    fn sampler_demands_match_store() {
        let store = VirtualStore::paper_default(4);
        let mut sampler = RequestSampler::paper_default(&store, 5);
        for _ in 0..500 {
            let (obj, demand) = sampler.next_request();
            assert_eq!(demand, store.demand(obj));
            assert!((0.010..=0.025).contains(&demand));
        }
    }

    #[test]
    fn sampler_is_deterministic() {
        let store = VirtualStore::paper_default(4);
        let mut a = RequestSampler::paper_default(&store, 5);
        let mut b = RequestSampler::paper_default(&store, 5);
        for _ in 0..100 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    fn popular_objects_still_dominate_with_locality() {
        let store = VirtualStore::paper_default(6);
        let mut sampler = RequestSampler::paper_default(&store, 7);
        let n = 20_000;
        let popular = (0..n)
            .filter(|_| sampler.next_request().0 < store.popular_count())
            .count();
        // Locality re-references mostly popular objects, so the share
        // should stay at or above the raw 90 %.
        assert!(
            popular as f64 / n as f64 > 0.85,
            "popular share {}",
            popular as f64 / n as f64
        );
    }
}
