use crate::{GridSampler, LookupTable, Quantizer};

/// Read side of a trained cost map: the common surface of the dense-grid
/// and hash-table substrates, so controllers can stay substrate-agnostic.
///
/// `probe` answers the *robust* query (clamped into the trained region),
/// returning `None` only when nothing has been trained.
pub trait CostMap<V> {
    /// Number of key dimensions.
    fn num_dims(&self) -> usize;
    /// Number of trained cells.
    fn len(&self) -> usize;
    /// `true` if nothing has been trained.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Robust lookup for the cell containing `point`, clamping
    /// out-of-region queries to the trained boundary.
    fn probe(&self, point: &[f64]) -> Option<&V>;
}

impl<V: Clone> CostMap<V> for LookupTable<V> {
    fn num_dims(&self) -> usize {
        LookupTable::num_dims(self)
    }
    fn len(&self) -> usize {
        LookupTable::len(self)
    }
    fn probe(&self, point: &[f64]) -> Option<&V> {
        self.get(point)
    }
}

/// One axis of a [`DenseGrid`]: quantization, cell-to-slot mapping and
/// row-major stride.
///
/// Grid points land on cell boundaries, so floating-point rounding can
/// make two adjacent points share a cell (a collision) or skip one (a
/// hole) — exactly the behavior of [`LookupTable`] keys over the same
/// grid. Each axis therefore carries a tiny `slot_of_cell` array over its
/// trained cell range mapping every cell (stored or hole) to a value
/// slot: collisions share a slot (the later-trained point wins, matching
/// hash-insert overwrites) and holes resolve to the slot of the cell
/// below (matching the hash table's L1-nearest-neighbor fallback with its
/// lexicographic-smallest tie-break). Probes stay O(1) and allocation
/// free.
#[derive(Debug, Clone)]
struct DenseDim {
    quant: Quantizer,
    /// First trained cell along this axis.
    cell_min: i64,
    /// Value slot for each cell in `cell_min ..= cell_max`.
    slot_of_cell: Vec<u32>,
    /// Distinct trained cells, slot-indexed (for `iter`).
    cells: Vec<i64>,
    /// Distance between consecutive slots of this axis in `values`.
    stride: usize,
}

/// The abstraction map `g` as a dense rectangular table: flat `Vec<V>`
/// storage indexed by O(1) clamp + stride arithmetic.
///
/// [`LookupTable`] pays a heap-allocated `Vec<i64>` key plus a hash per
/// probe, and falls back to an O(n) nearest-neighbor scan for misses. A
/// grid trained from a rectangular [`GridSampler`] domain needs none of
/// that: with the cell width equal to the grid pitch (see
/// [`GridSampler::cell_steps`]) the trained region is a box in cell
/// space, so a probe is per-axis clamp + slot arithmetic over flat
/// storage. Cell collisions and holes from floating-point boundary
/// rounding are folded into per-axis slot tables at training time (see
/// [`DenseDim`]), reproducing the hash table's overwrite and
/// nearest-neighbor behavior exactly — the substrate-equivalence test
/// holds the two substrates to identical answers on every query.
///
/// Keep [`LookupTable`] for sparse or ragged domains; use `DenseGrid`
/// whenever the domain is a full rectangular grid (the paper's case).
#[derive(Debug, Clone)]
pub struct DenseGrid<V> {
    dims: Vec<DenseDim>,
    values: Vec<V>,
}

impl<V: Send> DenseGrid<V> {
    /// Train a grid by evaluating `f` at every point of `sampler`, in
    /// parallel (deterministic: each point's value lands in its own
    /// pre-computed slot, so the result is identical to a serial build —
    /// and to a [`train_table`](crate::train_table) pass over the same
    /// sampler, including its cell collisions and holes).
    pub fn from_fn(sampler: &GridSampler, f: impl Fn(&[f64]) -> V + Sync) -> Self {
        let nd = sampler.num_dims();
        let mut dims = Vec::with_capacity(nd);
        // Per dimension: the value slot of each *grid step* (pre-dedup),
        // so the commit loop below can turn a flat grid index into a slot
        // index with pure integer arithmetic.
        let mut step_slots: Vec<Vec<usize>> = Vec::with_capacity(nd);
        let mut stride = 1usize;
        for d in 0..nd {
            let (_, _, steps) = sampler.dim(d);
            let quant = Quantizer::new(sampler.spacing(d));
            let full: Vec<i64> = (0..steps)
                .map(|i| quant.cell(sampler.value(d, i)))
                .collect();
            assert!(
                full.windows(2).all(|w| w[0] <= w[1]),
                "grid cells of dimension {d} must be non-decreasing"
            );
            let mut cells = full.clone();
            cells.dedup();
            step_slots.push(
                full.iter()
                    .map(|c| cells.partition_point(|x| x < c))
                    .collect(),
            );
            let cell_min = cells[0];
            let cell_max = *cells.last().expect("at least one cell per dimension");
            let mut slot_of_cell = vec![0u32; (cell_max - cell_min + 1) as usize];
            let mut slot = 0usize;
            for (offset, entry) in slot_of_cell.iter_mut().enumerate() {
                let cell = cell_min + offset as i64;
                if slot + 1 < cells.len() && cells[slot + 1] <= cell {
                    slot += 1;
                }
                // A hole cell (between trained cells) keeps the previous
                // slot: the nearest stored neighbor below, which is what
                // the hash table's tie-broken nearest-neighbor scan picks.
                *entry = slot as u32;
            }
            dims.push(DenseDim {
                quant,
                cell_min,
                slot_of_cell,
                cells,
                stride,
            });
            stride *= dims[d].cells.len();
        }
        let volume = stride;

        // Evaluate every grid point in parallel, then commit the results
        // in grid-enumeration order so colliding cells resolve exactly
        // like repeated hash-table inserts (the later point wins). The
        // slot index is derived from the integer grid index directly — no
        // point reconstruction in the serial tail.
        let raw = llc_par::par_map_range(sampler.count(), |i| f(&sampler.point_at(i)));
        let mut values: Vec<Option<V>> = (0..volume).map(|_| None).collect();
        for (mut grid_idx, v) in raw.into_iter().enumerate() {
            let mut idx = 0usize;
            for (d, dim) in dims.iter().enumerate() {
                let steps = sampler.dim(d).2;
                idx += step_slots[d][grid_idx % steps] * dim.stride;
                grid_idx /= steps;
            }
            values[idx] = Some(v);
        }
        DenseGrid {
            dims,
            values: values
                .into_iter()
                .map(|slot| slot.expect("full grid fills every slot"))
                .collect(),
        }
    }
}

impl<V> DenseGrid<V> {
    /// Number of key dimensions.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored cells (the full grid volume).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the grid holds no cells (cannot happen via
    /// [`DenseGrid::from_fn`]).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Flat index of the cell containing `point`, with each coordinate
    /// clamped into the trained box. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics on key dimension mismatch.
    #[inline]
    pub fn index_of(&self, point: &[f64]) -> usize {
        assert_eq!(point.len(), self.dims.len(), "key dimension mismatch");
        let mut idx = 0usize;
        for (v, dim) in point.iter().zip(&self.dims) {
            let cell = dim.quant.cell(*v);
            let offset = (cell - dim.cell_min).clamp(0, dim.slot_of_cell.len() as i64 - 1);
            idx += dim.slot_of_cell[offset as usize] as usize * dim.stride;
        }
        idx
    }

    /// The value for `point`, clamped into the trained box: O(1), no
    /// allocation, total (a dense grid has no holes).
    #[inline]
    pub fn get_clamped(&self, point: &[f64]) -> &V {
        &self.values[self.index_of(point)]
    }

    /// `true` when every coordinate of `point` falls inside the trained
    /// box (no clamping needed).
    #[inline]
    pub fn contains(&self, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.dims.len(), "key dimension mismatch");
        point.iter().zip(&self.dims).all(|(v, dim)| {
            let cell = dim.quant.cell(*v);
            cell >= dim.cell_min && cell - dim.cell_min < dim.slot_of_cell.len() as i64
        })
    }

    /// Iterate stored `(cell_centers, value)` pairs (mirror of
    /// [`LookupTable::iter`]).
    pub fn iter(&self) -> impl Iterator<Item = (Vec<f64>, &V)> + '_ {
        self.values.iter().enumerate().map(move |(mut idx, v)| {
            let centers = self
                .dims
                .iter()
                .map(|dim| {
                    let slot = idx % dim.cells.len();
                    idx /= dim.cells.len();
                    dim.quant.center(dim.cells[slot])
                })
                .collect();
            (centers, v)
        })
    }
}

impl<V> CostMap<V> for DenseGrid<V> {
    fn num_dims(&self) -> usize {
        DenseGrid::num_dims(self)
    }
    fn len(&self) -> usize {
        DenseGrid::len(self)
    }
    fn probe(&self, point: &[f64]) -> Option<&V> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.get_clamped(point))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train_table;

    fn grid_2d() -> (GridSampler, DenseGrid<f64>) {
        let sampler = GridSampler::new(vec![(0.0, 4.0, 5), (10.0, 30.0, 3)]);
        let grid = DenseGrid::from_fn(&sampler, |p| p[0] * 100.0 + p[1]);
        (sampler, grid)
    }

    #[test]
    fn exact_points_roundtrip() {
        let (sampler, grid) = grid_2d();
        assert_eq!(grid.len(), 15);
        assert_eq!(grid.num_dims(), 2);
        for p in sampler.points() {
            assert_eq!(*grid.get_clamped(&p), p[0] * 100.0 + p[1]);
            assert!(grid.contains(&p));
        }
    }

    #[test]
    fn out_of_grid_clamps_to_edge() {
        let (_, grid) = grid_2d();
        assert_eq!(*grid.get_clamped(&[100.0, -5.0]), 410.0);
        assert_eq!(*grid.get_clamped(&[-3.0, 99.0]), 30.0);
        assert!(!grid.contains(&[100.0, -5.0]));
    }

    #[test]
    fn matches_hash_table_on_shared_domain() {
        let sampler = GridSampler::new(vec![(0.0, 10.0, 11), (0.5, 2.5, 5)]);
        let f = |p: &[f64]| p[0] * 7.0 - p[1];
        let dense = DenseGrid::from_fn(&sampler, f);
        let hash = train_table(&sampler, &sampler.cell_steps(), f);
        for p in sampler.points() {
            assert_eq!(hash.get_exact(&p), Some(dense.get_clamped(&p)));
        }
        // Off-grid queries agree through the clamp path.
        for q in [
            [-5.0, 1.0],
            [25.0, 1.7],
            [3.3, -9.0],
            [8.1, 99.0],
            [-1.0, -1.0],
            [99.0, 99.0],
        ] {
            assert_eq!(hash.get(&q), dense.probe(&q), "query {q:?}");
        }
    }

    #[test]
    fn single_step_dimension() {
        let sampler = GridSampler::new(vec![(2.0, 4.0, 1), (0.0, 1.0, 2)]);
        let grid = DenseGrid::from_fn(&sampler, |p| p[0] + p[1]);
        assert_eq!(grid.len(), 2);
        // The lone point of dim 0 is its midpoint, 3.0.
        assert_eq!(*grid.get_clamped(&[3.0, 0.0]), 3.0);
        assert_eq!(*grid.get_clamped(&[-10.0, 5.0]), 4.0);
    }

    #[test]
    fn iter_reports_cell_centers() {
        let sampler = GridSampler::new(vec![(0.0, 2.0, 3)]);
        let grid = DenseGrid::from_fn(&sampler, |p| p[0]);
        let items: Vec<(Vec<f64>, &f64)> = grid.iter().collect();
        assert_eq!(items.len(), 3);
        // Cells are [0,1), [1,2), [2,3): centers at 0.5, 1.5, 2.5.
        assert!((items[0].0[0] - 0.5).abs() < 1e-12);
        assert!((items[2].0[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_key_length_panics() {
        let (_, grid) = grid_2d();
        let _ = grid.get_clamped(&[1.0]);
    }
}
