use crate::{Blend, BlendConfig, GridSampler, LookupTable, Quantizer};

/// The common surface of the dense-grid and hash-table substrates, so
/// controllers can stay substrate-agnostic: robust reads plus the online
/// (incremental) update path.
///
/// `probe` answers the *robust* query (clamped into the trained region),
/// returning `None` only when nothing has been trained. `update` is the
/// §6-outlook write path: blend the cell a realized outcome landed in
/// toward that outcome, so the map self-corrects under drift without an
/// offline retraining pass. The substrates differ on never-trained keys —
/// see each implementation.
pub trait CostMap<V> {
    /// Number of key dimensions.
    fn num_dims(&self) -> usize;
    /// Number of trained cells.
    fn len(&self) -> usize;
    /// `true` if nothing has been trained.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Robust lookup for the cell containing `point`, clamping
    /// out-of-region queries to the trained boundary.
    fn probe(&self, point: &[f64]) -> Option<&V>;
    /// Blend the cell containing `point` toward an observed `target`
    /// outcome, with the weight from `cfg` and the cell's accumulated
    /// confidence. Returns the weight actually applied — `0.0` when the
    /// observation was skipped (see each substrate's out-of-region
    /// policy), `1.0` when it replaced the cell outright.
    fn update(&mut self, point: &[f64], target: &V, cfg: &BlendConfig) -> f64
    where
        V: Blend;
    /// Staleness sweep: multiply every cell's online confidence count by
    /// `factor ∈ [0, 1]`, so cells that stop being visited become quick
    /// to re-adapt when traffic returns to them.
    fn decay_confidence(&mut self, factor: f64);
    /// Online observations currently credited to the cell containing
    /// `point` (0.0 for never-updated or out-of-region cells).
    fn confidence(&self, point: &[f64]) -> f64;
    /// Visit every stored cell that has absorbed at least
    /// `min_confidence` online observations (and at least one), as
    /// `(cell center, value, confidence)` — the reseed surface of the
    /// retrain hot-swap: cells the plant has actually visited carry
    /// *measured* truth worth carrying into a freshly rebuilt map, while
    /// offline-only cells are exactly what the rebuild replaces.
    /// Iteration order is deterministic (slot order on the dense grid,
    /// sorted cell keys on the hash table), so re-applying the visited
    /// cells into another map is reproducible.
    fn for_each_confident(&self, min_confidence: f64, f: &mut dyn FnMut(&[f64], &V, f64));
}

impl<V: Clone> CostMap<V> for LookupTable<V> {
    fn num_dims(&self) -> usize {
        LookupTable::num_dims(self)
    }
    fn len(&self) -> usize {
        LookupTable::len(self)
    }
    fn probe(&self, point: &[f64]) -> Option<&V> {
        self.get(point)
    }
    /// Insert-or-blend: a key whose cell already exists blends toward the
    /// target; a never-trained cell (inside a hole, or beyond the trained
    /// ranges) is *inserted* at full weight — the hash substrate grows
    /// its coverage from observed traffic, which is what makes it the
    /// natural home for online learning over sparse or ragged domains.
    fn update(&mut self, point: &[f64], target: &V, cfg: &BlendConfig) -> f64
    where
        V: Blend,
    {
        LookupTable::update(self, point, target, cfg)
    }
    fn decay_confidence(&mut self, factor: f64) {
        LookupTable::decay_confidence(self, factor);
    }
    fn confidence(&self, point: &[f64]) -> f64 {
        LookupTable::confidence(self, point)
    }
    fn for_each_confident(&self, min_confidence: f64, f: &mut dyn FnMut(&[f64], &V, f64)) {
        LookupTable::for_each_confident(self, min_confidence, f);
    }
}

/// One axis of a [`DenseGrid`]: quantization, cell-to-slot mapping and
/// row-major stride.
///
/// Grid points land on cell boundaries, so floating-point rounding can
/// make two adjacent points share a cell (a collision) or skip one (a
/// hole) — exactly the behavior of [`LookupTable`] keys over the same
/// grid. Each axis therefore carries a tiny `slot_of_cell` array over its
/// trained cell range mapping every cell (stored or hole) to a value
/// slot: collisions share a slot (the later-trained point wins, matching
/// hash-insert overwrites) and holes resolve to the slot of the cell
/// below (matching the hash table's L1-nearest-neighbor fallback with its
/// lexicographic-smallest tie-break). Probes stay O(1) and allocation
/// free.
#[derive(Debug, Clone)]
struct DenseDim {
    quant: Quantizer,
    /// First trained cell along this axis.
    cell_min: i64,
    /// Value slot for each cell in `cell_min ..= cell_max`.
    slot_of_cell: Vec<u32>,
    /// Distinct trained cells, slot-indexed (for `iter`).
    cells: Vec<i64>,
    /// Distance between consecutive slots of this axis in `values`.
    stride: usize,
}

/// The abstraction map `g` as a dense rectangular table: flat `Vec<V>`
/// storage indexed by O(1) clamp + stride arithmetic.
///
/// [`LookupTable`] pays a heap-allocated `Vec<i64>` key plus a hash per
/// probe, and falls back to an O(n) nearest-neighbor scan for misses. A
/// grid trained from a rectangular [`GridSampler`] domain needs none of
/// that: with the cell width equal to the grid pitch (see
/// [`GridSampler::cell_steps`]) the trained region is a box in cell
/// space, so a probe is per-axis clamp + slot arithmetic over flat
/// storage. Cell collisions and holes from floating-point boundary
/// rounding are folded into per-axis slot tables at training time (see
/// `DenseDim`), reproducing the hash table's overwrite and
/// nearest-neighbor behavior exactly — the substrate-equivalence test
/// holds the two substrates to identical answers on every query.
///
/// Keep [`LookupTable`] for sparse or ragged domains; use `DenseGrid`
/// whenever the domain is a full rectangular grid (the paper's case).
#[derive(Debug, Clone)]
pub struct DenseGrid<V> {
    dims: Vec<DenseDim>,
    values: Vec<V>,
    /// Online observations absorbed per value slot (0.0 = offline prior
    /// only). Shrunk by the staleness sweep so idle cells re-adapt fast.
    confidence: Vec<f64>,
}

impl<V: Send> DenseGrid<V> {
    /// Train a grid by evaluating `f` at every point of `sampler`, in
    /// parallel (deterministic: each point's value lands in its own
    /// pre-computed slot, so the result is identical to a serial build —
    /// and to a [`train_table`](crate::train_table) pass over the same
    /// sampler, including its cell collisions and holes).
    pub fn from_fn(sampler: &GridSampler, f: impl Fn(&[f64]) -> V + Sync) -> Self {
        let nd = sampler.num_dims();
        let mut dims = Vec::with_capacity(nd);
        // Per dimension: the value slot of each *grid step* (pre-dedup),
        // so the commit loop below can turn a flat grid index into a slot
        // index with pure integer arithmetic.
        let mut step_slots: Vec<Vec<usize>> = Vec::with_capacity(nd);
        let mut stride = 1usize;
        for d in 0..nd {
            let (_, _, steps) = sampler.dim(d);
            let quant = Quantizer::new(sampler.spacing(d));
            let full: Vec<i64> = (0..steps)
                .map(|i| quant.cell(sampler.value(d, i)))
                .collect();
            assert!(
                full.windows(2).all(|w| w[0] <= w[1]),
                "grid cells of dimension {d} must be non-decreasing"
            );
            let mut cells = full.clone();
            cells.dedup();
            step_slots.push(
                full.iter()
                    .map(|c| cells.partition_point(|x| x < c))
                    .collect(),
            );
            let cell_min = cells[0];
            let cell_max = *cells.last().expect("at least one cell per dimension");
            let mut slot_of_cell = vec![0u32; (cell_max - cell_min + 1) as usize];
            let mut slot = 0usize;
            for (offset, entry) in slot_of_cell.iter_mut().enumerate() {
                let cell = cell_min + offset as i64;
                if slot + 1 < cells.len() && cells[slot + 1] <= cell {
                    slot += 1;
                }
                // A hole cell (between trained cells) keeps the previous
                // slot: the nearest stored neighbor below, which is what
                // the hash table's tie-broken nearest-neighbor scan picks.
                *entry = slot as u32;
            }
            dims.push(DenseDim {
                quant,
                cell_min,
                slot_of_cell,
                cells,
                stride,
            });
            stride *= dims[d].cells.len();
        }
        let volume = stride;

        // Evaluate every grid point in parallel, then commit the results
        // in grid-enumeration order so colliding cells resolve exactly
        // like repeated hash-table inserts (the later point wins). The
        // slot index is derived from the integer grid index directly — no
        // point reconstruction in the serial tail.
        let raw = llc_par::par_map_range(sampler.count(), |i| f(&sampler.point_at(i)));
        let mut values: Vec<Option<V>> = (0..volume).map(|_| None).collect();
        for (mut grid_idx, v) in raw.into_iter().enumerate() {
            let mut idx = 0usize;
            for (d, dim) in dims.iter().enumerate() {
                let steps = sampler.dim(d).2;
                idx += step_slots[d][grid_idx % steps] * dim.stride;
                grid_idx /= steps;
            }
            values[idx] = Some(v);
        }
        DenseGrid {
            dims,
            values: values
                .into_iter()
                .map(|slot| slot.expect("full grid fills every slot"))
                .collect(),
            confidence: vec![0.0; volume],
        }
    }
}

impl<V> DenseGrid<V> {
    /// Number of key dimensions.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored cells (the full grid volume).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the grid holds no cells (cannot happen via
    /// [`DenseGrid::from_fn`]).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Flat index of the cell containing `point`, with each coordinate
    /// clamped into the trained box. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics on key dimension mismatch.
    #[inline]
    pub fn index_of(&self, point: &[f64]) -> usize {
        assert_eq!(point.len(), self.dims.len(), "key dimension mismatch");
        let mut idx = 0usize;
        for (v, dim) in point.iter().zip(&self.dims) {
            let cell = dim.quant.cell(*v);
            let offset = (cell - dim.cell_min).clamp(0, dim.slot_of_cell.len() as i64 - 1);
            idx += dim.slot_of_cell[offset as usize] as usize * dim.stride;
        }
        idx
    }

    /// The value for `point`, clamped into the trained box: O(1), no
    /// allocation, total (a dense grid has no holes).
    #[inline]
    pub fn get_clamped(&self, point: &[f64]) -> &V {
        &self.values[self.index_of(point)]
    }

    /// `true` when every coordinate of `point` falls inside the trained
    /// box (no clamping needed).
    #[inline]
    pub fn contains(&self, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.dims.len(), "key dimension mismatch");
        point.iter().zip(&self.dims).all(|(v, dim)| {
            let cell = dim.quant.cell(*v);
            cell >= dim.cell_min && cell - dim.cell_min < dim.slot_of_cell.len() as i64
        })
    }

    /// Iterate stored `(cell_centers, value)` pairs (mirror of
    /// [`LookupTable::iter`]).
    pub fn iter(&self) -> impl Iterator<Item = (Vec<f64>, &V)> + '_ {
        self.values.iter().enumerate().map(move |(mut idx, v)| {
            let centers = self
                .dims
                .iter()
                .map(|dim| {
                    let slot = idx % dim.cells.len();
                    idx /= dim.cells.len();
                    dim.quant.center(dim.cells[slot])
                })
                .collect();
            (centers, v)
        })
    }
}

impl<V> DenseGrid<V> {
    /// Project one scalar field of every cell into a [`DenseSlab`]: a
    /// struct-of-arrays view sharing this grid's exact quantization and
    /// slot layout, so `slab.get_clamped(p) == f(grid.get_clamped(p))`
    /// bit for bit on every query. Batch consumers (the L1 γ-lane
    /// evaluation) use the split base/axis indexing to sweep one axis of
    /// the slab with the other axes' slot arithmetic hoisted out of the
    /// loop.
    pub fn project(&self, f: impl Fn(&V) -> f64) -> DenseSlab {
        DenseSlab {
            dims: self
                .dims
                .iter()
                .map(|d| SlabDim {
                    quant: d.quant,
                    cell_min: d.cell_min,
                    slot_of_cell: d.slot_of_cell.clone(),
                    stride: d.stride,
                })
                .collect(),
            values: self.values.iter().map(f).collect(),
        }
    }
}

/// One axis of a [`DenseSlab`]: the quantization and cell-to-slot
/// metadata of the source grid's axis (see `DenseDim`), without the
/// per-slot cell list the slab never needs.
#[derive(Debug, Clone)]
struct SlabDim {
    quant: Quantizer,
    cell_min: i64,
    slot_of_cell: Vec<u32>,
    stride: usize,
}

/// A flat `f64` slab projected from one field of a [`DenseGrid`]
/// (see [`DenseGrid::project`]): same dimensions, same clamp-and-stride
/// indexing, contiguous scalar storage.
///
/// The point of the projection is *lane* access: a sweep that varies one
/// coordinate while the others stay fixed computes the fixed axes' slot
/// contribution once ([`DenseSlab::fixed_base`]) and then walks the
/// varying axis with a single quantize-clamp-add per step
/// ([`DenseSlab::axis_offset`]) over memory that holds nothing but the
/// field being summed — the auto-vectorizable shape the full
/// struct-of-`GEntry` grid cannot offer.
#[derive(Debug, Clone)]
pub struct DenseSlab {
    dims: Vec<SlabDim>,
    values: Vec<f64>,
}

impl DenseSlab {
    /// Number of key dimensions.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the slab holds no cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The flat-index contribution of coordinate `v` along `axis`
    /// (clamped into the trained range), i.e. `slot(v) · stride(axis)`.
    #[inline]
    pub fn axis_offset(&self, axis: usize, v: f64) -> usize {
        let dim = &self.dims[axis];
        let cell = dim.quant.cell(v);
        let offset = (cell - dim.cell_min).clamp(0, dim.slot_of_cell.len() as i64 - 1);
        dim.slot_of_cell[offset as usize] as usize * dim.stride
    }

    /// Sum of the flat-index contributions of every axis *except* `vary`
    /// at `point` — the loop-invariant part of a lane sweep along axis
    /// `vary` (whose coordinate in `point` is ignored).
    ///
    /// # Panics
    ///
    /// Panics on key dimension mismatch.
    #[inline]
    pub fn fixed_base(&self, point: &[f64], vary: usize) -> usize {
        assert_eq!(point.len(), self.dims.len(), "key dimension mismatch");
        point
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != vary)
            .map(|(d, &v)| self.axis_offset(d, v))
            .sum()
    }

    /// The stored value at flat index `idx` (as composed from
    /// [`DenseSlab::fixed_base`] + [`DenseSlab::axis_offset`]).
    #[inline]
    pub fn value(&self, idx: usize) -> f64 {
        self.values[idx]
    }

    /// The value for `point`, clamped into the trained box — identical
    /// to the source grid's [`DenseGrid::get_clamped`] on the projected
    /// field.
    ///
    /// # Panics
    ///
    /// Panics on key dimension mismatch.
    #[inline]
    pub fn get_clamped(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.dims.len(), "key dimension mismatch");
        let idx: usize = point
            .iter()
            .enumerate()
            .map(|(d, &v)| self.axis_offset(d, v))
            .sum();
        self.values[idx]
    }
}

impl<V> CostMap<V> for DenseGrid<V> {
    fn num_dims(&self) -> usize {
        DenseGrid::num_dims(self)
    }
    fn len(&self) -> usize {
        DenseGrid::len(self)
    }
    fn probe(&self, point: &[f64]) -> Option<&V> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.get_clamped(point))
        }
    }
    /// In-box blending only: an outcome observed *outside* the trained
    /// box is dropped (weight 0.0) rather than blended into the edge cell
    /// it would clamp to — edge cells answer every clamped query, so
    /// corrupting them with out-of-region outcomes would poison the whole
    /// overload tail. The grid cannot grow; out-of-region adaptation is
    /// the hash substrate's trade (see `LookupTable`).
    fn update(&mut self, point: &[f64], target: &V, cfg: &BlendConfig) -> f64
    where
        V: Blend,
    {
        if self.values.is_empty() || !self.contains(point) {
            return 0.0;
        }
        let idx = self.index_of(point);
        let w = cfg.weight(self.confidence[idx]);
        self.values[idx].blend(target, w);
        self.confidence[idx] += 1.0;
        w
    }
    /// Batched over `llc-par`: the counters are one flat slab, so the
    /// sweep splits into disjoint chunks (bit-identical to the serial
    /// loop) — cheap enough to run every few control periods even on
    /// production-sized grids.
    fn decay_confidence(&mut self, factor: f64) {
        let factor = factor.clamp(0.0, 1.0);
        llc_par::par_for_each_mut(&mut self.confidence, |c| *c *= factor);
    }
    fn confidence(&self, point: &[f64]) -> f64 {
        if self.values.is_empty() || !self.contains(point) {
            0.0
        } else {
            self.confidence[self.index_of(point)]
        }
    }
    fn for_each_confident(&self, min_confidence: f64, f: &mut dyn FnMut(&[f64], &V, f64)) {
        let mut centers = vec![0.0; self.dims.len()];
        for (slot, (v, &conf)) in self.values.iter().zip(&self.confidence).enumerate() {
            if conf <= 0.0 || conf < min_confidence {
                continue;
            }
            let mut idx = slot;
            for (d, dim) in self.dims.iter().enumerate() {
                centers[d] = dim.quant.center(dim.cells[idx % dim.cells.len()]);
                idx /= dim.cells.len();
            }
            f(&centers, v, conf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train_table;

    fn grid_2d() -> (GridSampler, DenseGrid<f64>) {
        let sampler = GridSampler::new(vec![(0.0, 4.0, 5), (10.0, 30.0, 3)]);
        let grid = DenseGrid::from_fn(&sampler, |p| p[0] * 100.0 + p[1]);
        (sampler, grid)
    }

    #[test]
    fn exact_points_roundtrip() {
        let (sampler, grid) = grid_2d();
        assert_eq!(grid.len(), 15);
        assert_eq!(grid.num_dims(), 2);
        for p in sampler.points() {
            assert_eq!(*grid.get_clamped(&p), p[0] * 100.0 + p[1]);
            assert!(grid.contains(&p));
        }
    }

    #[test]
    fn out_of_grid_clamps_to_edge() {
        let (_, grid) = grid_2d();
        assert_eq!(*grid.get_clamped(&[100.0, -5.0]), 410.0);
        assert_eq!(*grid.get_clamped(&[-3.0, 99.0]), 30.0);
        assert!(!grid.contains(&[100.0, -5.0]));
    }

    #[test]
    fn matches_hash_table_on_shared_domain() {
        let sampler = GridSampler::new(vec![(0.0, 10.0, 11), (0.5, 2.5, 5)]);
        let f = |p: &[f64]| p[0] * 7.0 - p[1];
        let dense = DenseGrid::from_fn(&sampler, f);
        let hash = train_table(&sampler, &sampler.cell_steps(), f);
        for p in sampler.points() {
            assert_eq!(hash.get_exact(&p), Some(dense.get_clamped(&p)));
        }
        // Off-grid queries agree through the clamp path.
        for q in [
            [-5.0, 1.0],
            [25.0, 1.7],
            [3.3, -9.0],
            [8.1, 99.0],
            [-1.0, -1.0],
            [99.0, 99.0],
        ] {
            assert_eq!(hash.get(&q), dense.probe(&q), "query {q:?}");
        }
    }

    #[test]
    fn single_step_dimension() {
        let sampler = GridSampler::new(vec![(2.0, 4.0, 1), (0.0, 1.0, 2)]);
        let grid = DenseGrid::from_fn(&sampler, |p| p[0] + p[1]);
        assert_eq!(grid.len(), 2);
        // The lone point of dim 0 is its midpoint, 3.0.
        assert_eq!(*grid.get_clamped(&[3.0, 0.0]), 3.0);
        assert_eq!(*grid.get_clamped(&[-10.0, 5.0]), 4.0);
    }

    #[test]
    fn iter_reports_cell_centers() {
        let sampler = GridSampler::new(vec![(0.0, 2.0, 3)]);
        let grid = DenseGrid::from_fn(&sampler, |p| p[0]);
        let items: Vec<(Vec<f64>, &f64)> = grid.iter().collect();
        assert_eq!(items.len(), 3);
        // Cells are [0,1), [1,2), [2,3): centers at 0.5, 1.5, 2.5.
        assert!((items[0].0[0] - 0.5).abs() < 1e-12);
        assert!((items[2].0[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_key_length_panics() {
        let (_, grid) = grid_2d();
        let _ = grid.get_clamped(&[1.0]);
    }

    #[test]
    fn update_blends_toward_target_with_confidence() {
        let (_, mut grid) = grid_2d();
        let cfg = BlendConfig::new(0.25, 3.0);
        let p = [2.0, 20.0];
        let before = *grid.get_clamped(&p);
        // Fresh cell: w = 1 / (3 + 0 + 1) = 0.25.
        let w = grid.update(&p, &1000.0, &cfg);
        assert!((w - 0.25).abs() < 1e-12);
        let after = *grid.get_clamped(&p);
        assert!((after - (before + 0.25 * (1000.0 - before))).abs() < 1e-9);
        assert_eq!(CostMap::confidence(&grid, &p), 1.0);
        // Repeated updates converge onto the target.
        for _ in 0..60 {
            grid.update(&p, &1000.0, &cfg);
        }
        assert!((grid.get_clamped(&p) - 1000.0).abs() < 1e-3);
        // Other cells untouched.
        assert_eq!(*grid.get_clamped(&[0.0, 10.0]), 10.0);
    }

    #[test]
    fn out_of_box_update_is_dropped() {
        let (_, mut grid) = grid_2d();
        let edge_before = *grid.get_clamped(&[100.0, 99.0]);
        let w = grid.update(&[100.0, 99.0], &1e9, &BlendConfig::default());
        assert_eq!(w, 0.0, "out-of-box outcomes must not corrupt edge cells");
        assert_eq!(*grid.get_clamped(&[100.0, 99.0]), edge_before);
        assert_eq!(CostMap::confidence(&grid, &[100.0, 99.0]), 0.0);
    }

    #[test]
    fn slab_projection_matches_grid_field() {
        let (sampler, grid) = grid_2d();
        let slab = grid.project(|v| *v);
        assert_eq!(slab.len(), grid.len());
        assert_eq!(slab.num_dims(), 2);
        assert!(!slab.is_empty());
        for p in sampler.points() {
            assert_eq!(slab.get_clamped(&p), *grid.get_clamped(&p));
        }
        // Clamped (out-of-box) queries agree too.
        for q in [[-5.0, 1.0], [100.0, -5.0], [2.3, 99.0]] {
            assert_eq!(slab.get_clamped(&q), *grid.get_clamped(&q));
        }
        // Lane indexing: fixed base + varying-axis offset reproduces the
        // full clamped lookup along dimension 0.
        let base = slab.fixed_base(&[0.0, 20.0], 0);
        for x in [0.0, 1.0, 2.0, 3.9, 50.0] {
            let idx = base + slab.axis_offset(0, x);
            assert_eq!(slab.value(idx), slab.get_clamped(&[x, 20.0]));
        }
    }

    #[test]
    fn decay_shrinks_confidence() {
        let (_, mut grid) = grid_2d();
        let cfg = BlendConfig::default();
        let p = [1.0, 10.0];
        for _ in 0..4 {
            grid.update(&p, &5.0, &cfg);
        }
        assert_eq!(CostMap::confidence(&grid, &p), 4.0);
        grid.decay_confidence(0.5);
        assert!((CostMap::confidence(&grid, &p) - 2.0).abs() < 1e-12);
        grid.decay_confidence(0.0);
        assert_eq!(CostMap::confidence(&grid, &p), 0.0);
    }
}
