use crate::{DenseGrid, LookupTable, Quantizer, RegressionTree, TreeConfig, TreeError};

/// A rectangular grid sampler over a continuous input domain: each
/// dimension is `(lo, hi, steps)` and the full cartesian product is
/// enumerated — the "quantized approximation of the domain of ω" the
/// paper trains its abstraction map over.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSampler {
    dims: Vec<(f64, f64, usize)>,
}

impl GridSampler {
    /// A sampler over the given `(lo, hi, steps)` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if a dimension has `steps == 0` or `lo > hi`.
    pub fn new(dims: Vec<(f64, f64, usize)>) -> Self {
        assert!(!dims.is_empty(), "need at least one dimension");
        for &(lo, hi, steps) in &dims {
            assert!(steps >= 1, "each dimension needs at least one step");
            assert!(lo <= hi, "dimension bounds inverted");
        }
        GridSampler { dims }
    }

    /// Number of dimensions.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of grid points.
    pub fn count(&self) -> usize {
        self.dims.iter().map(|&(_, _, s)| s).product()
    }

    /// The `(lo, hi, steps)` description of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn dim(&self, d: usize) -> (f64, f64, usize) {
        self.dims[d]
    }

    /// Value of dimension `d` at step `i` (inclusive endpoints; a single
    /// step yields the midpoint).
    pub fn value(&self, d: usize, i: usize) -> f64 {
        let (lo, hi, steps) = self.dims[d];
        if steps == 1 {
            0.5 * (lo + hi)
        } else {
            lo + (hi - lo) * i as f64 / (steps - 1) as f64
        }
    }

    /// The grid pitch of dimension `d` — and therefore the *only* correct
    /// quantization cell width for a table trained over this sampler.
    ///
    /// A cell width differing from the point spacing leaves hole cells
    /// between trained points (queries then fall through to distant
    /// nearest-neighbors); deriving the width here, next to the sampler,
    /// keeps the two from ever desynchronizing. Degenerate dimensions
    /// (one step, or zero width) get a unit-width cell around their single
    /// value.
    pub fn spacing(&self, d: usize) -> f64 {
        let (lo, hi, steps) = self.dims[d];
        if steps <= 1 || hi <= lo {
            (hi - lo).max(1.0)
        } else {
            (hi - lo) / (steps - 1) as f64
        }
    }

    /// Per-dimension quantization cell widths matching the grid pitch —
    /// the `cell_steps` argument [`train_table`] expects.
    pub fn cell_steps(&self) -> Vec<f64> {
        (0..self.dims.len()).map(|d| self.spacing(d)).collect()
    }

    /// The grid point at flat index `idx` (dimension 0 varies fastest,
    /// matching the enumeration order of [`GridSampler::points`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.count()`.
    pub fn point_at(&self, mut idx: usize) -> Vec<f64> {
        assert!(idx < self.count(), "grid index out of range");
        (0..self.dims.len())
            .map(|d| {
                let steps = self.dims[d].2;
                let i = idx % steps;
                idx /= steps;
                self.value(d, i)
            })
            .collect()
    }

    /// Enumerate all grid points.
    pub fn points(&self) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(self.count());
        let mut idx = vec![0usize; self.dims.len()];
        loop {
            out.push(
                idx.iter()
                    .enumerate()
                    .map(|(d, &i)| self.value(d, i))
                    .collect(),
            );
            // Odometer increment.
            let mut d = 0;
            loop {
                idx[d] += 1;
                if idx[d] < self.dims[d].2 {
                    break;
                }
                idx[d] = 0;
                d += 1;
                if d == self.dims.len() {
                    return out;
                }
            }
        }
    }
}

/// Train a [`LookupTable`] by evaluating `f` at every grid point: the
/// simulation-based learning step behind the L1 abstraction map `g`.
/// `cell_steps` supplies the per-dimension quantization of the table keys.
///
/// # Panics
///
/// Panics if `cell_steps` length differs from the sampler's dimensions.
pub fn train_table<V: Clone>(
    sampler: &GridSampler,
    cell_steps: &[f64],
    mut f: impl FnMut(&[f64]) -> V,
) -> LookupTable<V> {
    assert_eq!(
        cell_steps.len(),
        sampler.num_dims(),
        "one cell step per grid dimension required"
    );
    let mut table = LookupTable::new(cell_steps.iter().map(|&s| Quantizer::new(s)).collect());
    for p in sampler.points() {
        let v = f(&p);
        table.insert(&p, v);
    }
    table
}

/// Train a [`DenseGrid`] by evaluating `f` at every grid point, in
/// parallel. The cell widths are derived from the sampler itself
/// ([`GridSampler::cell_steps`]), so grid pitch and quantization cannot
/// desynchronize. This is the fast path for the L1 abstraction map `g`;
/// [`train_table`] remains for sparse or ragged domains.
pub fn train_dense<V: Send>(sampler: &GridSampler, f: impl Fn(&[f64]) -> V + Sync) -> DenseGrid<V> {
    DenseGrid::from_fn(sampler, f)
}

/// Train a [`RegressionTree`] by evaluating `f` at every grid point (in
/// parallel): the paper's L2 pipeline ("a module is first simulated and
/// the corresponding cost values stored in a large lookup table. This
/// table is then used to train a regression tree").
///
/// # Errors
///
/// Propagates [`TreeError`] from the fit (only possible with a degenerate
/// sampler).
pub fn train_tree(
    sampler: &GridSampler,
    config: TreeConfig,
    f: impl Fn(&[f64]) -> f64 + Sync,
) -> Result<RegressionTree, TreeError> {
    let xs = sampler.points();
    let ys: Vec<f64> = llc_par::par_map(&xs, |p| f(p));
    RegressionTree::fit(&xs, &ys, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_count_and_bounds() {
        let g = GridSampler::new(vec![(0.0, 1.0, 3), (10.0, 20.0, 2)]);
        assert_eq!(g.count(), 6);
        let pts = g.points();
        assert_eq!(pts.len(), 6);
        assert!(pts.contains(&vec![0.0, 10.0]));
        assert!(pts.contains(&vec![1.0, 20.0]));
        assert!(pts.contains(&vec![0.5, 10.0]));
    }

    #[test]
    fn single_step_dimension_uses_midpoint() {
        let g = GridSampler::new(vec![(2.0, 4.0, 1)]);
        assert_eq!(g.points(), vec![vec![3.0]]);
    }

    #[test]
    fn trained_table_answers_on_and_off_grid() {
        let g = GridSampler::new(vec![(0.0, 10.0, 11)]);
        let table = train_table(&g, &[1.0], |p| p[0] * 2.0);
        // On-grid exact.
        assert_eq!(table.get(&[4.0]), Some(&8.0));
        // Off-grid clamps/nearest.
        assert_eq!(table.get(&[100.0]), Some(&20.0));
        assert_eq!(table.len(), 11);
    }

    #[test]
    fn trained_tree_approximates_function() {
        let g = GridSampler::new(vec![(0.0, 1.0, 25), (0.0, 1.0, 25)]);
        let tree = train_tree(&g, TreeConfig::default(), |p| 3.0 * p[0] - p[1]).unwrap();
        let err = (tree.predict(&[0.7, 0.2]) - (3.0 * 0.7 - 0.2)).abs();
        assert!(err < 0.2, "error {err}");
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_bounds_panic() {
        let _ = GridSampler::new(vec![(1.0, 0.0, 5)]);
    }
}
