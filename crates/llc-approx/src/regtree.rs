use std::fmt;

/// Errors from regression-tree training.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// No training samples were supplied.
    EmptyTrainingSet,
    /// Feature vectors have inconsistent lengths (or zero length).
    RaggedFeatures,
    /// Targets and features differ in count.
    LengthMismatch,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::EmptyTrainingSet => write!(f, "training set is empty"),
            TreeError::RaggedFeatures => write!(f, "feature vectors are ragged or empty"),
            TreeError::LengthMismatch => write!(f, "feature and target counts differ"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Training hyper-parameters for [`RegressionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_leaf: 4,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        prediction: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A CART regression tree (Breiman et al., the paper's ref. 11).
///
/// "We use a compact regression tree to store J̃ values … A module is
/// first simulated and the corresponding cost values stored in a large
/// lookup table. This table is then used to train a regression tree"
/// (§5.1). Splits minimize the summed squared error of the two children;
/// growth stops at `max_depth`, `min_leaf`, or zero variance.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl RegressionTree {
    /// Fit a tree on feature matrix `xs` (row per sample) and targets `ys`.
    ///
    /// # Errors
    ///
    /// [`TreeError`] variants on empty/ragged/mismatched input.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: TreeConfig) -> Result<Self, TreeError> {
        if xs.is_empty() {
            return Err(TreeError::EmptyTrainingSet);
        }
        if xs.len() != ys.len() {
            return Err(TreeError::LengthMismatch);
        }
        let num_features = xs[0].len();
        if num_features == 0 || xs.iter().any(|x| x.len() != num_features) {
            return Err(TreeError::RaggedFeatures);
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            num_features,
        };
        let indices: Vec<usize> = (0..xs.len()).collect();
        tree.grow(xs, ys, indices, 0, &config);
        Ok(tree)
    }

    /// Number of input features expected by [`RegressionTree::predict`].
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Total node count (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Predict the target for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_features, "feature count mismatch");
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { prediction } => return *prediction,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Mean squared error over a labelled set.
    ///
    /// # Panics
    ///
    /// Panics if the sets are empty or mismatched.
    pub fn mse(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        assert!(
            !xs.is_empty() && xs.len() == ys.len(),
            "invalid evaluation set"
        );
        xs.iter()
            .zip(ys)
            .map(|(x, y)| (self.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64
    }

    /// Grow a subtree over `indices`; returns the new node's index.
    fn grow(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        indices: Vec<usize>,
        depth: usize,
        config: &TreeConfig,
    ) -> usize {
        let mean = indices.iter().map(|&i| ys[i]).sum::<f64>() / indices.len() as f64;
        let sse: f64 = indices.iter().map(|&i| (ys[i] - mean).powi(2)).sum();

        let make_leaf =
            depth >= config.max_depth || indices.len() < 2 * config.min_leaf || sse < 1e-12;
        if !make_leaf {
            if let Some((feature, threshold)) = self.best_split(xs, ys, &indices, config) {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| xs[i][feature] <= threshold);
                // Reserve our slot, then grow the children.
                let me = self.nodes.len();
                self.nodes.push(Node::Leaf { prediction: mean });
                let left = self.grow(xs, ys, left_idx, depth + 1, config);
                let right = self.grow(xs, ys, right_idx, depth + 1, config);
                self.nodes[me] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                return me;
            }
        }
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { prediction: mean });
        me
    }

    /// Best (feature, threshold) minimizing child SSE; `None` if no split
    /// satisfies `min_leaf` on both sides or improves the error.
    fn best_split(
        &self,
        xs: &[Vec<f64>],
        ys: &[f64],
        indices: &[usize],
        config: &TreeConfig,
    ) -> Option<(usize, f64)> {
        let n = indices.len() as f64;
        let sum: f64 = indices.iter().map(|&i| ys[i]).sum();
        let parent_sse: f64 = {
            let mean = sum / n;
            indices.iter().map(|&i| (ys[i] - mean).powi(2)).sum()
        };

        let mut best: Option<(f64, usize, f64)> = None; // (sse, feature, threshold)
        #[allow(clippy::needless_range_loop)] // `f` indexes the inner feature axis, not `xs`
        for f in 0..self.num_features {
            let mut sorted: Vec<usize> = indices.to_vec();
            sorted.sort_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));

            // Prefix sums over the sorted order for O(1) SSE per cut.
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let total_sq: f64 = indices.iter().map(|&i| ys[i] * ys[i]).sum();
            for cut in 1..sorted.len() {
                let yi = ys[sorted[cut - 1]];
                left_sum += yi;
                left_sq += yi * yi;
                // Only cut between distinct feature values.
                if xs[sorted[cut - 1]][f] >= xs[sorted[cut]][f] - 1e-15 {
                    continue;
                }
                if cut < config.min_leaf || sorted.len() - cut < config.min_leaf {
                    continue;
                }
                let nl = cut as f64;
                let nr = n - nl;
                let right_sum = sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse_l = left_sq - left_sum * left_sum / nl;
                let sse_r = right_sq - right_sum * right_sum / nr;
                let sse = sse_l + sse_r;
                if best.is_none_or(|(b, _, _)| sse < b) {
                    let threshold = 0.5 * (xs[sorted[cut - 1]][f] + xs[sorted[cut]][f]);
                    best = Some((sse, f, threshold));
                }
            }
        }
        best.and_then(|(sse, f, t)| {
            if sse < parent_sse - 1e-12 {
                Some((f, t))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2d(n: usize) -> Vec<Vec<f64>> {
        let mut xs = Vec::new();
        for i in 0..n {
            for j in 0..n {
                xs.push(vec![i as f64 / n as f64, j as f64 / n as f64]);
            }
        }
        xs
    }

    #[test]
    fn constant_target_gives_single_leaf() {
        let xs = grid_2d(5);
        let ys = vec![3.0; xs.len()];
        let t = RegressionTree::fit(&xs, &ys, TreeConfig::default()).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[0.5, 0.5]), 3.0);
    }

    #[test]
    fn learns_axis_aligned_step() {
        let xs = grid_2d(10);
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] > 0.5 { 10.0 } else { 0.0 })
            .collect();
        let t = RegressionTree::fit(&xs, &ys, TreeConfig::default()).unwrap();
        assert!(t.predict(&[0.9, 0.3]) > 9.0);
        assert!(t.predict(&[0.1, 0.8]) < 1.0);
        assert!(t.mse(&xs, &ys) < 0.01);
    }

    #[test]
    fn learns_additive_two_feature_function() {
        let xs = grid_2d(15);
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + 5.0 * x[1]).collect();
        let t = RegressionTree::fit(&xs, &ys, TreeConfig::default()).unwrap();
        // Piecewise-constant approximation of a smooth function: modest
        // but real accuracy.
        assert!(t.mse(&xs, &ys) < 0.05, "mse {}", t.mse(&xs, &ys));
        assert!(t.predict(&[1.0, 1.0]) > t.predict(&[0.0, 0.0]) + 5.0);
    }

    #[test]
    fn depth_limit_respected() {
        let xs = grid_2d(12);
        let ys: Vec<f64> = xs.iter().map(|x| (10.0 * x[0]).sin() + x[1]).collect();
        let cfg = TreeConfig {
            max_depth: 3,
            min_leaf: 1,
        };
        let t = RegressionTree::fit(&xs, &ys, cfg).unwrap();
        assert!(t.depth() <= 3);
        assert!(t.leaf_count() <= 8);
    }

    #[test]
    fn min_leaf_respected() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let cfg = TreeConfig {
            max_depth: 16,
            min_leaf: 5,
        };
        let t = RegressionTree::fit(&xs, &ys, cfg).unwrap();
        // 20 samples with min_leaf 5 allows at most 4 leaves.
        assert!(t.leaf_count() <= 4);
    }

    #[test]
    fn errors_on_bad_input() {
        assert_eq!(
            RegressionTree::fit(&[], &[], TreeConfig::default()).unwrap_err(),
            TreeError::EmptyTrainingSet
        );
        assert_eq!(
            RegressionTree::fit(&[vec![1.0]], &[1.0, 2.0], TreeConfig::default()).unwrap_err(),
            TreeError::LengthMismatch
        );
        assert_eq!(
            RegressionTree::fit(
                &[vec![1.0], vec![1.0, 2.0]],
                &[1.0, 2.0],
                TreeConfig::default()
            )
            .unwrap_err(),
            TreeError::RaggedFeatures
        );
    }

    #[test]
    fn duplicate_feature_values_do_not_split() {
        // All x identical: no valid cut exists, must become a leaf with
        // the mean.
        let xs = vec![vec![1.0]; 10];
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let t = RegressionTree::fit(&xs, &ys, TreeConfig::default()).unwrap();
        assert_eq!(t.node_count(), 1);
        assert!((t.predict(&[1.0]) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn generalizes_to_unseen_points() {
        let xs = grid_2d(20);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0] + x[1]).collect();
        let t = RegressionTree::fit(&xs, &ys, TreeConfig::default()).unwrap();
        // Off-grid query lands in a sensible leaf.
        let p = t.predict(&[0.52, 0.48]);
        assert!((p - (0.52 * 0.52 + 0.48)).abs() < 0.15, "prediction {p}");
    }
}
