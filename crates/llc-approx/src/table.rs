use crate::{Blend, BlendConfig, Quantizer};
use std::collections::HashMap;

/// The abstraction map `g` as a quantized-key hash table.
///
/// "The map g is initially obtained in off-line fashion by simulating the
/// L0 controller using various values from the input set … and a quantized
/// approximation of the domain" (§4.2); "the abstraction map g is obtained
/// off-line as a hash table" (§4.3).
///
/// Keys are points in a continuous input space; each dimension carries its
/// own [`Quantizer`] mapping coordinates to integer cells. Lookups that
/// miss (queries outside the trained grid) first clamp each coordinate to
/// the trained per-dimension range and re-probe; remaining holes fall back
/// to a nearest-neighbor scan in cell space, so the table always answers
/// once at least one entry exists.
#[derive(Debug, Clone)]
pub struct LookupTable<V> {
    dims: Vec<Quantizer>,
    map: HashMap<Vec<i64>, V>,
    /// Per-dimension [min, max] observed cell ranges.
    ranges: Vec<Option<(i64, i64)>>,
    /// Online observations absorbed per stored cell (absent = offline
    /// prior only). Shrunk by the staleness sweep.
    confidence: HashMap<Vec<i64>, f64>,
}

impl<V: Clone> LookupTable<V> {
    /// An empty table whose key space is quantized per-dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty.
    pub fn new(dims: Vec<Quantizer>) -> Self {
        assert!(!dims.is_empty(), "table needs at least one key dimension");
        let n = dims.len();
        LookupTable {
            dims,
            map: HashMap::new(),
            ranges: vec![None; n],
            confidence: HashMap::new(),
        }
    }

    /// Number of key dimensions.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored cells.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn cells_of(&self, point: &[f64]) -> Vec<i64> {
        assert_eq!(point.len(), self.dims.len(), "key dimension mismatch");
        point
            .iter()
            .zip(&self.dims)
            .map(|(&v, q)| q.cell(v))
            .collect()
    }

    /// Insert (or overwrite) the value for the cell containing `point`.
    ///
    /// This is the *offline* write path: it also resets the cell's online
    /// confidence, so a retrained cell behaves like a fresh prior.
    pub fn insert(&mut self, point: &[f64], value: V) {
        let cells = self.cells_of(point);
        for (i, &c) in cells.iter().enumerate() {
            self.ranges[i] = Some(match self.ranges[i] {
                None => (c, c),
                Some((lo, hi)) => (lo.min(c), hi.max(c)),
            });
        }
        self.confidence.remove(&cells);
        self.map.insert(cells, value);
    }

    /// Online insert-or-blend for the cell containing `point`: an
    /// existing cell blends toward `target` under `cfg`'s
    /// confidence-weighted schedule; a never-trained cell (inside a hole
    /// or beyond the trained ranges) is inserted at full weight, growing
    /// the table's coverage from observed traffic. Returns the weight
    /// applied (`1.0` for an insert).
    pub fn update(&mut self, point: &[f64], target: &V, cfg: &BlendConfig) -> f64
    where
        V: Blend,
    {
        let cells = self.cells_of(point);
        if let Some(cell) = self.map.get_mut(&cells) {
            let count = self.confidence.entry(cells).or_insert(0.0);
            let w = cfg.weight(*count);
            cell.blend(target, w);
            *count += 1.0;
            w
        } else {
            self.insert(point, target.clone());
            self.confidence.insert(cells, 1.0);
            1.0
        }
    }

    /// Staleness sweep: multiply every cell's online confidence by
    /// `factor ∈ [0, 1]` (a serial pass — the counter map is sparse,
    /// unlike the dense substrate's flat slab).
    pub fn decay_confidence(&mut self, factor: f64) {
        let factor = factor.clamp(0.0, 1.0);
        for count in self.confidence.values_mut() {
            *count *= factor;
        }
    }

    /// Online observations credited to the cell containing `point`.
    pub fn confidence(&self, point: &[f64]) -> f64 {
        self.confidence
            .get(&self.cells_of(point))
            .copied()
            .unwrap_or(0.0)
    }

    /// Exact lookup of the cell containing `point`.
    pub fn get_exact(&self, point: &[f64]) -> Option<&V> {
        self.map.get(&self.cells_of(point))
    }

    /// Robust lookup: exact, then range-clamped, then nearest stored cell
    /// by L1 distance in cell space. Returns `None` only when the table is
    /// empty.
    pub fn get(&self, point: &[f64]) -> Option<&V> {
        let cells = self.cells_of(point);
        if let Some(v) = self.map.get(&cells) {
            return Some(v);
        }
        // Clamp to the trained hyper-rectangle and re-probe.
        let clamped: Vec<i64> = cells
            .iter()
            .zip(&self.ranges)
            .map(|(&c, r)| match r {
                Some((lo, hi)) => c.clamp(*lo, *hi),
                None => c,
            })
            .collect();
        if let Some(v) = self.map.get(&clamped) {
            return Some(v);
        }
        // Nearest neighbor over stored keys (tables are trained over
        // moderate grids, so the scan is acceptable as a last resort).
        // Ties break on the lexicographically smallest key so lookups are
        // deterministic regardless of hash-map iteration order.
        self.map
            .iter()
            .min_by(|(ka, _), (kb, _)| {
                let da: u64 = ka
                    .iter()
                    .zip(&clamped)
                    .map(|(a, b)| (a - b).unsigned_abs())
                    .sum();
                let db: u64 = kb
                    .iter()
                    .zip(&clamped)
                    .map(|(a, b)| (a - b).unsigned_abs())
                    .sum();
                da.cmp(&db).then_with(|| ka.cmp(kb))
            })
            .map(|(_, v)| v)
    }

    /// Visit stored cells holding at least `min_confidence` online
    /// observations (and at least one) as `(cell center, value,
    /// confidence)`, in sorted cell-key order so the visit — and any map
    /// rebuilt from it — is deterministic regardless of hash iteration
    /// order.
    pub fn for_each_confident(&self, min_confidence: f64, f: &mut dyn FnMut(&[f64], &V, f64)) {
        let mut cells: Vec<&Vec<i64>> = self
            .confidence
            .iter()
            .filter(|(cells, &conf)| {
                conf > 0.0 && conf >= min_confidence && self.map.contains_key(*cells)
            })
            .map(|(cells, _)| cells)
            .collect();
        cells.sort();
        let mut centers = vec![0.0; self.dims.len()];
        for key in cells {
            for (d, (&c, q)) in key.iter().zip(&self.dims).enumerate() {
                centers[d] = q.center(c);
            }
            f(&centers, &self.map[key], self.confidence[key]);
        }
    }

    /// Iterate stored `(cell_centers, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<f64>, &V)> + '_ {
        self.map.iter().map(move |(cells, v)| {
            let centers = cells
                .iter()
                .zip(&self.dims)
                .map(|(&c, q)| q.center(c))
                .collect();
            (centers, v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_2d() -> LookupTable<f64> {
        // 1.0-wide cells on both axes.
        let mut t = LookupTable::new(vec![Quantizer::new(1.0), Quantizer::new(1.0)]);
        for x in 0..5 {
            for y in 0..5 {
                t.insert(&[x as f64 + 0.5, y as f64 + 0.5], (x * 10 + y) as f64);
            }
        }
        t
    }

    #[test]
    fn exact_hit() {
        let t = table_2d();
        assert_eq!(t.get_exact(&[2.3, 4.9]), Some(&24.0));
        assert_eq!(t.len(), 25);
        assert_eq!(t.num_dims(), 2);
    }

    #[test]
    fn miss_outside_grid_clamps_to_edge() {
        let t = table_2d();
        // Far outside the trained range: clamped to cell (4, 0).
        assert_eq!(t.get(&[100.0, -50.0]), Some(&40.0));
        assert_eq!(t.get_exact(&[100.0, -50.0]), None);
    }

    #[test]
    fn hole_falls_back_to_nearest() {
        let mut t = LookupTable::new(vec![Quantizer::new(1.0)]);
        t.insert(&[0.5], 1.0);
        t.insert(&[5.5], 2.0);
        // Cell 2 is inside the range but was never trained: nearest is
        // cell 0 (distance 2) vs cell 5 (distance 3).
        assert_eq!(t.get(&[2.5]), Some(&1.0));
    }

    #[test]
    fn empty_table_returns_none() {
        let t: LookupTable<f64> = LookupTable::new(vec![Quantizer::new(0.5)]);
        assert_eq!(t.get(&[1.0]), None);
        assert!(t.is_empty());
    }

    #[test]
    fn insert_overwrites_same_cell() {
        let mut t = LookupTable::new(vec![Quantizer::new(1.0)]);
        t.insert(&[0.1], 1.0);
        t.insert(&[0.9], 2.0); // same cell 0
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&[0.5]), Some(&2.0));
    }

    #[test]
    fn iter_reports_cell_centers() {
        let mut t = LookupTable::new(vec![Quantizer::new(2.0)]);
        t.insert(&[1.0], 7.0);
        let items: Vec<(Vec<f64>, &f64)> = t.iter().collect();
        assert_eq!(items.len(), 1);
        assert!((items[0].0[0] - 1.0).abs() < 1e-12, "center of cell [0,2)");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_key_length_panics() {
        let t = table_2d();
        let _ = t.get(&[1.0]);
    }

    #[test]
    fn update_blends_existing_cell() {
        let mut t = table_2d();
        let cfg = BlendConfig::new(0.25, 3.0);
        let p = [2.5, 4.5];
        let before = *t.get_exact(&p).unwrap();
        let w = t.update(&p, &100.0, &cfg);
        assert!((w - 0.25).abs() < 1e-12, "fresh cell: 1/(3+0+1)");
        let after = *t.get_exact(&p).unwrap();
        assert!((after - (before + 0.25 * (100.0 - before))).abs() < 1e-9);
        assert_eq!(t.confidence(&p), 1.0);
        assert_eq!(t.len(), 25, "blend must not add cells");
    }

    #[test]
    fn update_inserts_unseen_cell_at_full_weight() {
        let mut t = table_2d();
        let outside = [40.0, 40.0];
        let w = t.update(&outside, &77.0, &BlendConfig::default());
        assert_eq!(w, 1.0);
        assert_eq!(t.get_exact(&outside), Some(&77.0));
        assert_eq!(t.confidence(&outside), 1.0);
        assert_eq!(t.len(), 26, "insert-or-blend grows coverage");
        // The grown range now clamps far queries to the new cell.
        assert_eq!(t.get(&[500.0, 500.0]), Some(&77.0));
    }

    #[test]
    fn offline_insert_resets_confidence() {
        let mut t = table_2d();
        let p = [1.5, 1.5];
        t.update(&p, &50.0, &BlendConfig::default());
        assert_eq!(t.confidence(&p), 1.0);
        t.insert(&p, 3.0);
        assert_eq!(t.confidence(&p), 0.0, "retrained cell is a fresh prior");
        t.decay_confidence(0.5);
        assert_eq!(t.confidence(&p), 0.0);
    }
}
