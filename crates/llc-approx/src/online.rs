//! Online (incremental) update policy for trained cost maps.
//!
//! The paper's §6 outlook calls for updating the learned abstraction maps
//! from *observed* outcomes instead of relying solely on the offline
//! training pass. This module supplies the two ingredients the substrates
//! share: [`Blend`], the value-side contract (move a stored cell a
//! fraction of the way toward an observed target), and [`BlendConfig`],
//! the confidence-weighted learning-rate schedule. The substrate-specific
//! halves (where the cell lives, what happens to never-trained cells)
//! stay with [`DenseGrid`](crate::DenseGrid) and
//! [`LookupTable`](crate::LookupTable) behind
//! [`CostMap::update`](crate::CostMap::update).

/// Values a cost-map cell can hold while supporting exponential blending
/// toward an observed target.
///
/// `blend(target, w)` must move `self` to `(1 − w)·self + w·target`
/// component-wise; `w = 0` is a no-op and `w = 1` replaces the cell.
pub trait Blend {
    /// Move `self` a fraction `w ∈ [0, 1]` of the way toward `target`.
    fn blend(&mut self, target: &Self, w: f64);
}

impl Blend for f64 {
    fn blend(&mut self, target: &Self, w: f64) {
        *self += w * (target - *self);
    }
}

/// Confidence-weighted blending schedule shared by both substrates.
///
/// Every trained cell starts with `prior_weight` pseudo-observations (the
/// offline training pass) and accumulates one count per online update.
/// The blend weight for a cell holding `n` online counts is
///
/// ```text
/// w = max(learning_rate, 1 / (prior_weight + n + 1))
/// ```
///
/// — running-mean behaviour while a cell is fresh (fast convergence to
/// the first few observations), decaying into a constant-rate exponential
/// average (`learning_rate`) once the cell is seasoned, which is what
/// tracks *drift*: a plant that changes keeps moving the average, and old
/// outcomes are forgotten geometrically. The staleness sweep
/// ([`CostMap::decay_confidence`](crate::CostMap::decay_confidence))
/// shrinks `n` between bursts so cells that stop being visited become
/// quick to re-adapt when traffic returns to them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlendConfig {
    /// Floor of the blend weight once a cell is seasoned (`0 < η ≤ 1`).
    pub learning_rate: f64,
    /// Pseudo-count credited to the offline training pass (`≥ 0`): how
    /// many observations the first online update competes against.
    pub prior_weight: f64,
}

impl Default for BlendConfig {
    fn default() -> Self {
        BlendConfig {
            learning_rate: 0.25,
            prior_weight: 4.0,
        }
    }
}

impl BlendConfig {
    /// A schedule with the given floor rate and offline pseudo-count.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is outside `(0, 1]` or `prior_weight` is
    /// negative or non-finite.
    pub fn new(learning_rate: f64, prior_weight: f64) -> Self {
        assert!(
            learning_rate > 0.0 && learning_rate <= 1.0,
            "learning rate must lie in (0, 1], got {learning_rate}"
        );
        assert!(
            prior_weight >= 0.0 && prior_weight.is_finite(),
            "prior weight must be finite and non-negative, got {prior_weight}"
        );
        BlendConfig {
            learning_rate,
            prior_weight,
        }
    }

    /// The blend weight applied to a cell holding `confidence` online
    /// counts.
    pub fn weight(&self, confidence: f64) -> f64 {
        self.learning_rate
            .max(1.0 / (self.prior_weight + confidence.max(0.0) + 1.0))
    }
}

/// A pair of blend schedules the online learner switches between under
/// drift detection: `steady` is the slow steady-state schedule (robust to
/// per-period noise), `fast` the aggressive re-convergence schedule run
/// for the detector's hold-off window after a drift fires. Keeping both
/// in one value makes the switching site a single branch instead of two
/// configs that can drift apart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlendSchedule {
    /// The steady-state schedule.
    pub steady: BlendConfig,
    /// The re-convergence schedule (`fast.learning_rate ≥
    /// steady.learning_rate`).
    pub fast: BlendConfig,
}

impl BlendSchedule {
    /// A schedule pair over a shared prior weight.
    ///
    /// # Panics
    ///
    /// Panics if either rate is out of range (see [`BlendConfig::new`])
    /// or `fast_rate < steady_rate`.
    pub fn new(steady_rate: f64, fast_rate: f64, prior_weight: f64) -> Self {
        assert!(
            fast_rate >= steady_rate,
            "fast rate {fast_rate} must be at least the steady rate {steady_rate}"
        );
        BlendSchedule {
            steady: BlendConfig::new(steady_rate, prior_weight),
            fast: BlendConfig::new(fast_rate, prior_weight),
        }
    }

    /// The schedule to run at: `fast = true` selects the re-convergence
    /// schedule.
    pub fn select(&self, fast: bool) -> &BlendConfig {
        if fast {
            &self.fast
        } else {
            &self.steady
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_blend_is_lerp() {
        let mut v = 10.0;
        v.blend(&20.0, 0.25);
        assert!((v - 12.5).abs() < 1e-12);
        v.blend(&20.0, 1.0);
        assert_eq!(v, 20.0);
        v.blend(&0.0, 0.0);
        assert_eq!(v, 20.0);
    }

    #[test]
    fn weight_floors_at_learning_rate() {
        let cfg = BlendConfig::new(0.2, 3.0);
        // Fresh cell: 1 / (3 + 0 + 1) = 0.25 > floor.
        assert!((cfg.weight(0.0) - 0.25).abs() < 1e-12);
        // Seasoned cell: running-mean weight would be tiny, floor holds.
        assert!((cfg.weight(1000.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_learning_rate_rejected() {
        let _ = BlendConfig::new(0.0, 1.0);
    }

    #[test]
    fn schedule_selects_by_rate() {
        let s = BlendSchedule::new(0.2, 0.7, 4.0);
        assert_eq!(s.select(false).learning_rate, 0.2);
        assert_eq!(s.select(true).learning_rate, 0.7);
        assert_eq!(s.select(true).prior_weight, 4.0);
    }

    #[test]
    #[should_panic(expected = "fast rate")]
    fn inverted_schedule_rejected() {
        let _ = BlendSchedule::new(0.5, 0.2, 4.0);
    }
}
