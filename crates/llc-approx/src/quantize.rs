/// A uniform scalar quantizer with a fixed step.
///
/// The hierarchical controllers quantize continuous quantities — load
/// fractions γ at 0.05/0.1, arrival rates and queue lengths into table
/// cells — so that finite search and hash-table lookup become possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    step: f64,
}

impl Quantizer {
    /// A quantizer with the given step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive and finite.
    pub fn new(step: f64) -> Self {
        assert!(
            step.is_finite() && step > 0.0,
            "quantizer step must be positive and finite, got {step}"
        );
        Quantizer { step }
    }

    /// The quantization step.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Index of the cell containing `v` (floor semantics; negative values
    /// land in negative cells).
    pub fn cell(&self, v: f64) -> i64 {
        (v / self.step).floor() as i64
    }

    /// Center value of cell `c`.
    pub fn center(&self, c: i64) -> f64 {
        (c as f64 + 0.5) * self.step
    }

    /// Snap `v` to the nearest multiple of the step.
    pub fn snap(&self, v: f64) -> f64 {
        (v / self.step).round() * self.step
    }

    /// All multiples of the step within `[lo, hi]`, inclusive on both ends
    /// (after snapping the bounds outward by half a step of tolerance).
    pub fn grid(&self, lo: f64, hi: f64) -> Vec<f64> {
        assert!(lo <= hi, "grid bounds inverted");
        let start = (lo / self.step).ceil() as i64;
        let end = (hi / self.step + 1e-9).floor() as i64;
        (start..=end).map(|k| k as f64 * self.step).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cell_and_center() {
        let q = Quantizer::new(0.05);
        assert_eq!(q.cell(0.0), 0);
        assert_eq!(q.cell(0.049), 0);
        assert_eq!(q.cell(0.05), 1);
        assert_eq!(q.cell(-0.01), -1);
        assert!((q.center(0) - 0.025).abs() < 1e-12);
    }

    #[test]
    fn snap_rounds_to_nearest() {
        let q = Quantizer::new(0.1);
        assert!((q.snap(0.44) - 0.4).abs() < 1e-12);
        assert!((q.snap(0.45) - 0.5).abs() < 1e-12);
        assert!((q.snap(-0.26) + 0.3).abs() < 1e-12);
    }

    #[test]
    fn grid_enumerates_multiples() {
        let q = Quantizer::new(0.05);
        let g = q.grid(0.0, 0.2);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 0.0).abs() < 1e-12);
        assert!((g[4] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn grid_with_offset_bounds() {
        let q = Quantizer::new(1.0);
        assert_eq!(q.grid(0.5, 3.5), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let _ = Quantizer::new(0.0);
    }

    proptest! {
        #[test]
        fn snap_is_idempotent(v in -1e4..1e4f64, step in 0.01..10.0f64) {
            let q = Quantizer::new(step);
            let s = q.snap(v);
            prop_assert!((q.snap(s) - s).abs() < 1e-9);
        }

        #[test]
        fn cell_contains_value(v in -1e4..1e4f64, step in 0.01..10.0f64) {
            let q = Quantizer::new(step);
            let c = q.cell(v);
            let lo = c as f64 * step;
            prop_assert!(v >= lo - 1e-9 && v < lo + step + 1e-9);
        }
    }
}
