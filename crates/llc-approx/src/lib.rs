//! Function-approximation substrate for hierarchical control.
//!
//! The paper lifts "the dual curses of dimensionality and modeling" by
//! approximating the behaviour of lower control levels instead of
//! modeling it exactly:
//!
//! * the L1 controller consults an **abstraction map `g`** — "obtained
//!   off-line as a hash table" — that predicts the cost and next state a
//!   L0-controlled computer achieves under given load. Two substrates
//!   implement it behind the [`CostMap`] trait: [`DenseGrid`] (flat
//!   storage, O(1) clamp + stride probes — the default for rectangular
//!   [`GridSampler`] domains) and [`LookupTable`] (hash table keyed by
//!   [`Quantizer`] cells, for sparse or ragged domains);
//! * the L2 controller consults a **compact regression tree** trained from
//!   module simulations ([`RegressionTree`], classic CART with
//!   variance-reduction splits);
//! * both are trained by **simulation-based learning** over sampled input
//!   grids ([`GridSampler`], [`train_table`], [`train_tree`]);
//! * the decision variables γ (load fractions) live on a quantized
//!   probability simplex ([`SimplexGrid`]: enumeration and neighborhood
//!   moves at quantum 0.05 / 0.1 as in the experiments);
//! * both map substrates also take **online (incremental) updates** —
//!   [`CostMap::update`] blends realized outcomes into the trained cells
//!   under a confidence-weighted learning rate ([`BlendConfig`]), the
//!   paper's §6 drift-handling outlook: dense grids blend in place,
//!   hash tables insert-or-blend and grow their coverage.
//!
//! # Example
//!
//! ```
//! use llc_approx::{RegressionTree, TreeConfig};
//!
//! // Learn y = x0 + 10·[x1 > 0.5] from samples.
//! let xs: Vec<Vec<f64>> = (0..200)
//!     .map(|i| vec![(i % 20) as f64 / 20.0, (i % 7) as f64 / 7.0])
//!     .collect();
//! let ys: Vec<f64> = xs.iter().map(|x| x[0] + if x[1] > 0.5 { 10.0 } else { 0.0 }).collect();
//! let tree = RegressionTree::fit(&xs, &ys, TreeConfig::default()).unwrap();
//! let lo = tree.predict(&[0.5, 0.0]);
//! let hi = tree.predict(&[0.5, 1.0]);
//! assert!(hi - lo > 8.0, "tree must capture the step");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod learn;
mod online;
mod quantize;
mod regtree;
mod simplex;
mod table;

pub use dense::{CostMap, DenseGrid, DenseSlab};
pub use learn::{train_dense, train_table, train_tree, GridSampler};
pub use online::{Blend, BlendConfig, BlendSchedule};
pub use quantize::Quantizer;
pub use regtree::{RegressionTree, TreeConfig, TreeError};
pub use simplex::SimplexGrid;
pub use table::LookupTable;
