/// The quantized probability simplex `{γ : Σγ_j = 1, γ_j ≥ 0, γ_j ∈ qZ}`.
///
/// L1 quantizes per-computer fractions at `q = 0.05`, L2 per-module
/// fractions at `q = 0.1`. The grid supports full enumeration (used by L2
/// over 4 modules: C(13,3) = 286 points at q = 0.1) and single-quantum
/// transfer neighborhoods (used by the bounded searches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexGrid {
    dims: usize,
    levels: usize,
}

impl SimplexGrid {
    /// The simplex over `dims` components with quantum `1/levels`.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0` or `levels == 0`.
    pub fn new(dims: usize, levels: usize) -> Self {
        assert!(dims > 0, "simplex needs at least one dimension");
        assert!(levels > 0, "quantum must be positive (levels >= 1)");
        SimplexGrid { dims, levels }
    }

    /// The simplex with quantum `q` (must divide 1 within tolerance).
    ///
    /// # Panics
    ///
    /// Panics if `q` does not evenly divide 1.
    pub fn with_quantum(dims: usize, q: f64) -> Self {
        let levels = (1.0 / q).round();
        assert!(
            ((1.0 / q) - levels).abs() < 1e-9,
            "quantum {q} must divide 1 evenly"
        );
        SimplexGrid::new(dims, levels as usize)
    }

    /// Number of components.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The quantum `1/levels`.
    pub fn quantum(&self) -> f64 {
        1.0 / self.levels as f64
    }

    /// Number of grid points: `C(levels + dims - 1, dims - 1)`.
    pub fn count(&self) -> usize {
        // Compute the binomial iteratively to avoid overflow for the
        // small parameters used here.
        let n = self.levels + self.dims - 1;
        let k = self.dims - 1;
        let mut acc: u128 = 1;
        for i in 0..k {
            acc = acc * (n - i) as u128 / (i + 1) as u128;
        }
        acc as usize
    }

    /// Enumerate every grid point as a fraction vector.
    pub fn enumerate(&self) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(self.count());
        let mut current = vec![0usize; self.dims];
        self.enumerate_rec(0, self.levels, &mut current, &mut out);
        out
    }

    fn enumerate_rec(
        &self,
        dim: usize,
        remaining: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<f64>>,
    ) {
        if dim == self.dims - 1 {
            current[dim] = remaining;
            let q = self.quantum();
            out.push(current.iter().map(|&u| u as f64 * q).collect());
            return;
        }
        for units in 0..=remaining {
            current[dim] = units;
            self.enumerate_rec(dim + 1, remaining - units, current, out);
        }
    }

    /// Snap an arbitrary non-negative vector onto the grid: proportional
    /// scaling to sum 1, floor to quanta, then distribute the leftover
    /// quanta to the components with the largest remainders (largest-
    /// remainder method).
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from `dims` or all entries are
    /// zero/negative.
    pub fn snap(&self, v: &[f64]) -> Vec<f64> {
        let mut units = Vec::new();
        let mut rema = Vec::new();
        self.snap_units_into(v, &mut units, &mut rema);
        let q = self.quantum();
        units.into_iter().map(|u| u as f64 * q).collect()
    }

    /// Snap `v` onto the grid in integer-unit form, writing the chosen
    /// units into `out` (`rema` is remainder scratch, rewritten in
    /// place) — the allocation-free twin of [`SimplexGrid::snap`],
    /// selecting exactly the same grid point: `snap` yields
    /// `out[i] · quantum` component for component.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from `dims` or all entries
    /// are zero/negative.
    pub fn snap_units_into(&self, v: &[f64], out: &mut Vec<i64>, rema: &mut Vec<(usize, f64)>) {
        assert_eq!(v.len(), self.dims, "dimension mismatch");
        let total: f64 = v.iter().sum();
        assert!(total > 0.0, "cannot snap a non-positive vector");
        out.clear();
        rema.clear();
        let mut assigned = 0usize;
        for (i, x) in v.iter().enumerate() {
            let scaled = (x.max(0.0) / total) * self.levels as f64;
            let floor = scaled.floor();
            out.push(floor as i64);
            assigned += floor as usize;
            rema.push((i, scaled - floor));
        }
        rema.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for (i, _) in rema.iter().take(self.levels - assigned) {
            out[*i] += 1;
        }
    }

    /// All grid points one quantum-transfer away from `point`: move one
    /// quantum from a positive component to a different component. The
    /// neighborhood size is at most `dims·(dims−1)`.
    ///
    /// # Panics
    ///
    /// Panics if `point` is not on the grid (wrong length or sum ≠ 1).
    pub fn neighbors(&self, point: &[f64]) -> Vec<Vec<f64>> {
        let q = self.quantum();
        let units: Vec<i64> = point.iter().map(|&x| (x / q).round() as i64).collect();
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.for_each_neighbor_units(&units, &mut scratch, &mut |next| {
            out.push(next.iter().map(|&u| u as f64 * q).collect());
        });
        out
    }

    /// Visit every single-quantum-transfer neighbor of `units` (the
    /// integer form of a grid point: fraction / quantum), in exactly the
    /// order [`SimplexGrid::neighbors`] enumerates them. The visitor
    /// borrows `scratch`, which is rewritten in place between calls — the
    /// allocation-free twin for search inner loops that would otherwise
    /// pay a `Vec<Vec<f64>>` per hill-climb round.
    ///
    /// # Panics
    ///
    /// Panics if `units` is not on the grid (wrong length or sum ≠
    /// levels).
    pub fn for_each_neighbor_units(
        &self,
        units: &[i64],
        scratch: &mut Vec<i64>,
        f: &mut dyn FnMut(&[i64]),
    ) {
        assert_eq!(units.len(), self.dims, "dimension mismatch");
        assert_eq!(
            units.iter().sum::<i64>(),
            self.levels as i64,
            "point is not on the simplex grid"
        );
        scratch.clear();
        scratch.extend_from_slice(units);
        for from in 0..self.dims {
            if units[from] == 0 {
                continue;
            }
            scratch[from] -= 1;
            for to in 0..self.dims {
                if to == from {
                    continue;
                }
                scratch[to] += 1;
                f(scratch);
                scratch[to] -= 1;
            }
            scratch[from] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn count_matches_enumeration() {
        for (dims, levels) in [(2, 10), (3, 10), (4, 10), (4, 20), (2, 1)] {
            let g = SimplexGrid::new(dims, levels);
            assert_eq!(
                g.enumerate().len(),
                g.count(),
                "dims={dims} levels={levels}"
            );
        }
    }

    #[test]
    fn l2_grid_size_matches_paper_setting() {
        // 4 modules at quantum 0.1: C(13, 3) = 286 candidate splits.
        let g = SimplexGrid::with_quantum(4, 0.1);
        assert_eq!(g.count(), 286);
    }

    #[test]
    fn every_point_sums_to_one() {
        let g = SimplexGrid::with_quantum(3, 0.05);
        for p in g.enumerate() {
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{p:?}");
            assert!(p.iter().all(|&x| x >= -1e-12));
        }
    }

    fn approx_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn snap_recovers_exact_points() {
        let g = SimplexGrid::with_quantum(3, 0.1);
        let p = vec![0.3, 0.5, 0.2];
        assert!(approx_eq(&g.snap(&p), &p), "{:?}", g.snap(&p));
    }

    #[test]
    fn snap_normalizes_and_quantizes() {
        let g = SimplexGrid::with_quantum(2, 0.1);
        let snapped = g.snap(&[2.0, 1.0]);
        let s: f64 = snapped.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((snapped[0] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn neighbors_move_one_quantum() {
        let g = SimplexGrid::with_quantum(3, 0.1);
        let n = g.neighbors(&[0.5, 0.5, 0.0]);
        // Transfers: from comp 0 (to 1, to 2) and from comp 1 (to 0, to 2).
        assert_eq!(n.len(), 4);
        for p in &n {
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert!(n.iter().any(|p| approx_eq(p, &[0.4, 0.6, 0.0])));
        assert!(n.iter().any(|p| approx_eq(p, &[0.5, 0.4, 0.1])));
    }

    #[test]
    fn corner_has_reduced_neighborhood() {
        let g = SimplexGrid::with_quantum(3, 0.1);
        let n = g.neighbors(&[1.0, 0.0, 0.0]);
        assert_eq!(n.len(), 2, "only the loaded component can give");
    }

    #[test]
    fn neighbor_visitor_matches_vec_enumeration() {
        let g = SimplexGrid::with_quantum(4, 0.05);
        let q = g.quantum();
        for point in [
            vec![0.25, 0.25, 0.25, 0.25],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.5, 0.3, 0.2, 0.0],
        ] {
            let expect = g.neighbors(&point);
            let units: Vec<i64> = point.iter().map(|&x| (x / q).round() as i64).collect();
            let mut scratch = Vec::new();
            let mut got: Vec<Vec<f64>> = Vec::new();
            g.for_each_neighbor_units(&units, &mut scratch, &mut |n| {
                got.push(n.iter().map(|&u| u as f64 * q).collect());
            });
            assert_eq!(expect, got, "visitor must reproduce order for {point:?}");
            assert_eq!(scratch, units, "scratch restored between visits");
        }
    }

    #[test]
    fn snap_units_matches_snap() {
        let g = SimplexGrid::with_quantum(4, 0.05);
        let q = g.quantum();
        let mut units = Vec::new();
        let mut rema = Vec::new();
        for v in [
            vec![0.3, 0.5, 0.2, 0.1],
            vec![1.0, 1.0, 1.0, 1.0],
            vec![0.013, 0.87, 0.11, 0.006],
            vec![5.0, 0.0, 0.0, 0.1],
        ] {
            let snapped = g.snap(&v);
            g.snap_units_into(&v, &mut units, &mut rema);
            let from_units: Vec<f64> = units.iter().map(|&u| u as f64 * q).collect();
            assert_eq!(snapped, from_units, "same grid point for {v:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not on the simplex grid")]
    fn off_grid_point_panics() {
        let g = SimplexGrid::with_quantum(2, 0.1);
        let _ = g.neighbors(&[0.55, 0.55]);
    }

    proptest! {
        #[test]
        fn snap_output_is_on_grid(
            raw in proptest::collection::vec(0.01..10.0f64, 2..6)
        ) {
            let g = SimplexGrid::with_quantum(raw.len(), 0.05);
            let snapped = g.snap(&raw);
            let s: f64 = snapped.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            for x in &snapped {
                let units = x / 0.05;
                prop_assert!((units - units.round()).abs() < 1e-6);
            }
        }

        #[test]
        fn neighbors_stay_on_grid(levels in 2usize..12, dims in 2usize..5) {
            let g = SimplexGrid::new(dims, levels);
            let points = g.enumerate();
            let p = &points[points.len() / 2];
            for n in g.neighbors(p) {
                let s: f64 = n.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-9);
                prop_assert!(n.iter().all(|&x| x >= -1e-12));
            }
        }
    }
}
