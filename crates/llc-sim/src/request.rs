/// A service request flowing through the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Unique id (assigned in arrival order).
    pub id: u64,
    /// Simulation time at which the request arrived at the cluster.
    pub arrival: f64,
    /// Service demand in seconds *at full processor speed* — the paper's
    /// `c`, "the time required to process a request while operating at the
    /// maximum frequency".
    pub demand: f64,
}

impl Request {
    /// Build a request.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is not strictly positive and finite, or if
    /// `arrival` is not finite.
    pub fn new(id: u64, arrival: f64, demand: f64) -> Self {
        assert!(arrival.is_finite(), "arrival time must be finite");
        assert!(
            demand.is_finite() && demand > 0.0,
            "service demand must be positive and finite, got {demand}"
        );
        Request {
            id,
            arrival,
            demand,
        }
    }

    /// Response time if the request completes at `completion`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `completion` precedes the arrival.
    pub fn response_time(&self, completion: f64) -> f64 {
        debug_assert!(
            completion >= self.arrival,
            "completion {completion} before arrival {}",
            self.arrival
        );
        completion - self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_time_is_sojourn() {
        let r = Request::new(1, 10.0, 0.02);
        assert!((r.response_time(14.5) - 4.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "service demand")]
    fn zero_demand_rejected() {
        let _ = Request::new(1, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "arrival time")]
    fn nan_arrival_rejected() {
        let _ = Request::new(1, f64::NAN, 0.01);
    }
}
