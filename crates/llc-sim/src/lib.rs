//! Discrete-event simulator for DVFS-capable server clusters.
//!
//! This crate is the *plant* of the reproduction: the paper evaluates its
//! hierarchical controller against a simulated computer cluster (Fig. 1(a))
//! where a global buffer dispatches requests to computers, each processing
//! them in first-come first-served order at a processor frequency chosen
//! from a finite set. We implement that cluster as an event-driven
//! simulation with:
//!
//! * [`Server`]: a FCFS single-server queue whose service rate scales with
//!   the frequency factor `φ = u/u_max` (a request with demand `c` seconds
//!   at full speed takes `c/φ` at frequency `u`);
//! * [`MachineSlabs`]: every computer's server, power-state machine
//!   (`Off → Booting → On → Draining → Off`, with the paper's 2-minute
//!   switch-on **dead time**) and energy meter integrating `ψ = a + φ²`,
//!   stored struct-of-arrays so a 1000-machine sweep walks flat slabs
//!   ([`ComputerRef`] is the per-machine read view);
//! * [`WeightedRouter`]: deterministic deficit-round-robin dispatching that
//!   realizes the fractions `γ` decided by the controllers;
//! * [`ClusterSim`]: computers partitioned into modules behind a two-level
//!   dispatcher hierarchy, a single event queue, and per-window metrics
//!   that the controllers sample every 30 s.
//!
//! The simulator is fully deterministic: event ties break on sequence
//! numbers and routing is deficit-based rather than randomized.
//!
//! # Example
//!
//! ```
//! use llc_sim::{ClusterSim, ClusterConfig, ComputerConfig, PowerModel};
//!
//! # fn main() -> Result<(), llc_sim::SimError> {
//! let config = ClusterConfig {
//!     modules: vec![vec![
//!         // One computer, instant boot for the example's sake.
//!         ComputerConfig::new(vec![0.5e9, 1.0e9], PowerModel::new(0.75, 8.0), 0.0),
//!     ]],
//! };
//! let mut sim = ClusterSim::new(config);
//! sim.power_on(0);
//! sim.set_module_weights(&[1.0])?;
//! sim.set_computer_weights(0, &[1.0])?;
//! sim.schedule_arrival(0.5, 0.015)?; // a 15 ms request at t = 0.5 s
//! sim.run_until(10.0)?;
//! assert_eq!(sim.computer(0).completed(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod dispatch;
mod machines;
mod metrics;
mod power;
mod request;
mod server;

pub use cluster::{ClusterConfig, ClusterSim, ComputerConfig, SimError};
pub use dispatch::WeightedRouter;
pub use machines::{ComputerRef, MachineSlabs, PowerState};
pub use metrics::{EnergyMeter, WindowStats};
pub use power::PowerModel;
pub use request::Request;
pub use server::Server;
