use crate::{EnergyMeter, PowerModel, Request, Server, WindowStats};

/// Operating state of a simulated computer.
///
/// The paper's control actions carry **dead times**: "actions such as
/// (de)activating computing resources in a DCS often incur a substantial
/// dead time". Switching a computer on therefore passes through `Booting`
/// for `boot_delay` seconds (2 minutes in the experiments — the L1
/// sampling period). Switching off a busy computer drains its queue first;
/// a draining computer accepts no new work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerState {
    /// Powered down: zero draw, accepts no requests.
    Off,
    /// Switch-on in progress; operational at `ready_at`.
    Booting {
        /// Simulation time at which boot completes.
        ready_at: f64,
    },
    /// Fully operational.
    On,
    /// Ordered off but still finishing queued requests.
    Draining,
}

/// Outcome of offering a request to a computer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request went straight into service.
    Started,
    /// The request was queued (server busy or still booting).
    Queued,
    /// The computer is off/draining and refused the request.
    Rejected,
}

/// A simulated computer: FCFS server + DVFS frequency set + power-state
/// machine + energy meter + per-window observation counters.
#[derive(Debug, Clone)]
pub struct Computer {
    frequencies: Vec<f64>,
    freq_index: usize,
    /// Relative processing capacity at full frequency (1.0 = reference).
    speed: f64,
    power_model: PowerModel,
    boot_delay: f64,
    state: PowerState,
    server: Server,
    meter: EnergyMeter,
    stats: WindowStats,
    epoch: u64,
    switch_ons: u64,
    switch_offs: u64,
    /// Completions drained out of `stats` so far (keeps `completed()` total).
    lifetime_completions: u64,
    /// Cumulative energy already attributed to drained windows, so each
    /// drained [`WindowStats`] carries only its own window's draw.
    energy_drained: f64,
    /// Drift-injection factor on delivered capacity (1.0 = nominal): the
    /// server serves at `φ · service_scale`, so a degraded machine takes
    /// longer per request while its DVFS setting — and therefore its
    /// power draw — stays nominal. Models gradual service-rate
    /// degradation and post-failure capacity loss.
    service_scale: f64,
    /// Crashed and not yet repaired: the machine is unbootable — power-on
    /// orders are refused until [`Computer::repair`].
    failed: bool,
}

impl Computer {
    /// Build a computer, initially `Off`, at time 0.
    ///
    /// `frequencies` are absolute operating points in Hz, ascending;
    /// `φ` for index `j` is `frequencies[j] / frequencies.last()`.
    ///
    /// # Panics
    ///
    /// Panics if `frequencies` is empty, unsorted, or non-positive; if
    /// `speed <= 0`; or if `boot_delay < 0`.
    pub fn new(
        frequencies: Vec<f64>,
        speed: f64,
        power_model: PowerModel,
        boot_delay: f64,
    ) -> Self {
        assert!(!frequencies.is_empty(), "need at least one frequency");
        assert!(
            frequencies.windows(2).all(|w| w[0] < w[1]),
            "frequencies must be strictly ascending"
        );
        assert!(
            frequencies[0] > 0.0 && frequencies.iter().all(|f| f.is_finite()),
            "frequencies must be positive and finite"
        );
        assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
        assert!(
            boot_delay >= 0.0,
            "boot delay must be non-negative (may be +inf for a failed machine)"
        );
        let freq_index = frequencies.len() - 1;
        Computer {
            frequencies,
            freq_index,
            speed,
            power_model,
            boot_delay,
            state: PowerState::Off,
            server: Server::new(1.0),
            meter: EnergyMeter::new(0.0, 0.0),
            stats: WindowStats::default(),
            epoch: 0,
            switch_ons: 0,
            switch_offs: 0,
            lifetime_completions: 0,
            energy_drained: 0.0,
            service_scale: 1.0,
            failed: false,
        }
    }

    /// The available frequency set (Hz, ascending).
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Index of the current frequency setting.
    pub fn frequency_index(&self) -> usize {
        self.freq_index
    }

    /// Current absolute frequency in Hz.
    pub fn frequency(&self) -> f64 {
        self.frequencies[self.freq_index]
    }

    /// Current scaling factor `φ = u / u_max ∈ (0, 1]`.
    pub fn phi(&self) -> f64 {
        self.frequency() / *self.frequencies.last().expect("non-empty")
    }

    /// Relative full-speed capacity of this computer.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Configured boot dead time in seconds.
    pub fn boot_delay(&self) -> f64 {
        self.boot_delay
    }

    /// Power-state of the machine.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// `true` if the computer counts as "on" for the α vector (booting
    /// counts: the switch-on decision has been taken).
    pub fn is_active(&self) -> bool {
        !matches!(self.state, PowerState::Off)
    }

    /// Requests in the system (queued + in service) — observed `q(k)`.
    pub fn queue_length(&self) -> usize {
        self.server.queue_length()
    }

    /// Total completed requests over the computer's lifetime.
    pub fn completed(&self) -> u64 {
        self.stats.completions + self.lifetime_completions
    }

    /// Number of switch-on transitions so far (chattering metric).
    pub fn switch_ons(&self) -> u64 {
        self.switch_ons
    }

    /// Number of switch-off orders so far.
    pub fn switch_offs(&self) -> u64 {
        self.switch_offs
    }

    /// Energy consumed up to `now` (power·seconds).
    pub fn energy_at(&self, now: f64) -> f64 {
        let mut m = self.meter;
        m.advance(now);
        m.energy()
    }

    /// Event epoch — bumped on every change that invalidates scheduled
    /// departure/boot events for this computer.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bump and return the event epoch.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Instantaneous power draw implied by the current state.
    fn current_power(&self) -> f64 {
        match self.state {
            PowerState::Off => 0.0,
            PowerState::Booting { .. } => self.power_model.boot_cost(),
            PowerState::On | PowerState::Draining => {
                if self.server.busy() {
                    self.power_model.operating(self.phi())
                } else {
                    self.power_model.base_cost()
                }
            }
        }
    }

    fn refresh_power(&mut self, now: f64) {
        self.meter.set_power(self.current_power(), now);
    }

    /// Order the computer on at time `now`. Returns `Some(ready_at)` when
    /// a boot was started, `None` when the order was a no-op (already
    /// on/booting) or an instant recovery from `Draining`.
    pub fn power_on(&mut self, now: f64) -> Option<f64> {
        if self.failed {
            return None; // a crashed machine is unbootable until repaired
        }
        match self.state {
            PowerState::Off => {
                let ready_at = now + self.boot_delay;
                self.state = PowerState::Booting { ready_at };
                self.switch_ons += 1;
                self.refresh_power(now);
                Some(ready_at)
            }
            PowerState::Draining => {
                self.state = PowerState::On;
                self.refresh_power(now);
                None
            }
            PowerState::Booting { .. } | PowerState::On => None,
        }
    }

    /// Initialization helper: put the computer straight into `On` without
    /// a boot delay or switch-on accounting. Intended for constructing a
    /// pre-warmed cluster at `t = 0` (experiments that start with the
    /// machines already operating, as the paper's figures do); not a
    /// control action.
    pub fn force_on(&mut self, now: f64) {
        self.state = PowerState::On;
        self.server.start_next(now);
        self.refresh_power(now);
    }

    /// Complete a boot at time `now` (driven by the cluster event loop).
    /// Returns `true` if a queued request just started service.
    pub fn finish_boot(&mut self, now: f64) -> bool {
        debug_assert!(matches!(self.state, PowerState::Booting { .. }));
        self.state = PowerState::On;
        let started = self.server.start_next(now);
        self.refresh_power(now);
        started
    }

    /// Order the computer off at time `now`. A busy computer drains first;
    /// a booting computer cancels its boot.
    pub fn power_off(&mut self, now: f64) {
        match self.state {
            PowerState::On => {
                self.switch_offs += 1;
                self.state = if self.server.queue_length() > 0 {
                    PowerState::Draining
                } else {
                    PowerState::Off
                };
                self.refresh_power(now);
            }
            PowerState::Booting { .. } => {
                self.switch_offs += 1;
                self.state = PowerState::Off;
                self.refresh_power(now);
            }
            PowerState::Off | PowerState::Draining => {}
        }
    }

    /// Crash the machine at time `now`: every request in the system
    /// (queued + in service) is ripped out and returned — in FCFS order,
    /// with demands rescaled back to reference units so the caller can
    /// re-dispatch them elsewhere — the state drops straight to `Off`
    /// (no drain phase; a crash does not finish work), and the machine
    /// is marked [failed](Computer::is_failed): power-on orders are
    /// refused until [`Computer::repair`]. Idempotent on an
    /// already-failed machine.
    pub fn fail(&mut self, now: f64) -> Vec<Request> {
        let lost: Vec<Request> = self
            .server
            .drain()
            .into_iter()
            .map(|r| Request::new(r.id, r.arrival, r.demand * self.speed))
            .collect();
        self.state = PowerState::Off;
        self.failed = true;
        self.refresh_power(now);
        lost
    }

    /// Repair a crashed machine at time `now`: clears the failed mark so
    /// the next power-on order boots it through the normal Off→Booting
    /// dead time. No-op when not failed.
    pub fn repair(&mut self, _now: f64) {
        self.failed = false;
    }

    /// `true` while the machine is crashed and unbootable.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Select frequency by index at time `now`. Returns the new completion
    /// time of the in-service request, if any (caller reschedules).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_frequency_index(&mut self, index: usize, now: f64) -> Option<f64> {
        assert!(
            index < self.frequencies.len(),
            "frequency index out of range"
        );
        self.freq_index = index;
        let completion = self.server.set_phi(self.effective_phi(), now);
        self.refresh_power(now);
        completion
    }

    /// Current drift-injection factor on delivered capacity.
    pub fn service_scale(&self) -> f64 {
        self.service_scale
    }

    /// The scaling factor the server actually serves at: the DVFS `φ`
    /// times the injected capacity drift.
    fn effective_phi(&self) -> f64 {
        self.phi() * self.service_scale
    }

    /// Inject capacity drift at time `now`: the machine keeps its DVFS
    /// setting and *power draw* but delivers only `scale` of its nominal
    /// throughput — the insidious case for a train-once controller, since
    /// nothing in the telemetry says the maps are stale. Work already done
    /// on the in-service request is credited at the old rate; returns its
    /// new completion time, if any (caller reschedules the departure).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is outside `(0, 1]`.
    pub fn set_service_scale(&mut self, scale: f64, now: f64) -> Option<f64> {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "service scale must lie in (0, 1], got {scale}"
        );
        self.service_scale = scale;
        self.server.set_phi(self.effective_phi(), now)
    }

    /// Offer a request to the computer at time `now`.
    ///
    /// The request's reference demand is scaled by this computer's speed
    /// (a machine twice as fast halves the full-speed demand).
    pub fn offer(&mut self, request: Request, now: f64) -> Admission {
        let scaled = Request::new(request.id, request.arrival, request.demand / self.speed);
        match self.state {
            PowerState::On => {
                self.stats.arrivals += 1;
                if self.server.enqueue(scaled, now) {
                    self.refresh_power(now);
                    Admission::Started
                } else {
                    Admission::Queued
                }
            }
            PowerState::Booting { .. } => {
                self.stats.arrivals += 1;
                self.server.enqueue_waiting(scaled);
                Admission::Queued
            }
            PowerState::Off | PowerState::Draining => Admission::Rejected,
        }
    }

    /// Current completion time of the in-service request (if serving).
    pub fn completion_time(&self) -> Option<f64> {
        if matches!(self.state, PowerState::On | PowerState::Draining) {
            self.server.completion_time()
        } else {
            None
        }
    }

    /// Complete the in-service request at `now`, recording response-time
    /// and demand observations; auto-transitions `Draining → Off` when the
    /// queue empties. Returns the finished request.
    ///
    /// # Panics
    ///
    /// Panics if no request is in service.
    pub fn complete(&mut self, now: f64) -> Request {
        let finished = self.server.complete(now);
        self.stats.completions += 1;
        self.stats.response_sum += finished.response_time(now);
        self.stats.demand_sum += finished.demand;
        if matches!(self.state, PowerState::Draining) && self.server.queue_length() == 0 {
            self.state = PowerState::Off;
        }
        self.refresh_power(now);
        finished
    }

    /// Drain and reset this computer's window statistics, stamping the
    /// energy drawn since the previous drain (the meter integrates up to
    /// `now`). `now` must not precede the previous drain instant.
    pub fn drain_stats(&mut self, now: f64) -> WindowStats {
        let mut w = self.stats.drain();
        let total = self.energy_at(now);
        w.energy = total - self.energy_drained;
        self.energy_drained = total;
        self.lifetime_completions += w.completions;
        w
    }

    /// Peek at the in-progress window statistics without resetting.
    pub fn stats(&self) -> &WindowStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn computer() -> Computer {
        Computer::new(vec![6.0e8, 1.2e9], 1.0, PowerModel::paper_default(), 120.0)
    }

    #[test]
    fn starts_off_with_max_frequency_selected() {
        let c = computer();
        assert_eq!(c.state(), PowerState::Off);
        assert_eq!(c.phi(), 1.0);
        assert_eq!(c.frequency(), 1.2e9);
        assert!(!c.is_active());
    }

    #[test]
    fn boot_sequence() {
        let mut c = computer();
        let ready = c.power_on(0.0).expect("boot starts");
        assert_eq!(ready, 120.0);
        assert!(matches!(c.state(), PowerState::Booting { .. }));
        assert!(c.is_active());
        assert_eq!(c.power_on(1.0), None, "double power-on is a no-op");
        c.finish_boot(120.0);
        assert_eq!(c.state(), PowerState::On);
    }

    #[test]
    fn offers_while_booting_queue_and_start_at_boot() {
        let mut c = computer();
        c.power_on(0.0);
        let adm = c.offer(Request::new(1, 10.0, 0.02), 10.0);
        assert_eq!(adm, Admission::Queued);
        assert_eq!(c.queue_length(), 1);
        assert_eq!(c.completion_time(), None, "not serving while booting");
        let started = c.finish_boot(120.0);
        assert!(started);
        assert_eq!(c.completion_time(), Some(120.02));
    }

    #[test]
    fn off_computer_rejects() {
        let mut c = computer();
        assert_eq!(
            c.offer(Request::new(1, 0.0, 0.01), 0.0),
            Admission::Rejected
        );
    }

    #[test]
    fn draining_completes_then_turns_off() {
        let mut c = computer();
        c.power_on(0.0);
        c.finish_boot(120.0);
        assert_eq!(
            c.offer(Request::new(1, 120.0, 1.0), 120.0),
            Admission::Started
        );
        c.power_off(120.5);
        assert_eq!(c.state(), PowerState::Draining);
        assert_eq!(
            c.offer(Request::new(2, 120.6, 1.0), 120.6),
            Admission::Rejected
        );
        let done = c.complete(121.0);
        assert_eq!(done.id, 1);
        assert_eq!(c.state(), PowerState::Off);
    }

    #[test]
    fn draining_recovers_to_on() {
        let mut c = computer();
        c.power_on(0.0);
        c.finish_boot(120.0);
        c.offer(Request::new(1, 120.0, 1.0), 120.0);
        c.power_off(120.1);
        assert_eq!(c.state(), PowerState::Draining);
        assert_eq!(c.power_on(120.2), None);
        assert_eq!(c.state(), PowerState::On);
    }

    #[test]
    fn cancel_boot() {
        let mut c = computer();
        c.power_on(0.0);
        c.power_off(10.0);
        assert_eq!(c.state(), PowerState::Off);
        assert_eq!(c.switch_ons(), 1);
        assert_eq!(c.switch_offs(), 1);
    }

    #[test]
    fn speed_scales_demand() {
        let mut fast = Computer::new(vec![1.0e9], 2.0, PowerModel::paper_default(), 0.0);
        fast.power_on(0.0);
        fast.finish_boot(0.0);
        fast.offer(Request::new(1, 0.0, 1.0), 0.0);
        assert_eq!(fast.completion_time(), Some(0.5), "2x speed halves service");
    }

    #[test]
    fn frequency_change_rescales_service() {
        let mut c = computer();
        c.power_on(0.0);
        c.finish_boot(0.0);
        c.offer(Request::new(1, 0.0, 1.0), 0.0);
        assert_eq!(c.completion_time(), Some(1.0));
        let new_t = c.set_frequency_index(0, 0.5); // φ = 0.5
        assert_eq!(new_t, Some(1.5), "0.5 remaining at half speed");
        assert_eq!(c.phi(), 0.5);
    }

    #[test]
    fn energy_accounting_across_states() {
        let mut c = Computer::new(vec![1.0e9], 1.0, PowerModel::new(0.75, 8.0), 10.0);
        assert_eq!(c.energy_at(100.0), 0.0, "off draws nothing");
        c.power_on(100.0);
        // 10 s of booting at 8.0 -> 80.
        c.finish_boot(110.0);
        assert!((c.energy_at(110.0) - 80.0).abs() < 1e-9);
        // 5 s idle-on at base 0.75 -> +3.75.
        c.offer(Request::new(1, 115.0, 2.0), 115.0);
        assert!((c.energy_at(115.0) - 83.75).abs() < 1e-9);
        // 2 s busy at 0.75 + 1.0 = 1.75 -> +3.5.
        c.complete(117.0);
        assert!((c.energy_at(117.0) - 87.25).abs() < 1e-9);
    }

    #[test]
    fn stats_capture_response_times() {
        let mut c = computer();
        c.power_on(0.0);
        c.finish_boot(0.0);
        c.offer(Request::new(1, 0.0, 0.5), 0.0);
        c.offer(Request::new(2, 0.0, 0.5), 0.0);
        c.complete(0.5);
        c.complete(1.0);
        let w = c.drain_stats(1.0);
        assert_eq!(w.arrivals, 2);
        assert_eq!(w.completions, 2);
        assert!((w.response_sum - 1.5).abs() < 1e-12);
        assert_eq!(w.mean_demand(), Some(0.5));
        // 1 s busy at operating power 0.75 + 1.0 (instant boot at t = 0).
        assert!((w.energy - 1.75).abs() < 1e-9, "window energy {}", w.energy);
        assert_eq!(c.stats().completions, 0, "drained");
        assert_eq!(c.completed(), 2, "lifetime total survives drain");
        // The next window starts from a clean energy mark.
        let w2 = c.drain_stats(2.0);
        assert!((w2.energy - 0.75).abs() < 1e-9, "1 s idle-on at base cost");
    }

    #[test]
    fn crash_drops_to_off_and_returns_work_in_reference_units() {
        let mut c = Computer::new(vec![1.0e9], 2.0, PowerModel::paper_default(), 0.0);
        c.power_on(0.0);
        c.finish_boot(0.0);
        c.offer(Request::new(1, 0.0, 1.0), 0.0);
        c.offer(Request::new(2, 0.0, 0.5), 0.0);
        let lost = c.fail(0.1);
        assert_eq!(c.state(), PowerState::Off);
        assert!(c.is_failed());
        assert_eq!(c.queue_length(), 0);
        assert_eq!(lost.len(), 2);
        // FCFS order, demands un-scaled back to reference units (offer
        // divided by speed = 2.0).
        assert_eq!(lost[0].id, 1);
        assert!((lost[0].demand - 1.0).abs() < 1e-12);
        assert!((lost[1].demand - 0.5).abs() < 1e-12);
        assert_eq!(c.energy_at(10.0), c.energy_at(0.1), "off draws nothing");
    }

    #[test]
    fn failed_machine_refuses_power_on_until_repaired() {
        let mut c = computer();
        c.power_on(0.0);
        c.finish_boot(120.0);
        c.fail(130.0);
        assert_eq!(c.power_on(131.0), None, "unbootable while failed");
        assert_eq!(c.state(), PowerState::Off);
        assert_eq!(
            c.offer(Request::new(1, 131.0, 0.02), 131.0),
            Admission::Rejected
        );
        c.repair(200.0);
        assert!(!c.is_failed());
        let ready = c.power_on(200.0).expect("boots normally after repair");
        assert_eq!(ready, 320.0, "normal boot dead time applies");
    }

    #[test]
    fn infinite_boot_delay_never_ready() {
        let mut c = Computer::new(vec![1.0e9], 1.0, PowerModel::paper_default(), f64::INFINITY);
        let ready = c.power_on(0.0).unwrap();
        assert!(ready.is_infinite(), "failed machine never boots");
    }
}
