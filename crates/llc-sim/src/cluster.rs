use crate::machines::{Admission, BatchRun, ComputerRef, MachineLane, MachineSlabs};
use crate::{PowerModel, PowerState, Request, WeightedRouter, WindowStats};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Errors reported by the cluster simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A computer index was out of range.
    UnknownComputer(usize),
    /// A module index was out of range.
    UnknownModule(usize),
    /// A weight vector had the wrong length for its router.
    WeightLengthMismatch {
        /// Targets expected by the router.
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// `run_until` / `schedule_arrival` was asked to move into the past.
    TimeRanBackwards {
        /// Current simulation time.
        now: f64,
        /// The offending requested time.
        requested: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownComputer(i) => write!(f, "no computer with index {i}"),
            SimError::UnknownModule(i) => write!(f, "no module with index {i}"),
            SimError::WeightLengthMismatch { expected, got } => {
                write!(
                    f,
                    "weight vector has length {got}, router expects {expected}"
                )
            }
            SimError::TimeRanBackwards { now, requested } => {
                write!(f, "requested time {requested} precedes current time {now}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Static description of one computer.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputerConfig {
    /// Operating frequencies in Hz, strictly ascending.
    pub frequencies: Vec<f64>,
    /// Relative full-speed capacity (1.0 = reference machine).
    pub speed: f64,
    /// Power model parameters.
    pub power: PowerModel,
    /// Switch-on dead time in seconds.
    pub boot_delay: f64,
}

impl ComputerConfig {
    /// A reference-speed computer with the given frequency set, power
    /// model and boot delay.
    pub fn new(frequencies: Vec<f64>, power: PowerModel, boot_delay: f64) -> Self {
        ComputerConfig {
            frequencies,
            speed: 1.0,
            power,
            boot_delay,
        }
    }

    /// Override the relative speed.
    #[must_use]
    pub fn with_speed(mut self, speed: f64) -> Self {
        self.speed = speed;
        self
    }
}

/// Static description of the whole cluster: computers grouped into the
/// paper's modules (Fig. 2(a)).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// One inner vector of computer configs per module.
    pub modules: Vec<Vec<ComputerConfig>>,
}

#[derive(Debug, Clone)]
enum EventKind {
    Arrival { demand: f64 },
    Departure { comp: usize, epoch: u64 },
    BootDone { comp: usize, epoch: u64 },
}

#[derive(Debug, Clone)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed: BinaryHeap is a max-heap, we need earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event-driven cluster simulator (the plant of Fig. 1(a)).
///
/// Per-machine state lives in [`MachineSlabs`] — struct-of-arrays slabs
/// indexed by global machine id — so sweeping a 1000-machine cluster walks
/// flat vectors instead of chasing per-machine heap allocations.
///
/// Two driving modes share the same machine state:
///
/// * **Per-request** (the original path, used by the control experiments):
///   requests scheduled via [`ClusterSim::schedule_arrival`] flow through a
///   two-level dispatcher (global → module → computer) realizing the γ
///   fractions set by the controllers, queue FCFS at each computer, and
///   are served at the DVFS-scaled rate. [`ClusterSim::run_until`]
///   advances the global event loop.
/// * **Batched** (the scale path): [`ClusterSim::inject_batch`] routes a
///   whole window's arrivals analytically through the same routers — one
///   draw per (module, window) instead of per request — and
///   [`ClusterSim::step_window`] sweeps every machine's local timeline in
///   parallel shards, bit-identical for any shard count. The event heap
///   holds O(machines) entries instead of O(requests).
///
/// Between advances the controllers observe per-computer [`WindowStats`]
/// and actuate frequencies, power states and weights in either mode. Do
/// not interleave the two modes within one window: `step_window` takes
/// ownership of boot handling and discards pending heap events.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    now: f64,
    machines: MachineSlabs,
    /// Global indices of the computers of each module.
    modules: Vec<Vec<usize>>,
    /// Module that each computer belongs to (inverse of `modules`).
    module_of: Vec<usize>,
    global_router: WeightedRouter,
    module_routers: Vec<WeightedRouter>,
    module_stats: Vec<WindowStats>,
    events: BinaryHeap<Event>,
    seq: u64,
    next_request_id: u64,
    dropped_total: u64,
    /// Per-computer wedged-actuator flags: while set, frequency
    /// directives for that computer are silently ignored (the fault the
    /// hierarchy must survive, not an error).
    stuck_actuators: Vec<bool>,
    /// Per-computer dispatcher-side rejection counters: requests the
    /// module router offered to a computer that the computer refused
    /// (crashed machine, or no admissible operating state). Counted at
    /// the *router*, not the machine, so the management plane can read
    /// them even when the machine's own telemetry has gone dark — a
    /// dispatcher always knows its own failed sends.
    dispatch_rejected: Vec<u64>,
    /// Per-computer batched arrival runs awaiting the next
    /// [`ClusterSim::step_window`] sweep.
    pending_runs: Vec<Vec<BatchRun>>,
}

impl ClusterSim {
    /// Build the simulator at time 0 with every computer `Off`.
    ///
    /// # Panics
    ///
    /// Panics if the config has no modules or an empty module (the
    /// machine slab constructor validates the rest).
    pub fn new(config: ClusterConfig) -> Self {
        assert!(
            !config.modules.is_empty(),
            "cluster needs at least one module"
        );
        assert!(
            config.modules.iter().all(|m| !m.is_empty()),
            "every module needs at least one computer"
        );
        let mut machines = MachineSlabs::new();
        let mut modules = Vec::new();
        let mut module_of = Vec::new();
        for (m, module_cfg) in config.modules.iter().enumerate() {
            let mut indices = Vec::with_capacity(module_cfg.len());
            for c in module_cfg {
                indices.push(machines.push(&c.frequencies, c.speed, c.power, c.boot_delay));
                module_of.push(m);
            }
            modules.push(indices);
        }
        let module_routers = modules
            .iter()
            .map(|m| WeightedRouter::new(m.len()))
            .collect();
        let module_count = modules.len();
        let computer_count = machines.len();
        ClusterSim {
            now: 0.0,
            machines,
            modules,
            module_of,
            global_router: WeightedRouter::new(module_count),
            module_routers,
            module_stats: vec![WindowStats::default(); module_count],
            events: BinaryHeap::new(),
            seq: 0,
            next_request_id: 0,
            dropped_total: 0,
            stuck_actuators: vec![false; computer_count],
            dispatch_rejected: vec![0; computer_count],
            pending_runs: vec![Vec::new(); computer_count],
        }
    }

    /// Current simulation time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of computers in the cluster.
    pub fn num_computers(&self) -> usize {
        self.machines.len()
    }

    /// Number of modules.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// Global computer indices belonging to module `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn module_members(&self, m: usize) -> &[usize] {
        &self.modules[m]
    }

    /// Read-only view of computer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn computer(&self, i: usize) -> ComputerRef<'_> {
        assert!(i < self.machines.len(), "no computer with index {i}");
        ComputerRef::new(&self.machines, i)
    }

    /// Total requests dropped because no operating target existed.
    pub fn dropped(&self) -> u64 {
        self.dropped_total
    }

    /// Total energy consumed by all computers up to the current time.
    pub fn total_energy(&self) -> f64 {
        (0..self.machines.len())
            .map(|i| self.machines.energy_at(i, self.now))
            .sum()
    }

    /// Number of computers currently active (on, booting or draining).
    pub fn active_count(&self) -> usize {
        (0..self.machines.len())
            .filter(|&i| self.machines.is_active(i))
            .count()
    }

    fn push_event(&mut self, time: f64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Event {
            time,
            seq: self.seq,
            kind,
        });
    }

    /// Schedule a request arrival at absolute time `time` with full-speed
    /// demand `demand` seconds.
    ///
    /// # Errors
    ///
    /// [`SimError::TimeRanBackwards`] if `time < now`.
    pub fn schedule_arrival(&mut self, time: f64, demand: f64) -> Result<(), SimError> {
        if time < self.now {
            return Err(SimError::TimeRanBackwards {
                now: self.now,
                requested: time,
            });
        }
        self.push_event(time, EventKind::Arrival { demand });
        Ok(())
    }

    /// Set the global dispatch fractions `{γ_i}` over modules.
    ///
    /// # Errors
    ///
    /// [`SimError::WeightLengthMismatch`] on wrong length.
    pub fn set_module_weights(&mut self, weights: &[f64]) -> Result<(), SimError> {
        if weights.len() != self.modules.len() {
            return Err(SimError::WeightLengthMismatch {
                expected: self.modules.len(),
                got: weights.len(),
            });
        }
        self.global_router.set_weights(weights);
        Ok(())
    }

    /// Set module `m`'s dispatch fractions `{γ_ij}` over its computers.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownModule`] / [`SimError::WeightLengthMismatch`].
    pub fn set_computer_weights(&mut self, m: usize, weights: &[f64]) -> Result<(), SimError> {
        let router = self
            .module_routers
            .get_mut(m)
            .ok_or(SimError::UnknownModule(m))?;
        if weights.len() != router.len() {
            return Err(SimError::WeightLengthMismatch {
                expected: router.len(),
                got: weights.len(),
            });
        }
        router.set_weights(weights);
        Ok(())
    }

    /// Order computer `i` on (takes `boot_delay` to become operational).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn power_on(&mut self, i: usize) {
        let now = self.now;
        if let Some(ready_at) = self.machines.power_on(i, now) {
            let epoch = self.machines.bump_epoch(i);
            if ready_at.is_finite() {
                self.push_event(ready_at, EventKind::BootDone { comp: i, epoch });
            }
        } else {
            // Draining -> On recovery: the in-service job keeps running and
            // its departure event stays valid; nothing to schedule.
        }
    }

    /// Initialization helper: force computer `i` straight into `On`
    /// (no boot delay, no switch-on count). Use only while constructing a
    /// pre-warmed scenario before the event loop starts.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn force_on(&mut self, i: usize) {
        let now = self.now;
        self.machines.force_on(i, now);
        self.machines.bump_epoch(i);
        if let Some(t) = self.machines.completion_time(i) {
            let epoch = self.machines.epoch(i);
            self.push_event(t, EventKind::Departure { comp: i, epoch });
        }
    }

    /// Order computer `i` off (drains if busy).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn power_off(&mut self, i: usize) {
        let now = self.now;
        self.machines.power_off(i, now);
        // Cancelling a boot invalidates the pending BootDone event; a
        // draining computer keeps serving so departures stay valid.
        if matches!(self.machines.state(i), PowerState::Off) {
            self.machines.bump_epoch(i);
        }
    }

    /// Set computer `i`'s frequency by index into its frequency table.
    /// A directive to a [wedged actuator](ClusterSim::set_actuator_stuck)
    /// is silently ignored — exactly the fault a controller experiences
    /// when a DVFS governor stops responding.
    ///
    /// # Panics
    ///
    /// Panics if `i` or the index is out of range.
    pub fn set_frequency(&mut self, i: usize, index: usize) {
        if self.stuck_actuators[i] {
            assert!(
                index < self.machines.frequencies(i).len(),
                "frequency index out of range"
            );
            return;
        }
        let now = self.now;
        let new_completion = self.machines.set_frequency_index(i, index, now);
        if let Some(t) = new_completion {
            let epoch = self.machines.bump_epoch(i);
            self.push_event(t, EventKind::Departure { comp: i, epoch });
        }
    }

    /// Inject capacity drift into computer `i`: it keeps its DVFS setting
    /// and power draw but delivers only `scale ∈ (0, 1]` of its nominal
    /// throughput (gradual degradation, post-failure capacity loss — the
    /// drift scenarios online learning is measured against). The
    /// in-service request is re-timed like a frequency change.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `scale` is outside `(0, 1]`.
    pub fn set_service_scale(&mut self, i: usize, scale: f64) {
        let now = self.now;
        let new_completion = self.machines.set_service_scale(i, scale, now);
        if let Some(t) = new_completion {
            let epoch = self.machines.bump_epoch(i);
            self.push_event(t, EventKind::Departure { comp: i, epoch });
        }
    }

    /// The capacity-drift factor currently injected into computer `i` —
    /// the *ground truth* behind the controllers' online scale
    /// estimates, exposed so tests and benches can compare `ŝ` against
    /// what the plant actually delivers.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn service_scale(&self, i: usize) -> f64 {
        self.machines.service_scale(i)
    }

    /// Crash computer `i` at the current time: all queued and in-service
    /// work is ripped out instantly, the machine drops straight to `Off`
    /// and becomes unbootable until [`ClusterSim::restart`], and its
    /// pending departure/boot events are invalidated. With
    /// `requeue = false` the lost requests count as drops; with
    /// `requeue = true` each one is re-dispatched through the module's
    /// router at the crash instant (original arrival times preserved, so
    /// their eventual response times include the detour) — requests the
    /// router cannot place still drop.
    ///
    /// Returns the number of requests that were in the machine's system
    /// at the crash.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn crash(&mut self, i: usize, requeue: bool) -> usize {
        let now = self.now;
        let lost = self.machines.fail(i, now);
        self.machines.bump_epoch(i);
        let count = lost.len();
        let m = self.module_of[i];
        if requeue {
            for request in lost {
                self.redispatch_in_module(m, request);
            }
        } else {
            self.module_stats[m].dropped += count as u64;
            self.dropped_total += count as u64;
        }
        count
    }

    /// Re-offer one crashed-out request inside module `m` at the current
    /// time. The module-level arrival was already counted when the
    /// request first entered the module, so only drops are re-counted.
    fn redispatch_in_module(&mut self, m: usize, request: Request) {
        let Some(local) = self.module_routers[m].route() else {
            self.module_stats[m].dropped += 1;
            self.dropped_total += 1;
            return;
        };
        let comp = self.modules[m][local];
        match self.machines.offer(comp, request, self.now) {
            Admission::Started => {
                let t = self
                    .machines
                    .completion_time(comp)
                    .expect("started implies serving");
                let epoch = self.machines.bump_epoch(comp);
                self.push_event(t, EventKind::Departure { comp, epoch });
            }
            Admission::Queued => {}
            Admission::Rejected => {
                self.module_stats[m].dropped += 1;
                self.dropped_total += 1;
                self.dispatch_rejected[comp] += 1;
            }
        }
    }

    /// Restart a crashed computer: clears the failed mark and issues a
    /// power-on order, so the machine comes back through the normal
    /// Off→Booting boot dead time. No-op if `i` never crashed and is
    /// already active.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn restart(&mut self, i: usize) {
        let now = self.now;
        self.machines.repair(i, now);
        self.power_on(i);
    }

    /// Wedge (`true`) or free (`false`) computer `i`'s frequency
    /// actuator. While wedged, [`ClusterSim::set_frequency`] directives
    /// are silently ignored and the machine keeps serving at whatever
    /// operating point it was last left at.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_actuator_stuck(&mut self, i: usize, stuck: bool) {
        assert!(i < self.machines.len(), "no computer with index {i}");
        self.stuck_actuators[i] = stuck;
    }

    /// `true` while computer `i`'s frequency actuator is wedged.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn actuator_stuck(&self, i: usize) -> bool {
        self.stuck_actuators[i]
    }

    /// Drain per-computer window statistics (resetting them), in global
    /// computer order. Each window carries the energy drawn since the
    /// previous drain (integrated up to the current simulation time).
    pub fn drain_computer_stats(&mut self) -> Vec<WindowStats> {
        let now = self.now;
        (0..self.machines.len())
            .map(|i| self.machines.drain_stats(i, now))
            .collect()
    }

    /// Drain per-module arrival statistics (module-level routing counts).
    pub fn drain_module_stats(&mut self) -> Vec<WindowStats> {
        self.module_stats.iter_mut().map(|s| s.drain()).collect()
    }

    /// Drain the per-computer dispatcher-side rejection counters
    /// (resetting them), in global computer order: how many requests the
    /// module router offered to each computer since the previous drain
    /// that the computer refused. Unlike [`ClusterSim::drain_computer_stats`]
    /// this is *router-side* telemetry — it stays observable when a
    /// machine crashes or its sensors black out, because the dispatcher
    /// measures its own failed sends.
    pub fn drain_dispatch_rejections(&mut self) -> Vec<u64> {
        self.dispatch_rejected
            .iter_mut()
            .map(std::mem::take)
            .collect()
    }

    /// Advance the event loop to absolute time `t`.
    ///
    /// # Errors
    ///
    /// [`SimError::TimeRanBackwards`] if `t < now`.
    pub fn run_until(&mut self, t: f64) -> Result<(), SimError> {
        if t < self.now {
            return Err(SimError::TimeRanBackwards {
                now: self.now,
                requested: t,
            });
        }
        while let Some(head) = self.events.peek() {
            if head.time > t {
                break;
            }
            let ev = self.events.pop().expect("peeked");
            self.now = ev.time.max(self.now);
            match ev.kind {
                EventKind::Arrival { demand } => self.handle_arrival(demand),
                EventKind::Departure { comp, epoch } => {
                    if self.machines.epoch(comp) == epoch {
                        self.handle_departure(comp);
                    }
                }
                EventKind::BootDone { comp, epoch } => {
                    if self.machines.epoch(comp) == epoch {
                        self.handle_boot_done(comp);
                    }
                }
            }
        }
        self.now = t;
        Ok(())
    }

    fn handle_arrival(&mut self, demand: f64) {
        let id = self.next_request_id;
        self.next_request_id += 1;
        let request = Request::new(id, self.now, demand);

        let Some(m) = self.global_router.route() else {
            self.dropped_total += 1;
            return;
        };
        self.module_stats[m].arrivals += 1;
        let Some(local) = self.module_routers[m].route() else {
            self.module_stats[m].dropped += 1;
            self.dropped_total += 1;
            return;
        };
        let comp = self.modules[m][local];
        match self.machines.offer(comp, request, self.now) {
            Admission::Started => {
                let t = self
                    .machines
                    .completion_time(comp)
                    .expect("started implies serving");
                let epoch = self.machines.bump_epoch(comp);
                self.push_event(t, EventKind::Departure { comp, epoch });
            }
            Admission::Queued => {}
            Admission::Rejected => {
                self.module_stats[m].dropped += 1;
                self.dropped_total += 1;
                self.dispatch_rejected[comp] += 1;
            }
        }
    }

    fn handle_departure(&mut self, comp: usize) {
        let _finished = self.machines.complete(comp, self.now);
        if let Some(t) = self.machines.completion_time(comp) {
            let epoch = self.machines.bump_epoch(comp);
            self.push_event(t, EventKind::Departure { comp, epoch });
        }
    }

    fn handle_boot_done(&mut self, comp: usize) {
        let started = self.machines.finish_boot(comp, self.now);
        if started {
            let t = self
                .machines
                .completion_time(comp)
                .expect("boot started a job");
            let epoch = self.machines.bump_epoch(comp);
            self.push_event(t, EventKind::Departure { comp, epoch });
        }
    }

    // ----- batched window mode --------------------------------------

    /// Route one window's worth of arrivals analytically: `count`
    /// requests of `demand` reference-seconds each, spread evenly over
    /// `[start, start + width)`. One deficit-round-robin batch draw per
    /// router replaces `count` per-request draws; each machine receives
    /// its allotment as a batch run consumed by the next
    /// [`ClusterSim::step_window`]. Routing happens now, at injection —
    /// the same directives-before-arrivals order the per-request path
    /// sees when a window's arrivals are scheduled after actuation.
    ///
    /// Arrivals that no router can place (all-zero weights) are counted
    /// as drops immediately, exactly like the per-request path.
    ///
    /// # Errors
    ///
    /// [`SimError::TimeRanBackwards`] if `start < now`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `demand` is not positive and finite.
    pub fn inject_batch(
        &mut self,
        start: f64,
        width: f64,
        count: u64,
        demand: f64,
    ) -> Result<(), SimError> {
        if start < self.now {
            return Err(SimError::TimeRanBackwards {
                now: self.now,
                requested: start,
            });
        }
        assert!(
            width > 0.0 && width.is_finite(),
            "window width must be positive and finite"
        );
        assert!(
            demand > 0.0 && demand.is_finite(),
            "demand must be positive and finite"
        );
        if count == 0 {
            return Ok(());
        }
        let Some(per_module) = self.global_router.route_batch(count) else {
            self.dropped_total += count;
            return Ok(());
        };
        for (m, &n_m) in per_module.iter().enumerate() {
            if n_m == 0 {
                continue;
            }
            self.module_stats[m].arrivals += n_m;
            let Some(per_member) = self.module_routers[m].route_batch(n_m) else {
                self.module_stats[m].dropped += n_m;
                self.dropped_total += n_m;
                continue;
            };
            for (local, &n_j) in per_member.iter().enumerate() {
                if n_j == 0 {
                    continue;
                }
                let comp = self.modules[m][local];
                self.pending_runs[comp].push(BatchRun {
                    start,
                    spacing: width / n_j as f64,
                    count: n_j,
                    demand,
                });
            }
        }
        Ok(())
    }

    /// Sweep every machine's local timeline to absolute time `t`,
    /// consuming the batched arrivals injected since the last sweep.
    ///
    /// Each machine is an independent FCFS system once its arrivals are
    /// assigned, so the sweep shards across cores with
    /// `llc_par::par_for_each_mut`: machine lanes are detached from the
    /// slabs in index order, stepped in parallel (each worker owns a
    /// contiguous disjoint chunk), and merged back serially in index
    /// order — results are bit-identical for any thread count. Rejected
    /// batch arrivals are charged to module drops, the global drop total
    /// and the per-computer dispatcher rejection counters during the
    /// serial merge, matching the per-request path's accounting.
    ///
    /// This mode owns boot transitions: pending `BootDone` heap events
    /// are discarded and `Booting → On` is handled inside each lane. Do
    /// not mix with [`ClusterSim::run_until`] within the same window.
    ///
    /// # Errors
    ///
    /// [`SimError::TimeRanBackwards`] if `t < now`.
    pub fn step_window(&mut self, t: f64) -> Result<(), SimError> {
        if t < self.now {
            return Err(SimError::TimeRanBackwards {
                now: self.now,
                requested: t,
            });
        }
        // Batched mode handles boots machine-locally; whatever sits in
        // the heap (BootDone orders, stale departures) is superseded.
        self.events.clear();
        let n = self.machines.len();
        // Serial gather: request-id bases are allocated in machine order
        // so id assignment is independent of the shard count.
        let mut lanes: Vec<MachineLane> = Vec::with_capacity(n);
        for i in 0..n {
            let runs = std::mem::take(&mut self.pending_runs[i]);
            let arrivals: u64 = runs.iter().map(|r| r.count).sum();
            let id_base = self.next_request_id;
            self.next_request_id += arrivals;
            lanes.push(self.machines.take_lane(i, runs, id_base));
        }
        llc_par::par_for_each_mut(&mut lanes, |lane| lane.step(t));
        // Serial merge in machine order: deterministic accounting.
        for lane in lanes {
            let i = lane.i;
            let rejected = lane.rejected;
            self.machines.restore_lane(lane);
            if rejected > 0 {
                let m = self.module_of[i];
                self.module_stats[m].dropped += rejected;
                self.dropped_total += rejected;
                self.dispatch_rejected[i] += rejected;
            }
        }
        self.now = t;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PowerState;

    fn one_computer_cluster() -> ClusterSim {
        let cfg = ClusterConfig {
            modules: vec![vec![ComputerConfig::new(
                vec![5.0e8, 1.0e9],
                PowerModel::paper_default(),
                120.0,
            )]],
        };
        let mut sim = ClusterSim::new(cfg);
        sim.set_module_weights(&[1.0]).unwrap();
        sim.set_computer_weights(0, &[1.0]).unwrap();
        sim
    }

    fn two_module_cluster() -> ClusterSim {
        let comp = || ComputerConfig::new(vec![1.0e9], PowerModel::paper_default(), 0.0);
        let cfg = ClusterConfig {
            modules: vec![vec![comp(), comp()], vec![comp(), comp()]],
        };
        ClusterSim::new(cfg)
    }

    #[test]
    fn request_served_end_to_end() {
        let mut sim = one_computer_cluster();
        sim.power_on(0);
        sim.run_until(120.0).unwrap(); // boot completes
        assert_eq!(sim.computer(0).state(), PowerState::On);
        sim.schedule_arrival(121.0, 0.5).unwrap();
        sim.run_until(125.0).unwrap();
        let stats = sim.drain_computer_stats();
        assert_eq!(stats[0].completions, 1);
        assert!((stats[0].response_sum - 0.5).abs() < 1e-9);
        assert_eq!(sim.dropped(), 0);
    }

    #[test]
    fn requests_during_boot_wait() {
        let mut sim = one_computer_cluster();
        sim.power_on(0);
        sim.schedule_arrival(60.0, 1.0).unwrap();
        sim.run_until(119.0).unwrap();
        assert_eq!(sim.computer(0).queue_length(), 1);
        sim.run_until(121.5).unwrap();
        // Service starts at 120, 1 s at full speed -> done at 121.
        let stats = sim.drain_computer_stats();
        assert_eq!(stats[0].completions, 1);
        assert!(
            (stats[0].response_sum - 61.0).abs() < 1e-9,
            "waited through boot"
        );
    }

    #[test]
    fn all_off_drops_requests() {
        let mut sim = one_computer_cluster();
        sim.schedule_arrival(1.0, 0.01).unwrap();
        sim.run_until(2.0).unwrap();
        assert_eq!(sim.dropped(), 1);
    }

    #[test]
    fn zero_weights_drop_at_global_router() {
        let mut sim = two_module_cluster();
        // No weights set at all: global router drops.
        sim.schedule_arrival(0.5, 0.01).unwrap();
        sim.run_until(1.0).unwrap();
        assert_eq!(sim.dropped(), 1);
        let m = sim.drain_module_stats();
        assert_eq!(m[0].arrivals + m[1].arrivals, 0);
    }

    #[test]
    fn module_weights_split_arrivals() {
        let mut sim = two_module_cluster();
        for i in 0..4 {
            sim.power_on(i);
        }
        sim.set_module_weights(&[0.75, 0.25]).unwrap();
        sim.set_computer_weights(0, &[0.5, 0.5]).unwrap();
        sim.set_computer_weights(1, &[1.0, 0.0]).unwrap();
        for k in 0..100 {
            sim.schedule_arrival(0.01 * f64::from(k), 0.001).unwrap();
        }
        sim.run_until(10.0).unwrap();
        let m = sim.drain_module_stats();
        assert_eq!(m[0].arrivals, 75);
        assert_eq!(m[1].arrivals, 25);
        let c = sim.drain_computer_stats();
        assert_eq!(c[2].arrivals, 25);
        assert_eq!(c[3].arrivals, 0);
        assert_eq!(sim.dropped(), 0);
    }

    #[test]
    fn dispatch_rejections_attributed_to_crashed_target() {
        let comp = || ComputerConfig::new(vec![1.0e9], PowerModel::paper_default(), 0.0);
        let cfg = ClusterConfig {
            modules: vec![vec![comp(), comp()]],
        };
        let mut sim = ClusterSim::new(cfg);
        sim.power_on(0);
        sim.power_on(1);
        sim.set_module_weights(&[1.0]).unwrap();
        sim.set_computer_weights(0, &[0.5, 0.5]).unwrap();
        sim.run_until(1.0).unwrap();
        sim.crash(1, false);
        // The router still holds 50/50 weights: every other request is
        // offered to the dead machine and refused at the dispatcher.
        for k in 0..10 {
            sim.schedule_arrival(1.1 + 0.01 * f64::from(k), 0.001)
                .unwrap();
        }
        sim.run_until(2.0).unwrap();
        let rej = sim.drain_dispatch_rejections();
        assert_eq!(rej[0], 0, "live machine refused nothing");
        assert_eq!(
            rej[1], 5,
            "dead target's failed sends counted at the router"
        );
        assert_eq!(sim.dropped(), 5);
        // Draining resets.
        assert_eq!(sim.drain_dispatch_rejections(), vec![0, 0]);
    }

    #[test]
    fn frequency_change_mid_service_reschedules_departure() {
        let mut sim = one_computer_cluster();
        sim.power_on(0);
        sim.run_until(120.0).unwrap();
        sim.schedule_arrival(120.0, 1.0).unwrap();
        sim.run_until(120.5).unwrap();
        sim.set_frequency(0, 0); // φ = 0.5, 0.5 demand left -> 1 s more
        sim.run_until(121.4).unwrap();
        assert_eq!(sim.computer(0).queue_length(), 1, "not done yet");
        sim.run_until(121.6).unwrap();
        assert_eq!(sim.computer(0).queue_length(), 0, "done at 121.5");
    }

    #[test]
    fn stale_departure_events_ignored() {
        let mut sim = one_computer_cluster();
        sim.power_on(0);
        sim.run_until(120.0).unwrap();
        sim.schedule_arrival(120.0, 1.0).unwrap();
        sim.run_until(120.2).unwrap();
        // Two reschedules leave two stale events in the heap.
        sim.set_frequency(0, 0);
        sim.set_frequency(0, 1);
        sim.run_until(130.0).unwrap();
        let stats = sim.drain_computer_stats();
        assert_eq!(stats[0].completions, 1, "exactly one completion");
    }

    #[test]
    fn service_scale_stretches_service_but_not_power() {
        let mut sim = one_computer_cluster();
        sim.power_on(0);
        sim.run_until(120.0).unwrap();
        assert_eq!(sim.computer(0).service_scale(), 1.0);
        // Degrade to half capacity mid-service: a 2 s request started at
        // t=120 with 1 s of work left at t=121 now finishes at t=123.
        sim.schedule_arrival(120.0, 2.0).unwrap();
        sim.run_until(121.0).unwrap();
        sim.set_service_scale(0, 0.5);
        sim.run_until(122.5).unwrap();
        assert_eq!(sim.computer(0).queue_length(), 1, "not done at 122.5");
        let energy_busy = sim.total_energy();
        sim.run_until(123.1).unwrap();
        assert_eq!(sim.computer(0).queue_length(), 0, "done at 123");
        // Power draw while busy stayed nominal (operating at φ=1):
        // degradation is invisible to the meter.
        let drawn = sim.total_energy() - energy_busy;
        let operating = 0.75 + 1.0; // PowerModel::new(0.75, 8.0) at φ=1
        assert!(
            (drawn - (operating * 0.5 + 0.75 * 0.1)).abs() < 1e-6,
            "busy 122.5..123 at nominal watts then idle, got {drawn}"
        );
    }

    #[test]
    fn cancelled_boot_never_completes() {
        let mut sim = one_computer_cluster();
        sim.power_on(0);
        sim.run_until(60.0).unwrap();
        sim.power_off(0);
        sim.run_until(500.0).unwrap();
        assert_eq!(sim.computer(0).state(), PowerState::Off);
    }

    #[test]
    fn draining_computer_finishes_work_then_off() {
        let mut sim = one_computer_cluster();
        sim.power_on(0);
        sim.run_until(120.0).unwrap();
        sim.schedule_arrival(120.0, 2.0).unwrap();
        sim.run_until(120.1).unwrap();
        sim.power_off(0);
        assert_eq!(sim.computer(0).state(), PowerState::Draining);
        sim.run_until(123.0).unwrap();
        assert_eq!(sim.computer(0).state(), PowerState::Off);
        let stats = sim.drain_computer_stats();
        assert_eq!(stats[0].completions, 1);
    }

    #[test]
    fn time_cannot_run_backwards() {
        let mut sim = one_computer_cluster();
        sim.run_until(10.0).unwrap();
        assert!(matches!(
            sim.run_until(5.0),
            Err(SimError::TimeRanBackwards { .. })
        ));
        assert!(matches!(
            sim.schedule_arrival(5.0, 0.1),
            Err(SimError::TimeRanBackwards { .. })
        ));
        assert!(matches!(
            sim.inject_batch(5.0, 30.0, 10, 0.1),
            Err(SimError::TimeRanBackwards { .. })
        ));
        assert!(matches!(
            sim.step_window(5.0),
            Err(SimError::TimeRanBackwards { .. })
        ));
    }

    #[test]
    fn energy_grows_while_active_only() {
        let mut sim = one_computer_cluster();
        sim.run_until(100.0).unwrap();
        assert_eq!(sim.total_energy(), 0.0);
        sim.power_on(0);
        sim.run_until(320.0).unwrap();
        let e = sim.total_energy();
        // Boot [100, 220] at 8.0 + idle-on [220, 320] at 0.75 = 960 + 75.
        assert!((e - 1035.0).abs() < 1e-6, "{e}");
    }

    #[test]
    fn fcfs_queueing_accumulates_response_time() {
        let mut sim = one_computer_cluster();
        sim.power_on(0);
        sim.run_until(120.0).unwrap();
        // Three back-to-back 1 s requests at t=120.
        for _ in 0..3 {
            sim.schedule_arrival(120.0, 1.0).unwrap();
        }
        sim.run_until(200.0).unwrap();
        let stats = sim.drain_computer_stats();
        assert_eq!(stats[0].completions, 3);
        // Responses: 1, 2, 3 seconds.
        assert!((stats[0].response_sum - 6.0).abs() < 1e-9);
        assert_eq!(stats[0].mean_response(), Some(2.0));
    }

    #[test]
    fn crash_drops_queued_work_and_resists_power_on() {
        let mut sim = one_computer_cluster();
        sim.power_on(0);
        sim.run_until(120.0).unwrap();
        for _ in 0..3 {
            sim.schedule_arrival(120.0, 1.0).unwrap();
        }
        sim.run_until(120.5).unwrap();
        let in_system = sim.crash(0, false);
        assert_eq!(in_system, 3);
        assert_eq!(sim.dropped(), 3, "lost work counts as drops");
        assert_eq!(sim.computer(0).state(), PowerState::Off);
        assert!(sim.computer(0).is_failed());
        // The stale departure for the in-service request must not fire.
        sim.power_on(0); // refused: still failed
        sim.run_until(400.0).unwrap();
        assert_eq!(sim.computer(0).state(), PowerState::Off);
        let stats = sim.drain_computer_stats();
        assert_eq!(stats[0].completions, 0, "a crash completes nothing");
        // Restart boots through the normal dead time.
        sim.restart(0);
        assert!(matches!(
            sim.computer(0).state(),
            PowerState::Booting { .. }
        ));
        sim.run_until(521.0).unwrap();
        assert_eq!(sim.computer(0).state(), PowerState::On);
    }

    #[test]
    fn crash_with_requeue_moves_work_to_module_peer() {
        let mut sim = two_module_cluster();
        for i in 0..4 {
            sim.power_on(i);
        }
        sim.set_module_weights(&[1.0, 0.0]).unwrap();
        sim.set_computer_weights(0, &[1.0, 0.0]).unwrap();
        sim.run_until(1.0).unwrap();
        for _ in 0..4 {
            sim.schedule_arrival(1.0, 1.0).unwrap();
        }
        sim.run_until(1.5).unwrap();
        assert_eq!(sim.computer(0).queue_length(), 4);
        // Shift the module weights to the healthy peer, then crash with
        // requeue: the ripped-out work lands on computer 1 and completes.
        sim.set_computer_weights(0, &[0.0, 1.0]).unwrap();
        let moved = sim.crash(0, true);
        assert_eq!(moved, 4);
        assert_eq!(sim.dropped(), 0, "requeued, not dropped");
        assert_eq!(sim.computer(1).queue_length(), 4);
        sim.run_until(10.0).unwrap();
        let stats = sim.drain_computer_stats();
        assert_eq!(stats[1].completions, 4);
        // Responses include the detour: arrivals at t=1, service on the
        // peer starts only after the crash at t=1.5.
        assert!(stats[1].response_sum > 4.0);
    }

    #[test]
    fn stuck_actuator_ignores_frequency_directives() {
        let mut sim = one_computer_cluster();
        sim.power_on(0);
        sim.run_until(120.0).unwrap();
        sim.set_actuator_stuck(0, true);
        assert!(sim.actuator_stuck(0));
        sim.set_frequency(0, 0); // ignored: actuator wedged
        assert_eq!(sim.computer(0).frequency_index(), 1);
        sim.schedule_arrival(120.0, 1.0).unwrap();
        sim.run_until(121.5).unwrap();
        assert_eq!(
            sim.computer(0).queue_length(),
            0,
            "served at the wedged full-speed point"
        );
        sim.set_actuator_stuck(0, false);
        sim.set_frequency(0, 0);
        assert_eq!(sim.computer(0).frequency_index(), 0, "freed actuator obeys");
    }

    #[test]
    fn error_messages_are_lowercase() {
        for e in [
            SimError::UnknownComputer(1),
            SimError::UnknownModule(2),
            SimError::WeightLengthMismatch {
                expected: 2,
                got: 3,
            },
            SimError::TimeRanBackwards {
                now: 1.0,
                requested: 0.5,
            },
        ] {
            assert!(e.to_string().chars().next().unwrap().is_lowercase());
        }
    }

    // ----- batched window mode -------------------------------------

    #[test]
    fn batched_window_serves_like_per_request() {
        // Same scenario driven both ways: one machine, 4 requests of
        // 0.5 s spread evenly over a 10 s window. The batched sweep must
        // reproduce the per-request stats and energy exactly.
        let run = |batched: bool| {
            let cfg = ClusterConfig {
                modules: vec![vec![ComputerConfig::new(
                    vec![1.0e9],
                    PowerModel::paper_default(),
                    0.0,
                )]],
            };
            let mut sim = ClusterSim::new(cfg);
            sim.set_module_weights(&[1.0]).unwrap();
            sim.set_computer_weights(0, &[1.0]).unwrap();
            sim.force_on(0);
            if batched {
                sim.inject_batch(0.0, 10.0, 4, 0.5).unwrap();
                sim.step_window(10.0).unwrap();
            } else {
                for k in 0..4 {
                    sim.schedule_arrival(k as f64 * 2.5, 0.5).unwrap();
                }
                sim.run_until(10.0).unwrap();
            }
            let energy = sim.total_energy();
            (sim.drain_computer_stats(), sim.dropped(), energy)
        };
        let (per_req, d0, e0) = run(false);
        let (batch, d1, e1) = run(true);
        assert_eq!(per_req[0].arrivals, batch[0].arrivals);
        assert_eq!(per_req[0].completions, batch[0].completions);
        assert_eq!(per_req[0].response_sum, batch[0].response_sum);
        assert_eq!(per_req[0].demand_sum, batch[0].demand_sum);
        assert_eq!(d0, d1);
        assert_eq!(e0, e1, "bit-identical energy");
    }

    #[test]
    fn batched_arrivals_split_by_router_weights() {
        let mut sim = two_module_cluster();
        for i in 0..4 {
            sim.force_on(i);
        }
        sim.set_module_weights(&[0.75, 0.25]).unwrap();
        sim.set_computer_weights(0, &[0.5, 0.5]).unwrap();
        sim.set_computer_weights(1, &[1.0, 0.0]).unwrap();
        sim.inject_batch(0.0, 1.0, 100, 0.001).unwrap();
        sim.step_window(10.0).unwrap();
        let m = sim.drain_module_stats();
        assert_eq!(m[0].arrivals, 75);
        assert_eq!(m[1].arrivals, 25);
        let c = sim.drain_computer_stats();
        assert_eq!(c[0].arrivals + c[1].arrivals, 75);
        assert_eq!(c[2].arrivals, 25);
        assert_eq!(c[3].arrivals, 0);
        assert_eq!(sim.dropped(), 0);
    }

    #[test]
    fn batched_mode_handles_boot_locally() {
        let mut sim = one_computer_cluster();
        sim.power_on(0); // ready at 120 — no heap assistance in this mode
        sim.inject_batch(0.0, 30.0, 1, 1.0).unwrap();
        sim.step_window(30.0).unwrap();
        assert!(matches!(
            sim.computer(0).state(),
            PowerState::Booting { .. }
        ));
        sim.step_window(125.0).unwrap();
        assert_eq!(sim.computer(0).state(), PowerState::On);
        let stats = sim.drain_computer_stats();
        assert_eq!(stats[0].completions, 1, "queued arrival served at boot");
    }

    #[test]
    fn batched_rejections_charged_like_per_request() {
        // Module of two machines at 50/50 with one crashed: half the
        // batch is refused and must show up as drops + dispatcher
        // rejections attributed to the dead machine, exactly like the
        // per-request stream in dispatch_rejections_attributed_to_crashed_target.
        let comp = || ComputerConfig::new(vec![1.0e9], PowerModel::paper_default(), 0.0);
        let cfg = ClusterConfig {
            modules: vec![vec![comp(), comp()]],
        };
        let mut sim = ClusterSim::new(cfg);
        sim.force_on(0);
        sim.force_on(1);
        sim.set_module_weights(&[1.0]).unwrap();
        sim.set_computer_weights(0, &[0.5, 0.5]).unwrap();
        sim.step_window(1.0).unwrap();
        sim.crash(1, false);
        sim.inject_batch(1.1, 0.5, 10, 0.001).unwrap();
        sim.step_window(2.0).unwrap();
        let rej = sim.drain_dispatch_rejections();
        assert_eq!(rej[0], 0, "live machine refused nothing");
        assert_eq!(rej[1], 5, "dead target's allotment counted at the router");
        assert_eq!(sim.dropped(), 5);
        let m = sim.drain_module_stats();
        assert_eq!(m[0].arrivals, 10, "module arrivals include refused work");
        assert_eq!(m[0].dropped, 5);
    }

    #[test]
    fn batched_zero_weights_drop_at_injection() {
        let mut sim = two_module_cluster();
        sim.inject_batch(0.0, 1.0, 7, 0.01).unwrap();
        assert_eq!(sim.dropped(), 7, "no enabled module: dropped at inject");
        sim.step_window(1.0).unwrap();
        let m = sim.drain_module_stats();
        assert_eq!(m[0].arrivals + m[1].arrivals, 0);
    }
}
