/// Deterministic weighted dispatcher realizing the controllers' fractions.
///
/// The L2 controller decides `{γ_i}` (fractions per module) and each L1
/// controller `{γ_ij}` (fractions per computer); the dispatcher must send
/// each target its fraction of arrivals. We use **deficit round-robin**:
/// every target accumulates credit equal to its weight per routed request
/// and the most-credited target wins, paying one unit. Over `n` requests
/// each target receives `n·γ ± O(1)` — exact proportions without RNG,
/// keeping experiments reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedRouter {
    weights: Vec<f64>,
    credits: Vec<f64>,
}

impl WeightedRouter {
    /// A router over `n` targets, initially all weight zero (routing
    /// returns `None` until weights are set).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "router needs at least one target");
        WeightedRouter {
            weights: vec![0.0; n],
            credits: vec![0.0; n],
        }
    }

    /// Number of targets.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the router has no targets (never: constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Replace the weight vector. Weights must be non-negative; they are
    /// normalized internally, so `[2, 2]` equals `[0.5, 0.5]`. A zero
    /// vector is allowed and makes the router drop everything.
    ///
    /// Credits are preserved for targets keeping non-zero weight (so small
    /// reconfigurations do not reshuffle in-flight proportions) and zeroed
    /// for disabled targets.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the target count or any weight is
    /// negative/non-finite.
    pub fn set_weights(&mut self, weights: &[f64]) {
        assert_eq!(
            weights.len(),
            self.weights.len(),
            "weight vector length mismatch"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            self.weights[i] = if total > 0.0 { w / total } else { 0.0 };
            if self.weights[i] == 0.0 {
                self.credits[i] = 0.0;
            }
        }
    }

    /// Current (normalized) weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Route one request: returns the winning target index, or `None` if
    /// all weights are zero.
    pub fn route(&mut self) -> Option<usize> {
        let total: f64 = self.weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        for (c, w) in self.credits.iter_mut().zip(&self.weights) {
            *c += w;
        }
        // argmax credit among enabled targets; ties break on lowest index.
        let mut best = None;
        let mut best_credit = f64::NEG_INFINITY;
        for (i, (&c, &w)) in self.credits.iter().zip(&self.weights).enumerate() {
            if w > 0.0 && c > best_credit {
                best = Some(i);
                best_credit = c;
            }
        }
        let winner = best.expect("total weight positive implies an enabled target");
        self.credits[winner] -= 1.0;
        Some(winner)
    }

    /// Route `n` requests in one analytic draw: returns the per-target
    /// counts, or `None` if all weights are zero. `O(targets)` instead of
    /// `O(n · targets)` — the batched-window fast path.
    ///
    /// Each target's ideal share is its carried credit plus `n·γ`; whole
    /// units are granted first and the remaining requests go to the
    /// largest fractional remainders (ties to the lowest index, matching
    /// the sequential tie-break). Residual credit carries over, so
    /// consecutive batches honor the `n·γ ± O(1)` proportion bound just
    /// like sequential [`WeightedRouter::route`] calls. For exact splits
    /// (e.g. `[0.75, 0.25]` over 100) the counts equal what `n`
    /// sequential draws produce.
    pub fn route_batch(&mut self, n: u64) -> Option<Vec<u64>> {
        let total: f64 = self.weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let k = self.weights.len();
        let mut counts = vec![0u64; k];
        let mut ideal = vec![0.0f64; k];
        let mut granted: u64 = 0;
        for i in 0..k {
            if self.weights[i] > 0.0 {
                ideal[i] = self.credits[i] + n as f64 * self.weights[i];
                // Whole units first; credits can be slightly negative, so
                // clamp the floor at zero.
                counts[i] = ideal[i].floor().max(0.0) as u64;
                granted += counts[i];
            }
        }
        // Over-grant is possible only through stale positive credits; pull
        // back from the smallest remainders (reverse of the award order).
        while granted > n {
            let mut worst = None;
            let mut worst_rem = f64::INFINITY;
            for i in 0..k {
                if counts[i] > 0 {
                    let rem = ideal[i] - counts[i] as f64;
                    if rem < worst_rem {
                        worst = Some(i);
                        worst_rem = rem;
                    }
                }
            }
            let i = worst.expect("granted > 0 implies a positive count");
            counts[i] -= 1;
            granted -= 1;
        }
        // Award the remaining requests to the largest fractional
        // remainders, ties to the lowest index.
        while granted < n {
            let mut best = None;
            let mut best_rem = f64::NEG_INFINITY;
            for i in 0..k {
                if self.weights[i] > 0.0 {
                    let rem = ideal[i] - counts[i] as f64;
                    if rem > best_rem {
                        best = Some(i);
                        best_rem = rem;
                    }
                }
            }
            let i = best.expect("total weight positive implies an enabled target");
            counts[i] += 1;
            granted += 1;
        }
        // Carry the residual credit so the next batch (or sequential
        // draw) continues the same deficit sequence.
        for i in 0..k {
            if self.weights[i] > 0.0 {
                self.credits[i] = ideal[i] - counts[i] as f64;
            }
        }
        Some(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn route_n(r: &mut WeightedRouter, n: usize) -> Vec<usize> {
        let mut counts = vec![0usize; r.len()];
        for _ in 0..n {
            if let Some(i) = r.route() {
                counts[i] += 1;
            }
        }
        counts
    }

    #[test]
    fn zero_weights_drop_everything() {
        let mut r = WeightedRouter::new(3);
        assert_eq!(r.route(), None);
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let mut r = WeightedRouter::new(4);
        r.set_weights(&[1.0, 1.0, 1.0, 1.0]);
        let counts = route_n(&mut r, 400);
        assert_eq!(counts, vec![100, 100, 100, 100]);
    }

    #[test]
    fn proportions_match_weights_within_one() {
        let mut r = WeightedRouter::new(3);
        r.set_weights(&[0.5, 0.3, 0.2]);
        let n = 1000;
        let counts = route_n(&mut r, n);
        assert!((counts[0] as f64 - 500.0).abs() <= 2.0, "{counts:?}");
        assert!((counts[1] as f64 - 300.0).abs() <= 2.0, "{counts:?}");
        assert!((counts[2] as f64 - 200.0).abs() <= 2.0, "{counts:?}");
    }

    #[test]
    fn weights_are_normalized() {
        let mut r = WeightedRouter::new(2);
        r.set_weights(&[3.0, 1.0]);
        assert_eq!(r.weights(), &[0.75, 0.25]);
    }

    #[test]
    fn disabled_target_receives_nothing() {
        let mut r = WeightedRouter::new(3);
        r.set_weights(&[0.6, 0.0, 0.4]);
        let counts = route_n(&mut r, 100);
        assert_eq!(counts[1], 0);
        assert_eq!(counts.iter().sum::<usize>(), 100);
    }

    #[test]
    fn reconfiguration_zeroes_disabled_credit() {
        let mut r = WeightedRouter::new(2);
        r.set_weights(&[0.5, 0.5]);
        let _ = route_n(&mut r, 9); // leave uneven credit
        r.set_weights(&[1.0, 0.0]);
        let counts = route_n(&mut r, 10);
        assert_eq!(counts, vec![10, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let mut r = WeightedRouter::new(2);
        r.set_weights(&[1.0]);
    }

    #[test]
    fn batch_zero_weights_drop_everything() {
        let mut r = WeightedRouter::new(3);
        assert_eq!(r.route_batch(10), None);
    }

    #[test]
    fn batch_uniform_weights_split_evenly() {
        let mut r = WeightedRouter::new(4);
        r.set_weights(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(r.route_batch(400), Some(vec![100, 100, 100, 100]));
    }

    #[test]
    fn batch_disabled_target_receives_nothing() {
        let mut r = WeightedRouter::new(3);
        r.set_weights(&[0.6, 0.0, 0.4]);
        let counts = r.route_batch(100).unwrap();
        assert_eq!(counts[1], 0);
        assert_eq!(counts.iter().sum::<u64>(), 100);
        assert_eq!(counts, vec![60, 0, 40]);
    }

    #[test]
    fn batch_of_zero_allocates_nothing() {
        let mut r = WeightedRouter::new(2);
        r.set_weights(&[0.5, 0.5]);
        assert_eq!(r.route_batch(0), Some(vec![0, 0]));
    }

    #[test]
    fn batch_credit_carries_across_batches() {
        // 0.5/0.3/0.2 over three batches of 10: every batch allocates 10
        // and the running totals stay within one of n·γ.
        let mut r = WeightedRouter::new(3);
        r.set_weights(&[0.5, 0.3, 0.2]);
        let mut totals = [0u64; 3];
        for _ in 0..3 {
            let counts = r.route_batch(10).unwrap();
            assert_eq!(counts.iter().sum::<u64>(), 10);
            for (t, c) in totals.iter_mut().zip(&counts) {
                *t += c;
            }
        }
        assert_eq!(totals, [15, 9, 6]);
    }

    #[test]
    fn batch_matches_sequential_for_exact_splits() {
        // Where n·γ is integral the batch draw must equal n sequential
        // draws, credits included — the equivalence the batched window
        // path relies on.
        let mut batch = WeightedRouter::new(2);
        let mut seq = WeightedRouter::new(2);
        for r in [&mut batch, &mut seq] {
            r.set_weights(&[0.75, 0.25]);
        }
        let counts = batch.route_batch(100).unwrap();
        let mut seq_counts = vec![0u64; 2];
        for _ in 0..100 {
            seq_counts[seq.route().unwrap()] += 1;
        }
        assert_eq!(counts, seq_counts);
        assert_eq!(batch, seq, "credit state identical after the window");
    }

    proptest! {
        #[test]
        fn batch_allocates_exactly_n_with_bounded_error(
            raw in proptest::collection::vec(0.0..1.0f64, 2..6),
            n in 1u64..5000,
        ) {
            prop_assume!(raw.iter().sum::<f64>() > 0.1);
            let mut r = WeightedRouter::new(raw.len());
            r.set_weights(&raw);
            let counts = r.route_batch(n).unwrap();
            prop_assert_eq!(counts.iter().sum::<u64>(), n);
            let total: f64 = raw.iter().sum();
            for (i, c) in counts.iter().enumerate() {
                let expected = n as f64 * raw[i] / total;
                prop_assert!(
                    (*c as f64 - expected).abs() <= raw.len() as f64 + 1.0,
                    "target {}: got {}, expected {:.1}", i, c, expected
                );
            }
        }
    }

    proptest! {
        #[test]
        fn long_run_proportions_converge(
            raw in proptest::collection::vec(0.0..1.0f64, 2..6)
        ) {
            prop_assume!(raw.iter().sum::<f64>() > 0.1);
            let mut r = WeightedRouter::new(raw.len());
            r.set_weights(&raw);
            let n = 5000usize;
            let counts = route_n(&mut r, n);
            let total: f64 = raw.iter().sum();
            for (i, c) in counts.iter().enumerate() {
                let expected = n as f64 * raw[i] / total;
                // Deficit round-robin error is bounded by the target count.
                prop_assert!(
                    (*c as f64 - expected).abs() <= raw.len() as f64 + 1.0,
                    "target {i}: got {c}, expected {expected:.1}"
                );
            }
        }
    }
}
