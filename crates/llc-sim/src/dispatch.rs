/// Deterministic weighted dispatcher realizing the controllers' fractions.
///
/// The L2 controller decides `{γ_i}` (fractions per module) and each L1
/// controller `{γ_ij}` (fractions per computer); the dispatcher must send
/// each target its fraction of arrivals. We use **deficit round-robin**:
/// every target accumulates credit equal to its weight per routed request
/// and the most-credited target wins, paying one unit. Over `n` requests
/// each target receives `n·γ ± O(1)` — exact proportions without RNG,
/// keeping experiments reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedRouter {
    weights: Vec<f64>,
    credits: Vec<f64>,
}

impl WeightedRouter {
    /// A router over `n` targets, initially all weight zero (routing
    /// returns `None` until weights are set).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "router needs at least one target");
        WeightedRouter {
            weights: vec![0.0; n],
            credits: vec![0.0; n],
        }
    }

    /// Number of targets.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the router has no targets (never: constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Replace the weight vector. Weights must be non-negative; they are
    /// normalized internally, so `[2, 2]` equals `[0.5, 0.5]`. A zero
    /// vector is allowed and makes the router drop everything.
    ///
    /// Credits are preserved for targets keeping non-zero weight (so small
    /// reconfigurations do not reshuffle in-flight proportions) and zeroed
    /// for disabled targets.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the target count or any weight is
    /// negative/non-finite.
    pub fn set_weights(&mut self, weights: &[f64]) {
        assert_eq!(
            weights.len(),
            self.weights.len(),
            "weight vector length mismatch"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            self.weights[i] = if total > 0.0 { w / total } else { 0.0 };
            if self.weights[i] == 0.0 {
                self.credits[i] = 0.0;
            }
        }
    }

    /// Current (normalized) weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Route one request: returns the winning target index, or `None` if
    /// all weights are zero.
    pub fn route(&mut self) -> Option<usize> {
        let total: f64 = self.weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        for (c, w) in self.credits.iter_mut().zip(&self.weights) {
            *c += w;
        }
        // argmax credit among enabled targets; ties break on lowest index.
        let mut best = None;
        let mut best_credit = f64::NEG_INFINITY;
        for (i, (&c, &w)) in self.credits.iter().zip(&self.weights).enumerate() {
            if w > 0.0 && c > best_credit {
                best = Some(i);
                best_credit = c;
            }
        }
        let winner = best.expect("total weight positive implies an enabled target");
        self.credits[winner] -= 1.0;
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn route_n(r: &mut WeightedRouter, n: usize) -> Vec<usize> {
        let mut counts = vec![0usize; r.len()];
        for _ in 0..n {
            if let Some(i) = r.route() {
                counts[i] += 1;
            }
        }
        counts
    }

    #[test]
    fn zero_weights_drop_everything() {
        let mut r = WeightedRouter::new(3);
        assert_eq!(r.route(), None);
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let mut r = WeightedRouter::new(4);
        r.set_weights(&[1.0, 1.0, 1.0, 1.0]);
        let counts = route_n(&mut r, 400);
        assert_eq!(counts, vec![100, 100, 100, 100]);
    }

    #[test]
    fn proportions_match_weights_within_one() {
        let mut r = WeightedRouter::new(3);
        r.set_weights(&[0.5, 0.3, 0.2]);
        let n = 1000;
        let counts = route_n(&mut r, n);
        assert!((counts[0] as f64 - 500.0).abs() <= 2.0, "{counts:?}");
        assert!((counts[1] as f64 - 300.0).abs() <= 2.0, "{counts:?}");
        assert!((counts[2] as f64 - 200.0).abs() <= 2.0, "{counts:?}");
    }

    #[test]
    fn weights_are_normalized() {
        let mut r = WeightedRouter::new(2);
        r.set_weights(&[3.0, 1.0]);
        assert_eq!(r.weights(), &[0.75, 0.25]);
    }

    #[test]
    fn disabled_target_receives_nothing() {
        let mut r = WeightedRouter::new(3);
        r.set_weights(&[0.6, 0.0, 0.4]);
        let counts = route_n(&mut r, 100);
        assert_eq!(counts[1], 0);
        assert_eq!(counts.iter().sum::<usize>(), 100);
    }

    #[test]
    fn reconfiguration_zeroes_disabled_credit() {
        let mut r = WeightedRouter::new(2);
        r.set_weights(&[0.5, 0.5]);
        let _ = route_n(&mut r, 9); // leave uneven credit
        r.set_weights(&[1.0, 0.0]);
        let counts = route_n(&mut r, 10);
        assert_eq!(counts, vec![10, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let mut r = WeightedRouter::new(2);
        r.set_weights(&[1.0]);
    }

    proptest! {
        #[test]
        fn long_run_proportions_converge(
            raw in proptest::collection::vec(0.0..1.0f64, 2..6)
        ) {
            prop_assume!(raw.iter().sum::<f64>() > 0.1);
            let mut r = WeightedRouter::new(raw.len());
            r.set_weights(&raw);
            let n = 5000usize;
            let counts = route_n(&mut r, n);
            let total: f64 = raw.iter().sum();
            for (i, c) in counts.iter().enumerate() {
                let expected = n as f64 * raw[i] / total;
                // Deficit round-robin error is bounded by the target count.
                prop_assert!(
                    (*c as f64 - expected).abs() <= raw.len() as f64 + 1.0,
                    "target {i}: got {c}, expected {expected:.1}"
                );
            }
        }
    }
}
