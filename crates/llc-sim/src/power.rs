/// The paper's processor power model.
///
/// An operating computer draws a constant **base cost** `a` (power supply,
/// disk, …) plus **dynamic power** `φ²` where `φ = u/u_max` is the
/// frequency scaling factor — the model of Sinha & Chandrakasan adopted in
/// eq. (7): `ψ̂ = a + φ²`. Power is in abstract units (the paper's cost
/// weights are calibrated against `a = 0.75`); energy is power integrated
/// over seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    base_cost: f64,
    boot_cost: f64,
}

impl PowerModel {
    /// A model with operating base cost `a` and booting draw `boot_cost`
    /// (power drawn during the switch-on dead time).
    ///
    /// # Panics
    ///
    /// Panics if either cost is negative or non-finite.
    pub fn new(base_cost: f64, boot_cost: f64) -> Self {
        assert!(
            base_cost.is_finite() && base_cost >= 0.0,
            "base cost must be finite and >= 0, got {base_cost}"
        );
        assert!(
            boot_cost.is_finite() && boot_cost >= 0.0,
            "boot cost must be finite and >= 0, got {boot_cost}"
        );
        PowerModel {
            base_cost,
            boot_cost,
        }
    }

    /// The paper's parameters: base cost `a = 0.75`; switching penalty
    /// `W = 8` doubles as the boot-time draw.
    pub fn paper_default() -> Self {
        PowerModel::new(0.75, 8.0)
    }

    /// Base operating cost `a`.
    pub fn base_cost(&self) -> f64 {
        self.base_cost
    }

    /// Power drawn while booting.
    pub fn boot_cost(&self) -> f64 {
        self.boot_cost
    }

    /// Instantaneous operating power `ψ(φ) = a + φ²`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `phi` is outside `(0, 1]`.
    pub fn operating(&self, phi: f64) -> f64 {
        debug_assert!(phi > 0.0 && phi <= 1.0, "φ must lie in (0, 1], got {phi}");
        self.base_cost + phi * phi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let p = PowerModel::paper_default();
        assert_eq!(p.base_cost(), 0.75);
        assert_eq!(p.boot_cost(), 8.0);
        assert!((p.operating(1.0) - 1.75).abs() < 1e-12);
        assert!((p.operating(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_power_is_quadratic() {
        let p = PowerModel::new(0.0, 0.0);
        assert!((p.operating(0.8) - 0.64).abs() < 1e-12);
        // Halving frequency quarters dynamic power.
        assert!((p.operating(0.4) - 0.16).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "base cost")]
    fn negative_base_rejected() {
        let _ = PowerModel::new(-0.1, 0.0);
    }
}
