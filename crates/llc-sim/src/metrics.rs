/// Per-sampling-window observation accumulator.
///
/// The controllers sample the plant every `T_L0` seconds; between samples
/// the simulator accumulates what happened in the window. Draining the
/// stats resets them for the next window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowStats {
    /// Requests routed to this entity during the window.
    pub arrivals: u64,
    /// Requests completed during the window.
    pub completions: u64,
    /// Sum of response times of completed requests (seconds).
    pub response_sum: f64,
    /// Sum of full-speed demands of completed requests (seconds) — the
    /// observable behind the paper's processing-time estimate `c`.
    pub demand_sum: f64,
    /// Requests that could not be routed (no operating target).
    pub dropped: u64,
    /// Energy drawn during the window (power·seconds, in the paper's
    /// `a + φ²` units) — the realized-power observable the closed-loop
    /// hierarchy derives per-member abstraction-map outcomes from.
    /// Filled when the window is drained from a machine slab (the meter
    /// integrates up to the drain instant); zero for router-level module
    /// stats.
    pub energy: f64,
}

impl WindowStats {
    /// Average response time over the window, or `None` if nothing
    /// completed.
    pub fn mean_response(&self) -> Option<f64> {
        if self.completions == 0 {
            None
        } else {
            Some(self.response_sum / self.completions as f64)
        }
    }

    /// Average full-speed demand `c` of completed requests, or `None`.
    pub fn mean_demand(&self) -> Option<f64> {
        if self.completions == 0 {
            None
        } else {
            Some(self.demand_sum / self.completions as f64)
        }
    }

    /// Arrival rate over a window of `window_secs`, in requests/second.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `window_secs` is not positive.
    pub fn arrival_rate(&self, window_secs: f64) -> f64 {
        debug_assert!(window_secs > 0.0);
        self.arrivals as f64 / window_secs
    }

    /// Merge another window into this one (used to aggregate computers
    /// into module-level stats, eq. (10)–(12) of the paper).
    pub fn absorb(&mut self, other: &WindowStats) {
        self.arrivals += other.arrivals;
        self.completions += other.completions;
        self.response_sum += other.response_sum;
        self.demand_sum += other.demand_sum;
        self.dropped += other.dropped;
        self.energy += other.energy;
    }

    /// Mean power draw over a window of `window_secs`, in `a + φ²` units.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `window_secs` is not positive.
    pub fn mean_power(&self, window_secs: f64) -> f64 {
        debug_assert!(window_secs > 0.0);
        self.energy / window_secs
    }

    /// Take the current value and reset to zero.
    pub fn drain(&mut self) -> WindowStats {
        std::mem::take(self)
    }
}

/// Piecewise-constant power integrator.
///
/// Tracks a power level and integrates energy as time advances; every
/// power change must be preceded by advancing to the change instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyMeter {
    energy: f64,
    power: f64,
    last_update: f64,
}

impl EnergyMeter {
    /// A meter starting at time `now` drawing `power`.
    pub fn new(now: f64, power: f64) -> Self {
        EnergyMeter {
            energy: 0.0,
            power,
            last_update: now,
        }
    }

    /// Integrate up to `now` at the current power level.
    ///
    /// # Panics
    ///
    /// Panics (debug) if time runs backwards.
    pub fn advance(&mut self, now: f64) {
        debug_assert!(
            now >= self.last_update - 1e-9,
            "time ran backwards: {now} < {}",
            self.last_update
        );
        self.energy += self.power * (now - self.last_update).max(0.0);
        self.last_update = now;
    }

    /// Advance to `now`, then switch to a new power level.
    pub fn set_power(&mut self, power: f64, now: f64) {
        self.advance(now);
        self.power = power;
    }

    /// Total energy accumulated so far (power·seconds).
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Current power draw.
    pub fn power(&self) -> f64 {
        self.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_window_has_no_means() {
        let w = WindowStats::default();
        assert_eq!(w.mean_response(), None);
        assert_eq!(w.mean_demand(), None);
        assert_eq!(w.arrival_rate(30.0), 0.0);
    }

    #[test]
    fn means_and_rates() {
        let w = WindowStats {
            arrivals: 60,
            completions: 2,
            response_sum: 5.0,
            demand_sum: 0.04,
            dropped: 0,
            energy: 52.5,
        };
        assert_eq!(w.mean_response(), Some(2.5));
        assert_eq!(w.mean_demand(), Some(0.02));
        assert_eq!(w.arrival_rate(30.0), 2.0);
        assert_eq!(w.mean_power(30.0), 1.75);
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = WindowStats {
            arrivals: 1,
            completions: 2,
            response_sum: 3.0,
            demand_sum: 4.0,
            dropped: 5,
            energy: 6.0,
        };
        a.absorb(&a.clone());
        assert_eq!(a.arrivals, 2);
        assert_eq!(a.completions, 4);
        assert_eq!(a.response_sum, 6.0);
        assert_eq!(a.demand_sum, 8.0);
        assert_eq!(a.dropped, 10);
        assert_eq!(a.energy, 12.0);
    }

    #[test]
    fn drain_resets() {
        let mut a = WindowStats {
            arrivals: 7,
            ..Default::default()
        };
        let taken = a.drain();
        assert_eq!(taken.arrivals, 7);
        assert_eq!(a, WindowStats::default());
    }

    #[test]
    fn energy_integrates_piecewise_constant_power() {
        let mut m = EnergyMeter::new(0.0, 2.0);
        m.advance(3.0); // 6 J
        m.set_power(0.5, 3.0);
        m.advance(7.0); // + 2 J
        assert!((m.energy() - 8.0).abs() < 1e-12);
        assert_eq!(m.power(), 0.5);
    }

    #[test]
    fn zero_power_accumulates_nothing() {
        let mut m = EnergyMeter::new(5.0, 0.0);
        m.advance(100.0);
        assert_eq!(m.energy(), 0.0);
    }

    proptest! {
        #[test]
        fn energy_is_monotone(
            powers in proptest::collection::vec(0.0..10.0f64, 1..20),
            dts in proptest::collection::vec(0.0..5.0f64, 1..20),
        ) {
            let mut m = EnergyMeter::new(0.0, 1.0);
            let mut now = 0.0;
            let mut last_energy = 0.0;
            for (p, dt) in powers.iter().zip(&dts) {
                now += dt;
                m.set_power(*p, now);
                prop_assert!(m.energy() + 1e-12 >= last_energy);
                last_energy = m.energy();
            }
        }
    }
}
