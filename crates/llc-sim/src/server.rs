use crate::Request;
use std::collections::VecDeque;

/// A FCFS single-server queue with frequency-scaled service.
///
/// Work is measured in *demand seconds at full speed*; serving at scaling
/// factor `φ` consumes `φ` demand seconds per wall second, so a request
/// with demand `c` takes `c/φ` seconds of exclusive service. Frequency may
/// change mid-service: the remaining work is carried over and the
/// completion time re-derived, exactly like a processor whose DVFS setting
/// changed while a request executes.
///
/// The server itself is passive — it answers "when does the current job
/// finish?" and the owning event loop schedules/retracts departure events.
#[derive(Debug, Clone)]
pub struct Server {
    queue: VecDeque<Request>,
    /// The job currently in service, with its remaining demand.
    in_service: Option<InService>,
    phi: f64,
}

#[derive(Debug, Clone, Copy)]
struct InService {
    request: Request,
    /// Remaining demand (seconds at full speed).
    remaining: f64,
    /// Last instant at which `remaining` was synchronized.
    synced_at: f64,
}

impl Server {
    /// An empty server at scaling factor `phi`.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is outside `(0, 1]`.
    pub fn new(phi: f64) -> Self {
        assert!(phi > 0.0 && phi <= 1.0, "φ must lie in (0, 1], got {phi}");
        Server {
            queue: VecDeque::new(),
            in_service: None,
            phi,
        }
    }

    /// Current frequency scaling factor `φ`.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Number of requests in the system (queued + in service) — the
    /// paper's observed queue length `q(k)`.
    pub fn queue_length(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }

    /// `true` if a request is being served.
    pub fn busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Enqueue an arrival at time `now`. Returns `true` if the request went
    /// straight into service (the caller must then schedule a departure).
    pub fn enqueue(&mut self, request: Request, now: f64) -> bool {
        if self.in_service.is_none() {
            self.in_service = Some(InService {
                request,
                remaining: request.demand,
                synced_at: now,
            });
            true
        } else {
            self.queue.push_back(request);
            false
        }
    }

    /// Completion time of the in-service request under the current `φ`,
    /// or `None` when idle.
    pub fn completion_time(&self) -> Option<f64> {
        self.in_service
            .as_ref()
            .map(|s| s.synced_at + s.remaining / self.phi)
    }

    /// Change the frequency at time `now`, crediting work done so far at
    /// the old frequency. Returns the new completion time if a job is in
    /// service (the caller must reschedule its departure event).
    pub fn set_phi(&mut self, phi: f64, now: f64) -> Option<f64> {
        assert!(phi > 0.0 && phi <= 1.0, "φ must lie in (0, 1], got {phi}");
        if let Some(s) = self.in_service.as_mut() {
            let done = (now - s.synced_at) * self.phi;
            s.remaining = (s.remaining - done).max(0.0);
            s.synced_at = now;
        }
        self.phi = phi;
        self.completion_time()
    }

    /// Enqueue without starting service even when idle — used while the
    /// owning computer is still booting: requests wait for the machine.
    pub fn enqueue_waiting(&mut self, request: Request) {
        self.queue.push_back(request);
    }

    /// Promote the queue head into service if the server is idle. Returns
    /// `true` when a job entered service (the caller must schedule its
    /// departure).
    pub fn start_next(&mut self, now: f64) -> bool {
        if self.in_service.is_some() {
            return false;
        }
        match self.queue.pop_front() {
            Some(next) => {
                self.in_service = Some(InService {
                    request: next,
                    remaining: next.demand,
                    synced_at: now,
                });
                true
            }
            None => false,
        }
    }

    /// Complete the in-service request at time `now` and promote the head
    /// of the queue. Returns the finished request; if another job starts,
    /// the caller must schedule its departure via [`Server::completion_time`].
    ///
    /// # Panics
    ///
    /// Panics if the server is idle.
    pub fn complete(&mut self, now: f64) -> Request {
        let finished = self
            .in_service
            .take()
            .expect("complete() called on an idle server")
            .request;
        if let Some(next) = self.queue.pop_front() {
            self.in_service = Some(InService {
                request: next,
                remaining: next.demand,
                synced_at: now,
            });
        }
        finished
    }

    /// Drain every request out of the system (used when a computer is
    /// force-killed in failure-injection tests). Returns them in FCFS
    /// order, in-service first.
    pub fn drain(&mut self) -> Vec<Request> {
        let mut out = Vec::with_capacity(self.queue_length());
        if let Some(s) = self.in_service.take() {
            out.push(s.request);
        }
        out.extend(self.queue.drain(..));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, t: f64, c: f64) -> Request {
        Request::new(id, t, c)
    }

    #[test]
    fn single_job_completion_at_full_speed() {
        let mut s = Server::new(1.0);
        assert!(s.enqueue(req(1, 0.0, 2.0), 0.0));
        assert_eq!(s.completion_time(), Some(2.0));
        assert_eq!(s.queue_length(), 1);
    }

    #[test]
    fn half_speed_doubles_service_time() {
        let mut s = Server::new(0.5);
        s.enqueue(req(1, 0.0, 2.0), 0.0);
        assert_eq!(s.completion_time(), Some(4.0));
    }

    #[test]
    fn fcfs_ordering() {
        let mut s = Server::new(1.0);
        assert!(s.enqueue(req(1, 0.0, 1.0), 0.0));
        assert!(!s.enqueue(req(2, 0.1, 1.0), 0.1));
        assert!(!s.enqueue(req(3, 0.2, 1.0), 0.2));
        assert_eq!(s.queue_length(), 3);
        let done = s.complete(1.0);
        assert_eq!(done.id, 1);
        assert_eq!(s.completion_time(), Some(2.0));
        assert_eq!(s.complete(2.0).id, 2);
        assert_eq!(s.complete(3.0).id, 3);
        assert!(!s.busy());
    }

    #[test]
    fn mid_service_frequency_change_preserves_work() {
        let mut s = Server::new(1.0);
        s.enqueue(req(1, 0.0, 2.0), 0.0);
        // After 1 s at full speed, 1 demand-second remains. Dropping to
        // φ=0.5 stretches the remainder to 2 s: completion at t=3.
        let new_completion = s.set_phi(0.5, 1.0);
        assert_eq!(new_completion, Some(3.0));
        // Speeding back up at t=2 (0.5 demand-seconds left): done at 2.5.
        let new_completion = s.set_phi(1.0, 2.0);
        assert_eq!(new_completion, Some(2.5));
    }

    #[test]
    fn set_phi_on_idle_server_returns_none() {
        let mut s = Server::new(1.0);
        assert_eq!(s.set_phi(0.25, 5.0), None);
        assert_eq!(s.phi(), 0.25);
    }

    #[test]
    fn drain_returns_fcfs_order() {
        let mut s = Server::new(1.0);
        s.enqueue(req(1, 0.0, 1.0), 0.0);
        s.enqueue(req(2, 0.0, 1.0), 0.0);
        s.enqueue(req(3, 0.0, 1.0), 0.0);
        let drained = s.drain();
        assert_eq!(
            drained.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(s.queue_length(), 0);
    }

    #[test]
    #[should_panic(expected = "idle server")]
    fn complete_on_idle_panics() {
        let mut s = Server::new(1.0);
        let _ = s.complete(0.0);
    }

    #[test]
    fn work_conservation_across_many_switches() {
        // A 1-demand-second job served under alternating frequencies: the
        // total work delivered must equal the demand regardless of the
        // switching pattern.
        let mut s = Server::new(1.0);
        s.enqueue(req(1, 0.0, 1.0), 0.0);
        let phis = [0.25, 1.0, 0.5, 0.75, 1.0];
        for (i, &phi) in phis.iter().enumerate() {
            s.set_phi(phi, 0.1 * (i as f64 + 1.0));
        }
        // Work done in [0, 0.5]: 0.1·(1.0 initial + 0.25 + 1.0 + 0.5 + 0.75)
        // = 0.35. Remaining 0.65 at φ=1.0 finishes at 0.5 + 0.65 = 1.15.
        let done_at = s.completion_time().unwrap();
        assert!((done_at - 1.15).abs() < 1e-9, "{done_at}");
    }
}
