//! The length-prefixed frame layer: the one wire unit every message
//! rides in.
//!
//! The workspace has no serde, so the codec is hand-rolled and fully
//! explicit: every multi-byte integer is little-endian, every `f64`
//! travels as its IEEE-754 bit pattern (`to_bits`/`from_bits`, so a
//! round trip is *bit*-identical, NaN payloads included), and every
//! frame is self-delimiting:
//!
//! ```text
//! offset  size  field
//!      0     2  magic      b"LN"
//!      2     1  version    protocol version (1)
//!      3     1  kind       FrameKind discriminant
//!      4     4  seq        per-connection send counter, u32 LE
//!      8     4  len        payload length in bytes, u32 LE
//!     12   len  payload    kind-specific body (see `codec`)
//! ```
//!
//! Encode and decode are pure functions of their inputs. A malformed
//! buffer can never panic the decoder or partially apply: decoding
//! returns `Err` and leaves nothing mutated; the transport counts the
//! error and drops the frame whole.

use std::fmt;

/// The two magic bytes opening every frame.
pub const MAGIC: [u8; 2] = *b"LN";

/// The protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Bytes of header before the payload.
pub const HEADER_LEN: usize = 12;

/// Hard ceiling on payload size: a length field beyond this is treated
/// as corruption, not as a request to allocate 4 GiB.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// What a frame carries (the `kind` byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Connection handshake: role, topology, clock base, current
    /// tick/epoch.
    Hello,
    /// Liveness + progress marker carrying tick and epoch. From the
    /// controller it doubles as the *commit* marker: every directive
    /// for the stamped tick has been sent.
    Heartbeat,
    /// One `ModuleObservation` (agent → controller).
    Observation,
    /// One `Directive` (controller → agent).
    Directive,
    /// A full `MetricsSnapshot` (controller → anyone who asks).
    Metrics,
}

impl FrameKind {
    /// The wire discriminant.
    pub fn as_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::Heartbeat => 2,
            FrameKind::Observation => 3,
            FrameKind::Directive => 4,
            FrameKind::Metrics => 5,
        }
    }

    /// Parse a wire discriminant.
    pub fn from_u8(byte: u8) -> Option<FrameKind> {
        match byte {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Heartbeat),
            3 => Some(FrameKind::Observation),
            4 => Some(FrameKind::Directive),
            5 => Some(FrameKind::Metrics),
            _ => None,
        }
    }

    /// Every kind, for exhaustive tests.
    pub fn all() -> [FrameKind; 5] {
        [
            FrameKind::Hello,
            FrameKind::Heartbeat,
            FrameKind::Observation,
            FrameKind::Directive,
            FrameKind::Metrics,
        ]
    }
}

/// One wire frame: version + sequence + kind + opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version the sender speaks.
    pub version: u8,
    /// Per-connection send counter (wraps; gap detection only).
    pub seq: u32,
    /// What the payload is.
    pub kind: FrameKind,
    /// Kind-specific body, decoded by `codec`.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame of the current protocol version.
    pub fn new(kind: FrameKind, seq: u32, payload: Vec<u8>) -> Frame {
        Frame {
            version: VERSION,
            seq,
            kind,
            payload,
        }
    }
}

/// Why a buffer failed to decode. Every variant is a rejection of the
/// *whole* frame — the decoder never partially applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Not enough bytes yet: a stream reader should read at least
    /// `need - have` more and retry.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes required for the full frame (header + declared length,
        /// or just the header when `have < HEADER_LEN`).
        need: usize,
    },
    /// The first two bytes are not [`MAGIC`]: stream desync or garbage.
    BadMagic([u8; 2]),
    /// The sender speaks a protocol version this build does not.
    VersionSkew {
        /// Version byte on the wire.
        got: u8,
        /// Version this build speaks.
        supported: u8,
    },
    /// The kind byte names no known frame kind.
    UnknownKind(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Declared length.
        len: u32,
        /// The ceiling.
        max: u32,
    },
    /// The payload body contradicts its kind's schema (short field,
    /// bad tag, trailing bytes, impossible count).
    BadPayload(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::VersionSkew { got, supported } => {
                write!(f, "protocol version {got} (this build speaks {supported})")
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            WireError::BadPayload(why) => write!(f, "bad payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encode `frame` to wire bytes.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + frame.payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(frame.version);
    out.push(frame.kind.as_u8());
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame.payload);
    out
}

/// Decode one frame from the front of `buf`, returning the frame and
/// the number of bytes consumed.
///
/// # Errors
///
/// [`WireError::Truncated`] when `buf` does not yet hold a whole frame
/// (retry with more bytes); any other variant is a hard rejection of
/// the frame at the front of the buffer.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            have: buf.len(),
            need: HEADER_LEN,
        });
    }
    if buf[0..2] != MAGIC {
        return Err(WireError::BadMagic([buf[0], buf[1]]));
    }
    let version = buf[2];
    if version != VERSION {
        return Err(WireError::VersionSkew {
            got: version,
            supported: VERSION,
        });
    }
    let kind = FrameKind::from_u8(buf[3]).ok_or(WireError::UnknownKind(buf[3]))?;
    let seq = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated {
            have: buf.len(),
            need: total,
        });
    }
    Ok((
        Frame {
            version,
            seq,
            kind,
            payload: buf[HEADER_LEN..total].to_vec(),
        },
        total,
    ))
}

// ---------------------------------------------------------------------
// Little-endian field primitives.
//
// Writers append to a Vec; the reader walks a slice with explicit
// bounds checks. Both are deliberately boring: each field encoder has
// exactly one decoder, and `codec` composes them.
// ---------------------------------------------------------------------

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `usize` as a `u64`, little-endian.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append an `f64` as its IEEE-754 bit pattern, little-endian. The
/// round trip is bit-exact (NaN payloads included), which is what lets
/// the networked loop reproduce the in-process loop to the bit.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a `bool` as one byte (0 or 1).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Bounds-checked sequential reader over a payload slice.
///
/// Every getter returns `Err(WireError::BadPayload)` instead of
/// panicking when the slice runs short; [`Reader::finish`] rejects
/// trailing garbage so a decoded message accounts for every byte.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::BadPayload("field runs past payload end"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `usize` (encoded as `u64`), rejecting values that do not
    /// fit the platform's pointer width.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::BadPayload("usize overflow"))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `bool`, rejecting any byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadPayload("bool byte not 0/1")),
        }
    }

    /// Read an element count that must leave at least `min_elem_bytes`
    /// of payload per element — a corrupted count can therefore never
    /// trigger a huge allocation.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.usize()?;
        if min_elem_bytes > 0 && n > self.remaining() / min_elem_bytes {
            return Err(WireError::BadPayload("count exceeds payload"));
        }
        Ok(n)
    }

    /// Assert every byte was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::BadPayload("trailing bytes after message"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_every_kind() {
        for kind in FrameKind::all() {
            let frame = Frame::new(kind, 0xDEAD_BEEF, vec![1, 2, 3, 4, 5]);
            let bytes = encode_frame(&frame);
            let (back, used) = decode_frame(&bytes).expect("well-formed frame");
            assert_eq!(used, bytes.len());
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn decode_consumes_only_one_frame() {
        let a = Frame::new(FrameKind::Heartbeat, 1, vec![9; 7]);
        let b = Frame::new(FrameKind::Hello, 2, vec![]);
        let mut bytes = encode_frame(&a);
        bytes.extend_from_slice(&encode_frame(&b));
        let (first, used) = decode_frame(&bytes).unwrap();
        assert_eq!(first, a);
        let (second, used2) = decode_frame(&bytes[used..]).unwrap();
        assert_eq!(second, b);
        assert_eq!(used + used2, bytes.len());
    }

    #[test]
    fn truncated_frames_ask_for_more() {
        let frame = Frame::new(FrameKind::Observation, 3, vec![0; 100]);
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated { have, need }) => {
                    assert_eq!(have, cut);
                    assert!(need > cut);
                    assert!(need <= bytes.len());
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_magic_version_kind_and_oversize() {
        let frame = Frame::new(FrameKind::Metrics, 4, vec![1, 2, 3]);
        let good = encode_frame(&frame);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode_frame(&bad), Err(WireError::BadMagic(_))));

        let mut bad = good.clone();
        bad[2] = VERSION + 1;
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::VersionSkew { got, .. }) if got == VERSION + 1
        ));

        let mut bad = good.clone();
        bad[3] = 0xEE;
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::UnknownKind(0xEE))
        ));

        let mut bad = good;
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn reader_bounds_and_trailing() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_f64(&mut buf, -0.5);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.f64().unwrap(), -0.5);
        assert!(r.u8().is_err(), "reading past the end must fail");

        let mut r = Reader::new(&buf);
        let _ = r.u32().unwrap();
        assert!(matches!(r.finish(), Err(WireError::BadPayload(_))));
    }

    #[test]
    fn f64_bits_survive_nan() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut buf = Vec::new();
        put_f64(&mut buf, weird);
        let mut r = Reader::new(&buf);
        assert_eq!(r.f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn count_guard_rejects_absurd_lengths() {
        let mut buf = Vec::new();
        put_usize(&mut buf, u64::MAX as usize);
        let mut r = Reader::new(&buf);
        assert!(r.count(8).is_err(), "2^64 elements in 0 bytes");
    }
}
