//! Canonical run specifications shared by `llc-agent` and
//! `llc-controld` (and the integration tests): both ends of the wire
//! must instantiate *the same* cluster, workload and fault schedule
//! from nothing but the flags, or the handshake is the only thing that
//! will ever agree.
//!
//! The two families mirror the repo's golden-equivalence benches:
//! `closed-loop` (capacity-step drift under the in-hierarchy closed
//! loop) and `faults` (crash–restart schedule under the watchdog'd
//! closed loop).

use llc_cluster::{
    single_module, Experiment, FaultToleranceConfig, HierarchicalPolicy, PolicyBuilder,
    ScenarioConfig,
};
use llc_core::OnlineConfig;
use llc_workload::{drift_scenarios, fault_scenarios, Trace, VirtualStore};

/// Which bench family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Capacity-step drift, closed-loop hierarchy.
    ClosedLoop,
    /// Crash–restart faults, watchdog'd closed-loop hierarchy.
    Faults,
}

impl Family {
    /// Parse a `--scenario` flag value.
    ///
    /// # Errors
    ///
    /// The unrecognized name.
    pub fn parse(name: &str) -> Result<Family, String> {
        match name {
            "closed-loop" => Ok(Family::ClosedLoop),
            "faults" => Ok(Family::Faults),
            other => Err(format!(
                "unknown scenario '{other}' (expected closed-loop or faults)"
            )),
        }
    }
}

/// Everything both ends need to agree on, derived from flags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Bench family.
    pub family: Family,
    /// Machines in the single module.
    pub members: usize,
    /// Trace buckets (one per `T_L1 = 120 s` interval).
    pub buckets: usize,
    /// Master seed (experiment, sampler and store).
    pub seed: u64,
}

impl RunSpec {
    /// The golden-test defaults for `family`.
    pub fn defaults(family: Family) -> RunSpec {
        match family {
            Family::ClosedLoop => RunSpec {
                family,
                members: 2,
                buckets: 40,
                seed: 0xBEEF,
            },
            Family::Faults => RunSpec {
                family,
                members: 4,
                buckets: 60,
                seed: 5,
            },
        }
    }

    /// The cluster scenario (topology, learning knobs).
    pub fn scenario_config(&self) -> ScenarioConfig {
        let mut sc = single_module(self.members)
            .with_coarse_learning()
            .with_hash_maps();
        if self.family == Family::ClosedLoop {
            sc.l1.min_active = self.members.min(2);
        }
        sc
    }

    fn capacity(&self) -> f64 {
        self.scenario_config().member_specs()[0]
            .iter()
            .map(|m| m.speed / m.c_prior)
            .sum()
    }

    /// The experiment (drift/fault schedule) and its workload trace.
    pub fn experiment_and_trace(&self) -> (Experiment, Trace) {
        match self.family {
            Family::ClosedLoop => {
                let scenario =
                    drift_scenarios(0xC105ED, self.buckets, 120.0, 0.55 * self.capacity())
                        .swap_remove(2);
                let exp = Experiment {
                    drift: Some(scenario.capacity),
                    ..Experiment::paper_default(self.seed)
                };
                (exp, scenario.trace)
            }
            Family::Faults => {
                let fs =
                    fault_scenarios(0xFA11, self.buckets, 120.0, self.capacity(), self.members)
                        .swap_remove(0);
                let exp = Experiment {
                    faults: Some(fs.plan),
                    ..Experiment::paper_default(self.seed)
                };
                (exp, fs.trace)
            }
        }
    }

    /// The request-body store both the sampler and the demand model
    /// draw from.
    pub fn store(&self) -> VirtualStore {
        VirtualStore::paper_default(self.seed)
    }

    /// The controller-side policy stack for this family.
    pub fn policy(&self) -> HierarchicalPolicy {
        let builder =
            PolicyBuilder::new(self.scenario_config()).closed_loop(OnlineConfig::default());
        match self.family {
            Family::ClosedLoop => builder.build(),
            Family::Faults => builder
                .fault_tolerance(FaultToleranceConfig::default())
                .build(),
        }
    }
}

/// Minimal `--flag value` extractor for the binaries: returns the value
/// following `name`, if present.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_families_build() {
        for family in [Family::ClosedLoop, Family::Faults] {
            let spec = RunSpec::defaults(family);
            let (exp, trace) = spec.experiment_and_trace();
            assert!(!trace.is_empty());
            assert_eq!(exp.seed, spec.seed);
            let _ = spec.policy();
        }
    }

    #[test]
    fn same_spec_same_run() {
        let spec = RunSpec::defaults(Family::Faults);
        let (a, ta) = spec.experiment_and_trace();
        let (b, tb) = spec.experiment_and_trace();
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }
}
