//! The node-agent side of the distributed loop: a locally-instantiated
//! plant shard plus the directive [`Reconciler`].
//!
//! [`AgentCore`] owns exactly the plant half of
//! `Experiment::run` — the [`SimAdapter`], the rebucketed trace, the
//! request sampler and the arrival-spreading RNG — and exposes it one
//! window at a time: render observations, stage whatever directives the
//! wire delivered, commit the window (reconcile → actuate → inject
//! arrivals → advance the plant). Driven in lockstep over a lossless
//! link it reproduces the in-process loop *bit for bit*, which is what
//! the golden equivalence test pins.
//!
//! The [`Reconciler`] is what makes the loop safe when the wire is not
//! lossless: directives are keyed by actuator, the latest epoch wins,
//! exact re-deliveries are skipped (idempotent re-apply), and a
//! frequency directive the plant silently ignored (a wedged actuator)
//! is detected by read-back and reported upstream in the agent
//! heartbeat.

use crate::codec::{Heartbeat, Hello, Role};
use llc_cluster::{Directive, DirectiveKind, Experiment, SimAdapter};
use llc_sim::{ClusterConfig, SimError};
use llc_workload::{derive_seed, spread_arrivals, RequestSampler, Trace, VirtualStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of reconciling one window's staged directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReconcileReport {
    /// Directives applied to the plant (or recorded, for informational
    /// kinds).
    pub applied: u64,
    /// Directives skipped because a later epoch already owns the
    /// actuator.
    pub superseded: u64,
    /// Exact re-deliveries skipped (same actuator, same epoch, same
    /// value).
    pub duplicates: u64,
}

/// Per-actuator book entry: the epoch and value last applied.
#[derive(Debug, Clone, PartialEq)]
struct Book<V> {
    epoch: u64,
    value: V,
}

enum Verdict {
    Apply,
    Superseded,
    Duplicate,
}

fn judge<V: PartialEq + Clone>(book: &mut Option<Book<V>>, epoch: u64, value: &V) -> Verdict {
    match book {
        Some(b) if epoch < b.epoch => Verdict::Superseded,
        Some(b) if epoch == b.epoch && *value == b.value => Verdict::Duplicate,
        _ => {
            *book = Some(Book {
                epoch,
                value: value.clone(),
            });
            Verdict::Apply
        }
    }
}

/// Orders incoming directives into a safe actuation sequence.
///
/// Keys: `Frequency` and `Activation` per computer, member `Split` per
/// module, the cluster-wide module `Split`, and `SafeMode` per module.
/// A directive is applied iff its epoch is newer than the book's for
/// that key, or equal with a different value (a correction); an exact
/// re-delivery is a no-op, an older epoch is superseded. Over a
/// lossless ordered link every directive is fresh, so the applied
/// sequence equals the emission sequence — the property the golden test
/// relies on.
#[derive(Debug)]
pub struct Reconciler {
    staged: Vec<Directive>,
    freq: Vec<Option<Book<usize>>>,
    act: Vec<Option<Book<bool>>>,
    member_split: Vec<Option<Book<Vec<f64>>>>,
    module_split: Option<Book<Vec<f64>>>,
    safe_mode: Vec<Option<Book<bool>>>,
    report: ReconcileReport,
}

impl Reconciler {
    /// A fresh reconciler for a plant of `num_computers` computers in
    /// `num_modules` modules.
    pub fn new(num_computers: usize, num_modules: usize) -> Reconciler {
        Reconciler {
            staged: Vec::new(),
            freq: vec![None; num_computers],
            act: vec![None; num_computers],
            member_split: vec![None; num_modules],
            module_split: None,
            safe_mode: vec![None; num_modules],
            report: ReconcileReport::default(),
        }
    }

    /// Queue one incoming directive for the next [`drain`].
    ///
    /// [`drain`]: Reconciler::drain
    pub fn stage(&mut self, directive: Directive) {
        self.staged.push(directive);
    }

    /// Resolve the staged directives against the books, in arrival
    /// order: returns the sequence to actuate.
    pub fn drain(&mut self) -> Vec<Directive> {
        let staged = std::mem::take(&mut self.staged);
        let mut apply = Vec::with_capacity(staged.len());
        for d in staged {
            let verdict = match &d.kind {
                DirectiveKind::Frequency { computer, index } => {
                    judge(&mut self.freq[*computer], d.epoch, index)
                }
                DirectiveKind::Activation { computer, on } => {
                    judge(&mut self.act[*computer], d.epoch, on)
                }
                DirectiveKind::Split {
                    module: Some(m),
                    weights,
                } => judge(&mut self.member_split[*m], d.epoch, weights),
                DirectiveKind::Split {
                    module: None,
                    weights,
                } => judge(&mut self.module_split, d.epoch, weights),
                DirectiveKind::SafeMode { module, active } => {
                    judge(&mut self.safe_mode[*module], d.epoch, active)
                }
            };
            match verdict {
                Verdict::Apply => {
                    self.report.applied += 1;
                    apply.push(d);
                }
                Verdict::Superseded => self.report.superseded += 1,
                Verdict::Duplicate => self.report.duplicates += 1,
            }
        }
        apply
    }

    /// Cumulative reconciliation counters.
    pub fn report(&self) -> ReconcileReport {
        self.report
    }
}

/// The agent's whole state machine, transport-free: the session loop
/// (or a test playing scheduler) moves frames, `AgentCore` moves the
/// plant.
///
/// The borrow on the [`VirtualStore`] mirrors `Experiment::run`'s
/// sampler lifetime.
pub struct AgentCore<'a> {
    adapter: SimAdapter,
    ticks_trace: Trace,
    sampler: RequestSampler<'a>,
    spread_rng: StdRng,
    reconciler: Reconciler,
    t_l0: f64,
    tick: u64,
    total_ticks: u64,
    last_epoch: u64,
    wedged_events: u64,
    wedged_members: Vec<bool>,
    applied_log: Vec<Directive>,
}

impl std::fmt::Debug for AgentCore<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentCore")
            .field("tick", &self.tick)
            .field("total_ticks", &self.total_ticks)
            .field("wedged_events", &self.wedged_events)
            .finish_non_exhaustive()
    }
}

impl<'a> AgentCore<'a> {
    /// Instantiate the plant shard exactly as `Experiment::run` would:
    /// same adapter, same prewarm, same sampler and spreading streams
    /// for the same seed.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from prewarming.
    ///
    /// # Panics
    ///
    /// Panics if the trace's bucket width is incompatible with the
    /// experiment's `t_l0`.
    pub fn new(
        sim_config: ClusterConfig,
        experiment: &Experiment,
        trace: &Trace,
        store: &'a VirtualStore,
    ) -> Result<AgentCore<'a>, SimError> {
        let ticks_trace = trace
            .rebucket(experiment.t_l0)
            .expect("trace bucket width must be an integer ratio of t_l0");
        let total_ticks = ticks_trace.len();
        let mut adapter = SimAdapter::new(sim_config, experiment, total_ticks);
        if experiment.prewarmed {
            adapter.prewarm()?;
        }
        let num_computers = adapter.sim().num_computers();
        let num_modules = adapter.members().len();
        Ok(AgentCore {
            adapter,
            ticks_trace,
            sampler: RequestSampler::paper_default(store, experiment.seed),
            spread_rng: StdRng::seed_from_u64(derive_seed(experiment.seed, 0xA121)),
            reconciler: Reconciler::new(num_computers, num_modules),
            t_l0: experiment.t_l0,
            tick: 0,
            total_ticks: total_ticks as u64,
            last_epoch: 0,
            wedged_events: 0,
            wedged_members: vec![false; num_computers],
            applied_log: Vec::new(),
        })
    }

    /// The handshake frame describing this shard.
    pub fn hello(&self) -> Hello {
        Hello {
            role: Role::Agent,
            tick: self.tick,
            epoch: self.last_epoch,
            t_l0: self.t_l0,
            total_ticks: self.total_ticks,
            members_per_module: self
                .adapter
                .members()
                .iter()
                .map(|m| u32::try_from(m.len()).expect("module size fits u32"))
                .collect(),
        }
    }

    /// The end-of-window heartbeat: "every observation for
    /// [`tick`](AgentCore::tick) has been sent", carrying the
    /// cumulative wedged-actuation count.
    pub fn heartbeat(&self) -> Heartbeat {
        Heartbeat {
            role: Role::Agent,
            tick: self.tick,
            epoch: self.last_epoch,
            wedged: u32::try_from(self.wedged_events).unwrap_or(u32::MAX),
        }
    }

    /// The next window awaiting a decision.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Run length in base ticks.
    pub fn total_ticks(&self) -> u64 {
        self.total_ticks
    }

    /// Whether every window has been committed.
    pub fn finished(&self) -> bool {
        self.tick >= self.total_ticks
    }

    /// Module topology (global computer indices per module).
    pub fn members(&self) -> &[Vec<usize>] {
        self.adapter.members()
    }

    /// The plant adapter (read-only; the core owns mutation).
    pub fn adapter(&self) -> &SimAdapter {
        &self.adapter
    }

    /// Cumulative wedged-actuation events detected by read-back.
    pub fn wedged_events(&self) -> u64 {
        self.wedged_events
    }

    /// Which computers most recently failed a frequency read-back.
    pub fn wedged_members(&self) -> &[bool] {
        &self.wedged_members
    }

    /// Reconciliation counters.
    pub fn reconcile_report(&self) -> ReconcileReport {
        self.reconciler.report()
    }

    /// Every directive applied to the plant so far, in actuation order.
    pub fn applied_directives(&self) -> &[Directive] {
        &self.applied_log
    }

    /// Render the current tick's observations (one per module), exactly
    /// as the in-process loop would.
    pub fn observations(&mut self) -> Vec<llc_cluster::ModuleObservation> {
        self.adapter.observe(self.tick)
    }

    /// Stage one incoming directive for the next
    /// [`commit_window`](AgentCore::commit_window).
    pub fn stage(&mut self, directive: Directive) {
        self.last_epoch = self.last_epoch.max(directive.epoch);
        self.reconciler.stage(directive);
    }

    /// Close the current window: reconcile and actuate the staged
    /// directives (with wedge read-back on frequency sets), inject the
    /// window's arrivals, advance the plant, move to the next tick.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from actuation or arrival scheduling.
    pub fn commit_window(&mut self) -> Result<(), SimError> {
        let tick = self.tick;
        let t = tick as f64 * self.t_l0;

        // Apply one directive at a time so the frequency read-back sees
        // exactly the post-apply state — the sim-call sequence is
        // identical to a batch `actuate`.
        for d in self.reconciler.drain() {
            self.adapter.actuate(std::slice::from_ref(&d))?;
            if let DirectiveKind::Frequency { computer, index } = &d.kind {
                let realized = self.adapter.sim().computer(*computer).frequency_index();
                let wedged = realized != *index;
                if wedged {
                    self.wedged_events += 1;
                }
                self.wedged_members[*computer] = wedged;
            }
            self.applied_log.push(d);
        }

        // Same arrival-injection stream as `Experiment::run`.
        let count = self.ticks_trace.count(tick as usize).round().max(0.0) as usize;
        let times = spread_arrivals(&mut self.spread_rng, t, self.t_l0, count);
        for at in times {
            let (_, demand) = self.sampler.next_request();
            self.adapter.schedule_arrival(at, demand)?;
        }
        self.adapter.advance_window(tick)?;
        self.tick += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_cluster::Level;

    fn directive(epoch: u64, kind: DirectiveKind) -> Directive {
        Directive {
            tick: epoch,
            time: epoch as f64 * 30.0,
            level: Level::L0,
            epoch,
            kind,
        }
    }

    #[test]
    fn latest_epoch_wins_per_actuator() {
        let mut r = Reconciler::new(2, 1);
        r.stage(directive(
            3,
            DirectiveKind::Frequency {
                computer: 0,
                index: 2,
            },
        ));
        // Older epoch for the same actuator: superseded.
        r.stage(directive(
            1,
            DirectiveKind::Frequency {
                computer: 0,
                index: 0,
            },
        ));
        // Different actuator at an old epoch: fresh book, applies.
        r.stage(directive(
            1,
            DirectiveKind::Frequency {
                computer: 1,
                index: 1,
            },
        ));
        let applied = r.drain();
        assert_eq!(applied.len(), 2);
        assert_eq!(r.report().superseded, 1);
    }

    #[test]
    fn exact_redelivery_is_idempotent() {
        let mut r = Reconciler::new(1, 1);
        let d = directive(
            5,
            DirectiveKind::Activation {
                computer: 0,
                on: true,
            },
        );
        r.stage(d.clone());
        r.stage(d.clone());
        assert_eq!(r.drain().len(), 1);
        assert_eq!(r.report().duplicates, 1);
        // Re-delivery in a *later* window is still a duplicate: the
        // book persists across drains.
        r.stage(d);
        assert!(r.drain().is_empty());
        assert_eq!(r.report().duplicates, 2);
    }

    #[test]
    fn equal_epoch_correction_applies() {
        let mut r = Reconciler::new(1, 2);
        r.stage(directive(
            4,
            DirectiveKind::Split {
                module: Some(1),
                weights: vec![0.5, 0.5],
            },
        ));
        r.stage(directive(
            4,
            DirectiveKind::Split {
                module: Some(1),
                weights: vec![0.7, 0.3],
            },
        ));
        assert_eq!(r.drain().len(), 2, "same epoch, different value: apply");
        assert_eq!(r.report().duplicates, 0);
    }

    #[test]
    fn module_and_member_splits_use_separate_books() {
        let mut r = Reconciler::new(1, 1);
        r.stage(directive(
            2,
            DirectiveKind::Split {
                module: None,
                weights: vec![1.0],
            },
        ));
        r.stage(directive(
            2,
            DirectiveKind::Split {
                module: Some(0),
                weights: vec![1.0],
            },
        ));
        assert_eq!(r.drain().len(), 2);
    }
}
