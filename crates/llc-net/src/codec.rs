//! Message codecs: one pure encoder and one pure decoder per message
//! kind, composed from the field primitives in [`frame`](crate::frame).
//!
//! The encoded types are the control-plane API types themselves
//! ([`ModuleObservation`], [`Directive`], [`MetricsSnapshot`]) plus the
//! two session messages ([`Hello`], [`Heartbeat`]). Every `f64` travels
//! as its bit pattern, so `decode(encode(x)) == x` holds *bit*-exactly
//! — the property the loopback golden test leans on — and every decoder
//! is total: malformed bytes yield `Err`, never a panic and never a
//! partially-built value escaping.

use crate::frame::{put_bool, put_f64, put_u32, put_u64, put_u8, put_usize, Reader, WireError};
use llc_cluster::{
    Directive, DirectiveKind, LatencyStats, Level, LevelOverhead, MemberTelemetry, MetricsSnapshot,
    ModuleObservation, PolicyMetrics, TransportMetrics,
};
use llc_sim::{PowerState, WindowStats};
use std::time::Duration;

/// Which end of the wire a session message comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The node agent: owns a plant shard, streams observations.
    Agent,
    /// The controller daemon: owns the `ControlPlane`.
    Controller,
}

impl Role {
    fn as_u8(self) -> u8 {
        match self {
            Role::Agent => 1,
            Role::Controller => 2,
        }
    }

    fn from_u8(b: u8) -> Result<Role, WireError> {
        match b {
            1 => Ok(Role::Agent),
            2 => Ok(Role::Controller),
            _ => Err(WireError::BadPayload("unknown role")),
        }
    }
}

/// Connection handshake. Each side sends one as its first frame; the
/// receiver checks the topology and clock base against its own before
/// exchanging anything else, so a mis-deployed pair fails loudly at
/// connect instead of silently mis-attributing members.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// Who is speaking.
    pub role: Role,
    /// The speaker's current base tick (the agent's plant clock, or
    /// the controller's next undecided tick).
    pub tick: u64,
    /// The speaker's current L1 epoch (decision-round count) — an
    /// agent reconnecting mid-run advertises the last epoch it applied
    /// so the controller can see how stale it is.
    pub epoch: u64,
    /// Base tick length `T_L0` in seconds.
    pub t_l0: f64,
    /// Total base ticks in the planned run (0 = open-ended).
    pub total_ticks: u64,
    /// Member count per module — the topology fingerprint.
    pub members_per_module: Vec<u32>,
}

/// Liveness and progress marker.
///
/// Agent → controller: "every observation for `tick` has been sent",
/// plus the cumulative wedged-actuator count the reconciler has
/// detected. Controller → agent: "every directive decided at `tick`
/// has been sent" — the per-window commit marker the agent's
/// reconciler waits on (or times out of, on a lossy link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Who is speaking.
    pub role: Role,
    /// The base tick this marker closes.
    pub tick: u64,
    /// The speaker's L1 epoch at `tick`.
    pub epoch: u64,
    /// Cumulative wedged-actuator detections (agent → controller;
    /// zero from the controller).
    pub wedged: u32,
}

// ---------------------------------------------------------------------
// Hello / Heartbeat
// ---------------------------------------------------------------------

/// Encode a [`Hello`] payload.
pub fn encode_hello(h: &Hello) -> Vec<u8> {
    let mut out = Vec::with_capacity(34 + 4 * h.members_per_module.len());
    put_u8(&mut out, h.role.as_u8());
    put_u64(&mut out, h.tick);
    put_u64(&mut out, h.epoch);
    put_f64(&mut out, h.t_l0);
    put_u64(&mut out, h.total_ticks);
    put_usize(&mut out, h.members_per_module.len());
    for &m in &h.members_per_module {
        put_u32(&mut out, m);
    }
    out
}

/// Decode a [`Hello`] payload.
///
/// # Errors
///
/// [`WireError::BadPayload`] on any schema violation.
pub fn decode_hello(payload: &[u8]) -> Result<Hello, WireError> {
    let mut r = Reader::new(payload);
    let role = Role::from_u8(r.u8()?)?;
    let tick = r.u64()?;
    let epoch = r.u64()?;
    let t_l0 = r.f64()?;
    let total_ticks = r.u64()?;
    let n = r.count(4)?;
    let mut members_per_module = Vec::with_capacity(n);
    for _ in 0..n {
        members_per_module.push(r.u32()?);
    }
    r.finish()?;
    Ok(Hello {
        role,
        tick,
        epoch,
        t_l0,
        total_ticks,
        members_per_module,
    })
}

/// Encode a [`Heartbeat`] payload.
pub fn encode_heartbeat(h: &Heartbeat) -> Vec<u8> {
    let mut out = Vec::with_capacity(21);
    put_u8(&mut out, h.role.as_u8());
    put_u64(&mut out, h.tick);
    put_u64(&mut out, h.epoch);
    put_u32(&mut out, h.wedged);
    out
}

/// Decode a [`Heartbeat`] payload.
///
/// # Errors
///
/// [`WireError::BadPayload`] on any schema violation.
pub fn decode_heartbeat(payload: &[u8]) -> Result<Heartbeat, WireError> {
    let mut r = Reader::new(payload);
    let role = Role::from_u8(r.u8()?)?;
    let tick = r.u64()?;
    let epoch = r.u64()?;
    let wedged = r.u32()?;
    r.finish()?;
    Ok(Heartbeat {
        role,
        tick,
        epoch,
        wedged,
    })
}

// ---------------------------------------------------------------------
// ModuleObservation
// ---------------------------------------------------------------------

fn put_window(out: &mut Vec<u8>, w: &WindowStats) {
    put_u64(out, w.arrivals);
    put_u64(out, w.completions);
    put_f64(out, w.response_sum);
    put_f64(out, w.demand_sum);
    put_u64(out, w.dropped);
    put_f64(out, w.energy);
}

fn read_window(r: &mut Reader<'_>) -> Result<WindowStats, WireError> {
    Ok(WindowStats {
        arrivals: r.u64()?,
        completions: r.u64()?,
        response_sum: r.f64()?,
        demand_sum: r.f64()?,
        dropped: r.u64()?,
        energy: r.f64()?,
    })
}

fn put_power_state(out: &mut Vec<u8>, s: PowerState) {
    match s {
        PowerState::Off => put_u8(out, 0),
        PowerState::Booting { ready_at } => {
            put_u8(out, 1);
            put_f64(out, ready_at);
        }
        PowerState::On => put_u8(out, 2),
        PowerState::Draining => put_u8(out, 3),
    }
}

fn read_power_state(r: &mut Reader<'_>) -> Result<PowerState, WireError> {
    match r.u8()? {
        0 => Ok(PowerState::Off),
        1 => Ok(PowerState::Booting { ready_at: r.f64()? }),
        2 => Ok(PowerState::On),
        3 => Ok(PowerState::Draining),
        _ => Err(WireError::BadPayload("unknown power state")),
    }
}

/// Bytes of the fixed part of one encoded `MemberTelemetry` (used as
/// the reader's per-element floor when validating member counts).
const MEMBER_MIN_BYTES: usize = 8 + 8 + 48 + 1 + 8 + 1 + 8;

/// Encode a [`ModuleObservation`] payload.
pub fn encode_observation(o: &ModuleObservation) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + o.members.len() * (MEMBER_MIN_BYTES + 9));
    put_usize(&mut out, o.module);
    put_u64(&mut out, o.tick);
    put_u64(&mut out, o.arrivals);
    put_u64(&mut out, o.dropped);
    put_usize(&mut out, o.members.len());
    for t in &o.members {
        put_usize(&mut out, t.member);
        put_usize(&mut out, t.queue);
        put_window(&mut out, &t.window);
        put_power_state(&mut out, t.state);
        put_usize(&mut out, t.frequency_index);
        put_bool(&mut out, t.telemetry_ok);
        put_u64(&mut out, t.rejected);
    }
    out
}

/// Decode a [`ModuleObservation`] payload.
///
/// # Errors
///
/// [`WireError::BadPayload`] on any schema violation.
pub fn decode_observation(payload: &[u8]) -> Result<ModuleObservation, WireError> {
    let mut r = Reader::new(payload);
    let module = r.usize()?;
    let tick = r.u64()?;
    let arrivals = r.u64()?;
    let dropped = r.u64()?;
    let n = r.count(MEMBER_MIN_BYTES)?;
    let mut members = Vec::with_capacity(n);
    for _ in 0..n {
        members.push(MemberTelemetry {
            member: r.usize()?,
            queue: r.usize()?,
            window: read_window(&mut r)?,
            state: read_power_state(&mut r)?,
            frequency_index: r.usize()?,
            telemetry_ok: r.bool()?,
            rejected: r.u64()?,
        });
    }
    r.finish()?;
    Ok(ModuleObservation {
        module,
        tick,
        members,
        arrivals,
        dropped,
    })
}

// ---------------------------------------------------------------------
// Directive
// ---------------------------------------------------------------------

fn put_level(out: &mut Vec<u8>, level: Level) {
    put_u8(
        out,
        match level {
            Level::L0 => 0,
            Level::L1 => 1,
            Level::L2 => 2,
        },
    );
}

fn read_level(r: &mut Reader<'_>) -> Result<Level, WireError> {
    match r.u8()? {
        0 => Ok(Level::L0),
        1 => Ok(Level::L1),
        2 => Ok(Level::L2),
        _ => Err(WireError::BadPayload("unknown level")),
    }
}

/// Encode a [`Directive`] payload.
pub fn encode_directive(d: &Directive) -> Vec<u8> {
    let mut out = Vec::with_capacity(40);
    put_u64(&mut out, d.tick);
    put_f64(&mut out, d.time);
    put_level(&mut out, d.level);
    put_u64(&mut out, d.epoch);
    match &d.kind {
        DirectiveKind::Frequency { computer, index } => {
            put_u8(&mut out, 1);
            put_usize(&mut out, *computer);
            put_usize(&mut out, *index);
        }
        DirectiveKind::Activation { computer, on } => {
            put_u8(&mut out, 2);
            put_usize(&mut out, *computer);
            put_bool(&mut out, *on);
        }
        DirectiveKind::Split { module, weights } => {
            put_u8(&mut out, 3);
            match module {
                Some(m) => {
                    put_u8(&mut out, 1);
                    put_usize(&mut out, *m);
                }
                None => put_u8(&mut out, 0),
            }
            put_usize(&mut out, weights.len());
            for &w in weights {
                put_f64(&mut out, w);
            }
        }
        DirectiveKind::SafeMode { module, active } => {
            put_u8(&mut out, 4);
            put_usize(&mut out, *module);
            put_bool(&mut out, *active);
        }
    }
    out
}

/// Decode a [`Directive`] payload.
///
/// # Errors
///
/// [`WireError::BadPayload`] on any schema violation.
pub fn decode_directive(payload: &[u8]) -> Result<Directive, WireError> {
    let mut r = Reader::new(payload);
    let tick = r.u64()?;
    let time = r.f64()?;
    let level = read_level(&mut r)?;
    let epoch = r.u64()?;
    let kind = match r.u8()? {
        1 => DirectiveKind::Frequency {
            computer: r.usize()?,
            index: r.usize()?,
        },
        2 => DirectiveKind::Activation {
            computer: r.usize()?,
            on: r.bool()?,
        },
        3 => {
            let module = match r.u8()? {
                0 => None,
                1 => Some(r.usize()?),
                _ => return Err(WireError::BadPayload("bad option tag")),
            };
            let n = r.count(8)?;
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                weights.push(r.f64()?);
            }
            DirectiveKind::Split { module, weights }
        }
        4 => DirectiveKind::SafeMode {
            module: r.usize()?,
            active: r.bool()?,
        },
        _ => return Err(WireError::BadPayload("unknown directive kind")),
    };
    r.finish()?;
    Ok(Directive {
        tick,
        time,
        level,
        epoch,
        kind,
    })
}

// ---------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------

fn put_duration(out: &mut Vec<u8>, d: Duration) {
    // Nanoseconds saturate at u64::MAX ≈ 584 years — far beyond any
    // run, and saturation beats a lossy modulo on overflow.
    put_u64(out, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

fn read_duration(r: &mut Reader<'_>) -> Result<Duration, WireError> {
    Ok(Duration::from_nanos(r.u64()?))
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            put_f64(out, x);
        }
    }
}

fn read_opt_f64(r: &mut Reader<'_>) -> Result<Option<f64>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.f64()?)),
        _ => Err(WireError::BadPayload("bad option tag")),
    }
}

fn put_u64_vec(out: &mut Vec<u8>, v: &[u64]) {
    put_usize(out, v.len());
    for &x in v {
        put_u64(out, x);
    }
}

fn read_u64_vec(r: &mut Reader<'_>) -> Result<Vec<u64>, WireError> {
    let n = r.count(8)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r.u64()?);
    }
    Ok(v)
}

fn put_bool_vec(out: &mut Vec<u8>, v: &[bool]) {
    put_usize(out, v.len());
    for &b in v {
        put_bool(out, b);
    }
}

fn read_bool_vec(r: &mut Reader<'_>) -> Result<Vec<bool>, WireError> {
    let n = r.count(1)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r.bool()?);
    }
    Ok(v)
}

/// Encode a [`MetricsSnapshot`] payload — the full surface, transport
/// section included, so a remote operator tool sees exactly what an
/// in-process caller of `ControlPlane::metrics` sees.
pub fn encode_metrics(m: &MetricsSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    put_u64(&mut out, m.next_tick);
    put_u64(&mut out, m.ticks_decided);
    put_u64(&mut out, m.observations_ingested);
    put_u64(&mut out, m.out_of_order_observations);
    put_u64(&mut out, m.stale_observations);
    put_u64(&mut out, m.dark_filled_members);
    put_u64(&mut out, m.directives_emitted);

    put_u64(&mut out, m.decide.decisions);
    put_duration(&mut out, m.decide.total);
    put_duration(&mut out, m.decide.max);
    put_u64(&mut out, m.decide.candidates_evaluated);
    put_u64(&mut out, m.decide.candidates_pruned);

    let p = &m.policy;
    put_u64(&mut out, p.online_updates);
    put_usize(&mut out, p.map_drift_detections.len());
    for inner in &p.map_drift_detections {
        put_u64_vec(&mut out, inner);
    }
    put_u64_vec(&mut out, &p.model_drift_detections);
    put_opt_f64(&mut out, p.tracking_error);
    put_u64(&mut out, p.tracking_samples);
    put_u64(&mut out, p.retrain_triggers);
    put_u64(&mut out, p.rebuilds);
    put_bool(&mut out, p.retrain_pending);
    put_u64(&mut out, p.member_deaths);
    put_u64(&mut out, p.member_recoveries);
    put_bool_vec(&mut out, &p.members_dead);
    put_u64(&mut out, p.safe_mode_periods);
    put_bool_vec(&mut out, &p.safe_mode_active);
    put_u64(&mut out, p.feed_forward_events);
    for level in &p.level_overhead {
        put_duration(&mut out, level.total);
        put_u64(&mut out, level.decisions);
    }
    put_u64(&mut out, p.l1_candidates_evaluated);
    put_u64(&mut out, p.l1_candidates_pruned);

    let t = &m.transport;
    put_u64(&mut out, t.frames_in);
    put_u64(&mut out, t.frames_out);
    put_u64(&mut out, t.bytes_in);
    put_u64(&mut out, t.bytes_out);
    put_u64(&mut out, t.decode_errors);
    put_u64(&mut out, t.late_observations);
    put_u64(&mut out, t.lost_observation_windows);
    put_u64(&mut out, t.reconnects);
    put_u64(&mut out, t.wedged_reports);
    out
}

/// Decode a [`MetricsSnapshot`] payload.
///
/// # Errors
///
/// [`WireError::BadPayload`] on any schema violation.
pub fn decode_metrics(payload: &[u8]) -> Result<MetricsSnapshot, WireError> {
    let mut r = Reader::new(payload);
    let next_tick = r.u64()?;
    let ticks_decided = r.u64()?;
    let observations_ingested = r.u64()?;
    let out_of_order_observations = r.u64()?;
    let stale_observations = r.u64()?;
    let dark_filled_members = r.u64()?;
    let directives_emitted = r.u64()?;

    let decide = LatencyStats {
        decisions: r.u64()?,
        total: read_duration(&mut r)?,
        max: read_duration(&mut r)?,
        candidates_evaluated: r.u64()?,
        candidates_pruned: r.u64()?,
    };

    let online_updates = r.u64()?;
    let outer = r.count(8)?;
    let mut map_drift_detections = Vec::with_capacity(outer);
    for _ in 0..outer {
        map_drift_detections.push(read_u64_vec(&mut r)?);
    }
    let model_drift_detections = read_u64_vec(&mut r)?;
    let tracking_error = read_opt_f64(&mut r)?;
    let tracking_samples = r.u64()?;
    let retrain_triggers = r.u64()?;
    let rebuilds = r.u64()?;
    let retrain_pending = r.bool()?;
    let member_deaths = r.u64()?;
    let member_recoveries = r.u64()?;
    let members_dead = read_bool_vec(&mut r)?;
    let safe_mode_periods = r.u64()?;
    let safe_mode_active = read_bool_vec(&mut r)?;
    let feed_forward_events = r.u64()?;
    let mut level_overhead = [LevelOverhead::default(); 3];
    for level in &mut level_overhead {
        level.total = read_duration(&mut r)?;
        level.decisions = r.u64()?;
    }
    let l1_candidates_evaluated = r.u64()?;
    let l1_candidates_pruned = r.u64()?;

    let transport = TransportMetrics {
        frames_in: r.u64()?,
        frames_out: r.u64()?,
        bytes_in: r.u64()?,
        bytes_out: r.u64()?,
        decode_errors: r.u64()?,
        late_observations: r.u64()?,
        lost_observation_windows: r.u64()?,
        reconnects: r.u64()?,
        wedged_reports: r.u64()?,
    };
    r.finish()?;
    Ok(MetricsSnapshot {
        next_tick,
        ticks_decided,
        observations_ingested,
        out_of_order_observations,
        stale_observations,
        dark_filled_members,
        directives_emitted,
        decide,
        policy: PolicyMetrics {
            online_updates,
            map_drift_detections,
            model_drift_detections,
            tracking_error,
            tracking_samples,
            retrain_triggers,
            rebuilds,
            retrain_pending,
            member_deaths,
            member_recoveries,
            members_dead,
            safe_mode_periods,
            safe_mode_active,
            feed_forward_events,
            level_overhead,
            l1_candidates_evaluated,
            l1_candidates_pruned,
        },
        transport,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_observation() -> ModuleObservation {
        ModuleObservation {
            module: 2,
            tick: 41,
            arrivals: 355,
            dropped: 3,
            members: vec![
                MemberTelemetry {
                    member: 0,
                    queue: 17,
                    window: WindowStats {
                        arrivals: 120,
                        completions: 118,
                        response_sum: 77.25,
                        demand_sum: 2.125,
                        dropped: 1,
                        energy: 51.5,
                    },
                    state: PowerState::On,
                    frequency_index: 3,
                    telemetry_ok: true,
                    rejected: 0,
                },
                MemberTelemetry {
                    member: 1,
                    queue: 0,
                    window: WindowStats::default(),
                    state: PowerState::Booting { ready_at: 512.75 },
                    frequency_index: 0,
                    telemetry_ok: false,
                    rejected: 9,
                },
                MemberTelemetry {
                    member: 2,
                    queue: 1,
                    window: WindowStats::default(),
                    state: PowerState::Draining,
                    frequency_index: 1,
                    telemetry_ok: true,
                    rejected: 0,
                },
            ],
        }
    }

    pub(crate) fn sample_directives() -> Vec<Directive> {
        vec![
            Directive {
                tick: 4,
                time: 120.0,
                level: Level::L0,
                epoch: 4,
                kind: DirectiveKind::Frequency {
                    computer: 7,
                    index: 2,
                },
            },
            Directive {
                tick: 4,
                time: 120.0,
                level: Level::L1,
                epoch: 1,
                kind: DirectiveKind::Activation {
                    computer: 3,
                    on: false,
                },
            },
            Directive {
                tick: 4,
                time: 120.0,
                level: Level::L1,
                epoch: 1,
                kind: DirectiveKind::Split {
                    module: Some(0),
                    weights: vec![0.25, 0.5, 0.25],
                },
            },
            Directive {
                tick: 8,
                time: 240.0,
                level: Level::L2,
                epoch: 1,
                kind: DirectiveKind::Split {
                    module: None,
                    weights: vec![0.625, 0.375],
                },
            },
            Directive {
                tick: 8,
                time: 240.0,
                level: Level::L1,
                epoch: 2,
                kind: DirectiveKind::SafeMode {
                    module: 1,
                    active: true,
                },
            },
        ]
    }

    pub(crate) fn sample_metrics() -> MetricsSnapshot {
        MetricsSnapshot {
            next_tick: 90,
            ticks_decided: 90,
            observations_ingested: 180,
            out_of_order_observations: 2,
            stale_observations: 5,
            dark_filled_members: 12,
            directives_emitted: 400,
            decide: LatencyStats {
                decisions: 90,
                total: Duration::from_micros(720),
                max: Duration::from_micros(31),
                candidates_evaluated: 900,
                candidates_pruned: 2048,
            },
            policy: PolicyMetrics {
                online_updates: 333,
                map_drift_detections: vec![vec![1, 0, 2, 0], vec![0, 3]],
                model_drift_detections: vec![1, 0],
                tracking_error: Some(0.03125),
                tracking_samples: 88,
                retrain_triggers: 2,
                rebuilds: 1,
                retrain_pending: true,
                member_deaths: 3,
                member_recoveries: 2,
                members_dead: vec![false, true, false, false],
                safe_mode_periods: 4,
                safe_mode_active: vec![true, false],
                feed_forward_events: 21,
                level_overhead: [
                    LevelOverhead {
                        total: Duration::from_micros(9),
                        decisions: 90,
                    },
                    LevelOverhead {
                        total: Duration::from_micros(61),
                        decisions: 22,
                    },
                    LevelOverhead {
                        total: Duration::from_micros(11),
                        decisions: 11,
                    },
                ],
                l1_candidates_evaluated: 900,
                l1_candidates_pruned: 2048,
            },
            transport: TransportMetrics {
                frames_in: 181,
                frames_out: 402,
                bytes_in: 40960,
                bytes_out: 20480,
                decode_errors: 1,
                late_observations: 5,
                lost_observation_windows: 3,
                reconnects: 1,
                wedged_reports: 2,
            },
        }
    }

    #[test]
    fn hello_round_trip() {
        let h = Hello {
            role: Role::Agent,
            tick: 17,
            epoch: 4,
            t_l0: 30.0,
            total_ticks: 360,
            members_per_module: vec![4, 3, 5],
        };
        assert_eq!(decode_hello(&encode_hello(&h)).unwrap(), h);
        let c = Hello {
            role: Role::Controller,
            members_per_module: vec![],
            ..h
        };
        assert_eq!(decode_hello(&encode_hello(&c)).unwrap(), c);
    }

    #[test]
    fn heartbeat_round_trip() {
        for role in [Role::Agent, Role::Controller] {
            let h = Heartbeat {
                role,
                tick: u64::MAX,
                epoch: 0,
                wedged: 7,
            };
            assert_eq!(decode_heartbeat(&encode_heartbeat(&h)).unwrap(), h);
        }
    }

    #[test]
    fn observation_round_trip_is_bit_exact() {
        let o = sample_observation();
        let back = decode_observation(&encode_observation(&o)).unwrap();
        assert_eq!(back, o);
        // Bit-exactness beyond PartialEq: the floats' bit patterns.
        assert_eq!(
            back.members[0].window.response_sum.to_bits(),
            o.members[0].window.response_sum.to_bits()
        );
    }

    #[test]
    fn directive_round_trip_every_kind() {
        for d in sample_directives() {
            assert_eq!(decode_directive(&encode_directive(&d)).unwrap(), d);
        }
    }

    #[test]
    fn metrics_round_trip() {
        let m = sample_metrics();
        assert_eq!(decode_metrics(&encode_metrics(&m)).unwrap(), m);
        let empty = MetricsSnapshot::default();
        assert_eq!(decode_metrics(&encode_metrics(&empty)).unwrap(), empty);
    }

    #[test]
    fn decoders_reject_trailing_bytes() {
        let mut bytes = encode_observation(&sample_observation());
        bytes.push(0);
        assert!(decode_observation(&bytes).is_err());
        let mut bytes = encode_directive(&sample_directives()[0]);
        bytes.push(0);
        assert!(decode_directive(&bytes).is_err());
        let mut bytes = encode_metrics(&sample_metrics());
        bytes.push(0);
        assert!(decode_metrics(&bytes).is_err());
    }

    #[test]
    fn decoders_reject_every_truncation() {
        let obs = encode_observation(&sample_observation());
        for cut in 0..obs.len() {
            assert!(decode_observation(&obs[..cut]).is_err(), "cut {cut}");
        }
        let m = encode_metrics(&sample_metrics());
        for cut in 0..m.len() {
            assert!(decode_metrics(&m[..cut]).is_err(), "cut {cut}");
        }
        for d in sample_directives() {
            let bytes = encode_directive(&d);
            for cut in 0..bytes.len() {
                assert!(decode_directive(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
    }
}
