//! The controller side of the distributed loop: [`ControldCore`] wraps
//! a [`ControlPlane`] with the transport bookkeeping a networked
//! deployment needs — payload decoding and dispatch, late/lost
//! observation accounting, reconnect counting — and surfaces it all
//! through the `transport` section of [`MetricsSnapshot`].
//!
//! The core is transport-free: the session loops in [`crate::session`]
//! (or a test playing scheduler) move frames; `ControldCore` decides.

use crate::codec::{decode_heartbeat, decode_hello, decode_observation, Heartbeat, Hello, Role};
use crate::frame::{Frame, FrameKind, WireError};
use crate::link::LinkCounters;
use llc_cluster::{
    Cadence, ClusterPolicy, ControlPlane, Directive, DirectiveEmit, IngestError, Level,
    MetricsSnapshot, ObservationIngest, StepReport, TransportMetrics,
};

/// What one incoming frame meant to the controller.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlEvent {
    /// An observation was ingested for `(module, tick)`.
    Ingested {
        /// Reporting module.
        module: usize,
        /// Observation tick.
        tick: u64,
    },
    /// An observation arrived after its tick was decided; dropped whole
    /// and counted as late.
    Late {
        /// The stale tick.
        tick: u64,
    },
    /// The agent's end-of-window heartbeat.
    AgentHeartbeat(Heartbeat),
    /// A (re-)handshake from the agent.
    AgentHello(Hello),
}

/// The controller's state machine: the control plane plus transport
/// counters.
#[derive(Debug)]
pub struct ControldCore<P: ClusterPolicy> {
    plane: ControlPlane<P>,
    num_modules: usize,
    t_l0: f64,
    total_ticks: u64,
    directives_log: Vec<Directive>,
    last_agent_heartbeat: Option<Heartbeat>,
    payload_errors: u64,
    late_observations: u64,
    lost_observation_windows: u64,
    reconnects: u64,
    wedged_reports: u64,
}

impl<P: ClusterPolicy> ControldCore<P> {
    /// Wrap `policy` in a control plane over the given topology, to be
    /// driven for `total_ticks` base ticks of `t_l0` seconds each.
    pub fn new(
        policy: P,
        members: Vec<Vec<usize>>,
        t_l0: f64,
        total_ticks: u64,
    ) -> ControldCore<P> {
        let num_modules = members.len();
        ControldCore {
            plane: ControlPlane::new(policy, members, t_l0),
            num_modules,
            t_l0,
            total_ticks,
            directives_log: Vec::new(),
            last_agent_heartbeat: None,
            payload_errors: 0,
            late_observations: 0,
            lost_observation_windows: 0,
            reconnects: 0,
            wedged_reports: 0,
        }
    }

    /// The policy's cadence (for epoch stamping).
    fn cadence(&self) -> Cadence {
        self.plane.policy().cadence()
    }

    /// The handshake frame describing this controller.
    pub fn hello(&self) -> Hello {
        let tick = self.plane.next_tick();
        Hello {
            role: Role::Controller,
            tick,
            epoch: self.cadence().epoch(Level::L1, tick),
            t_l0: self.t_l0,
            total_ticks: self.total_ticks,
            members_per_module: Vec::new(), // filled by check against the agent's
        }
    }

    /// Validate the agent's handshake against this plane's
    /// configuration.
    ///
    /// # Errors
    ///
    /// A human-readable mismatch description.
    pub fn check_agent_hello(&self, hello: &Hello) -> Result<(), String> {
        if hello.role != Role::Agent {
            return Err(format!(
                "peer announced role {:?}, expected Agent",
                hello.role
            ));
        }
        if hello.t_l0.to_bits() != self.t_l0.to_bits() {
            return Err(format!(
                "tick length mismatch: agent {} s, controller {} s",
                hello.t_l0, self.t_l0
            ));
        }
        if hello.total_ticks != self.total_ticks {
            return Err(format!(
                "run length mismatch: agent {} ticks, controller {}",
                hello.total_ticks, self.total_ticks
            ));
        }
        if hello.members_per_module.len() != self.num_modules {
            return Err(format!(
                "topology mismatch: agent has {} modules, controller {}",
                hello.members_per_module.len(),
                self.num_modules
            ));
        }
        Ok(())
    }

    /// The next undecided tick.
    pub fn next_tick(&self) -> u64 {
        self.plane.next_tick()
    }

    /// Base tick length in seconds.
    pub fn t_l0(&self) -> f64 {
        self.t_l0
    }

    /// Whether every tick has been decided.
    pub fn finished(&self) -> bool {
        self.plane.next_tick() >= self.total_ticks
    }

    /// Whether every module has reported for the next tick.
    pub fn ready(&self) -> bool {
        self.plane.ready()
    }

    /// The control plane (for policy/metrics introspection).
    pub fn plane(&self) -> &ControlPlane<P> {
        &self.plane
    }

    /// Dissolve the core and hand the policy back (for post-run
    /// inspection of learner state).
    pub fn into_policy(self) -> P {
        self.plane.into_policy()
    }

    /// Every directive emitted so far, in emission order.
    pub fn directives_log(&self) -> &[Directive] {
        &self.directives_log
    }

    /// The agent's most recent end-of-window heartbeat.
    pub fn last_agent_heartbeat(&self) -> Option<&Heartbeat> {
        self.last_agent_heartbeat.as_ref()
    }

    /// Record a transport reconnect (the binary calls this when it
    /// accepts a replacement connection).
    pub fn note_reconnect(&mut self) {
        self.reconnects += 1;
    }

    /// Decode and dispatch one incoming frame. On a payload decode
    /// failure the frame is dropped whole — nothing is partially
    /// applied — the error is counted, and returned for the session
    /// loop to decide whether to tolerate (paced) or abort (lockstep).
    ///
    /// # Errors
    ///
    /// [`WireError`] when the payload does not decode or the frame kind
    /// has no business arriving at a controller.
    pub fn handle_frame(&mut self, frame: &Frame) -> Result<CtrlEvent, WireError> {
        let fallible = |r: Result<CtrlEvent, WireError>, errs: &mut u64| {
            if r.is_err() {
                *errs += 1;
            }
            r
        };
        match frame.kind {
            FrameKind::Observation => {
                let observation = match decode_observation(&frame.payload) {
                    Ok(o) => o,
                    Err(e) => {
                        self.payload_errors += 1;
                        return Err(e);
                    }
                };
                let module = observation.module;
                let tick = observation.tick;
                match self.plane.ingest(observation) {
                    Ok(()) => Ok(CtrlEvent::Ingested { module, tick }),
                    Err(IngestError::Stale { tick, .. }) => {
                        self.late_observations += 1;
                        Ok(CtrlEvent::Late { tick })
                    }
                    Err(IngestError::UnknownModule { .. } | IngestError::UnknownMember { .. }) => {
                        self.payload_errors += 1;
                        Err(WireError::BadPayload("observation names unknown topology"))
                    }
                }
            }
            FrameKind::Heartbeat => fallible(
                decode_heartbeat(&frame.payload).map(|hb| {
                    self.wedged_reports = u64::from(hb.wedged);
                    self.last_agent_heartbeat = Some(hb);
                    CtrlEvent::AgentHeartbeat(hb)
                }),
                &mut self.payload_errors,
            ),
            FrameKind::Hello => fallible(
                decode_hello(&frame.payload).map(CtrlEvent::AgentHello),
                &mut self.payload_errors,
            ),
            FrameKind::Directive | FrameKind::Metrics => {
                self.payload_errors += 1;
                Err(WireError::BadPayload(
                    "directive/metrics frames do not flow toward the controller",
                ))
            }
        }
    }

    /// Decide the next tick from whatever was ingested, dark-filling
    /// the rest, and return the step report with the directives to ship
    /// (also appended to the log).
    pub fn decide_next(&mut self) -> (StepReport, Vec<Directive>) {
        let missing = self.num_modules - self.plane.reported_modules();
        self.lost_observation_windows += missing as u64;
        let report = self.plane.step();
        let directives = self.plane.drain_directives();
        self.directives_log.extend(directives.iter().cloned());
        (report, directives)
    }

    /// Catch the plane up to wall-derived virtual time `now` (seconds),
    /// with the same `next_tick · T_L0 ≤ now` predicate as
    /// [`ControlPlane::advance_to`], counting the module-windows each
    /// forced step dark-fills. Never decides past the run length.
    pub fn advance_wall(&mut self, now: f64) -> Vec<(StepReport, Vec<Directive>)> {
        let mut out = Vec::new();
        while self.plane.next_tick() < self.total_ticks
            && self.plane.next_tick() as f64 * self.t_l0 <= now + 1e-9
        {
            out.push(self.decide_next());
        }
        out
    }

    /// The commit marker for `tick`: "every directive for `tick` has
    /// been sent".
    pub fn commit_heartbeat(&self, tick: u64) -> Heartbeat {
        Heartbeat {
            role: Role::Controller,
            tick,
            epoch: self.cadence().epoch(Level::L1, tick),
            wedged: u32::try_from(self.wedged_reports).unwrap_or(u32::MAX),
        }
    }

    /// The full metrics snapshot, with the transport section filled
    /// from the core's counters merged with the link's.
    pub fn metrics(&self, link: &LinkCounters) -> MetricsSnapshot {
        let mut m = self.plane.metrics();
        m.transport = TransportMetrics {
            frames_in: link.frames_in,
            frames_out: link.frames_out,
            bytes_in: link.bytes_in,
            bytes_out: link.bytes_out,
            decode_errors: link.decode_errors + self.payload_errors,
            late_observations: self.late_observations,
            lost_observation_windows: self.lost_observation_windows,
            reconnects: self.reconnects,
            wedged_reports: self.wedged_reports,
        };
        m
    }
}
