//! `llc-controld` — the controller daemon: wraps a `ControlPlane` over
//! the full self-healing hierarchy behind a TCP listener and drives one
//! node agent through the window protocol.
//!
//! ```text
//! llc-controld --listen 127.0.0.1:7700 --scenario faults \
//!              [--members N] [--buckets N] [--seed N] [--pace-ms MS]
//! ```
//!
//! `--pace-ms 0` (the default) is lockstep: each tick waits for the
//! agent's heartbeat, which over a lossless link reproduces the
//! in-process loop bit for bit. A positive pace holds each tick's
//! window open for that much wall clock, then catches the plane up with
//! `advance_to` semantics, dark-filling members whose observations
//! missed the deadline. Agents may drop and reconnect mid-run in paced
//! mode; reconnects are counted in the metrics' transport section.

use llc_net::scenario::{flag_value, Family, RunSpec};
use llc_net::{serve_controller, ControldCore, FrameTransport, SessionError, TcpLink};
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: llc-controld --listen ADDR [--scenario closed-loop|faults] \
             [--members N] [--buckets N] [--seed N] [--pace-ms MS]"
        );
        return ExitCode::SUCCESS;
    }
    let listen = flag_value(&args, "--listen").unwrap_or_else(|| "127.0.0.1:7700".into());
    let family = match Family::parse(
        &flag_value(&args, "--scenario").unwrap_or_else(|| "closed-loop".into()),
    ) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("llc-controld: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut spec = RunSpec::defaults(family);
    if let Some(v) = flag_value(&args, "--members") {
        spec.members = v.parse().expect("--members takes an integer");
    }
    if let Some(v) = flag_value(&args, "--buckets") {
        spec.buckets = v.parse().expect("--buckets takes an integer");
    }
    if let Some(v) = flag_value(&args, "--seed") {
        spec.seed = v.parse().expect("--seed takes an integer");
    }
    let pace_ms: u64 = flag_value(&args, "--pace-ms")
        .map_or(0, |v| v.parse().expect("--pace-ms takes milliseconds"));
    let pace = (pace_ms > 0).then(|| Duration::from_millis(pace_ms));

    let (exp, trace) = spec.experiment_and_trace();
    let ticks_trace = trace.rebucket(exp.t_l0).expect("well-formed trace");
    let total_ticks = ticks_trace.len() as u64;
    // The topology the plane manages: contiguous indices per module,
    // derived from the same scenario the agent instantiates.
    let members: Vec<Vec<usize>> = {
        let sizes: Vec<usize> = spec
            .scenario_config()
            .member_specs()
            .iter()
            .map(Vec::len)
            .collect();
        let mut members = Vec::with_capacity(sizes.len());
        let mut next = 0usize;
        for n in sizes {
            members.push((next..next + n).collect::<Vec<_>>());
            next += n;
        }
        members
    };
    let mut core = ControldCore::new(spec.policy(), members, exp.t_l0, total_ticks);

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("llc-controld: cannot listen on {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("llc-controld: listening on {listen} ({total_ticks} ticks, pace {pace_ms} ms)");

    let mut first = true;
    while !core.finished() {
        let (stream, peer) = match listener.accept() {
            Ok(x) => x,
            Err(e) => {
                eprintln!("llc-controld: accept failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !first {
            core.note_reconnect();
        }
        first = false;
        eprintln!("llc-controld: agent connected from {peer}");
        let mut link = match TcpLink::new(stream) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("llc-controld: {e}");
                continue;
            }
        };
        match serve_controller(&mut core, &mut link, pace) {
            Ok(()) => {
                let m = core.metrics(&link.counters());
                let t = &m.transport;
                eprintln!(
                    "llc-controld: run complete — {} ticks, {} directives; transport: \
                     {} frames in / {} out, {} decode errors, {} late obs, \
                     {} lost module-windows, {} reconnects, {} wedged reports",
                    m.ticks_decided,
                    m.directives_emitted,
                    t.frames_in,
                    t.frames_out,
                    t.decode_errors,
                    t.late_observations,
                    t.lost_observation_windows,
                    t.reconnects,
                    t.wedged_reports,
                );
            }
            Err(SessionError::Link(e)) if pace.is_some() && !core.finished() => {
                eprintln!("llc-controld: link lost mid-run ({e}); awaiting reconnect");
            }
            Err(e) => {
                eprintln!("llc-controld: session failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
